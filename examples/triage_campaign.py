#!/usr/bin/env python
"""Triage campaign: bucket a flood of bug reports by root cause (§3.1).

Generates a synthetic report corpus (two real bugs, many call-stack
shapes, one shared failure point), buckets it twice — with WER-style
call-stack signatures and with RES root-cause signatures — and prints
the accuracy table the paper's argument predicts.
"""

from collections import Counter

from repro.baselines.wer import triage as wer_triage
from repro.core import RESConfig
from repro.core.triage import TriageEngine, bucket_accuracy, misbucketed_fraction
from repro.workloads import TRIAGE_PROGRAM, generate_corpus


def main():
    corpus = generate_corpus(30, seed=42)
    truth = Counter(r.true_cause for r in corpus)
    print(f"corpus: {len(corpus)} reports, true causes: {dict(truth)}")

    wer_results = wer_triage(corpus)
    engine = TriageEngine(TRIAGE_PROGRAM.module,
                          RESConfig(max_depth=24, max_nodes=4000))
    res_results = engine.triage(corpus)

    print()
    print(f"{'bucketer':<12} {'buckets':>8} {'pair accuracy':>14} "
          f"{'misbucketed':>12}")
    for name, results in (("WER", wer_results), ("RES", res_results)):
        buckets = len({r.bucket for r in results})
        acc = bucket_accuracy(results, corpus)
        mis = misbucketed_fraction(results, corpus)
        print(f"{name:<12} {buckets:>8} {acc:>14.3f} {mis:>12.1%}")

    print()
    print("RES bucket contents (cause signature → reports):")
    by_bucket = {}
    for result in res_results:
        by_bucket.setdefault(result.bucket, []).append(result.report_id)
    for bucket, ids in by_bucket.items():
        kind = bucket[0] if isinstance(bucket, tuple) else bucket
        print(f"  {kind}: {len(ids)} reports")


if __name__ == "__main__":
    main()
