#!/usr/bin/env python
"""Why RES wants the whole coredump, not a minidump (paper §1).

"Unlike execution synthesis, RES interprets the entire coredump, not
just a minidump, which makes RES strictly more powerful."

The blind-spot program decides its fate in a helper whose frame has
returned by crash time; both paths leave identical stacks and
registers, and only a global — which minidumps drop — records which
path ran.  RES over the full dump pins the real path; RES over the
minidump is left with both.
"""

from repro.core import RESConfig, ReverseExecutionSynthesizer
from repro.vm.minidump import minidump_of
from repro.workloads import MINIDUMP_BLINDSPOT


def synthesize(dump, label):
    res = ReverseExecutionSynthesizer(
        MINIDUMP_BLINDSPOT.module, dump, RESConfig(max_depth=16))
    branches = set()
    suffixes = 0
    for synthesized in res.suffixes():
        suffixes += 1
        for step in synthesized.suffix.steps:
            seg = step.segment
            if seg.function == "pick" and seg.block.startswith(("then",
                                                                "else")):
                branches.add(seg.block)
    print(f"--- {label}")
    print(f"  verified suffixes:      {suffixes}")
    print(f"  pick() branches kept:   {sorted(branches)}")
    print(f"  refuted by dump values: {res.stats.pruned_incompatible}")
    return branches


def main():
    dump = MINIDUMP_BLINDSPOT.trigger()
    layout = MINIDUMP_BLINDSPOT.module.layout()
    print(f"crash: {dump.trap!r}")
    print(f"the full dump records x = {dump.read(layout['x'])} "
          f"(pick() ran its then-branch)\n")

    full_branches = synthesize(dump, "full coredump")
    print()

    mini = minidump_of(dump)
    print(f"minidump retains {len(mini.memory)} words "
          f"(thread stacks only); global x is gone\n")
    mini_branches = synthesize(mini, "minidump")

    print()
    if full_branches < mini_branches:
        print("=> the minidump admits execution paths the full coredump "
              "refutes; the paper's 'strictly more powerful' claim, "
              "reproduced.")


if __name__ == "__main__":
    main()
