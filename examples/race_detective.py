#!/usr/bin/env python
"""Concurrency detective: reconstruct a data race from a coredump.

Runs the paper's §4 scenario end to end: a schedule-dependent failure
is captured in production, and RES reconstructs a cross-thread
execution suffix that exposes the race — including the exact remote
write that landed inside the victim's window — then replays it
deterministically as many times as the developer wants.
"""

from repro.core import RESConfig, ReverseExecutionSynthesizer
from repro.core.rootcause import analyze
from repro.workloads import RACE_FLAG


def main():
    workload = RACE_FLAG
    print("bug:", workload.description)
    coredump, seed = workload.trigger_with_seed()
    print(f"crash (schedule seed {seed}):", coredump.trap)
    layout = workload.module.layout()
    print("coredump: flag =", coredump.read(layout["flag"]),
          " data =", coredump.read(layout["data"]))

    synthesizer = ReverseExecutionSynthesizer(
        workload.module, coredump, RESConfig(max_depth=14, max_nodes=8000))

    chosen = None
    for suffix in synthesizer.suffixes():
        chosen = suffix
        report = analyze(suffix)
        primary = report.primary
        if primary is not None and primary.kind in ("data-race",
                                                    "atomicity-violation"):
            break

    print()
    print(chosen.suffix.describe())
    report = analyze(chosen)
    print()
    print("root cause:", report.primary.kind, "—", report.primary.description)
    print("threads   :", report.primary.threads)

    # deterministic replay, "over and over again" (§ Abstract)
    from repro.core.replay import SuffixReplayer

    replayer = SuffixReplayer(workload.module)
    for attempt in range(3):
        replay = replayer.replay(chosen.suffix)
        assert replay.ok
    print("replayed the racy interleaving 3x deterministically: ok")


if __name__ == "__main__":
    main()
