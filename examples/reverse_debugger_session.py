#!/usr/bin/env python
"""Reverse-debugging session (§3.3): gdb-style workflow with no recording.

Synthesizes a suffix for the order-violation race, then drives the
ReverseDebugger like a developer would: run to the failure, inspect
source variables, step *backward* to watch the stale read happen, and
use the read/write sets to focus on the state that matters.
"""

from repro.core import RESConfig, ReverseExecutionSynthesizer
from repro.core.debugger import ReverseDebugger
from repro.workloads import RACE_FLAG


def main():
    coredump = RACE_FLAG.trigger()
    print("crash:", coredump.trap)

    synthesizer = ReverseExecutionSynthesizer(
        RACE_FLAG.module, coredump, RESConfig(max_depth=14, max_nodes=8000))
    chosen = None
    for suffix in synthesizer.suffixes():
        chosen = suffix
        if len(suffix.suffix.threads_involved()) > 1:
            break

    dbg = ReverseDebugger(RACE_FLAG.module, chosen)
    print(f"suffix loaded: {dbg.total_steps} instructions across threads "
          f"{sorted(chosen.suffix.threads_involved())}")

    print("\n(gdb) continue            # run into the failure")
    pc = dbg.run_to_failure()
    print(f"  stopped at {pc} (source line {dbg.source_line()})")
    print(f"  backtrace: {dbg.backtrace()}")
    print(f"  d    = {dbg.print_var('d')}     # the stale read")
    print(f"  data = {dbg.print_var('data')}  # what memory holds now")

    print("\n(gdb) reverse-step 3      # no recording was ever taken")
    for _ in range(3):
        pc = dbg.reverse_step(1)
        print(f"  now at {pc}")

    print("\n(gdb) info threads")
    for tid, (status, tpc) in dbg.info_threads().items():
        print(f"  thread {tid}: {status} at {tpc}")

    print("\nfocus sets (§3.3: 'recently read or written state'):")
    layout = RACE_FLAG.module.layout()
    names = {addr: name for name, addr in layout.items()}
    reads = {names.get(a, hex(a)) for a in dbg.focus_read_set()}
    writes = {names.get(a, hex(a)) for a in dbg.focus_write_set()}
    print("  read  :", sorted(reads))
    print("  write :", sorted(writes))

    print("\nhypothesis test: was data still 0 when main was in then1?")
    hits = dbg.test_hypothesis(
        "main", lambda d: d.print_var("data", tid=0) == 0)
    print(f"  predicate held at {len(hits)} step(s)" +
          (f", first at {hits[0][1]}" if hits else ""))


if __name__ == "__main__":
    main()
