#!/usr/bin/env python
"""Quickstart: crash a program, then debug it post-mortem with RES.

No runtime recording happens anywhere in this script: the only artifact
that crosses from "production" to "developer" is the coredump (here
even serialized through JSON to prove it), exactly the paper's setting.
"""

from repro.core import RESConfig, ReverseExecutionSynthesizer
from repro.minic import compile_source
from repro.vm import Coredump, VM

SOURCE = """
global int x;
global int y;

func main() {
    int v = input();
    if (v > 3) {
        x = 1;          // the path the buggy input takes
    } else {
        x = 2;          // the path the developer *expected*
    }
    y = x + 10;
    assert(y == 12, "y should always be 12");
    return 0;
}
"""


def main():
    module = compile_source(SOURCE, name="quickstart")

    # --- production: the program crashes on some input -----------------
    result = VM(module, inputs=[7]).run()
    assert result.trapped
    print("production crash:", result.coredump.trap)

    # the coredump is shipped to the developer (serialize to prove that
    # nothing else crosses the boundary)
    wire = result.coredump.to_json()
    coredump = Coredump.from_json(wire)

    # --- developer: reverse execution synthesis ------------------------
    synthesizer = ReverseExecutionSynthesizer(module, coredump,
                                              RESConfig(max_depth=12))
    deepest = None
    for suffix in synthesizer.suffixes():   # anytime: shortest first
        deepest = suffix
    print()
    print(deepest.suffix.describe())
    print()
    print("reconstructed program input :", deepest.report.inputs)
    print("suffix replays to the dump  :", deepest.report.ok)
    blocks = {step.segment.block for step in deepest.suffix.steps}
    print("branch proven from coredump :",
          "x=1 path" if "then1" in blocks else "x=2 path")
    stats = synthesizer.stats
    print(f"hypotheses pruned           : "
          f"{stats.pruned_incompatible + stats.pruned_structural}")


if __name__ == "__main__":
    main()
