#!/usr/bin/env python
"""Hardware-error hunt (§3.2): separate bad RAM from bad code.

Builds a batch of coredumps — one honest software crash, plus dumps
corrupted by injected DRAM bit flips, a stray DMA write, and a CPU that
miscomputed an addition — and asks RES which ones no software execution
can explain.
"""

from repro.core import RESConfig
from repro.core.hwerror import diagnose
from repro.workloads import HW_CANARY
from repro.workloads.hwfaults import standard_scenarios


def main():
    print("program under diagnosis:", HW_CANARY.name,
          "—", HW_CANARY.description)
    print()
    print(f"{'scenario':<32} {'truth':<10} {'RES verdict':<22} rationale")
    print("-" * 110)
    for scenario in standard_scenarios():
        diagnosis = diagnose(HW_CANARY.module, scenario.coredump,
                             RESConfig(max_depth=24, max_nodes=8000))
        truth = "hardware" if scenario.is_hardware else "software"
        note = "" if scenario.detectable else "  (paper's admitted blind spot)"
        print(f"{scenario.name:<32} {truth:<10} "
              f"{diagnosis.verdict.value:<22} {diagnosis.rationale}{note}")


if __name__ == "__main__":
    main()
