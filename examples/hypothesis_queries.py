#!/usr/bin/env python
"""Hypothesis testing over a synthesized suffix (paper §3.3).

The paper: "RES could also be used to automate the testing of various
hypotheses formulated during debugging, such as 'what was the program
state when the program was executing at program counter X', or 'was a
thread T preempted before updating shared memory location M?'"

This script crashes the order-violation race, synthesizes a suffix
from the coredump alone, and then answers both §3.3 questions with the
query engine — the workflow a developer would drive from a debugger.
"""

from repro.core import RESConfig, ReverseExecutionSynthesizer
from repro.core.queries import SuffixQueryEngine
from repro.workloads import RACE_FLAG


def deepest_suffix(workload, max_depth=14):
    dump = workload.trigger()
    res = ReverseExecutionSynthesizer(
        workload.module, dump, RESConfig(max_depth=max_depth))
    best = None
    for synthesized in res.suffixes():
        best = synthesized
    return dump, best


def main():
    print("=== crash the producer/consumer race ===")
    dump, synthesized = deepest_suffix(RACE_FLAG)
    print(f"trap: {dump.trap!r}")
    print(synthesized.suffix.describe())
    print()

    engine = SuffixQueryEngine(RACE_FLAG.module, synthesized)

    print("=== hypothesis 1: what was the state at the consumer's check? ===")
    for obs in engine.states_at("main"):
        flag = obs.variables.get("flag")
        data = obs.variables.get("data")
        print(f"  step {obs.step:3d} t{obs.tid} {obs.pc}: "
              f"flag={flag} data={data}")
    print()

    print("=== hypothesis 2: was the producer preempted before its "
          "updates? ===")
    for tid in sorted(synthesized.suffix.threads_involved()):
        for target in ("flag", "data"):
            answer = engine.was_preempted_before_update(tid, target)
            print(f"  t{tid} / {target}: {answer.describe()}")
    print()

    print("=== supporting evidence: every access to the flag ===")
    for event in engine.accesses("flag"):
        print(f"  {event.describe()}")
    print()

    print("=== unprotected conflicting accesses (the race itself) ===")
    conflicts = engine.unprotected_conflicts("flag")
    if not conflicts:
        print("  none inside this suffix")
    for a, b in conflicts:
        print(f"  {a.describe()}")
        print(f"    conflicts with {b.describe()}")


if __name__ == "__main__":
    main()
