"""Baseline implementations: forward synthesis, slicing, WP, WER."""

import pytest

from repro.baselines import (
    ForwardSynthesizer,
    StaticSlicer,
    WeakestPrecondition,
    wer_signature,
)
from repro.minic import compile_source
from repro.vm import RunStatus, VM
from repro.workloads import long_execution_workload


def crash(workload):
    result = workload.run_once(seed=0)
    assert result.status is RunStatus.TRAPPED
    return result.coredump


def test_forward_synthesis_finds_short_execution():
    w = long_execution_workload(2)
    dump = crash(w)
    forward = ForwardSynthesizer(w.module, dump)
    result = forward.synthesize()
    assert result.found
    # the synthesized inputs must actually reproduce the failure
    replay = VM(w.module, inputs=result.inputs).run()
    assert replay.status is RunStatus.TRAPPED
    assert replay.coredump.trap == dump.trap


def test_forward_synthesis_cost_grows_with_length():
    costs = []
    for n in (1, 3, 5):
        w = long_execution_workload(n)
        dump = crash(w)
        forward = ForwardSynthesizer(w.module, dump)
        result = forward.synthesize()
        assert result.found or result.budget_exhausted
        costs.append(result.instructions_executed)
    assert costs[0] < costs[-1], "forward cost should grow with warm-up length"


def test_forward_synthesis_budget_exhaustion():
    w = long_execution_workload(30)
    dump = crash(w)
    forward = ForwardSynthesizer(w.module, dump, max_instructions=100)
    result = forward.synthesize()
    assert not result.found and result.budget_exhausted


def test_static_slice_contains_relevant_store_but_is_large():
    src = """
global int g;
global int h;
func main() {
    int v = input();
    g = v + 1;
    h = 5;
    int check = g;
    assert(check == 0, "boom");
    return 0;
}
"""
    module = compile_source(src)
    dump = None
    vm = VM(module, inputs=[3])
    result = vm.run()
    slicer = StaticSlicer(module)
    sliced = slicer.slice_backward(result.coredump.trap.pc)
    assert len(sliced) > 0
    candidates = slicer.candidate_root_causes(result.coredump.trap.pc)
    # the conservative memory model drags in *both* stores even though
    # only the store to g matters — the §2.2 imprecision
    assert len(candidates) >= 2


def test_wp_enumerates_path_disjunction():
    src = """
global int x;
func main() {
    int v = input();
    if (v > 3) { x = 1; } else { x = 2; }
    int y = x + 10;
    assert(y == 12, "bug");
    return 0;
}
"""
    module = compile_source(src)
    result = VM(module, inputs=[7]).run()
    trap = result.coredump.trap
    wp = WeakestPrecondition(module)
    all_paths = wp.failure_precondition("main", trap.pc.block, trap.pc.index)
    # without coredump data, WP must keep both branch paths alive
    assert len(all_paths) >= 2
    feasible = wp.feasible_paths(all_paths)
    assert len(feasible) >= 2, "WP alone cannot discard either predecessor"


def test_wp_substitution_is_sound():
    src = """
global int g;
func main() {
    g = 4;
    int a = g;
    assert(a == 4, "t");
    return 0;
}
"""
    module = compile_source(src)
    wp = WeakestPrecondition(module)
    func = module.function("main")
    entry_len = len(func.block("entry").instrs)
    from repro.symex import Const
    result = wp.wp_path("main", [("entry", 0, entry_len - 1)], [Const(1)])
    assert wp.solver.check_sat(result.precondition)


def test_wer_signature_varies_with_stack():
    src = """
global int g;
func inner() { assert(g == 0, "x"); return 0; }
func outer() { inner(); return 0; }
func main() {
    int v = input();
    g = 1;
    if (v) { outer(); } else { inner(); }
    return 0;
}
"""
    module = compile_source(src)
    dump_deep = VM(module, inputs=[1]).run().coredump
    dump_shallow = VM(module, inputs=[0]).run().coredump
    assert wer_signature(dump_deep) != wer_signature(dump_shallow)
