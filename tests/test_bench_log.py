"""Regression tests for the BENCH_res.json timing log's growth bound.

``benchmarks/`` is not a package, so the conftest under test is loaded
by file path.
"""

import importlib.util
import json
from pathlib import Path

import pytest

_CONFTEST = Path(__file__).resolve().parent.parent / "benchmarks" / "conftest.py"


@pytest.fixture()
def bench_conftest():
    spec = importlib.util.spec_from_file_location("bench_conftest", _CONFTEST)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_record_timing_bounds_log_growth(bench_conftest):
    payload = {}
    total = bench_conftest._MAX_TIMINGS + 137
    for i in range(total):
        bench_conftest.record_timing(payload, f"test_{i}", i * 0.001,
                                     recorded_at=1000.0 + i)
    timings = payload["timings"]
    assert len(timings) == bench_conftest._MAX_TIMINGS
    # Oldest entries were dropped, newest retained, order preserved.
    assert timings[0]["test"] == f"test_{total - bench_conftest._MAX_TIMINGS}"
    assert timings[-1]["test"] == f"test_{total - 1}"


def test_record_timing_bound_holds_across_saved_files(bench_conftest,
                                                      tmp_path,
                                                      monkeypatch):
    """The bound must hold through the real read-modify-write path, not
    just on an in-memory dict: repeated appends across 'runs' keep the
    persisted file at the cap."""
    bench_path = tmp_path / "BENCH_res.json"
    monkeypatch.setattr(bench_conftest, "BENCH_PATH", bench_path)
    cap = bench_conftest._MAX_TIMINGS
    for i in range(cap + 40):
        bench_conftest._update_bench(
            lambda payload, i=i: bench_conftest.record_timing(
                payload, f"run_{i}", 0.5, recorded_at=2000.0 + i))
    stored = json.loads(bench_path.read_text())
    assert len(stored["timings"]) == cap
    assert stored["timings"][-1]["test"] == f"run_{cap + 39}"
    # Other sections survive alongside the capped log.
    bench_conftest.bench_record("res_throughput", {"workload": "x"})
    stored = json.loads(bench_path.read_text())
    assert len(stored["timings"]) == cap
    assert stored["res_throughput"][0]["workload"] == "x"
