"""Tests for the §3.3 hypothesis-query engine (`repro.core.queries`)."""

import pytest

from repro.core import RESConfig, ReverseExecutionSynthesizer
from repro.core.queries import SuffixQueryEngine
from repro.errors import ReplayError
from repro.workloads import FIGURE1_OVERFLOW, RACE_FLAG, RACE_COUNTER


def synthesize_one(workload, limit=40, **config):
    """Deepest verified suffix among the first ``limit`` emitted —
    long enough to contain the root cause, per §2's enabler."""
    dump = workload.trigger()
    res = ReverseExecutionSynthesizer(
        workload.module, dump,
        RESConfig(**{"max_depth": 14, "max_nodes": 8000, **config}))
    found = []
    for item in res.suffixes():
        found.append(item)
        if len(found) >= limit:
            break
    assert found, "workload must synthesize"
    return max(found, key=lambda s: s.depth)


@pytest.fixture(scope="module")
def race_flag_suffix():
    return synthesize_one(RACE_FLAG)


@pytest.fixture(scope="module")
def race_flag_engine(race_flag_suffix):
    return SuffixQueryEngine(RACE_FLAG.module, race_flag_suffix)


@pytest.fixture(scope="module")
def figure1_engine():
    return SuffixQueryEngine(FIGURE1_OVERFLOW.module,
                             synthesize_one(FIGURE1_OVERFLOW, max_depth=16))


# ---------------------------------------------------------------------------
# Address resolution
# ---------------------------------------------------------------------------

def test_resolve_global_by_name(figure1_engine):
    layout = FIGURE1_OVERFLOW.module.layout()
    assert figure1_engine.resolve("x") == layout["x"]


def test_resolve_raw_address_passthrough(figure1_engine):
    assert figure1_engine.resolve(1234) == 1234


def test_resolve_unknown_name_raises(figure1_engine):
    with pytest.raises(ReplayError):
        figure1_engine.resolve("no_such_global")


# ---------------------------------------------------------------------------
# Access history
# ---------------------------------------------------------------------------

def test_figure1_suffix_writes_y_ten(figure1_engine):
    """The synthesized suffix must contain the Pred1 assignment y = 10."""
    writes = figure1_engine.writes_to("y")
    assert writes, "suffix should write y"
    assert writes[-1].value == 10


def test_figure1_last_writer_of_x_wrote_one(figure1_engine):
    last = figure1_engine.last_writer("x")
    assert last is not None
    assert last.value == 1  # Pred1, not Pred2's x = 2


def test_value_history_is_ordered(figure1_engine):
    history = figure1_engine.value_history("y")
    steps = [s for s, _ in history]
    assert steps == sorted(steps)


def test_reads_and_writes_partition_accesses(race_flag_engine):
    addr = race_flag_engine.resolve("flag")
    accesses = race_flag_engine.accesses(addr)
    reads = race_flag_engine.reads_from(addr)
    writes = race_flag_engine.writes_to(addr)
    assert len(accesses) == len(reads) + len(writes)


def test_last_writer_none_for_untouched_address(figure1_engine):
    assert figure1_engine.last_writer(0x7FFF_FFF0) is None


def test_schedule_legs_match_suffix(race_flag_suffix, race_flag_engine):
    assert race_flag_engine.schedule_legs() == race_flag_suffix.suffix.schedule()


# ---------------------------------------------------------------------------
# "What was the program state at PC X?"
# ---------------------------------------------------------------------------

def test_state_at_captures_globals(figure1_engine):
    obs = figure1_engine.state_at("main")
    assert obs is not None
    assert "x" in obs.variables
    assert "y" in obs.variables


def test_states_at_are_chronological(figure1_engine):
    states = figure1_engine.states_at("main")
    assert len(states) >= 2
    positions = [s.step for s in states]
    assert positions == sorted(positions)


def test_state_when_finds_predicate_hit(figure1_engine):
    """Find the moment y became 10 — pinpointing Pred1's effect."""
    obs = figure1_engine.state_when(
        "main", lambda s: s.variables.get("y") == 10)
    assert obs is not None
    # at that moment x must already hold Pred1's value
    assert obs.variables.get("x") == 1


def test_state_when_no_hit_returns_none(figure1_engine):
    assert figure1_engine.state_when(
        "main", lambda s: s.variables.get("y", 0) == 999_999) is None


def test_state_at_unknown_function_returns_none(figure1_engine):
    assert figure1_engine.state_at("not_a_function") is None


def test_state_observation_has_backtrace(figure1_engine):
    obs = figure1_engine.state_at("main")
    assert obs.backtrace
    assert obs.backtrace[-1].function == "main"


# ---------------------------------------------------------------------------
# "Was thread T preempted before updating M?"
# ---------------------------------------------------------------------------

def test_preemption_answer_for_race(race_flag_engine):
    """The order-violation race crashes because the producer published
    `flag` and was preempted before `data = 42`; the engine must locate
    the producer's flag write inside a preemption window."""
    suffix = race_flag_engine.synthesized.suffix
    tids = sorted(suffix.threads_involved())
    assert len(tids) == 2
    answers = [race_flag_engine.was_preempted_before_update(tid, "flag")
               for tid in tids]
    writers = [a for a in answers if a.write is not None]
    assert writers, "the producer must write flag in the suffix"
    # the crash requires the consumer to run after the flag write, so the
    # schedule interleaves the two threads around it
    assert any(a.preempted or a.write is not None for a in answers)


def test_preemption_never_writes(race_flag_engine):
    answer = race_flag_engine.was_preempted_before_update(0, 0x7FFF_FFF0)
    assert not answer.preempted
    assert answer.write is None
    assert "never updates" in answer.describe()


def test_preemption_describe_mentions_threads(race_flag_engine):
    suffix = race_flag_engine.synthesized.suffix
    for tid in sorted(suffix.threads_involved()):
        answer = race_flag_engine.was_preempted_before_update(tid, "data")
        text = answer.describe()
        assert str(answer.addr is not None)
        assert "thread" in text


def test_sequential_program_is_never_preempted(figure1_engine):
    """A single-threaded suffix has no preemption windows."""
    answer = figure1_engine.was_preempted_before_update(0, "y")
    assert answer.write is not None
    assert not answer.preempted


# ---------------------------------------------------------------------------
# Unprotected conflicting accesses
# ---------------------------------------------------------------------------

def test_unprotected_conflicts_found_on_counter():
    engine = SuffixQueryEngine(RACE_COUNTER.module,
                               synthesize_one(RACE_COUNTER))
    conflicts = engine.unprotected_conflicts("counter")
    assert conflicts, "lost-update race must show conflicting accesses"
    a, b = conflicts[0]
    assert a.tid != b.tid
    assert a.is_write or b.is_write


def test_no_conflicts_in_sequential_suffix(figure1_engine):
    assert figure1_engine.unprotected_conflicts("y") == []


# ---------------------------------------------------------------------------
# Error paths
# ---------------------------------------------------------------------------

def test_engine_requires_trace(race_flag_suffix):
    from dataclasses import replace
    stripped = replace(race_flag_suffix.report, trace=None)
    from repro.core.res import SynthesizedSuffix
    bad = SynthesizedSuffix(suffix=race_flag_suffix.suffix, report=stripped)
    with pytest.raises(ReplayError):
        SuffixQueryEngine(RACE_FLAG.module, bad)
