"""Copy-on-write snapshot isolation: a child's mutations — memory,
registers, constraints, allocator/lock/stack bookkeeping — must never
be visible in its parent or in sibling snapshots, in either derivation
mode (structural sharing and eager deep copy).

These are the invariants the RES search relies on when
``RESConfig.incremental`` shares state between nodes: every search node
is an independent hypothesis, so corruption across siblings would
silently merge hypotheses.
"""

import pytest

from repro.core import RESConfig, ReverseExecutionSynthesizer
from repro.core.snapshot import SymbolicSnapshot
from repro.ir.instructions import Reg
from repro.symex.expr import Const, Sym
from repro.symex.memory import SymMemory
from repro.vm import VM
from repro.minic import compile_source

SOURCE = """
global int g;
global int h;

func main() {
    int v = input();
    g = v;
    h = g + 1;
    assert(g == 0, "boom");
    return 0;
}
"""


@pytest.fixture(scope="module")
def crash():
    module = compile_source(SOURCE, name="cow_fixture")
    result = VM(module, inputs=[5]).run()
    assert result.trapped
    return module, result.coredump


@pytest.fixture(params=[True, False], ids=["cow", "eager"])
def derive(request):
    """Child-derivation mode under test."""
    mode = request.param
    return lambda snapshot: snapshot.child(cow=mode)


def initial(crash):
    module, coredump = crash
    return SymbolicSnapshot.initial(module, coredump)


# ---------------------------------------------------------------------------
# Memory
# ---------------------------------------------------------------------------

def test_child_memory_writes_invisible_to_parent_and_sibling(crash, derive):
    parent = initial(crash)
    parent.memory.write(0x9000, Const(7))
    left, right = derive(parent), derive(parent)
    left.memory.write(0x9000, Sym("left"))
    left.memory.write(0x9100, Sym("left2"))

    assert parent.memory.read(0x9000) == Const(7)
    assert right.memory.read(0x9000) == Const(7)
    assert not parent.memory.has_overlay(0x9100)
    assert not right.memory.has_overlay(0x9100)
    assert left.memory.read(0x9000) == Sym("left")
    assert left.memory.read(0x9100) == Sym("left2")


def test_child_sees_parent_overlay_through_sharing(crash, derive):
    parent = initial(crash)
    parent.memory.write(0x9000, Sym("pre"))
    child = derive(parent)
    assert child.memory.read(0x9000) == Sym("pre")
    grandchild = derive(child)
    assert grandchild.memory.read(0x9000) == Sym("pre")
    assert dict(grandchild.memory.items())[0x9000] == Sym("pre")


def test_deep_chains_flatten_without_losing_words():
    memory = SymMemory(base=lambda addr: 0)
    node = memory
    for i in range(40):  # far beyond the flattening threshold
        node.write(i, Const(i + 1))
        node = node.copy(cow=True)
    for i in range(40):
        assert node.read(i) == Const(i + 1)


def test_minidump_unknowns_are_deterministic_across_layers():
    memory = SymMemory(base=lambda addr: 0, known=lambda addr: False)
    child_a = memory.copy(cow=True)
    child_b = memory.copy(cow=True)
    # Each layer materializes the unknown independently but the symbol
    # is a pure function of the address: all observers agree.
    assert child_a.read(0x40) == child_b.read(0x40) == memory.read(0x40)


# ---------------------------------------------------------------------------
# Threads and registers
# ---------------------------------------------------------------------------

def test_thread_mutation_invisible_to_parent_and_sibling(crash, derive):
    parent = initial(crash)
    tid = next(iter(parent.threads))
    parent_pc = parent.threads[tid].top.pc
    parent_regs = dict(parent.threads[tid].top.regs)

    left, right = derive(parent), derive(parent)
    thread = left.thread_for_write(tid)
    thread.top.regs[Reg("clobber")] = Sym("x")
    thread.top.index = 0
    thread.top.block = "entry"

    assert parent.threads[tid].top.pc == parent_pc
    assert parent.threads[tid].top.regs == parent_regs
    assert right.threads[tid].top.pc == parent_pc
    assert right.threads[tid].top.regs == parent_regs
    assert left.threads[tid].top.regs[Reg("clobber")] == Sym("x")


def test_frame_stack_push_pop_isolated(crash, derive):
    parent = initial(crash)
    tid = next(iter(parent.threads))
    depth = len(parent.threads[tid].frames)
    child = derive(parent)
    child.thread_for_write(tid).frames.pop()
    assert len(parent.threads[tid].frames) == depth
    assert len(child.threads[tid].frames) == depth - 1


# ---------------------------------------------------------------------------
# Constraints
# ---------------------------------------------------------------------------

def test_append_constraints_isolated(crash, derive):
    parent = initial(crash)
    parent.append_constraints([Const(1)])
    left, right = derive(parent), derive(parent)
    left.append_constraints([Sym("only_left")])

    assert parent.constraints == (Const(1),)
    assert right.constraints == (Const(1),)
    assert left.constraints == (Const(1), Sym("only_left"))


def test_constraints_are_immutable_tuples(crash):
    snapshot = initial(crash)
    with pytest.raises(AttributeError):
        snapshot.constraints.append(Const(1))  # type: ignore[attr-defined]


# ---------------------------------------------------------------------------
# Bookkeeping dicts
# ---------------------------------------------------------------------------

def test_bookkeeping_mutations_isolated(crash, derive):
    parent = initial(crash)
    tid = next(iter(parent.threads))
    before_tops = dict(parent.stack_tops)
    before_allocs = list(parent.remaining_allocs)
    before_live = dict(parent.live_at_start)
    before_locks = dict(parent.lock_owners)

    left, right = derive(parent), derive(parent)
    left.set_stack_top(tid, 0xDEAD)
    left.set_remaining_allocs([(0x100, 4)])
    left.set_live_at_start(0x100, False)
    left.set_lock_owner(0x200, tid)
    left.set_lock_owner(0x300, None)

    for snapshot in (parent, right):
        assert snapshot.stack_tops == before_tops
        assert snapshot.remaining_allocs == before_allocs
        assert snapshot.live_at_start == before_live
        assert snapshot.lock_owners == before_locks
    assert left.stack_tops[tid] == 0xDEAD
    assert left.remaining_allocs == [(0x100, 4)]
    assert left.live_at_start[0x100] is False
    assert left.lock_owners[0x200] == tid


# ---------------------------------------------------------------------------
# End-to-end: both modes synthesize identical suffixes
# ---------------------------------------------------------------------------

def _fingerprints(module, coredump, incremental):
    config = RESConfig(max_depth=12, max_nodes=2000,
                       incremental=incremental)
    res = ReverseExecutionSynthesizer(module, coredump, config)
    out = []
    for synthesized in res.suffixes():
        suffix = synthesized.suffix
        out.append((
            tuple((s.segment.tid, s.segment.function, s.segment.block,
                   s.segment.lo, s.segment.hi, s.segment.kind.value,
                   s.instr_count) for s in suffix.steps),
            tuple(repr(c) for c in suffix.constraints),
        ))
    return out, res.stats


def test_cow_and_eager_modes_synthesize_identically(crash):
    module, coredump = crash
    eager_suffixes, eager_stats = _fingerprints(module, coredump, False)
    cow_suffixes, cow_stats = _fingerprints(module, coredump, True)
    assert eager_suffixes, "fixture workload must synthesize"
    assert cow_suffixes == eager_suffixes
    skip = ("solver_calls", "solver_cache_hits",
            "time_enumerate", "time_execute", "time_replay")
    assert {k: v for k, v in vars(cow_stats).items() if k not in skip} \
        == {k: v for k, v in vars(eager_stats).items() if k not in skip}
