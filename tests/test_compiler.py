"""Type checking and lowering tests: MiniC → IR."""

import pytest

from repro.errors import CompileError
from repro.ir import (
    AssertInst,
    CBrInst,
    FrameAddrInst,
    LoadInst,
    StoreInst,
    verify_module,
)
from repro.minic import compile_source, parse
from repro.minic.typecheck import check_program


def test_typecheck_rejects_undeclared_variable():
    with pytest.raises(CompileError, match="undeclared"):
        compile_source("func main() { x = 1; return 0; }")


def test_typecheck_rejects_bad_arity():
    with pytest.raises(CompileError, match="expects"):
        compile_source("""
func f(int a) { return a; }
func main() { f(1, 2); return 0; }
""")


def test_typecheck_rejects_unknown_function():
    with pytest.raises(CompileError, match="unknown function"):
        compile_source("func main() { g(); return 0; }")


def test_typecheck_requires_main():
    with pytest.raises(CompileError, match="no main"):
        compile_source("func f() { return 0; }")


def test_typecheck_main_no_params():
    with pytest.raises(CompileError, match="no parameters"):
        compile_source("func main(int a) { return 0; }")


def test_typecheck_rejects_redeclaration_in_same_scope():
    with pytest.raises(CompileError, match="redeclaration"):
        compile_source("func main() { int x; int x; return 0; }")


def test_shadowing_in_nested_scope_is_allowed():
    module = compile_source("""
func main() {
    int x = 1;
    if (x) {
        int x = 2;
        output(x);
    }
    return x;
}
""")
    verify_module(module)


def test_block_scoping_expires():
    with pytest.raises(CompileError, match="undeclared"):
        compile_source("""
func main() {
    if (1) { int y = 2; }
    return y;
}
""")


def test_address_taken_local_gets_frame_slot():
    module = compile_source("""
func main() {
    int x = 5;
    int p = &x;
    *p = 7;
    return x;
}
""")
    main = module.function("main")
    assert main.frame_words >= 1
    assert "x" in main.frame_vars
    instrs = [i for _, _, i in main.iter_instrs()]
    assert any(isinstance(i, FrameAddrInst) for i in instrs)


def test_plain_local_stays_in_register():
    module = compile_source("func main() { int x = 5; return x; }")
    main = module.function("main")
    assert main.frame_words == 0
    assert "x" in main.var_regs


def test_local_array_allocates_frame_words():
    module = compile_source("""
func main() {
    int a[6];
    a[2] = 9;
    return a[2];
}
""")
    assert module.function("main").frame_words == 6


def test_array_name_decays_to_address():
    module = compile_source("""
global int g[4];
func main() {
    int p = g;
    p[1] = 3;
    return g[1];
}
""")
    verify_module(module)


def test_cannot_assign_to_array_name():
    with pytest.raises(CompileError, match="array"):
        compile_source("""
global int g[4];
func main() { g = 1; return 0; }
""")


def test_short_circuit_produces_branches():
    module = compile_source("""
func main() {
    int a = input();
    int b = input();
    if (a && b) { output(1); }
    return 0;
}
""")
    main = module.function("main")
    cbrs = [i for _, _, i in main.iter_instrs() if isinstance(i, CBrInst)]
    assert len(cbrs) >= 2  # one for &&, one for the if


def test_global_layout_is_deterministic():
    module = compile_source("""
global int a;
global int b[3];
global int c;
func main() { return 0; }
""")
    layout = module.layout()
    assert layout["b"] == layout["a"] + 1
    assert layout["c"] == layout["b"] + 3


def test_debug_lines_propagate():
    module = compile_source("""func main() {
    int x = 1;
    assert(x == 1, "m");
    return 0;
}""")
    main = module.function("main")
    asserts = [i for _, _, i in main.iter_instrs() if isinstance(i, AssertInst)]
    assert asserts[0].line == 3


def test_while_loop_structure():
    module = compile_source("""
func main() {
    int i = 0;
    while (i < 3) { i = i + 1; }
    return i;
}
""")
    main = module.function("main")
    preds = main.predecessors()
    loop_heads = [l for l, p in preds.items() if len(p) == 2]
    assert loop_heads, "while loop should create a 2-predecessor head block"


def test_compiled_module_always_verifies():
    module = compile_source("""
global int g;
func helper(int a) { return a * 2; }
func main() {
    int r = helper(21);
    g = r;
    return 0;
}
""")
    verify_module(module)
