"""Expression, interval, and solver tests — including hypothesis
property tests tying symbolic semantics to the concrete VM's."""

from hypothesis import given, settings, strategies as st

import pytest

from repro.ir.instructions import BINARY_OPS, COMPARE_OPS, to_signed, to_unsigned
from repro.symex import (
    BinExpr,
    Const,
    IntSet,
    SolveStatus,
    Solver,
    Sym,
    bin_expr,
    cmp_domain,
    evaluate,
    free_syms,
    negate_bool,
    substitute,
    truth_of,
)

words = st.integers(min_value=0, max_value=(1 << 64) - 1)
small = st.integers(min_value=0, max_value=300)


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

@given(words, words, st.sampled_from(list(BINARY_OPS) + list(COMPARE_OPS)))
@settings(max_examples=300)
def test_folding_matches_evaluation(a, b, op):
    folded = bin_expr(op, Const(a), Const(b))
    direct = evaluate(BinExpr(op, Const(a), Const(b)), {})
    if direct is None:  # division by zero stays symbolic
        assert isinstance(folded, BinExpr)
    else:
        assert isinstance(folded, Const)
        assert folded.value == direct


@given(words, words, st.sampled_from(list(BINARY_OPS) + list(COMPARE_OPS)))
@settings(max_examples=300)
def test_simplifier_preserves_semantics_on_symbols(a, b, op):
    x, y = Sym("x"), Sym("y")
    expr = bin_expr(op, bin_expr("add", x, Const(a)), y)
    model = {"x": b, "y": a}
    simplified_val = evaluate(expr, model)
    raw_val = evaluate(BinExpr(op, BinExpr("add", x, Const(a)), y), model)
    assert simplified_val == raw_val


@given(words)
def test_negate_bool_flips(v):
    x = Sym("x")
    cond = bin_expr("ult", x, Const(500))
    neg = negate_bool(cond)
    model = {"x": v}
    assert evaluate(cond, model) != evaluate(neg, model)


def test_identities():
    x = Sym("x")
    assert bin_expr("add", x, Const(0)) is x
    assert bin_expr("mul", x, Const(1)) is x
    assert bin_expr("mul", x, Const(0)) == Const(0)
    assert bin_expr("sub", x, x) == Const(0)
    assert bin_expr("xor", x, x) == Const(0)
    assert bin_expr("eq", x, x) == Const(1)
    assert bin_expr("ne", x, x) == Const(0)


def test_constant_chain_merging():
    x = Sym("x")
    expr = bin_expr("add", bin_expr("add", x, Const(3)), Const(4))
    assert expr == bin_expr("add", x, Const(7))
    # sub normalizes into add
    expr2 = bin_expr("sub", bin_expr("add", x, Const(10)), Const(4))
    assert expr2 == bin_expr("add", x, Const(6))


def test_boolean_cmp_collapse():
    x = Sym("x")
    boolish = bin_expr("ult", x, Const(4))
    assert bin_expr("ne", boolish, Const(0)) is boolish
    assert bin_expr("eq", boolish, Const(0)) == negate_bool(boolish)
    assert bin_expr("eq", boolish, Const(77)) == Const(0)


def test_free_syms_and_substitute():
    x, y = Sym("x"), Sym("y")
    expr = bin_expr("add", x, bin_expr("mul", y, Const(3)))
    assert free_syms(expr) == {"x", "y"}
    closed = substitute(expr, {"x": Const(1), "y": Const(2)})
    assert closed == Const(7)


def test_truth_of():
    assert truth_of(Const(5)) == Const(1)
    assert truth_of(Const(0)) == Const(0)
    x = Sym("x")
    assert truth_of(bin_expr("eq", x, Const(1))) == bin_expr("eq", x, Const(1))


# ---------------------------------------------------------------------------
# Intervals
# ---------------------------------------------------------------------------

@given(small, small, small)
def test_intset_membership(lo, hi, v):
    s = IntSet.of(lo, hi)
    assert (v in s) == (lo <= v <= hi)


@given(small, small, small, small)
def test_intset_intersection(a1, a2, b1, b2):
    s1 = IntSet.of(min(a1, a2), max(a1, a2))
    s2 = IntSet.of(min(b1, b2), max(b1, b2))
    inter = s1.intersect(s2)
    for probe in {a1, a2, b1, b2, (a1 + b1) // 2}:
        assert (probe in inter) == (probe in s1 and probe in s2)


@given(small, st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1))
@settings(max_examples=200)
def test_cmp_domain_matches_concrete_semantics(v, bound):
    from repro.symex.expr import apply_op

    bound_u = to_unsigned(bound)
    for op in COMPARE_OPS:
        dom = cmp_domain(op, bound_u)
        concrete = apply_op(op, v, bound_u)
        assert (v in dom) == bool(concrete), (op, v, bound)


@given(small, small, st.integers(min_value=-500, max_value=500))
def test_intset_shift_is_exact(lo, hi, delta):
    s = IntSet.of(min(lo, hi), max(lo, hi))
    shifted = s.shift(delta)
    for probe in (lo, hi, (lo + hi) // 2):
        assert to_unsigned(probe + delta) in shifted


def test_intset_remove_point_and_size():
    s = IntSet.of(0, 10).remove_point(5)
    assert 5 not in s and 4 in s and 6 in s
    assert s.size() == 10


# ---------------------------------------------------------------------------
# Solver
# ---------------------------------------------------------------------------

def solve(constraints):
    return Solver().solve(constraints)


def test_binding_chain():
    x, y = Sym("x"), Sym("y")
    r = solve([bin_expr("eq", bin_expr("add", x, Const(2)), y),
               bin_expr("eq", y, Const(9))])
    assert r.is_sat and r.model["x"] == 7


def test_contradiction_is_unsat():
    x = Sym("x")
    r = solve([bin_expr("eq", x, Const(1)), bin_expr("eq", x, Const(2))])
    assert r.is_unsat


def test_interval_refinement():
    x = Sym("x")
    r = solve([bin_expr("ugt", x, Const(10)), bin_expr("ult", x, Const(12))])
    assert r.is_sat and r.model["x"] == 11


def test_empty_domain_unsat():
    x = Sym("x")
    r = solve([bin_expr("ugt", x, Const(10)), bin_expr("ult", x, Const(5))])
    assert r.is_unsat


def test_signed_constraint():
    x = Sym("x")
    r = solve([bin_expr("slt", x, Const(0))])
    assert r.is_sat
    assert to_signed(r.model["x"]) < 0


def test_odd_multiplier_inversion():
    x = Sym("x")
    r = solve([bin_expr("eq", bin_expr("mul", x, Const(7)), Const(21))])
    assert r.is_sat and r.model["x"] == 3


def test_wraparound_solution():
    x = Sym("x")
    r = solve([bin_expr("eq", bin_expr("add", x, Const(5)), Const(2))])
    assert r.is_sat
    assert to_unsigned(r.model["x"] + 5) == 2


def test_exhaustive_unsat_on_small_domain():
    x = Sym("x")
    r = solve([bin_expr("ule", x, Const(3)),
               bin_expr("eq", bin_expr("add", x, x), Const(9))])
    assert r.is_unsat


def test_search_over_two_symbols():
    x, y = Sym("x"), Sym("y")
    r = solve([
        bin_expr("ule", x, Const(10)),
        bin_expr("ule", y, Const(10)),
        bin_expr("eq", bin_expr("add", x, y), Const(12)),
        bin_expr("eq", bin_expr("mul", x, Const(2)), y),
    ])
    assert r.is_sat
    assert r.model["x"] + r.model["y"] == 12
    assert r.model["y"] == 2 * r.model["x"]
    # and the 3x = 13 variant has no integer solution: provably UNSAT
    r2 = solve([
        bin_expr("ule", x, Const(10)),
        bin_expr("ule", y, Const(10)),
        bin_expr("eq", bin_expr("add", x, y), Const(13)),
        bin_expr("eq", bin_expr("mul", x, Const(2)), y),
    ])
    assert r2.is_unsat


def test_unique_value():
    x = Sym("x")
    solver = Solver()
    value, unique = solver.unique_value(
        [bin_expr("eq", bin_expr("xor", x, Const(5)), Const(1))], x)
    assert value == 4 and unique
    value, unique = solver.unique_value([bin_expr("ule", x, Const(2))], x)
    assert not unique


def test_feasible_values():
    x = Sym("x")
    values = Solver().feasible_values([bin_expr("ule", x, Const(2))], x,
                                      limit=5)
    assert sorted(values) == [0, 1, 2]


@given(st.lists(st.tuples(small, small), min_size=1, max_size=4))
@settings(max_examples=100)
def test_sat_models_actually_satisfy(pairs):
    """Soundness: whenever the solver says SAT, its model checks out."""
    x = Sym("x")
    constraints = []
    for a, b in pairs:
        constraints.append(bin_expr("ne", bin_expr("add", x, Const(a)),
                                    Const(b)))
    result = solve(constraints)
    if result.is_sat:
        for c in constraints:
            assert evaluate(truth_of(c), result.model) == 1


@given(small)
def test_point_constraint_roundtrip(v):
    x = Sym("x")
    r = solve([bin_expr("eq", x, Const(v))])
    assert r.is_sat and r.model["x"] == v


# ---------------------------------------------------------------------------
# Incremental solving + verdict cache soundness
# ---------------------------------------------------------------------------

def _decidable_constraints(draw_values):
    """Small constraint set over x/y the solver decides exactly
    (bindings, domains, and linear search — no UNKNOWN outcomes), so a
    fresh solve and an incremental solve must agree verdict-for-verdict.
    """
    x, y = Sym("x"), Sym("y")
    shapes = [
        lambda a, b: bin_expr("eq", bin_expr("add", x, Const(a)), Const(b)),
        lambda a, b: bin_expr("eq", bin_expr("xor", x, Const(a)), Const(b)),
        lambda a, b: bin_expr("ult", x, Const(a + 1)),
        lambda a, b: bin_expr("ugt", x, Const(a)),
        lambda a, b: bin_expr("eq", bin_expr("add", x, y), Const(a)),
        lambda a, b: bin_expr("eq", y, Const(b)),
        lambda a, b: bin_expr("ne", x, Const(a)),
    ]
    return [shapes[i % len(shapes)](a, b) for i, a, b in draw_values]


_TRIPLES = st.lists(
    st.tuples(st.integers(min_value=0, max_value=6), small, small),
    min_size=1, max_size=6)


@given(_TRIPLES, st.integers(min_value=0, max_value=6))
@settings(max_examples=120, deadline=None)
def test_incremental_solve_agrees_with_fresh(triples, split):
    """Incremental (context + delta) and uncached solving of the same
    conjunction must never contradict each other: both verdicts are
    *proofs* when they are SAT or UNSAT, so SAT⟷UNSAT disagreement is a
    soundness bug (UNKNOWN may differ — propagation order affects only
    completeness).  Cached re-asks must repeat the first verdict
    exactly, and SAT models must genuinely satisfy the conjunction."""
    constraints = _decidable_constraints(triples)
    split = min(split, len(constraints))
    fresh = Solver().solve(constraints)

    shared = Solver()
    ctx = shared.context_for(constraints[:split])
    first, child = shared.solve_extended(ctx, constraints[split:])
    again, _ = shared.solve_extended(ctx, constraints[split:])

    assert not (first.is_unsat and fresh.is_sat), \
        "incremental refuted a conjunction the fresh solver satisfied"
    assert not (first.is_sat and fresh.is_unsat), \
        "incremental satisfied a conjunction the fresh solver refuted"
    assert again.status == first.status, "cache returned a different verdict"
    assert shared.stat_cache_hits >= 1, "identical delta must hit the cache"
    for result in (first, fresh):
        if result.is_sat:
            for constraint in constraints:
                assert evaluate(truth_of(constraint), result.model) == 1
    # The child context must stay extensible and sound: a contradictory
    # probe must never come back SAT.
    if child is not None and not first.is_unsat:
        x = Sym("x")
        probe = bin_expr("eq", bin_expr("add", x, Const(1)),
                         bin_expr("add", x, Const(2)))  # always false
        deeper, _ = shared.solve_extended(child, [probe])
        assert not deeper.is_sat


@given(_TRIPLES, _TRIPLES)
@settings(max_examples=80, deadline=None)
def test_unsat_is_never_served_from_stale_context(t1, t2):
    """An UNSAT answer for one delta must never leak to a different
    constraint set sharing the same context (stale-cache soundness)."""
    base = _decidable_constraints(t1)
    other = _decidable_constraints(t2)
    solver = Solver()
    ctx = solver.context_for(base)
    x = Sym("x")
    contradiction = [bin_expr("eq", x, Const(1)),
                     bin_expr("eq", x, Const(2))]
    poisoned, _ = solver.solve_extended(ctx, contradiction)
    assert poisoned.is_unsat
    # A different delta over the same context must be re-decided; a
    # stale UNSAT would contradict a fresh SAT proof outright.  (A
    # fresh UNKNOWN does not contradict an incremental UNSAT — the
    # incremental order may legitimately prove more.)
    verdict, _ = solver.solve_extended(ctx, other)
    fresh = Solver().solve(base + other)
    assert not (verdict.is_unsat and fresh.is_sat), \
        "stale UNSAT served for a different constraint set"
    assert not (verdict.is_sat and fresh.is_unsat)
    if verdict.is_sat:
        for constraint in base + other:
            assert evaluate(truth_of(constraint), verdict.model) == 1
    # And the original (non-contradictory) conjunction still answers
    # without UNSAT bleed-through.
    clean, _ = solver.solve_extended(ctx, [])
    assert not (clean.is_unsat and Solver().solve(base).is_sat)


def test_verdict_cache_is_per_context():
    """The same textual delta under *different* contexts must not share
    verdicts: (x==1)+(x==2) is UNSAT, ()+(x==2) is SAT."""
    x = Sym("x")
    solver = Solver()
    bound = solver.context_for([bin_expr("eq", x, Const(1))])
    unbound = solver.context_for([])
    delta = [bin_expr("eq", x, Const(2))]
    first, _ = solver.solve_extended(bound, delta)
    second, _ = solver.solve_extended(unbound, delta)
    assert first.is_unsat
    assert second.is_sat and second.model["x"] == 2


def test_assert_order_independence_of_chained_bindings():
    """Found by the differential fuzzer (PR 2, program seed 1132): with
    the assertion order (t2 != 0) == t1 before t2 == 0 before t1 == 1,
    the binding t1 ↦ (t2 != 0) was recorded before t2 ↦ 0, and a single
    substitution pass re-introduced the bound t2 — the contradiction
    then leaked into a domain refinement instead of folding to false,
    so from-scratch solves said UNKNOWN where incremental extension
    proved UNSAT.  Every assertion order must now agree on UNSAT."""
    import itertools

    t1, t2 = Sym("t1"), Sym("t2")
    constraints = [
        bin_expr("eq", t1, Const(1)),
        bin_expr("eq", t2, Const(0)),
        bin_expr("eq", bin_expr("ne", t2, Const(0)), t1),
    ]
    for perm in itertools.permutations(constraints):
        assert Solver().solve(list(perm)).is_unsat, \
            f"order {perm} not refuted"
    # And the incremental path agrees, whichever split builds the context.
    for split in range(3):
        solver = Solver()
        ctx = solver.context_for(constraints[:split])
        verdict, _ = solver.solve_extended(ctx, tuple(constraints[split:]))
        assert verdict.is_unsat


def test_expr_range_is_a_sound_over_approximation():
    """Property: for random expressions and random in-domain models,
    the evaluated value always lies inside expr_range's answer."""
    import random as _random

    from repro.symex.interval import IntSet, expr_range

    rng = _random.Random(1234)
    ops = ["add", "sub", "mul", "udiv", "urem", "sdiv", "srem",
           "and", "or", "xor", "shl", "lshr", "ashr",
           "eq", "ne", "ult", "ule", "ugt", "uge",
           "slt", "sle", "sgt", "sge"]

    def random_domain():
        kind = rng.random()
        if kind < 0.3:
            return IntSet.full()
        if kind < 0.5:
            v = rng.randrange(1 << 64)
            return IntSet.point(v)
        lo = rng.randrange(0, 1 << rng.choice((4, 8, 32, 64)))
        hi = lo + rng.randrange(0, 1 << rng.choice((2, 8, 16)))
        return IntSet.of(lo, min(hi, (1 << 64) - 1))

    def random_expr(depth, syms):
        roll = rng.random()
        if depth <= 0 or roll < 0.25:
            if rng.random() < 0.6:
                return Sym(rng.choice(syms))
            return Const(rng.randrange(-64, 1 << 16))
        return BinExpr(rng.choice(ops),
                       random_expr(depth - 1, syms),
                       random_expr(depth - 1, syms))

    for trial in range(300):
        syms = [f"s{i}" for i in range(rng.randint(1, 3))]
        domains = {name: random_domain() for name in syms}
        expr = random_expr(rng.randint(1, 4), syms)
        approx = expr_range(expr, lambda n: domains[n])
        for _ in range(8):
            model = {}
            for name, dom in domains.items():
                lo, hi = rng.choice(dom.ranges)
                model[name] = rng.randint(lo, hi)
            value = evaluate(expr, model)
            if value is None:
                continue  # division by zero along this valuation
            assert value in approx, (
                f"trial {trial}: {expr!r} evaluated to {value} outside "
                f"{approx!r} under {model} with domains {domains}")


def test_cancellation_identities_fold():
    """(a - b) + b and (a + b) - b must fold away (modular-exact): an
    unfolded round-trip tautology sent to the bit-fixing layer makes
    every residue survive every level — found as an 8x naive-engine
    slowdown by the differential fuzzer's E1 comparison."""
    x = Sym("x")
    c = Const(158)
    assert bin_expr("add", bin_expr("sub", c, x), x) == c
    assert bin_expr("add", x, bin_expr("sub", c, x)) == c
    assert bin_expr("sub", bin_expr("add", c, x), x) == c
    assert bin_expr("sub", bin_expr("add", x, c), x) == c


def test_self_offset_comparison_folds():
    """Found by the differential fuzzer (program seed 7059): a
    loop-counter substitution chain leaves ``i + 1 == i`` as a residual
    constraint.  The modular contradiction must fold at construction —
    left unfolded, the chained incremental context refuted it while the
    from-scratch solve returned UNKNOWN, splitting the prune counters."""
    x = Sym("x")
    for shifted in (bin_expr("add", x, Const(1)),
                    bin_expr("add", x, Const(-7))):
        assert bin_expr("eq", shifted, x) == Const(0)
        assert bin_expr("eq", x, shifted) == Const(0)
        assert bin_expr("ne", shifted, x) == Const(1)
        assert bin_expr("ne", x, shifted) == Const(1)
    # c ≡ 0 mod 2^64 wraps to equality, not contradiction
    wrapped = bin_expr("add", x, Const(1 << 64))
    assert bin_expr("eq", wrapped, x) == Const(1)
    # inequalities are NOT exact under wraparound: no fold
    assert bin_expr("ult", bin_expr("add", x, Const(1)), x) != Const(0)


def test_domain_refinement_survives_open_binding():
    """Found by the differential fuzzer (program seed 2262): a symbol
    with a refined domain (t11 != 0) that later receives an open
    binding (t11 ↦ (t12 != 0)) must still be checked against the domain
    once the binding resolves — here to 0, a contradiction."""
    t11, t12 = Sym("t11"), Sym("t12")
    constraints = [
        bin_expr("ne", t11, Const(0)),
        bin_expr("eq", bin_expr("ne", t12, Const(0)), t11),
        bin_expr("eq", t12, Const(0)),
    ]
    import itertools
    for perm in itertools.permutations(constraints):
        assert Solver().solve(list(perm)).is_unsat
    solver = Solver()
    ctx = solver.context_for(constraints[:1])
    verdict, _ = solver.solve_extended(ctx, tuple(constraints[1:]))
    assert verdict.is_unsat


def test_interval_refutation_of_masked_comparison():
    """Found by the differential fuzzer (program seed 2082): a residual
    like ((n & 3) + 1) > 5000 is beyond the enumeration's reach (full
    2^64 domain) but trivially refutable by interval evaluation."""
    n = Sym("n")
    masked = bin_expr("add", bin_expr("and", n, Const(3)), Const(1))
    assert Solver().solve([bin_expr("sgt", masked, Const(5000))]).is_unsat
    # And the tautological direction is dropped, not left to block SAT.
    result = Solver().solve([bin_expr("sle", masked, Const(5000))])
    assert result.is_sat
