"""Unit tests for the MiniC parser."""

import pytest

from repro.errors import CompileError
from repro.minic import ast
from repro.minic.parser import parse


def parse_main(body):
    return parse("func main() { %s }" % body).functions[0]


def test_global_scalar_array_and_initializers():
    program = parse("""
global int a;
global int b = 5;
global int arr[3];
global int init[3] = {1, 2, 3};
func main() { return 0; }
""")
    names = [(g.name, g.array_size, g.init) for g in program.globals]
    assert names == [("a", None, None), ("b", None, [5]),
                     ("arr", 3, None), ("init", 3, [1, 2, 3])]


def test_negative_global_initializer():
    program = parse("global int g = -7;\nfunc main() { return 0; }")
    assert program.globals[0].init == [-7]


def test_function_params():
    program = parse("func f(int a, int b) { return a; } func main() { return 0; }")
    assert program.functions[0].params == ["a", "b"]


def test_precedence_mul_over_add():
    func = parse_main("int x = 1 + 2 * 3;")
    init = func.body[0].init
    assert isinstance(init, ast.Binary) and init.op == "+"
    assert isinstance(init.right, ast.Binary) and init.right.op == "*"


def test_precedence_comparison_over_logic():
    func = parse_main("int x = a < 3 && b > 4;")
    # undeclared names are fine at parse time
    init = func.body[0].init
    assert init.op == "&&"
    assert init.left.op == "<"
    assert init.right.op == ">"


def test_unary_and_deref():
    func = parse_main("int x = -*p;")
    init = func.body[0].init
    assert isinstance(init, ast.Unary) and init.op == "-"
    assert isinstance(init.operand, ast.Deref)


def test_addr_of_requires_lvalue():
    with pytest.raises(CompileError):
        parse_main("int x = &(1 + 2);")


def test_assignment_requires_lvalue():
    with pytest.raises(CompileError):
        parse_main("1 + 2 = 3;")


def test_index_chain():
    func = parse_main("x[1][2] = 3;")
    target = func.body[0].target
    assert isinstance(target, ast.Index)
    assert isinstance(target.base, ast.Index)


def test_if_else_if_chain():
    func = parse_main("if (a) { x = 1; } else if (b) { x = 2; } else { x = 3; }")
    stmt = func.body[0]
    assert isinstance(stmt, ast.If)
    assert isinstance(stmt.else_body[0], ast.If)


def test_for_loop_desugars_components():
    func = parse_main("for (int i = 0; i < 4; i = i + 1) { output(i); }")
    stmt = func.body[0]
    assert isinstance(stmt, ast.For)
    assert isinstance(stmt.init, ast.Decl)
    assert stmt.cond.op == "<"
    assert isinstance(stmt.step, ast.Assign)


def test_for_loop_all_parts_optional():
    func = parse_main("for (;;) { halt(0); }")
    stmt = func.body[0]
    assert stmt.init is None and stmt.cond is None and stmt.step is None


def test_spawn_and_join():
    func = parse_main("int t = spawn worker(1, 2); join(t);")
    assert isinstance(func.body[0].init, ast.SpawnExpr)
    assert func.body[0].init.name == "worker"
    assert isinstance(func.body[1], ast.JoinStmt)


def test_assert_with_and_without_message():
    func = parse_main('assert(x == 1, "boom"); assert(y);')
    assert func.body[0].message == "boom"
    assert func.body[1].message == ""


def test_builtin_calls():
    func = parse_main("int a = input(); int p = malloc(4); free(p); output(a);")
    assert isinstance(func.body[0].init, ast.InputExpr)
    assert isinstance(func.body[1].init, ast.MallocExpr)
    assert isinstance(func.body[2], ast.FreeStmt)
    assert isinstance(func.body[3], ast.OutputStmt)


def test_abort_and_halt():
    func = parse_main('abort("why"); halt(3);')
    assert func.body[0].message == "why"
    assert isinstance(func.body[1], ast.HaltStmt)


def test_missing_semicolon_raises():
    with pytest.raises(CompileError):
        parse_main("int x = 1")


def test_top_level_junk_raises():
    with pytest.raises(CompileError):
        parse("int x;")


def test_lock_unlock_statements():
    func = parse_main("lock(&m); unlock(&m);")
    assert isinstance(func.body[0], ast.LockStmt)
    assert isinstance(func.body[1], ast.UnlockStmt)
