"""Tests for debugger watchpoints (§3.3's gdb `watch` over a suffix)."""

import pytest

from repro.core import RESConfig, ReverseExecutionSynthesizer
from repro.core.debugger import ReverseDebugger
from repro.errors import ReplayError
from repro.workloads import FIGURE1_OVERFLOW, RACE_FLAG


def deepest(workload, max_depth=16):
    dump = workload.trigger()
    res = ReverseExecutionSynthesizer(
        workload.module, dump, RESConfig(max_depth=max_depth))
    best = None
    for item in res.suffixes():
        best = item
    assert best is not None
    return best


@pytest.fixture()
def figure1_debugger():
    return ReverseDebugger(FIGURE1_OVERFLOW.module, deepest(FIGURE1_OVERFLOW))


def test_watchpoint_on_global_by_name(figure1_debugger):
    wp = figure1_debugger.add_watchpoint("y")
    assert wp.label == "y"
    assert wp.addr == FIGURE1_OVERFLOW.module.layout()["y"]


def test_watchpoint_on_raw_address(figure1_debugger):
    addr = FIGURE1_OVERFLOW.module.layout()["x"]
    wp = figure1_debugger.add_watchpoint(addr)
    assert wp.addr == addr


def test_watchpoint_unknown_global_rejected(figure1_debugger):
    with pytest.raises(ReplayError):
        figure1_debugger.add_watchpoint("no_such_global")


def test_continue_stops_on_watched_write(figure1_debugger):
    figure1_debugger.add_watchpoint("y")
    figure1_debugger.continue_()
    assert figure1_debugger.last_watch_hit is not None
    assert "y" in figure1_debugger.last_watch_hit
    assert "-> 10" in figure1_debugger.last_watch_hit
    # stopped strictly before the failure
    assert not figure1_debugger.at_end


def test_continue_resumes_past_watch_hit(figure1_debugger):
    figure1_debugger.add_watchpoint("y")
    figure1_debugger.continue_()
    first_stop = figure1_debugger.position
    figure1_debugger.continue_()   # no further change: runs to the end
    assert figure1_debugger.at_end
    assert figure1_debugger.position > first_stop


def test_watchpoint_sees_each_change():
    """In the deepest Figure 1 suffix x is written once; the watch
    fires exactly once across the whole run."""
    debugger = ReverseDebugger(FIGURE1_OVERFLOW.module,
                               deepest(FIGURE1_OVERFLOW))
    debugger.add_watchpoint("x")
    hits = []
    while not debugger.at_end:
        debugger.continue_()
        if debugger.last_watch_hit:
            hits.append(debugger.last_watch_hit)
    assert len(hits) == 1


def test_reverse_step_resyncs_watchpoints(figure1_debugger):
    wp = figure1_debugger.add_watchpoint("y")
    figure1_debugger.continue_()          # y: 0 -> 10
    assert wp.last_value == 10
    figure1_debugger.reverse_step(figure1_debugger.position)
    assert wp.last_value == 0             # rewound with the state
    figure1_debugger.continue_()
    assert figure1_debugger.last_watch_hit is not None


def test_watchpoint_across_threads():
    """The watch fires when *another* thread writes the watched word."""
    synthesized = deepest(RACE_FLAG, max_depth=14)
    debugger = ReverseDebugger(RACE_FLAG.module, synthesized)
    if len(synthesized.suffix.threads_involved()) < 2:
        pytest.skip("suffix did not interleave threads")
    debugger.add_watchpoint("flag")
    debugger.continue_()
    if debugger.last_watch_hit is None:
        pytest.skip("flag already set before the suffix horizon")
    assert "flag" in debugger.last_watch_hit


def test_breakpoint_and_watchpoint_compose(figure1_debugger):
    figure1_debugger.add_breakpoint("main", "endif3")
    figure1_debugger.add_watchpoint("y")
    figure1_debugger.continue_()
    # the y write happens inside then1, before endif3
    assert figure1_debugger.last_watch_hit is not None
    figure1_debugger.continue_()
    pc = figure1_debugger.current_pc()
    assert pc is not None and pc.block == "endif3"
