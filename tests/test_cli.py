"""Tests for the ``res`` command-line front end."""

import json

import pytest

from repro.cli import build_parser, main
from repro.workloads import FIGURE1_OVERFLOW, HW_CANARY, TAINTED_OVERFLOW
from repro.workloads.hwfaults import flipped_written_word


@pytest.fixture(scope="module")
def figure1_core(tmp_path_factory):
    path = tmp_path_factory.mktemp("cores") / "figure1.json"
    path.write_text(FIGURE1_OVERFLOW.trigger().to_json())
    return str(path)


@pytest.fixture(scope="module")
def tainted_core(tmp_path_factory):
    path = tmp_path_factory.mktemp("cores") / "tainted.json"
    path.write_text(TAINTED_OVERFLOW.trigger().to_json())
    return str(path)


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------

def test_parser_requires_subcommand():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_parser_analyze_requires_program(figure1_core):
    with pytest.raises(SystemExit):
        build_parser().parse_args(["analyze", figure1_core])


def test_parser_workload_and_source_exclusive(figure1_core):
    with pytest.raises(SystemExit):
        build_parser().parse_args(
            ["analyze", figure1_core,
             "--workload", "a", "--source", "b"])


# ---------------------------------------------------------------------------
# workloads / crash
# ---------------------------------------------------------------------------

def test_workloads_lists_catalog(capsys):
    assert main(["workloads"]) == 0
    out = capsys.readouterr().out
    assert "figure1_overflow" in out
    assert "race_flag" in out


def test_crash_writes_coredump(tmp_path, capsys):
    out_path = tmp_path / "core.json"
    code = main(["crash", "figure1_overflow", "-o", str(out_path)])
    assert code == 0
    assert out_path.exists()
    assert "out-of-bounds" in capsys.readouterr().out


def test_crash_unknown_workload_fails(tmp_path, capsys):
    code = main(["crash", "no_such_workload",
                 "-o", str(tmp_path / "x.json")])
    assert code == 64
    assert "error" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# analyze
# ---------------------------------------------------------------------------

def test_analyze_finds_overflow_cause(figure1_core, capsys):
    code = main(["analyze", figure1_core, "--workload", "figure1_overflow"])
    assert code == 0
    out = capsys.readouterr().out
    assert "root cause:" in out
    assert "buffer-overflow" in out or "assert" in out


def test_analyze_missing_coredump(capsys):
    code = main(["analyze", "/nonexistent/core.json",
                 "--workload", "figure1_overflow"])
    assert code == 64
    assert "not found" in capsys.readouterr().err


def test_analyze_with_source_file(figure1_core, tmp_path, capsys):
    src = tmp_path / "figure1_overflow.mc"
    src.write_text(FIGURE1_OVERFLOW.source)
    code = main(["analyze", figure1_core, "--source", str(src)])
    assert code == 0


# ---------------------------------------------------------------------------
# replay
# ---------------------------------------------------------------------------

def test_replay_verifies(figure1_core, capsys):
    code = main(["replay", figure1_core, "--workload", "figure1_overflow",
                 "--max-suffixes", "8"])
    assert code == 0
    out = capsys.readouterr().out
    assert "replay verified: True" in out
    assert "schedule:" in out


# ---------------------------------------------------------------------------
# hwcheck
# ---------------------------------------------------------------------------

def test_hwcheck_clean_dump_is_software(tmp_path, capsys):
    dump = HW_CANARY.trigger()
    path = tmp_path / "clean.json"
    path.write_text(dump.to_json())
    code = main(["hwcheck", str(path), "--workload", "hw_canary"])
    assert code == 0
    assert "software" in capsys.readouterr().out


def test_hwcheck_flipped_dump_is_hardware(tmp_path, capsys):
    scenario = flipped_written_word()
    path = tmp_path / "flipped.json"
    path.write_text(scenario.coredump.to_json())
    code = main(["hwcheck", str(path), "--workload", "hw_canary"])
    assert code == 2
    assert "hardware" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# exploit
# ---------------------------------------------------------------------------

def test_exploit_tainted_overflow(tainted_core, capsys):
    code = main(["exploit", tainted_core, "--workload", "tainted_overflow"])
    assert code == 0
    out = capsys.readouterr().out
    assert "res verdict:" in out
    assert "exploitable" in out


# ---------------------------------------------------------------------------
# debug
# ---------------------------------------------------------------------------

def test_debug_scripted_session(figure1_core, capsys):
    code = main([
        "debug", figure1_core, "--workload", "figure1_overflow",
        "--script", "run; print x; print y; backtrace; focus",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "x = 1" in out
    assert "y = 10" in out
    assert "#0" in out


def test_debug_writes_query(figure1_core, capsys):
    code = main([
        "debug", figure1_core, "--workload", "figure1_overflow",
        "--script", "writes y",
    ])
    assert code == 0
    assert "wrote" in capsys.readouterr().out


def test_debug_unknown_command(figure1_core, capsys):
    code = main([
        "debug", figure1_core, "--workload", "figure1_overflow",
        "--script", "frobnicate",
    ])
    assert code == 64


def test_debug_rstep_round_trip(figure1_core, capsys):
    code = main([
        "debug", figure1_core, "--workload", "figure1_overflow",
        "--script", "step 4; rstep 2; step 1; run",
    ])
    assert code == 0
    assert "failure at" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# Suffix artifacts through the CLI
# ---------------------------------------------------------------------------

def test_replay_save_and_debug_artifact(figure1_core, tmp_path, capsys):
    artifact = tmp_path / "suffix.json"
    code = main(["replay", figure1_core, "--workload", "figure1_overflow",
                 "--max-suffixes", "8", "--save", str(artifact)])
    assert code == 0
    assert artifact.exists()
    assert "artifact written" in capsys.readouterr().out

    code = main(["debug", figure1_core, "--workload", "figure1_overflow",
                 "--artifact", str(artifact),
                 "--script", "run; print y"])
    assert code == 0
    assert "y = 10" in capsys.readouterr().out


def test_debug_artifact_for_wrong_module_fails(tmp_path, capsys):
    artifact = tmp_path / "suffix.json"
    core = tmp_path / "core.json"
    core.write_text(FIGURE1_OVERFLOW.trigger().to_json())
    assert main(["replay", str(core), "--workload", "figure1_overflow",
                 "--max-suffixes", "8", "--save", str(artifact)]) == 0
    capsys.readouterr()
    code = main(["debug", str(core), "--workload", "race_flag",
                 "--artifact", str(artifact), "--script", "run"])
    assert code == 64
    assert "module" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# triage / watch
# ---------------------------------------------------------------------------

def test_triage_command_compares_wer_and_res(capsys):
    code = main(["triage", "--reports", "10", "--seed", "1"])
    assert code == 0
    out = capsys.readouterr().out
    assert "WER (call stacks)" in out
    assert "RES (root causes)" in out
    # RES buckets by root cause: exactly the two seeded causes
    res_line = next(l for l in out.splitlines() if l.startswith("RES"))
    assert "buckets=  2" in res_line


def test_debug_watch_command(figure1_core, capsys):
    code = main([
        "debug", figure1_core, "--workload", "figure1_overflow",
        "--script", "watch y; continue; print y",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "watchpoint on y" in out
    assert "-> 10" in out


# ---------------------------------------------------------------------------
# Loader error paths
# ---------------------------------------------------------------------------

def test_analyze_missing_source_file(figure1_core, capsys):
    code = main(["analyze", figure1_core,
                 "--source", "/nonexistent/prog.mc"])
    assert code == 64
    assert "source file not found" in capsys.readouterr().err


def test_analyze_malformed_coredump(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text("{\"module\": \"x\"}")
    code = main(["analyze", str(bad), "--workload", "figure1_overflow"])
    assert code == 64
    assert "malformed coredump" in capsys.readouterr().err


def test_analyze_coredump_not_json(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text("this is not json")
    code = main(["analyze", str(bad), "--workload", "figure1_overflow"])
    assert code == 64
    assert "malformed coredump" in capsys.readouterr().err


def test_analyze_coredump_for_wrong_module(figure1_core, capsys):
    code = main(["analyze", figure1_core, "--workload", "race_flag"])
    assert code == 64
    err = capsys.readouterr().err
    assert "figure1_overflow" in err and "race_flag" in err


def test_analyze_source_with_compile_error(figure1_core, tmp_path, capsys):
    src = tmp_path / "broken.mc"
    src.write_text("func main() { int x = ; }")
    code = main(["analyze", figure1_core, "--source", str(src)])
    assert code == 64
    assert "error" in capsys.readouterr().err


def test_unknown_workload_in_analyze(figure1_core, capsys):
    code = main(["analyze", figure1_core, "--workload", "no_such"])
    assert code == 64
    assert "unknown workload" in capsys.readouterr().err


def test_debug_missing_artifact_file(figure1_core, capsys):
    code = main(["debug", figure1_core, "--workload", "figure1_overflow",
                 "--artifact", "/nonexistent/suffix.json",
                 "--script", "run"])
    assert code == 64


def test_hwcheck_wrong_trap_kind_coredump(tmp_path, capsys):
    """A coredump whose trap kind does not match what the workload
    would produce still analyzes (RES is trap-agnostic), but against
    the wrong module name it is rejected."""
    dump = TAINTED_OVERFLOW.trigger()
    path = tmp_path / "mismatch.json"
    path.write_text(dump.to_json())
    code = main(["hwcheck", str(path), "--workload", "hw_canary"])
    assert code == 64
    assert "tainted_overflow" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# Hardened error paths: corpus/store/cache inputs fail with one-line
# diagnostics (exit != 0), never tracebacks
# ---------------------------------------------------------------------------

def test_triage_missing_corpus_dir(capsys):
    code = main(["triage", "--corpus-dir", "/nonexistent/corpus"])
    assert code == 64
    assert "corpus directory not found" in capsys.readouterr().err


def test_triage_corpus_dir_without_manifest(tmp_path, capsys):
    code = main(["triage", "--corpus-dir", str(tmp_path)])
    assert code == 64
    assert "no corpus manifest" in capsys.readouterr().err


def test_triage_corpus_with_malformed_coredump(tmp_path, capsys):
    corpus_dir = tmp_path / "corpus"
    (corpus_dir / "cores").mkdir(parents=True)
    (corpus_dir / "programs").mkdir()
    (corpus_dir / "programs" / "p.minic").write_text(
        FIGURE1_OVERFLOW.source)
    (corpus_dir / "cores" / "bad.json").write_text("this is not json")
    (corpus_dir / "manifest.json").write_text(json.dumps({
        "programs": {"p": {"name": "p", "file": "programs/p.minic"}},
        "entries": [{"report_id": "bad", "program": "p",
                     "true_cause": None, "core": "cores/bad.json"}],
    }))
    code = main(["triage", "--corpus-dir", str(corpus_dir)])
    assert code == 64
    assert "malformed coredump" in capsys.readouterr().err


def test_triage_corpus_with_missing_coredump_file(tmp_path, capsys):
    corpus_dir = tmp_path / "corpus"
    (corpus_dir / "programs").mkdir(parents=True)
    (corpus_dir / "programs" / "p.minic").write_text(
        FIGURE1_OVERFLOW.source)
    (corpus_dir / "manifest.json").write_text(json.dumps({
        "programs": {"p": {"name": "p", "file": "programs/p.minic"}},
        "entries": [{"report_id": "gone", "program": "p",
                     "true_cause": None, "core": "cores/gone.json"}],
    }))
    code = main(["triage", "--corpus-dir", str(corpus_dir)])
    assert code == 64
    assert "missing coredump" in capsys.readouterr().err


def test_triage_corrupt_manifest_json(tmp_path, capsys):
    corpus_dir = tmp_path / "corpus"
    corpus_dir.mkdir()
    (corpus_dir / "manifest.json").write_text("{truncated")
    code = main(["triage", "--corpus-dir", str(corpus_dir)])
    assert code == 64
    assert "corrupt corpus manifest" in capsys.readouterr().err


def test_triage_unwritable_store(tmp_path, capsys):
    # A path whose parent is a regular file is unwritable even as root
    # (chmod tricks don't bite for uid 0, this always does).
    blocker = tmp_path / "blocker"
    blocker.write_text("")
    code = main(["triage", "--reports", "2",
                 "--store", str(blocker / "store.json")])
    assert code == 64
    err = capsys.readouterr().err
    assert err.startswith("res: error:") and "store" in err
    assert len(err.strip().splitlines()) == 1  # one-line diagnostic


def test_triage_unwritable_cache_dir(tmp_path, capsys):
    blocker = tmp_path / "blocker"
    blocker.write_text("")
    code = main(["triage", "--reports", "2",
                 "--cache-dir", str(blocker / "cache")])
    assert code == 64
    err = capsys.readouterr().err
    assert "cache" in err
    assert len(err.strip().splitlines()) == 1


def test_serve_unwritable_spool(tmp_path, capsys):
    blocker = tmp_path / "blocker"
    blocker.write_text("")
    code = main(["serve", "--port", "0",
                 "--spool", str(blocker / "spool")])
    assert code == 64
    assert "spool" in capsys.readouterr().err


def test_submit_missing_coredump_file(capsys):
    code = main(["submit", "/nonexistent/core.json",
                 "--workload", "figure1_overflow",
                 "--url", "http://127.0.0.1:1"])
    assert code == 64
    assert "not found" in capsys.readouterr().err


def test_submit_unreachable_daemon(figure1_core, capsys):
    code = main(["submit", figure1_core,
                 "--workload", "figure1_overflow",
                 "--url", "http://127.0.0.1:1"])
    assert code == 64
    assert "cannot reach intake daemon" in capsys.readouterr().err


def test_status_unreachable_daemon(capsys):
    code = main(["status", "--url", "http://127.0.0.1:1"])
    assert code == 64
    assert "cannot reach intake daemon" in capsys.readouterr().err


def test_watch_missing_directory(capsys):
    code = main(["watch", "/nonexistent/intake", "--once",
                 "--url", "http://127.0.0.1:1"])
    assert code == 64
    assert "watch directory not found" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# fuzz
# ---------------------------------------------------------------------------

def test_fuzz_small_campaign_through_cli(tmp_path, capsys):
    code = main(["fuzz", "--seed", "0", "--count", "4",
                 "--artifacts", str(tmp_path / "artifacts")])
    assert code == 0
    out = capsys.readouterr().out
    assert "campaign: 4 programs" in out
    assert "divergences: none" in out
    assert not (tmp_path / "artifacts").exists()


def test_fuzz_forced_divergence_exit_code_and_artifacts(tmp_path, capsys):
    code = main(["fuzz", "--seed", "0", "--count", "2",
                 "--force-divergence", "--hw-fault-prob", "0",
                 "--alu-fault-prob", "0",
                 "--artifacts", str(tmp_path / "artifacts")])
    assert code == 1
    out = capsys.readouterr().out
    assert "incremental-vs-naive" in out
    assert list((tmp_path / "artifacts").glob("div-*.json"))


# ---------------------------------------------------------------------------
# disasm
# ---------------------------------------------------------------------------

def test_disasm_workload_prints_bytecode(capsys):
    assert main(["disasm", "--workload", "figure1_overflow"]) == 0
    out = capsys.readouterr().out
    assert "bytecode for module 'figure1_overflow'" in out
    assert "func main" in out
    # slot-register syntax with source mapping
    assert "s0(" in out and "; main:" in out


def test_disasm_source_file(tmp_path, capsys):
    src = tmp_path / "tiny.mc"
    src.write_text("func main() { output(1 + 2); return 0; }\n")
    assert main(["disasm", "--source", str(src)]) == 0
    out = capsys.readouterr().out
    assert "bytecode for module 'tiny'" in out
    assert "output" in out


def test_disasm_missing_source_fails(capsys):
    assert main(["disasm", "--source", "/nonexistent/p.mc"]) == 64
    assert "error" in capsys.readouterr().err
