"""Tests for the static writer-index filter (`repro.core.static_filter`)."""

import pytest

from repro.core import RESConfig, ReverseExecutionSynthesizer
from repro.core.segments import Segment, SegmentKind
from repro.core.snapshot import SymbolicSnapshot
from repro.core.static_filter import WriterIndexFilter
from repro.minic import compile_source
from repro.vm.interpreter import VM
from repro.workloads import (
    FIGURE1_OVERFLOW,
    MINIDUMP_BLINDSPOT,
    PAPER_EVAL_BUGS,
    WRITER_TAG,
)


def crash(module, inputs):
    result = VM(module, inputs=list(inputs)).run()
    assert result.trapped
    return result.coredump


def whole_block_segment(module, function, block, tid=0, depth=0):
    instrs = module.function(function).block(block).instrs
    return Segment(tid=tid, function=function, block=block,
                   lo=0, hi=len(instrs), kind=SegmentKind.NORMAL,
                   depth=depth)


# ---------------------------------------------------------------------------
# Store summaries
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def tag_module():
    return WRITER_TAG.module


def arm_summary(tag_module, block):
    filt = WriterIndexFilter(tag_module)
    return filt.summary(whole_block_segment(tag_module, "step", block))


def test_summary_resolves_constant_store(tag_module):
    layout = tag_module.layout()
    summary = arm_summary(tag_module, "then1")
    assert dict(summary.final) == {layout["state"]: 10}


def test_each_arm_summarizes_its_tag(tag_module):
    layout = tag_module.layout()
    tags = set()
    for block in ("then1", "then4", "then7", "else8"):
        summary = arm_summary(tag_module, block)
        final = dict(summary.final)
        assert list(final) == [layout["state"]]
        tags.add(final[layout["state"]])
    assert tags == {10, 20, 30, 40}


def test_summary_is_cached(tag_module):
    filt = WriterIndexFilter(tag_module)
    segment = whole_block_segment(tag_module, "step", "then1")
    assert filt.summary(segment) is filt.summary(segment)


def test_summary_drops_unknown_value_store():
    module = compile_source("""
global int g;

func main() {
    int v = input();
    g = v;          // value not statically known
    return 0;
}
""", name="unknown_value")
    filt = WriterIndexFilter(module)
    segment = whole_block_segment(module, "main", "entry")
    assert filt.summary(segment).final == ()


def test_summary_cleared_by_unknown_address_store():
    module = compile_source("""
global int g;
global int table[4];

func main() {
    int v = input();
    g = 5;
    table[v] = 1;   // may alias anything: wipes the g fact
    return 0;
}
""", name="wildcard_store")
    filt = WriterIndexFilter(module)
    segment = whole_block_segment(module, "main", "entry")
    assert filt.summary(segment).final == ()


def test_summary_cleared_by_call():
    module = compile_source("""
global int g;

func clobber() {
    g = 99;
    return 0;
}

func main() {
    g = 5;
    clobber();      // callee writes memory: wipes the g fact
    return 0;
}
""", name="call_clobber")
    filt = WriterIndexFilter(module)
    segment = whole_block_segment(module, "main", "entry")
    assert filt.summary(segment).final == ()


def test_summary_folds_address_arithmetic():
    module = compile_source("""
global int table[8];

func main() {
    table[3] = 7;   // constant index: address folds statically
    return 0;
}
""", name="const_index")
    layout = module.layout()
    filt = WriterIndexFilter(module)
    segment = whole_block_segment(module, "main", "entry")
    assert dict(filt.summary(segment).final) == {layout["table"] + 3: 7}


def test_later_store_wins():
    module = compile_source("""
global int g;

func main() {
    g = 1;
    g = 2;          // the summary must keep only the final value
    return 0;
}
""", name="two_stores")
    layout = module.layout()
    filt = WriterIndexFilter(module)
    segment = whole_block_segment(module, "main", "entry")
    assert dict(filt.summary(segment).final) == {layout["g"]: 2}


# ---------------------------------------------------------------------------
# Refutation against snapshots
# ---------------------------------------------------------------------------

def test_wrong_arm_refuted_right_arm_kept(tag_module):
    dump = WRITER_TAG.trigger()
    snapshot = SymbolicSnapshot.initial(tag_module, dump)
    filt = WriterIndexFilter(tag_module)
    # dump has state = 40: only else6 can be the most recent writer
    assert not filt.refutes(snapshot,
                            whole_block_segment(tag_module, "step", "else8"))
    for block in ("then1", "then4", "then7"):
        assert filt.refutes(snapshot,
                            whole_block_segment(tag_module, "step", block))


def test_symbolic_word_never_refutes(tag_module):
    """Once the suffix havocs the word, its pre-value is unknown and no
    candidate may be statically refuted through it."""
    dump = WRITER_TAG.trigger()
    snapshot = SymbolicSnapshot.initial(tag_module, dump)
    layout = tag_module.layout()
    snapshot.memory.write(layout["state"], snapshot.fresh("havoc"))
    filt = WriterIndexFilter(tag_module)
    for block in ("then1", "then4", "then7", "else8"):
        assert not filt.refutes(
            snapshot, whole_block_segment(tag_module, "step", block))


# ---------------------------------------------------------------------------
# End-to-end: the filter is a pure optimization
# ---------------------------------------------------------------------------

def suffix_fingerprints(workload, use_writer_index, max_depth=14):
    dump = workload.trigger()
    res = ReverseExecutionSynthesizer(
        workload.module, dump,
        RESConfig(max_depth=max_depth, max_nodes=4000,
                  use_writer_index=use_writer_index))
    prints = []
    for item in res.suffixes():
        prints.append(tuple(
            (st.segment.tid, st.segment.function, st.segment.block,
             st.segment.lo, st.segment.hi) for st in item.suffix.steps))
    return prints, res.stats


@pytest.mark.parametrize("workload",
                         (WRITER_TAG, MINIDUMP_BLINDSPOT, FIGURE1_OVERFLOW),
                         ids=lambda w: w.name)
def test_filter_preserves_suffix_set(workload):
    baseline, __ = suffix_fingerprints(workload, use_writer_index=False)
    filtered, __ = suffix_fingerprints(workload, use_writer_index=True)
    assert baseline == filtered


def test_filter_reduces_symbolic_executions():
    __, baseline = suffix_fingerprints(WRITER_TAG, use_writer_index=False,
                                       max_depth=20)
    __, filtered = suffix_fingerprints(WRITER_TAG, use_writer_index=True,
                                       max_depth=20)
    assert filtered.pruned_by_writer_index > 0
    assert filtered.candidates_executed < baseline.candidates_executed


@pytest.mark.parametrize("workload", PAPER_EVAL_BUGS,
                         ids=[w.name for w in PAPER_EVAL_BUGS])
def test_filter_safe_on_concurrency_bugs(workload):
    """Sound on racy multithreaded workloads too: same suffixes."""
    baseline, __ = suffix_fingerprints(workload, use_writer_index=False,
                                       max_depth=8)
    filtered, __ = suffix_fingerprints(workload, use_writer_index=True,
                                       max_depth=8)
    assert baseline == filtered
