"""Cross-layer property tests: solver soundness, substitution algebra,
VM determinism, and coredump serialization.

These complement the per-module suites with the invariants the RES
search silently relies on: a SAT answer always comes with a genuine
model, deterministic replay really is deterministic, and nothing is
lost shipping a coredump as JSON.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.symex.expr import (
    BinExpr,
    Const,
    Sym,
    bin_expr,
    evaluate,
    free_syms,
    substitute,
)
from repro.symex.solver import Solver
from repro.vm.coredump import Coredump
from repro.vm.interpreter import VM
from repro.vm.scheduler import RandomPreemptScheduler
from repro.workloads import (
    DEADLOCK_ABBA,
    FIGURE1_OVERFLOW,
    RACE_COUNTER,
    RACE_FLAG,
    USE_AFTER_FREE,
)

WORD = st.integers(min_value=0, max_value=2**64 - 1)
SYM_NAMES = ("a", "b", "c")

_OPS = ("add", "sub", "mul", "and", "or", "xor", "eq", "ne", "ult", "slt")


def _expr_strategy(depth: int):
    leaf = st.one_of(
        WORD.map(Const),
        st.sampled_from(SYM_NAMES).map(Sym),
    )
    if depth == 0:
        return leaf
    sub = _expr_strategy(depth - 1)
    return st.one_of(
        leaf,
        st.tuples(st.sampled_from(_OPS), sub, sub)
        .map(lambda t: bin_expr(t[0], t[1], t[2])),
    )


EXPRS = _expr_strategy(3)
MODELS = st.fixed_dictionaries({name: WORD for name in SYM_NAMES})


# ---------------------------------------------------------------------------
# Solver soundness: seeded satisfiability
# ---------------------------------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(MODELS, st.lists(EXPRS, min_size=1, max_size=4))
def test_seeded_constraints_never_refuted(model, exprs):
    """Soundness, the property RES pruning depends on: a constraint set
    with a witness (by construction) must NEVER be answered UNSAT.
    UNKNOWN is an acceptable answer for the nonlinear multi-symbol
    cases the bounded search cannot crack (modular square roots and
    friends); a SAT answer must come with a genuinely satisfying model
    (`Solver.solve` downgrades to UNKNOWN otherwise, re-checked here)."""
    constraints = []
    for expr in exprs:
        value = evaluate(expr, model)
        assert value is not None
        constraints.append(bin_expr("eq", expr, Const(value)))
    result = Solver().solve(constraints)
    assert not result.is_unsat, "refuted a satisfiable constraint set"
    if result.is_sat:
        assert result.model is not None
        for constraint in constraints:
            assert evaluate(constraint, result.model) == 1


#: the bit-fixing layer's documented fragment: operators whose low k
#: output bits depend only on the low k input bits (Solver._LOW_BITS_OPS
#: minus shifts).  Comparisons are excluded on purpose — the exactness
#: claim below holds only for this fragment.
_LOW_BITS_TEST_OPS = ("add", "sub", "mul", "and", "or", "xor")


def _low_bits_expr_strategy(depth: int):
    leaf = st.one_of(WORD.map(Const), st.just(Sym("a")))
    if depth == 0:
        return leaf
    sub = _low_bits_expr_strategy(depth - 1)
    return st.one_of(
        leaf,
        st.tuples(st.sampled_from(_LOW_BITS_TEST_OPS), sub, sub)
        .map(lambda t: bin_expr(t[0], t[1], t[2])),
    )


_SINGLE_SYM_LINEAR = _low_bits_expr_strategy(3)


@settings(max_examples=60, deadline=None)
@given(WORD, _SINGLE_SYM_LINEAR)
def test_single_symbol_seeded_constraints_are_solved(value_a, expr):
    """Completeness on the documented fragment: with one free symbol
    and add/sub/mul/xor/and/or operators, the bit-fixing layer is exact
    — seeded-satisfiable conjunctions must come back SAT."""
    witness = {"a": value_a}
    value = evaluate(expr, witness)
    assert value is not None
    constraint = bin_expr("eq", expr, Const(value))
    result = Solver().solve([constraint])
    assert result.is_sat, "single-symbol low-bits fragment must be exact"
    assert evaluate(constraint, result.model) == 1


@settings(max_examples=40, deadline=None)
@given(MODELS, EXPRS)
def test_contradictory_pin_is_unsat(model, expr):
    """expr == v and expr == v+1 cannot both hold."""
    value = evaluate(expr, model)
    if free_syms(expr) == frozenset():
        return  # constant expressions: the second pin is just false
    constraints = [
        bin_expr("eq", expr, Const(value)),
        bin_expr("eq", expr, Const((value + 1) % 2**64)),
    ]
    # One expression cannot equal two distinct values under one model,
    # so a SAT verdict here would be a soundness bug.
    assert not Solver().solve(constraints).is_sat


# ---------------------------------------------------------------------------
# Substitution algebra
# ---------------------------------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(MODELS, EXPRS)
def test_substitute_then_evaluate_matches_direct_evaluation(model, expr):
    bound = substitute(expr, {name: Const(v) for name, v in model.items()})
    assert free_syms(bound) == frozenset()
    assert evaluate(bound, {}) == evaluate(expr, model)


@settings(max_examples=60, deadline=None)
@given(MODELS, EXPRS)
def test_partial_substitution_composes(model, expr):
    first = {"a": Const(model["a"])}
    rest = {k: v for k, v in model.items() if k != "a"}
    staged = evaluate(substitute(expr, first), rest)
    assert staged == evaluate(expr, model)


@settings(max_examples=40, deadline=None)
@given(EXPRS)
def test_substitution_with_nothing_is_identity(expr):
    assert substitute(expr, {}) == expr


# ---------------------------------------------------------------------------
# VM determinism
# ---------------------------------------------------------------------------

def run_traced(workload, seed):
    vm = VM(workload.module, inputs=list(workload.inputs),
            scheduler=RandomPreemptScheduler(seed=seed, preempt_prob=0.6),
            record_trace=True)
    result = vm.run()
    events = [(e.step, e.tid, e.pc, e.reads, e.writes) for e in vm.trace]
    return result, events


@pytest.mark.parametrize("workload", (RACE_COUNTER, RACE_FLAG),
                         ids=lambda w: w.name)
@pytest.mark.parametrize("seed", (0, 7, 23))
def test_same_seed_same_execution(workload, seed):
    """The substrate promise under everything: seeded runs are bitwise
    repeatable (traces, not just outcomes)."""
    first, events_a = run_traced(workload, seed)
    second, events_b = run_traced(workload, seed)
    assert events_a == events_b
    assert (first.coredump is None) == (second.coredump is None)
    if first.coredump is not None:
        assert first.coredump.memory == second.coredump.memory
        assert first.coredump.trap == second.coredump.trap


def test_different_seeds_can_differ():
    """The racy counter must expose schedule dependence across seeds
    (otherwise the concurrency workloads would be vacuous)."""
    outcomes = set()
    for seed in range(40):
        result, __ = run_traced(RACE_COUNTER, seed)
        outcomes.add(result.coredump.trap.kind if result.coredump else None)
        if len(outcomes) > 1:
            break
    assert len(outcomes) > 1


# ---------------------------------------------------------------------------
# Coredump serialization
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("workload",
                         (FIGURE1_OVERFLOW, RACE_FLAG, USE_AFTER_FREE,
                          DEADLOCK_ABBA),
                         ids=lambda w: w.name)
def test_coredump_json_round_trip(workload):
    dump = workload.trigger()
    restored = Coredump.from_json(dump.to_json())
    assert restored.module_name == dump.module_name
    assert restored.trap == dump.trap
    assert restored.memory == dump.memory
    assert restored.heap == dump.heap
    assert restored.lock_owners == dump.lock_owners
    assert restored.lbr == dump.lbr
    assert restored.log_tail == dump.log_tail
    assert set(restored.threads) == set(dump.threads)
    for tid, thread in dump.threads.items():
        other = restored.threads[tid]
        assert other.status == thread.status
        assert other.held_locks == thread.held_locks
        assert [f.pc for f in other.frames] == [f.pc for f in thread.frames]
        assert [f.regs for f in other.frames] == [f.regs for f in thread.frames]
