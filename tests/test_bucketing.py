"""The bucketing subsystem (PR 7): canonical expression skeletons,
static evidence extraction, and the split/merge refinement pass."""

from dataclasses import dataclass

import pytest

from repro.core.bucketing import refine, static_evidence
from repro.core.rootcause import CauseEvidence, RootCause
from repro.core.triage import TriageResult
from repro.fuzz.triage_corpus import build_labeled_corpus
from repro.vm.state import PC


# ---------------------------------------------------------------------------
# Evidence extraction
# ---------------------------------------------------------------------------

def test_skeletons_stable_within_class_distinct_across_classes():
    """The same armed failure template compiled into different programs
    must yield byte-identical (trap kind, crashing fn, skeleton)
    triples, while different classes stay distinct — this is the whole
    cross-program merge argument."""
    corpus = build_labeled_corpus(range(9000, 9008), duplicates=1)
    by_class = {}
    for entry in corpus.entries:
        spec = corpus.programs[entry.program_key]
        evidence = static_evidence(spec.compile(), entry.report.coredump)
        assert evidence is not None
        by_class.setdefault(entry.report.true_cause, set()).add(
            (evidence.trap_kind, evidence.crash_fn,
             evidence.expr_skeleton))
    assert len(by_class) >= 2, "corpus degenerated to one class"
    for cause, triples in by_class.items():
        assert len(triples) == 1, \
            f"{cause}: unstable evidence across programs: {triples}"
    all_triples = [next(iter(t)) for t in by_class.values()]
    assert len(set(all_triples)) == len(all_triples), \
        "distinct classes collapsed to one evidence triple"


def test_static_evidence_degrades_to_none_on_garbage():
    assert static_evidence(None, None) is None


# ---------------------------------------------------------------------------
# Split/merge refinement
# ---------------------------------------------------------------------------

@dataclass
class _Item:
    result: TriageResult
    program_key: str = "p"


def _cause(kind="div-by-zero", trap="div-by-zero", fn="main",
           skel="(sdiv c var)", pc_block="b"):
    return RootCause(
        kind=kind, description="",
        pcs=(PC(fn, pc_block, 0),),
        evidence=CauseEvidence(trap_kind=trap, crash_fn=fn,
                               expr_skeleton=skel))


def _explained(rid, cause, program="p"):
    return _Item(TriageResult(report_id=rid, bucket=cause.signature(),
                              cause=cause, used_fallback=False),
                 program_key=program)


def _fallback(rid, trap="div-by-zero", fn="main", tail=("main:b",),
              program="p"):
    return _Item(TriageResult(report_id=rid,
                              bucket=("stack", trap, fn, tail),
                              cause=None, used_fallback=True),
                 program_key=program)


def test_refine_merges_same_family_across_programs():
    a = _explained("a", _cause(pc_block="b1"), program="p1")
    b = _explained("b", _cause(pc_block="b2"), program="p2")
    assert a.result.bucket != b.result.bucket  # distinct raw leaves
    refinement = refine([a, b])
    assert refinement.bucket_of("a", None) == refinement.bucket_of("b", None)
    assert refinement.bucket_of("a", None)[0] == "family"
    assert refinement.stats["families"] == 1
    assert refinement.stats["merged_leaves"] == 1
    assert len(refinement.hierarchy) == 1
    (info,) = refinement.hierarchy.values()
    assert info["reports"] == 2
    assert len(info["leaves"]) == 2


def test_refine_refuses_conflicted_family():
    """Two distinct leaves from the SAME program sharing a family key:
    the evidence is too coarse for that family, the merge is refused
    and both reports keep their raw signature buckets."""
    a = _explained("a", _cause(pc_block="b1"), program="p1")
    b = _explained("b", _cause(pc_block="b2"), program="p1")
    refinement = refine([a, b])
    assert refinement.bucket_of("a", None) == a.result.bucket
    assert refinement.bucket_of("b", None) == b.result.bucket
    assert refinement.stats["families"] == 0
    assert refinement.stats["conflicted_families"] == 1
    assert refinement.hierarchy == {}


def test_refine_attaches_fallback_to_unique_site_family():
    a = _explained("a", _cause(), program="p1")
    fb = _fallback("f", program="p2")
    refinement = refine([a, fb])
    assert refinement.bucket_of("f", None) == refinement.bucket_of("a", None)
    assert refinement.stats["attached_fallbacks"] == 1


def test_refine_leaves_ambiguous_fallback_in_stack_bucket():
    a = _explained("a", _cause(skel="(sdiv c var)"), program="p1")
    b = _explained("b", _cause(skel="(sdiv c (sub var c))"), program="p2")
    fb = _fallback("f", program="p3")
    refinement = refine([a, b, fb])
    assert refinement.bucket_of("f", None) == fb.result.bucket
    assert refinement.stats["ambiguous_fallbacks"] == 1
    assert refinement.stats["attached_fallbacks"] == 0


def test_refine_never_merges_per_fingerprint_fallbacks():
    a = _explained("a", _cause(), program="p1")
    fb = _fallback("f", tail=("fingerprint", "deadbeef"), program="p2")
    refinement = refine([a, fb])
    assert refinement.bucket_of("f", None) == fb.result.bucket
    assert refinement.stats["attached_fallbacks"] == 0


def test_refine_keeps_annotated_buckets():
    cause = _cause()
    item = _Item(TriageResult(report_id="a",
                              bucket=("annotated", "known-div"),
                              cause=cause, used_fallback=False))
    other = _explained("b", _cause(pc_block="b2"), program="p2")
    refinement = refine([item, other])
    assert refinement.bucket_of("a", None) == ("annotated", "known-div")


def test_refine_keeps_legacy_evidence_less_causes():
    cause = RootCause(kind="div-by-zero", description="",
                      pcs=(PC("main", "b", 0),))
    assert cause.family() is None
    item = _Item(TriageResult(report_id="a", bucket=cause.signature(),
                              cause=cause, used_fallback=False))
    refinement = refine([item])
    assert refinement.bucket_of("a", None) == cause.signature()
    assert refinement.stats["legacy_causes"] == 1


def test_refine_is_order_independent():
    items = [
        _explained("a", _cause(pc_block="b1"), program="p1"),
        _explained("b", _cause(pc_block="b2"), program="p2"),
        _fallback("f", program="p3"),
        _explained("c", _cause(kind="buffer-overflow",
                               trap="out-of-bounds",
                               skel="(mem var)", pc_block="b3"),
                   program="p1"),
    ]
    forward = refine(items)
    backward = refine(list(reversed(items)))
    assert forward.assignment == backward.assignment
    assert forward.hierarchy == backward.hierarchy
    assert forward.stats == backward.stats
