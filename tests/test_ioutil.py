"""Durable-write helpers: a failed write must never leave a truncated
target or temp litter behind."""

import json

import pytest

from repro.ioutil import atomic_write_json, atomic_write_text


def test_atomic_write_creates_parents_and_content(tmp_path):
    target = tmp_path / "nested" / "out.json"
    atomic_write_json(target, {"b": 2, "a": 1})
    payload = json.loads(target.read_text())
    assert payload == {"a": 1, "b": 2}
    assert [p.name for p in (tmp_path / "nested").iterdir()] == ["out.json"]


def test_atomic_write_replaces_existing(tmp_path):
    target = tmp_path / "out.txt"
    atomic_write_text(target, "one")
    atomic_write_text(target, "two")
    assert target.read_text() == "two"
    assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]


def test_failed_write_leaves_no_trace(tmp_path):
    """An exception mid-serialization must leave neither a truncated
    target nor a temp file — the divergence-artifact durability bug."""
    target = tmp_path / "out.json"
    atomic_write_text(target, "intact")

    class Boom:
        def __iter__(self):
            raise RuntimeError("serializer died")

    with pytest.raises(TypeError):
        atomic_write_json(target, {"x": Boom()})
    assert target.read_text() == "intact"  # old content untouched
    assert [p.name for p in tmp_path.iterdir()] == ["out.json"]


def test_interrupted_replace_cleans_temp_file(tmp_path, monkeypatch):
    """A failure between temp-write and rename (the window a Ctrl-C
    lands in) must remove the temp file and keep the old content."""
    import os as os_module

    target = tmp_path / "out.txt"
    atomic_write_text(target, "intact")

    def exploding_replace(src, dst):
        raise KeyboardInterrupt

    monkeypatch.setattr(os_module, "replace", exploding_replace)
    with pytest.raises(KeyboardInterrupt):
        atomic_write_text(target, "half-done")
    monkeypatch.undo()
    assert target.read_text() == "intact"
    assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]
