"""Durable-write helpers: a failed write must never leave a truncated
target or temp litter behind."""

import json

import pytest

from repro.ioutil import atomic_write_json, atomic_write_text


def test_atomic_write_creates_parents_and_content(tmp_path):
    target = tmp_path / "nested" / "out.json"
    atomic_write_json(target, {"b": 2, "a": 1})
    payload = json.loads(target.read_text())
    assert payload == {"a": 1, "b": 2}
    assert [p.name for p in (tmp_path / "nested").iterdir()] == ["out.json"]


def test_atomic_write_replaces_existing(tmp_path):
    target = tmp_path / "out.txt"
    atomic_write_text(target, "one")
    atomic_write_text(target, "two")
    assert target.read_text() == "two"
    assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]


def test_failed_write_leaves_no_trace(tmp_path):
    """An exception mid-serialization must leave neither a truncated
    target nor a temp file — the divergence-artifact durability bug."""
    target = tmp_path / "out.json"
    atomic_write_text(target, "intact")

    class Boom:
        def __iter__(self):
            raise RuntimeError("serializer died")

    with pytest.raises(TypeError):
        atomic_write_json(target, {"x": Boom()})
    assert target.read_text() == "intact"  # old content untouched
    assert [p.name for p in tmp_path.iterdir()] == ["out.json"]


def test_interrupted_replace_cleans_temp_file(tmp_path, monkeypatch):
    """A failure between temp-write and rename (the window a Ctrl-C
    lands in) must remove the temp file and keep the old content."""
    import os as os_module

    target = tmp_path / "out.txt"
    atomic_write_text(target, "intact")

    def exploding_replace(src, dst):
        raise KeyboardInterrupt

    monkeypatch.setattr(os_module, "replace", exploding_replace)
    with pytest.raises(KeyboardInterrupt):
        atomic_write_text(target, "half-done")
    monkeypatch.undo()
    assert target.read_text() == "intact"
    assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]


def test_data_fsynced_before_replace_then_dir_fsynced(tmp_path, monkeypatch):
    """The PR 4 durability fix: os.replace only orders metadata, so the
    temp file must be fsynced *before* the rename (or a crash after the
    replace can still surface an empty/garbage target), and the
    directory fsynced after (making the rename itself durable)."""
    import os as os_module

    events = []
    real_fsync, real_replace = os_module.fsync, os_module.replace

    def spy_fsync(fd):
        events.append(("fsync", fd))
        return real_fsync(fd)

    def spy_replace(src, dst):
        events.append(("replace", None))
        return real_replace(src, dst)

    monkeypatch.setattr(os_module, "fsync", spy_fsync)
    monkeypatch.setattr(os_module, "replace", spy_replace)
    target = tmp_path / "out.txt"
    atomic_write_text(target, "durable")
    kinds = [kind for kind, _ in events]
    assert kinds == ["fsync", "replace", "fsync"], kinds
    assert target.read_text() == "durable"


def test_failed_data_fsync_fails_the_write_loudly(tmp_path, monkeypatch):
    """If the data cannot reach stable storage the write must raise and
    leave the old content intact — a silent success would be the exact
    bug the fsync was added to fix."""
    import os as os_module

    target = tmp_path / "out.txt"
    atomic_write_text(target, "intact")

    def failing_fsync(fd):
        raise OSError("disk gone")

    monkeypatch.setattr(os_module, "fsync", failing_fsync)
    with pytest.raises(OSError, match="disk gone"):
        atomic_write_text(target, "lost")
    monkeypatch.undo()
    assert target.read_text() == "intact"
    assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]


def test_directory_fsync_failure_is_best_effort(tmp_path, monkeypatch):
    """Some filesystems refuse to fsync a directory fd; the write must
    still succeed (the data itself is already durable)."""
    import os as os_module

    real_fsync = os_module.fsync
    calls = [0]

    def flaky_fsync(fd):
        calls[0] += 1
        if calls[0] > 1:  # first call = temp file, later = directory
            raise OSError("EINVAL")
        return real_fsync(fd)

    monkeypatch.setattr(os_module, "fsync", flaky_fsync)
    target = tmp_path / "out.txt"
    assert atomic_write_text(target, "fine") == str(target)
    assert target.read_text() == "fine"
    assert calls[0] >= 2  # the directory fsync was attempted


def test_fsync_dir_returns_false_on_missing_directory(tmp_path):
    from repro.ioutil import fsync_dir

    assert fsync_dir(tmp_path) is True
    assert fsync_dir(tmp_path / "nope") is False


def test_append_line_is_flushed_and_fsynced(tmp_path, monkeypatch):
    import os as os_module

    from repro.ioutil import append_line

    fsyncs = []
    real_fsync = os_module.fsync
    monkeypatch.setattr(os_module, "fsync",
                        lambda fd: (fsyncs.append(fd), real_fsync(fd))[1])
    target = tmp_path / "rows" / "log.jsonl"
    append_line(target, '{"a": 1}')
    append_line(target, '{"b": 2}\n')  # trailing newline not doubled
    assert target.read_text() == '{"a": 1}\n{"b": 2}\n'
    assert len(fsyncs) == 2


def test_append_after_torn_line_does_not_merge_rows(tmp_path):
    """Appending after a crash-torn final line must heal the missing
    newline first — otherwise the new row merges into the fragment and
    becomes permanently unreadable (code-review finding)."""
    from repro.ioutil import append_line

    target = tmp_path / "log.jsonl"
    append_line(target, '{"a": 1}')
    # simulate a crash mid-append: torn fragment, no trailing newline
    with open(target, "a") as handle:
        handle.write('{"b": 2')
    append_line(target, '{"c": 3}')
    lines = target.read_text().splitlines()
    assert lines == ['{"a": 1}', '{"b": 2', '{"c": 3}']


# ---------------------------------------------------------------------------
# Injected disk faults (repro.faultinject): the reader-side recovery
# contract under ENOSPC, torn appends, fsync failures, and interrupted
# atomic writes.
# ---------------------------------------------------------------------------

def test_injected_enospc_append_fails_before_writing(tmp_path):
    from repro import faultinject
    from repro.ioutil import append_line, iter_jsonl

    target = tmp_path / "log.jsonl"
    append_line(target, '{"a": 1}')
    with faultinject.injected(
            {"seed": 7, "sites": {"ioutil.append_line":
                                  {"at": [0], "kinds": ["enospc"]}}}):
        with pytest.raises(OSError, match="ENOSPC|injected"):
            append_line(target, '{"b": 2}')
    # ENOSPC fired before the open: the log is byte-identical, and a
    # later append (disk recovered) lands cleanly.
    assert [row for __, row in iter_jsonl(target)] == [{"a": 1}]
    append_line(target, '{"c": 3}')
    assert [row for __, row in iter_jsonl(target)] == [{"a": 1}, {"c": 3}]


def test_injected_torn_append_reader_skips_fragment(tmp_path):
    """The crash-mid-append case: a prefix of the row reaches the file,
    the writer sees a failure, and iter_jsonl must skip the fragment —
    then the next append heals the missing newline instead of merging
    into the fragment."""
    from repro import faultinject
    from repro.ioutil import append_line, iter_jsonl

    target = tmp_path / "log.jsonl"
    with faultinject.injected(
            {"seed": 7, "sites": {"ioutil.append_line":
                                  {"at": [1], "kinds": ["torn"]}}}):
        append_line(target, '{"a": 1}')
        with pytest.raises(OSError, match="torn"):
            append_line(target, '{"b": 2}')
        assert not target.read_text().endswith("\n")
        assert [row for __, row in iter_jsonl(target)] == [{"a": 1}]
        append_line(target, '{"c": 3}')
    with pytest.warns(RuntimeWarning, match="corrupt mid-file"):
        rows = [row for __, row in iter_jsonl(target)]
    assert rows == [{"a": 1}, {"c": 3}]


def test_injected_fsync_failure_row_may_survive(tmp_path):
    """An fsync failure means durability was not promised: the caller
    must treat the row as lost even though it may well be in the file
    (it is — only the disk's promise is missing)."""
    from repro import faultinject
    from repro.ioutil import append_line, iter_jsonl

    target = tmp_path / "log.jsonl"
    with faultinject.injected(
            {"seed": 7, "sites": {"ioutil.append_line":
                                  {"at": [0], "kinds": ["fsync"]}}}):
        with pytest.raises(OSError, match="fsync"):
            append_line(target, '{"a": 1}')
    assert [row for __, row in iter_jsonl(target)] == [{"a": 1}]


def test_injected_atomic_interrupt_keeps_target_and_no_litter(tmp_path):
    """A death between the temp-file write and the rename — the window
    atomic replacement exists for — must leave the old target intact
    and no temp litter behind."""
    from repro import faultinject
    from repro.ioutil import atomic_write_text

    target = tmp_path / "out.txt"
    atomic_write_text(target, "intact")
    with faultinject.injected(
            {"seed": 7, "sites": {"ioutil.atomic_write":
                                  {"at": [0], "kinds": ["interrupt"]}}}):
        with pytest.raises(OSError, match="before replace"):
            atomic_write_text(target, "half-done")
    assert target.read_text() == "intact"
    assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]


def test_injected_atomic_enospc_keeps_target(tmp_path):
    from repro import faultinject
    from repro.ioutil import atomic_write_text

    target = tmp_path / "out.txt"
    atomic_write_text(target, "intact")
    with faultinject.injected(
            {"seed": 7, "sites": {"ioutil.atomic_write":
                                  {"at": [0], "kinds": ["enospc"]}}}):
        with pytest.raises(OSError, match="ENOSPC|injected"):
            atomic_write_text(target, "lost")
    assert target.read_text() == "intact"
    assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]


def test_fault_path_filter_only_counts_matching_calls(tmp_path):
    """path_contains scopes a rule to one file: call indices address
    the *matching* appends only, so interleaved writes to other logs
    never shift the schedule."""
    from repro import faultinject
    from repro.ioutil import append_line

    journal = tmp_path / "jobs.jsonl"
    other = tmp_path / "cache.jsonl"
    with faultinject.injected(
            {"seed": 7, "sites": {"ioutil.append_line":
                                  {"at": [1], "kinds": ["enospc"],
                                   "path_contains": "jobs.jsonl"}}}):
        append_line(other, '{"x": 1}')    # not counted
        append_line(journal, '{"a": 1}')  # matching call 0: clean
        append_line(other, '{"x": 2}')    # not counted
        with pytest.raises(OSError):      # matching call 1: fires
            append_line(journal, '{"b": 2}')
        append_line(other, '{"x": 3}')    # other log never faulted
    assert len(other.read_text().splitlines()) == 3
