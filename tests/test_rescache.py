"""The persistent cross-run RES result cache (PR 4).

The stakes: a stale or mis-keyed cached verdict silently corrupts
buckets.  So the tests here are mostly *negative* — every component of
the strict cache key (module source, coredump, config, schema) is
poisoned in turn and the cache must miss, and damaged cache files must
degrade to a cold run with a warning, never a crash and never a wrong
hit.  The positive direction (warm ≡ cold, byte-identical) lives in
``tests/test_triage.py`` and ``benchmarks/test_p4_warm_triage.py``.
"""

import dataclasses
import json

import pytest

from repro.core.res import RESConfig
from repro.core.rescache import (
    CACHE_SCHEMA_VERSION,
    CachedVerdict,
    CacheChain,
    CacheKey,
    ResultCache,
    module_fingerprint,
    res_config_fingerprint,
)
from repro.core.rootcause import RootCause
from repro.core.triage import BugReport, synthesize_result
from repro.core.triage_service import TriageServiceConfig, triage_corpus
from repro.fuzz.triage_corpus import build_labeled_corpus
from repro.vm.state import PC


# ---------------------------------------------------------------------------
# Fingerprints
# ---------------------------------------------------------------------------

def test_module_fingerprint_covers_source_and_name():
    base = module_fingerprint("func main() { return 0; }", "m")
    assert module_fingerprint("func main() { return 1; }", "m") != base
    assert module_fingerprint("func main() { return 0; }", "n") != base
    assert module_fingerprint("func main() { return 0; }", "m") == base


def test_config_fingerprint_covers_every_resconfig_knob():
    """A newly added RESConfig field must change the fingerprint by
    construction (dataclass-field walk), and every existing knob must
    too — a knob outside the key would let a stale verdict pass as
    fresh."""
    base_config = RESConfig(max_depth=8, max_nodes=300)
    base = res_config_fingerprint(base_config)
    for mutation in (
        {"max_depth": 9},
        {"max_nodes": 301},
        {"verify": False},
        {"use_lbr": True},
        {"use_log": True},
        {"use_writer_index": True},
        {"incremental": False},
        {"atomic_calls": frozenset({"helper"})},
    ):
        mutated = dataclasses.replace(base_config, **mutation)
        assert res_config_fingerprint(mutated) != base, mutation
    # driver-level extras (drive budgets, solver caps) are in the key
    assert res_config_fingerprint(base_config, max_suffixes=64) != base
    assert res_config_fingerprint(base_config) == base


def test_cache_key_digest_depends_on_each_component():
    base = CacheKey("m", "c", "k")
    assert base.digest() == CacheKey("m", "c", "k").digest()
    assert CacheKey("m2", "c", "k").digest() != base.digest()
    assert CacheKey("m", "c2", "k").digest() != base.digest()
    assert CacheKey("m", "c", "k2").digest() != base.digest()
    assert CacheKey("m", "c", "k",
                    schema=CACHE_SCHEMA_VERSION + 1).digest() \
        != base.digest()


# ---------------------------------------------------------------------------
# Round trip
# ---------------------------------------------------------------------------

def _verdict() -> CachedVerdict:
    cause = RootCause(
        kind="buffer-overflow",
        description="store past the end of global 'state'",
        addr=0x1008,
        threads=(0, 2),
        pcs=(PC("check", "entry", 3), PC("main", "loop", 1)),
        object_name="state")
    return CachedVerdict(cause=cause, exploitable=True, seconds=0.25,
                         suffix_digests=("aa" * 8, "bb" * 8),
                         stats={"nodes_expanded": 12})


def test_put_lookup_round_trip_reconstructs_exact_result(tmp_path):
    """The cached cause must rebuild a TriageResult byte-identical to
    the cold one — including the tuple-typed signature bucket."""
    cache = ResultCache(tmp_path / "cache")
    key = CacheKey("m", "c", "k")
    verdict = _verdict()
    cache.put(key, verdict)

    reloaded = ResultCache(tmp_path / "cache")  # fresh process, cold index
    found = reloaded.lookup(key)
    assert found is not None
    assert found.cause == verdict.cause
    assert found.exploitable is True
    assert found.suffix_digests == verdict.suffix_digests
    assert found.stats == {"nodes_expanded": 12}

    report = BugReport(report_id="r1", coredump=None)
    cold = synthesize_result(report, verdict.cause, True)
    warm = synthesize_result(report, found.cause, found.exploitable)
    assert warm == cold
    assert warm.bucket == verdict.cause.signature()
    assert isinstance(warm.bucket, tuple)


def test_any_fingerprint_mismatch_is_a_miss(tmp_path):
    """The poisoned-cache contract: a row keyed for a different module
    / coredump / config / schema must never be returned."""
    cache = ResultCache(tmp_path / "cache")
    cache.put(CacheKey("m", "c", "k"), _verdict())
    assert cache.lookup(CacheKey("m", "c", "k")) is not None
    assert cache.lookup(CacheKey("edited", "c", "k")) is None
    assert cache.lookup(CacheKey("m", "other-dump", "k")) is None
    assert cache.lookup(CacheKey("m", "c", "bumped-depth")) is None
    assert cache.lookup(
        CacheKey("m", "c", "k", schema=CACHE_SCHEMA_VERSION + 1)) is None


def test_forged_row_with_mismatched_fingerprints_is_a_miss(tmp_path):
    """Defense in depth: a row whose stored digest does not match its
    own fingerprints (hand-edited / mis-stitched cache) is dropped."""
    cache = ResultCache(tmp_path / "cache")
    cache.put(CacheKey("m", "c", "k"), _verdict())
    rows_path = cache.rows_path
    row = json.loads(rows_path.read_text())
    row["module_fp"] = "tampered"  # digest no longer matches
    rows_path.write_text(json.dumps(row) + "\n")
    with pytest.warns(RuntimeWarning, match="corrupt row"):
        fresh = ResultCache(tmp_path / "cache")
        assert fresh.lookup(CacheKey("tampered", "c", "k")) is None


# ---------------------------------------------------------------------------
# Damage tolerance
# ---------------------------------------------------------------------------

def test_truncated_final_row_is_skipped_with_warning(tmp_path):
    """A crash mid-append tears at most the final line; the reader must
    keep every complete row and warn about the torn one."""
    cache = ResultCache(tmp_path / "cache")
    cache.put(CacheKey("m1", "c1", "k1"), _verdict())
    cache.put(CacheKey("m2", "c2", "k2"), _verdict())
    text = cache.rows_path.read_text()
    cache.rows_path.write_text(text + text.splitlines()[0][: len(text) // 4])

    with pytest.warns(RuntimeWarning, match="skipped 1 corrupt row"):
        fresh = ResultCache(tmp_path / "cache")
        assert fresh.lookup(CacheKey("m1", "c1", "k1")) is not None
        assert fresh.lookup(CacheKey("m2", "c2", "k2")) is not None


def test_garbage_cache_file_degrades_to_cold_with_warning(tmp_path):
    root = tmp_path / "cache"
    root.mkdir()
    (root / "rescache.jsonl").write_text("\x00\x01 not json at all\n{{{\n")
    with pytest.warns(RuntimeWarning, match="corrupt row"):
        cache = ResultCache(root)
        assert cache.lookup(CacheKey("m", "c", "k")) is None
    # and the cache stays writable afterwards
    with pytest.warns(RuntimeWarning):
        cache2 = ResultCache(root)
        cache2.put(CacheKey("m", "c", "k"), _verdict())
        assert cache2.lookup(CacheKey("m", "c", "k")) is not None


def test_corrupt_solver_sidecar_is_skipped_with_warning(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    cache.store_solver_cache("mfp", {"caps": [4096, 200000],
                                     "rows": [[[1], [], ["sat", {}, 0]]]})
    assert cache.load_solver_cache("mfp") is not None
    cache.solver_path("mfp").write_text("{ torn")
    with pytest.warns(RuntimeWarning, match="solver cache"):
        assert cache.load_solver_cache("mfp") is None


# ---------------------------------------------------------------------------
# Maintenance: stats + gc
# ---------------------------------------------------------------------------

def test_gc_compacts_superseded_rows_last_write_wins(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    key = CacheKey("m", "c", "k")
    first = _verdict()
    second = CachedVerdict(cause=None, exploitable=False, seconds=0.1)
    cache.put(key, first)
    cache.put(key, second)
    cache.put(CacheKey("m2", "c2", "k2"), first)
    stats = cache.stats()
    assert stats["rows"] == 3 and stats["entries"] == 2

    outcome = cache.gc()
    assert outcome["after"]["rows"] == 2
    assert outcome["after"]["entries"] == 2
    # last write won: the surviving row for `key` is the second verdict
    fresh = ResultCache(tmp_path / "cache")
    found = fresh.lookup(key)
    assert found.cause is None and found.exploitable is False


def test_gc_drops_modules_outside_keep_set(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    cache.put(CacheKey("keep", "c", "k"), _verdict())
    cache.put(CacheKey("drop", "c", "k"), _verdict())
    cache.store_solver_cache("keep", {"caps": [1, 2], "rows": [[[1], [],
                                                               ["sat", {},
                                                                0]]]})
    cache.store_solver_cache("drop", {"caps": [1, 2], "rows": [[[1], [],
                                                                ["sat", {},
                                                                 0]]]})
    cache.gc(keep_module_fps={"keep"})
    fresh = ResultCache(tmp_path / "cache")
    assert fresh.lookup(CacheKey("keep", "c", "k")) is not None
    assert fresh.lookup(CacheKey("drop", "c", "k")) is None
    assert fresh.solver_path("keep").exists()
    assert not fresh.solver_path("drop").exists()


# ---------------------------------------------------------------------------
# The chain (writable cache + readonly warm-from sources)
# ---------------------------------------------------------------------------

def test_chain_reads_warm_from_but_never_writes_it(tmp_path):
    baseline = ResultCache(tmp_path / "baseline")
    baseline.put(CacheKey("m", "c", "k"), _verdict())

    chain = CacheChain.open(str(tmp_path / "mine"),
                            (str(tmp_path / "baseline"),))
    assert chain.lookup(CacheKey("m", "c", "k")) is not None
    chain.put(CacheKey("m2", "c2", "k2"), _verdict())
    assert (tmp_path / "mine" / "rescache.jsonl").exists()
    # the baseline still holds exactly its original single row
    assert len([l for l in (tmp_path / "baseline" / "rescache.jsonl")
                .read_text().splitlines() if l.strip()]) == 1
    # readonly caches refuse writes outright
    readonly = ResultCache(tmp_path / "baseline", readonly=True)
    readonly.put(CacheKey("m3", "c3", "k3"), _verdict())
    assert readonly.lookup(CacheKey("m3", "c3", "k3")) is None


# ---------------------------------------------------------------------------
# Solver component-cache export / import
# ---------------------------------------------------------------------------

def test_solver_cache_export_import_round_trip():
    from repro.symex.expr import Const, Sym, bin_expr
    from repro.symex.solver import Solver

    solver = Solver()
    ctx = solver.context_for([])
    # (x & 3) == 1 is beyond binding/domain extraction: it lands in the
    # residual component search, whose verdict gets cached.
    delta = (bin_expr("eq", bin_expr("and", Sym("x"), Const(3)),
                      Const(1)),)
    result, _ = solver.solve_extended(ctx, delta)
    assert result.is_sat
    snapshot = json.loads(json.dumps(solver.export_component_cache()))
    assert snapshot["rows"], "expected at least one component row"

    primed = Solver()
    adopted = primed.import_component_cache(snapshot)
    assert adopted == len(snapshot["rows"])
    # the primed solver answers the identical component from cache
    result2, _ = primed.solve_extended(primed.context_for([]), delta)
    assert result2.status == result.status
    assert result2.model == result.model


def test_solver_cache_import_rejects_mismatched_caps():
    from repro.symex.expr import Const, Sym, bin_expr
    from repro.symex.solver import Solver

    solver = Solver()
    solver.solve_extended(
        solver.context_for([]),
        (bin_expr("eq", bin_expr("and", Sym("x"), Const(3)), Const(1)),))
    snapshot = solver.export_component_cache()
    smaller = Solver(max_enum=8)
    assert smaller.import_component_cache(snapshot) == 0
    assert smaller.import_component_cache({"rows": []}) == 0
    assert smaller.import_component_cache(None) == 0


# ---------------------------------------------------------------------------
# End-to-end poisoning: the service must recompute, never reuse
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def tiny_corpus():
    return build_labeled_corpus(range(9000, 9003), duplicates=2,
                                shuffle_seed=1)


def test_edited_program_invalidates_its_cached_verdicts(tmp_path,
                                                        tiny_corpus):
    """Satellite regression: editing a program's source must be a miss
    for every report of that program; untouched programs still hit."""
    import dataclasses as dc

    cache_dir = str(tmp_path / "cache")
    config = TriageServiceConfig(jobs=1, cache_dir=cache_dir)
    cold = triage_corpus(tiny_corpus, config)
    assert cold.cache_hits == 0

    edited_key = tiny_corpus.entries[0].program_key
    programs = dict(tiny_corpus.programs)
    programs[edited_key] = dc.replace(programs[edited_key],
                                      source=programs[edited_key].source
                                      + "\n// edited\n")
    edited = dc.replace(tiny_corpus, programs=programs,
                        entries=list(tiny_corpus.entries))

    warm = triage_corpus(edited, config)
    unique = {(e.program_key, e.report.coredump.fingerprint())
              for e in edited.entries}
    edited_unique = {pair for pair in unique if pair[0] == edited_key}
    assert warm.cache_hits == len(unique) - len(edited_unique)
    assert warm.triaged == len(edited_unique)
    # the recomputed verdicts match the cold ones (the edit was a
    # comment): stale rows were ignored, not reused *and* not wrong
    assert [r.bucket for r in warm.results] \
        == [r.bucket for r in cold.results]


def test_bumped_config_invalidates_every_cached_verdict(tmp_path,
                                                        tiny_corpus):
    cache_dir = str(tmp_path / "cache")
    base = TriageServiceConfig(jobs=1, cache_dir=cache_dir)
    triage_corpus(tiny_corpus, base)

    bumped = TriageServiceConfig(jobs=1, cache_dir=cache_dir,
                                 max_depth=base.max_depth + 4)
    warm = triage_corpus(tiny_corpus, bumped)
    assert warm.cache_hits == 0
    assert warm.triaged == len(tiny_corpus.programs)

    # and the original config still hits everything
    again = triage_corpus(tiny_corpus, base)
    assert again.triaged == 0
    assert again.cache_hits == len(tiny_corpus.programs)


def test_corrupt_cache_file_never_crashes_a_triage_run(tmp_path,
                                                       tiny_corpus):
    cache_dir = tmp_path / "cache"
    config = TriageServiceConfig(jobs=1, cache_dir=str(cache_dir))
    cold = triage_corpus(tiny_corpus, config)
    (cache_dir / "rescache.jsonl").write_text("garbage{{{\n")
    with pytest.warns(RuntimeWarning, match="corrupt row"):
        warm = triage_corpus(tiny_corpus, config)
    assert warm.cache_hits == 0
    assert [r.bucket for r in warm.results] \
        == [r.bucket for r in cold.results]


def test_cached_cause_evidence_round_trips(tmp_path):
    """The evidence half of an enriched signature (PR 7) must survive
    the cache: a reloaded cause signature-matches the original, so a
    warm verdict lands in the same bucket."""
    from repro.core.rootcause import CauseEvidence

    cache = ResultCache(tmp_path / "cache")
    cause = dataclasses.replace(
        _verdict().cause,
        evidence=CauseEvidence(trap_kind="out-of-bounds",
                               crash_fn="main",
                               expr_skeleton="(mem (add var c))",
                               taint_classes=("input",),
                               suffix_shape="d3"))
    cache.put(CacheKey("m", "c", "k"),
              CachedVerdict(cause=cause, exploitable=False, seconds=0.1))
    found = ResultCache(tmp_path / "cache").lookup(CacheKey("m", "c", "k"))
    assert found is not None
    assert found.cause == cause
    assert found.cause.signature() == cause.signature()
    assert found.cause.family() == cause.family()


def test_warm_rebucket_is_byte_identical_on_mixed_corpus(tmp_path):
    """Property (PR 7): re-running verdict synthesis over cached
    rescache rows yields byte-identical buckets — raw and refined —
    to a cold run, on a corpus mixing labeled and unlabeled reports."""
    from repro.core.triage_service import store_payload, verdict_view

    base = build_labeled_corpus(range(9000, 9005), duplicates=2,
                                shuffle_seed=5)
    entries = [
        dataclasses.replace(
            entry,
            report=dataclasses.replace(entry.report, true_cause=None))
        if index % 3 == 0 else entry
        for index, entry in enumerate(base.entries)
    ]
    corpus = dataclasses.replace(base, entries=entries)
    assert any(e.report.true_cause is None for e in corpus.entries)
    assert any(e.report.true_cause is not None for e in corpus.entries)

    config = TriageServiceConfig(jobs=1,
                                 cache_dir=str(tmp_path / "cache"))
    cold = triage_corpus(corpus, config)
    warm = triage_corpus(corpus, config)
    assert warm.triaged == 0
    assert warm.cache_hits > 0

    def view(result):
        return json.dumps(
            verdict_view(store_payload(result, corpus, config,
                                       complete=True)),
            sort_keys=True)

    assert view(warm) == view(cold)
    assert [r.bucket for r in warm.results] \
        == [r.bucket for r in cold.results]


def test_synthesizer_export_prime_round_trip():
    """The RES-level warm-start API: one synthesizer's exported
    component cache primes another over the same module without
    changing what it emits (the fuzz campaign's `cache-primed` oracle
    enforces this at scale; this is the unit-level contract)."""
    from repro.core.fingerprints import suffix_fingerprint
    from repro.core.res import RESConfig, ReverseExecutionSynthesizer
    from repro.workloads import TRIAGE_PROGRAM

    dump = TRIAGE_PROGRAM.trigger()
    config = RESConfig(max_depth=8, max_nodes=300)
    cold = ReverseExecutionSynthesizer(TRIAGE_PROGRAM.module, dump, config)
    cold_fps = [suffix_fingerprint(s) for s in cold.synthesize(
        min_depth=1, max_suffixes=6)]
    snapshot = json.loads(json.dumps(cold.export_solver_cache()))

    primed = ReverseExecutionSynthesizer(TRIAGE_PROGRAM.module, dump,
                                         config)
    assert primed.prime_solver_cache(snapshot) == len(snapshot["rows"])
    assert primed.prime_solver_cache(None) == 0
    warm_fps = [suffix_fingerprint(s) for s in primed.synthesize(
        min_depth=1, max_suffixes=6)]
    assert warm_fps == cold_fps
