"""Fleet-mode tests: sharded multi-process, multi-node intake.

The load-bearing guarantees, in the order the ISSUE states them:

* **ring** — admission sharding by coredump fingerprint is
  deterministic, total, balanced, and minimally disturbed by
  membership changes;
* **incremental rebucket** — the daemon's persistent
  :class:`IncrementalRefiner` produces the *same* assignment,
  hierarchy, and stats as the batch :func:`refine` pass, whatever
  order the verdicts settle in;
* **equivalence** — a drained fleet's report store is byte-identical
  under ``verdict_view`` to a single-node batch ``res triage`` run,
  cold and warm, for the 1×4 and 3×2 topologies;
* **redirects** — a misrouted submission answers 307 and the client
  follows it transparently (HTTP layer + URL-list round-robin);
* **journal segments** — per-node journals rotate and compact to a
  bounded spool, and the merged multi-node replay deterministically
  reconstructs identical settled state on every member;
* **fleet chaos** (``@pytest.mark.chaos``) — SIGKILL one of three
  nodes mid-intake under a seeded fault schedule: every acknowledged
  job still settles somewhere and the merged replay is clean.
"""

import json
import os
import random
import signal
import socket
import subprocess
import sys
import time
import urllib.request
from pathlib import Path

import pytest

import repro
from repro.core.bucketing import IncrementalRefiner, refine
from repro.core.triage_service import (
    TriageServiceConfig,
    store_payload,
    triage_corpus,
    verdict_view,
)
from repro.fuzz.triage_corpus import build_labeled_corpus
from repro.service import DaemonConfig, TriageDaemon, start_http_server
from repro.service.client import (
    FleetTargets,
    ServiceClientError,
    ServiceUnreachableError,
    get_job,
    submit_fleet,
    submit_report,
)
from repro.service.jobs import JobJournal, journal_file_for
from repro.service.ring import HashRing

SRC_DIR = Path(repro.__file__).resolve().parents[1]

CORPUS_SEEDS = range(9001, 9005)


@pytest.fixture(scope="module")
def corpus():
    built = build_labeled_corpus(CORPUS_SEEDS, duplicates=2,
                                 shuffle_seed=3)
    assert len(built.entries) == 8 and len(built.programs) == 4
    return built


def _service_config(**kwargs):
    defaults = dict(max_depth=8, max_nodes=300)
    defaults.update(kwargs)
    return TriageServiceConfig(**defaults)


@pytest.fixture(scope="module")
def batch(corpus):
    """One cold batch run: the verdict-view reference and the triaged
    reports the refiner tests replay in shuffled orders."""
    config = _service_config()
    result = triage_corpus(corpus, config)
    view = json.dumps(
        verdict_view(store_payload(result, corpus, config,
                                   complete=True)),
        sort_keys=True)
    return result, view


# ---------------------------------------------------------------------------
# Consistent-hash ring
# ---------------------------------------------------------------------------

def test_ring_owner_deterministic_total_and_balanced():
    nodes = ("alpha", "beta", "gamma")
    ring = HashRing(nodes)
    keys = [f"fingerprint-{index}" for index in range(600)]
    owners = [ring.owner(key) for key in keys]
    # Total and deterministic: every key maps to a member, twice.
    assert set(owners) <= set(nodes)
    assert owners == [HashRing(reversed(nodes)).owner(key)
                      for key in keys], \
        "ownership must not depend on membership enumeration order"
    # Balanced within consistent-hashing tolerance: no node owns more
    # than half or less than a tenth of a 600-key universe.
    spread = ring.spread(keys)
    assert set(spread) == set(nodes)
    assert all(60 <= count <= 300 for count in spread.values()), spread


def test_ring_membership_change_moves_few_keys():
    keys = [f"crash-{index}" for index in range(500)]
    three = HashRing(("alpha", "beta", "gamma"))
    four = HashRing(("alpha", "beta", "gamma", "delta"))
    moved = sum(1 for key in keys
                if three.owner(key) != four.owner(key))
    # Only keys adopted by the new node may move (plus vnode-boundary
    # noise); mod-N hashing would move ~75% of them.
    assert moved <= len(keys) // 2, f"{moved} of {len(keys)} keys moved"
    assert all(four.owner(key) == "delta"
               for key in keys if three.owner(key) != four.owner(key))


def test_ring_single_node_owns_everything():
    ring = HashRing(("solo",))
    assert {ring.owner(f"k{index}") for index in range(50)} == {"solo"}


def test_fleet_targets_round_robin_rotation():
    targets = FleetTargets(["http://a/", "http://b", "http://a",
                            "http://c"])
    assert targets.urls == ["http://a", "http://b", "http://c"]
    assert targets.next_order() == ["http://a", "http://b", "http://c"]
    assert targets.next_order() == ["http://b", "http://c", "http://a"]
    assert targets.next_order() == ["http://c", "http://a", "http://b"]
    assert targets.next_order() == ["http://a", "http://b", "http://c"]
    with pytest.raises(ServiceClientError, match="no daemon URL"):
        FleetTargets([])


# ---------------------------------------------------------------------------
# Incremental rebucket == batch refine, any settle order
# ---------------------------------------------------------------------------

def _refinement_views(refinement, items):
    assignment = {item.result.report_id:
                  refinement.bucket_of(item.result.report_id,
                                       item.result.bucket)
                  for item in items}
    return assignment, refinement.hierarchy, refinement.stats


def test_incremental_refiner_matches_batch_any_order(batch):
    result, __ = batch
    items = list(result.reports)
    reference = _refinement_views(refine(items), items)
    orders = [items, list(reversed(items))]
    for seed in (7, 23):
        shuffled = list(items)
        random.Random(seed).shuffle(shuffled)
        orders.append(shuffled)
    for order in orders:
        refiner = IncrementalRefiner()
        for item in order:
            refiner.add(item)
        assert _refinement_views(refiner.refinement(), items) \
            == reference, "incremental refinement diverged from batch"


def test_incremental_refiner_stable_under_interleaved_reads(batch):
    """Reading the refinement mid-stream (what the daemon's monitor
    tick does) must not perturb the final state."""
    result, __ = batch
    items = list(result.reports)
    reference = _refinement_views(refine(items), items)
    refiner = IncrementalRefiner()
    for item in items:
        refiner.add(item)
        refiner.refinement()  # interleaved read
    assert _refinement_views(refiner.refinement(), items) == reference


# ---------------------------------------------------------------------------
# Fleet topology equivalence: 1x4 and 3x2 == batch, cold and warm
# ---------------------------------------------------------------------------

def _fleet_daemon(tmp_path, node, peers, workers=2, spool="spool",
                  cache_dir=None, **kwargs):
    service = _service_config(
        store_path=str(tmp_path / f"store-{node}.json"),
        cache_dir=cache_dir)
    config = DaemonConfig(service=service,
                          spool_dir=str(tmp_path / spool),
                          workers=workers, node_id=node, peers=peers,
                          **kwargs)
    return TriageDaemon(config)


def _submit_routed(daemons, corpus):
    """Submit every entry in corpus order, rotating the first attempt
    across the fleet and following 307s by hand (the in-process mirror
    of the client's redirect following).  Returns the 307 count."""
    names = sorted(daemons)
    redirects = 0
    for index, entry in enumerate(corpus.entries):
        spec = corpus.programs[entry.program_key]
        program = {"key": spec.key, "source": spec.source,
                   "name": spec.name}
        core = entry.report.coredump.to_json()
        daemon = daemons[names[index % len(names)]]
        for __ in range(2):
            status, body = daemon.submit(
                program, core, report_id=entry.report.report_id,
                true_cause=entry.report.true_cause)
            if status != 307:
                break
            redirects += 1
            daemon = daemons[body["owner"]]
        assert status in (200, 202), (status, body)
    return redirects


def _wait_fleet_converged(daemons, total, timeout=60.0):
    """Every node idle and every node's job table grown to the full
    fleet history (its own jobs + adopted peer shadows)."""
    for daemon in daemons.values():
        assert daemon.wait_idle(timeout)
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if all(d.healthz()["jobs"] == total for d in daemons.values()):
            return
        time.sleep(0.05)
    counts = {name: d.healthz()["jobs"] for name, d in daemons.items()}
    raise AssertionError(f"fleet never converged to {total} jobs: "
                         f"{counts}")


def _node_view(tmp_path, node):
    payload = json.loads((tmp_path / f"store-{node}.json").read_text())
    assert payload["complete"] is True
    return json.dumps(verdict_view(payload), sort_keys=True)


def _run_fleet(tmp_path, corpus, nodes, workers, spool="spool",
               cache_dir=None):
    peers = {node: "" for node in nodes}
    daemons = {node: _fleet_daemon(tmp_path, node, peers,
                                   workers=workers, spool=spool,
                                   cache_dir=cache_dir)
               for node in nodes}
    for daemon in daemons.values():
        daemon.start()
    redirects = _submit_routed(daemons, corpus)
    _wait_fleet_converged(daemons, len(corpus.entries))
    for daemon in daemons.values():
        daemon.shutdown(drain=True)
    return daemons, redirects


def test_fleet_3x2_verdicts_equal_batch_cold_and_warm(tmp_path, corpus,
                                                      batch):
    __, batch_view = batch
    cache_dir = str(tmp_path / "rescache")
    nodes = ("node-a", "node-b", "node-c")
    daemons, redirects = _run_fleet(tmp_path, corpus, nodes, workers=2,
                                    cache_dir=cache_dir)
    # Misrouted submissions were redirected, and each daemon counted
    # exactly the 307s it answered.
    assert redirects == sum(d.metrics.snapshot()["redirects_total"]
                            for d in daemons.values())
    # Every node's flushed store is byte-identical to the batch run.
    for node in nodes:
        assert _node_view(tmp_path, node) == batch_view, \
            f"{node} store diverged from the batch reference"
    # The fleet split the drive work: nobody triaged everything, and
    # the four unique drives happened exactly once fleet-wide.
    verdicts = {name: d.metrics.snapshot()["verdicts_total"]
                for name, d in daemons.items()}
    assert sum(verdicts.values()) == len(corpus.programs), verdicts

    # Warm re-run: a fresh fleet over the shared cache answers every
    # drive from warm hits and must still match the cold batch view.
    warm, __ = _run_fleet(tmp_path, corpus, nodes, workers=2,
                          spool="spool-warm", cache_dir=cache_dir)
    for node in nodes:
        assert _node_view(tmp_path, node) == batch_view, \
            f"warm {node} store diverged from the batch reference"
    warm_snapshot = [d.metrics.snapshot() for d in warm.values()]
    assert sum(s["warm_hits_total"] for s in warm_snapshot) \
        == sum(s["verdicts_total"] for s in warm_snapshot) > 0

    # Deterministic merge-on-replay: a fresh member over the same
    # spool reconstructs the full settled fleet state from the union
    # of per-node segments, without driving anything.
    reborn = _fleet_daemon(tmp_path, "node-a",
                           {node: "" for node in nodes}, workers=0)
    health = reborn.healthz()
    assert health["jobs"] == len(corpus.entries)
    assert health["queue_depth"] == 0, \
        "merged replay must resume settled, not re-queue"
    original = daemons["node-a"]
    for entry in corpus.entries:
        report_id = entry.report.report_id
        before = next(job for job in original._by_seq
                      if job.report_id == report_id)
        after = next(job for job in reborn._by_seq
                     if job.report_id == report_id)
        assert repr(after.verdict.result.bucket) \
            == repr(before.verdict.result.bucket), report_id
    reborn.shutdown()


def test_fleet_1x4_verdicts_equal_batch_cold_and_warm(tmp_path, corpus,
                                                      batch):
    __, batch_view = batch
    cache_dir = str(tmp_path / "rescache")
    daemons, redirects = _run_fleet(tmp_path, corpus, ("solo",),
                                    workers=4, cache_dir=cache_dir)
    assert redirects == 0  # one node owns the whole ring
    assert _node_view(tmp_path, "solo") == batch_view
    journal = tmp_path / "spool" / journal_file_for("solo")
    assert journal.exists(), "fleet mode journals per-node segments"
    warm, __ = _run_fleet(tmp_path, corpus, ("solo",), workers=4,
                          spool="spool-warm", cache_dir=cache_dir)
    assert _node_view(tmp_path, "solo") == batch_view
    snapshot = warm["solo"].metrics.snapshot()
    assert snapshot["warm_hits_total"] == snapshot["verdicts_total"] > 0


# ---------------------------------------------------------------------------
# HTTP: owning-node redirect + client URL lists
# ---------------------------------------------------------------------------

@pytest.fixture()
def http_pair(tmp_path):
    """Two fleet nodes behind live HTTP servers, peers wired to the
    bound ports."""
    peers = {"node-a": "", "node-b": ""}
    daemons = {node: _fleet_daemon(tmp_path, node, peers, workers=1)
               for node in peers}
    servers = {}
    for node, daemon in daemons.items():
        daemon.start()
        servers[node] = start_http_server(daemon)
    urls = {node: "http://%s:%d" % server.server_address[:2]
            for node, server in servers.items()}
    peers.update(urls)  # every daemon shares this dict by reference
    yield daemons, urls
    for node in daemons:
        servers[node].shutdown()
        daemons[node].shutdown(drain=True)


def test_http_redirect_followed_transparently(http_pair, corpus):
    daemons, urls = http_pair
    # Submit every entry to node-a only: anything node-b owns must be
    # redirected and transparently re-POSTed by the client.
    job_urls = {}
    for entry in corpus.entries:
        spec = corpus.programs[entry.program_key]
        status, body = submit_report(
            urls["node-a"],
            {"key": spec.key, "source": spec.source, "name": spec.name},
            entry.report.coredump.to_json(),
            report_id=entry.report.report_id,
            true_cause=entry.report.true_cause)
        assert status in (200, 202), body
        job_urls[body["job_id"]] = body["job_id"].rpartition("-j")[0]
    owners = set(job_urls.values())
    assert owners == {"node-a", "node-b"}, \
        f"expected both nodes to own work, got {owners}"
    redirected = daemons["node-a"].metrics.snapshot()["redirects_total"]
    assert redirected == sum(1 for owner in job_urls.values()
                             if owner == "node-b")
    # GET /jobs/<id> for a peer-minted id answers via redirect (or the
    # shadow tier once synced) from either node.
    for job_id in job_urls:
        for url in urls.values():
            assert get_job(url, job_id)["job_id"] == job_id
    # An id minted by a configured peer but unknown everywhere 307s to
    # the owner, whose honest 404 surfaces as the client error.
    with pytest.raises(ServiceClientError, match="no such job"):
        get_job(urls["node-a"], "node-b-j999999")


def test_client_fleet_failover_and_round_robin(http_pair, corpus):
    daemons, urls = http_pair
    dead = "http://127.0.0.1:1"
    targets = FleetTargets([dead, urls["node-a"], urls["node-b"]])
    entry = corpus.entries[0]
    spec = corpus.programs[entry.program_key]
    program = {"key": spec.key, "source": spec.source, "name": spec.name}
    status, body, answered = submit_fleet(
        targets, program, entry.report.coredump.to_json(),
        report_id=entry.report.report_id,
        true_cause=entry.report.true_cause)
    assert status in (200, 202)
    assert answered in urls.values(), \
        "the dead first target must be skipped, not fatal"
    assert body["job_id"].rpartition("-j")[0] in ("node-a", "node-b")
    with pytest.raises(ServiceUnreachableError):
        submit_fleet(FleetTargets([dead]), program,
                     entry.report.coredump.to_json())


# ---------------------------------------------------------------------------
# Journal segments: rotation, compaction, bounded spool, clean replay
# ---------------------------------------------------------------------------

def test_journal_rotation_compaction_and_replay(tmp_path, corpus):
    daemon = _fleet_daemon(tmp_path, "solo", {}, workers=1)
    daemon.start()
    _submit_routed({"solo": daemon}, corpus)
    assert daemon.wait_idle(120)
    journal = daemon.journal
    before = sum(path.stat().st_size for path in journal.all_paths()
                 if path.exists())
    # Arm rotation only now, so ``before`` measures the unrotated
    # journal (the monitor would otherwise compact it mid-run), then
    # drive maintenance to its fixed point deterministically.
    journal.rotate_bytes = 2048
    for __ in range(16):
        daemon._journal_maintenance()
    daemon.shutdown(drain=True)
    segments = journal.segment_paths()
    assert segments, "an 8-report journal must have rotated at ~2 KB"
    after = sum(path.stat().st_size for path in journal.all_paths()
                if path.exists())
    assert after < before, \
        f"compaction must shrink the spool ({before} -> {after} bytes)"
    # Settled rows collapsed: closed segments hold merged rows, and
    # replay over segments + active file reconstructs every verdict.
    merged = [json.loads(line)
              for path in segments
              for line in path.read_text().splitlines()]
    assert any(row["event"] == "settled" for row in merged)
    replayed = JobJournal(daemon.config.journal_path).replay(
        _service_config())
    assert len(replayed) == len(corpus.entries)
    assert all(job.settled for job in replayed)
    by_id = {job.report_id: job for job in replayed}
    for job in daemon._by_seq:
        assert repr(by_id[job.report_id].verdict.result.bucket) \
            == repr(job.verdict.result.bucket)
    # And a restarted daemon resumes the compacted history settled.
    reborn = TriageDaemon(daemon.config)
    assert reborn.healthz()["jobs"] == len(corpus.entries)
    assert reborn.healthz()["queue_depth"] == 0
    reborn.shutdown()


# ---------------------------------------------------------------------------
# Fleet smoke cycle (tier-1 CI gate) and fleet chaos (chaos suite)
# ---------------------------------------------------------------------------

def _free_ports(count):
    sockets = []
    try:
        for __ in range(count):
            sock = socket.socket()
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.bind(("127.0.0.1", 0))
            sockets.append(sock)
        return [sock.getsockname()[1] for sock in sockets]
    finally:
        for sock in sockets:
            sock.close()


def _spawn_fleet_node(cwd, node, port, peers, extra=(), fault_env=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get(
        "PYTHONPATH", "")
    for key in ("RES_FAULT_SPEC", "RES_FAULT_LOG"):
        env.pop(key, None)
    if fault_env:
        env.update(fault_env)
    peer_arg = ",".join(f"{name}=http://127.0.0.1:{peer_port}"
                        for name, peer_port in peers.items())
    stderr = open(Path(cwd) / f"serve-{node}-err.log", "a")
    # Each node is its own process group: killing the group is how a
    # node dies in real life — the daemon AND its worker processes go
    # together (surviving workers would hold the inherited listening
    # socket and block the restart with EADDRINUSE).
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--port", str(port), "--spool", "spool",
         "--store", f"store-{node}.json", "--cache-dir", "cache",
         "--max-depth", "8", "--max-nodes", "300", "--workers", "2",
         "--node-id", node, "--peers", peer_arg,
         "--retry-backoff", "0.02", *extra],
        cwd=str(cwd), env=env, stdout=subprocess.PIPE, stderr=stderr,
        text=True, start_new_session=True)
    stderr.close()
    banner = proc.stdout.readline().strip()
    assert "listening on" in banner, f"{node} failed to start: {banner!r}"
    return proc


def _fleet_drained(urls, timeout):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            healths = [json.loads(urllib.request.urlopen(
                url + "/healthz", timeout=10).read()) for url in urls]
        except OSError:
            time.sleep(0.2)
            continue
        if all(h["queue_depth"] == 0 and h["in_flight"] == 0
               and h["delayed_retries"] == 0 for h in healths):
            return True
        time.sleep(0.1)
    return False


def _fleet_synced(urls, total, timeout):
    """Every node's job table (own + adopted shadows) at ``total``."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            counts = [json.loads(urllib.request.urlopen(
                url + "/healthz", timeout=10).read())["jobs"]
                for url in urls]
        except OSError:
            time.sleep(0.2)
            continue
        if all(count == total for count in counts):
            return True
        time.sleep(0.1)
    return False


def _http_shutdown(proc, base_url):
    request = urllib.request.Request(
        base_url + "/shutdown",
        data=json.dumps({"drain": True}).encode(),
        headers={"Content-Type": "application/json"}, method="POST")
    urllib.request.urlopen(request).read()
    return proc.wait(timeout=60)


def test_fleet_smoke_cycle(tmp_path, corpus):
    """The CI gate: a three-node fleet accepts a corpus through the
    URL-list client, settles everything fleet-wide, and shuts down
    clean with every node's store complete."""
    ports = dict(zip(("node-a", "node-b", "node-c"), _free_ports(3)))
    procs = {}
    try:
        for node, port in ports.items():
            procs[node] = _spawn_fleet_node(tmp_path, node, port, ports)
        urls = [f"http://127.0.0.1:{port}" for port in ports.values()]
        targets = FleetTargets(urls)
        acked = []
        for entry in corpus.entries:
            spec = corpus.programs[entry.program_key]
            status, body, __ = submit_fleet(
                targets,
                {"key": spec.key, "source": spec.source,
                 "name": spec.name},
                entry.report.coredump.to_json(),
                report_id=entry.report.report_id,
                true_cause=entry.report.true_cause)
            assert status in (200, 202), body
            acked.append(body["job_id"])
        assert _fleet_drained(urls, timeout=120.0), \
            "the fleet never drained"
        assert _fleet_synced(urls, len(corpus.entries), timeout=30.0), \
            "shadow sync never converged fleet-wide"
        for job_id in acked:
            payload = get_job(urls[0], job_id)
            assert payload["state"] == "done", payload
        for node, proc in list(procs.items()):
            assert _http_shutdown(
                proc, f"http://127.0.0.1:{ports[node]}") == 0
            procs.pop(node)
        for node in ports:
            store = json.loads(
                (tmp_path / f"store-{node}.json").read_text())
            assert store["complete"] is True
            assert len(store["results"]) == len(corpus.entries), \
                f"{node} store is missing fleet-wide history"
    finally:
        for proc in procs.values():
            if proc.poll() is None:
                try:
                    os.killpg(proc.pid, signal.SIGKILL)
                except ProcessLookupError:
                    pass
                proc.wait(timeout=10)


@pytest.mark.chaos
def test_fleet_chaos_node_sigkill_loses_nothing(tmp_path, corpus):
    """SIGKILL one of three nodes mid-intake under a seeded fault
    schedule: every acknowledged job settles somewhere, and the merged
    per-node journals replay clean with all of them."""
    seed = 1729
    spec_path = tmp_path / "faults.json"
    spec_path.write_text(json.dumps({
        "seed": seed,
        "sites": {
            "worker.task": {"prob": 0.2, "kinds": ["crash"], "max": 2},
            "ioutil.append_line": {"prob": 0.1, "max": 3,
                                   "kinds": ["torn", "fsync"]},
        },
    }))
    fault_env = {"RES_FAULT_SPEC": str(spec_path),
                 "RES_FAULT_LOG": str(tmp_path / "fault-log.jsonl")}
    ports = dict(zip(("node-a", "node-b", "node-c"), _free_ports(3)))
    url_of = {node: f"http://127.0.0.1:{port}"
              for node, port in ports.items()}
    extra = ("--max-attempts", "4", "--quarantine-after", "2",
             "--watchdog-timeout", "2.0")
    procs = {}
    acked = {}
    deferred = []

    def push(entries, targets):
        for entry in entries:
            spec = corpus.programs[entry.program_key]
            program = {"key": spec.key, "source": spec.source,
                       "name": spec.name}
            try:
                status, body, __ = submit_fleet(
                    targets, program,
                    entry.report.coredump.to_json(),
                    report_id=entry.report.report_id,
                    true_cause=entry.report.true_cause)
            except (ServiceUnreachableError, ServiceClientError):
                # Owned by the dead node: nothing was acknowledged, so
                # nothing may be lost — resubmit after the restart.
                deferred.append(entry)
                continue
            assert status in (200, 202), (status, body)
            acked[entry.report.report_id] = body["job_id"]

    try:
        for node, port in ports.items():
            procs[node] = _spawn_fleet_node(tmp_path, node, port, ports,
                                            extra=extra,
                                            fault_env=fault_env)
        targets = FleetTargets(list(url_of.values()))
        push(corpus.entries[:4], targets)
        # Mid-intake node loss, no mercy given.
        time.sleep(random.Random(seed).uniform(0.1, 0.5))
        os.killpg(procs["node-b"].pid, signal.SIGKILL)
        procs["node-b"].wait(timeout=30)
        push(corpus.entries[4:],
             FleetTargets([url_of["node-a"], url_of["node-c"]]))
        # The killed node returns (faults off), resumes its journal,
        # and the deferred submissions land.
        procs["node-b"] = _spawn_fleet_node(tmp_path, "node-b",
                                            ports["node-b"], ports,
                                            extra=extra)
        for __ in range(5):
            if not deferred:
                break
            retry, deferred = deferred, []
            push(retry, targets)
            if deferred:  # a 503 under torn-append faults: bounded
                time.sleep(0.5)
        assert not deferred, \
            f"resubmissions kept failing after the node came back: " \
            f"{[e.report.report_id for e in deferred]}"
        assert _fleet_drained(list(url_of.values()), timeout=180.0), \
            "the fleet never drained after the node came back"
        for report_id, job_id in acked.items():
            payload = get_job(url_of["node-a"], job_id)
            assert payload["state"] in ("done", "quarantined"), \
                (f"acknowledged job {job_id} ({report_id}) ended "
                 f"{payload['state']}: {payload.get('error')}")
        for node, proc in list(procs.items()):
            assert _http_shutdown(proc, url_of[node]) == 0
            procs.pop(node)
        # Merged replay: the union of per-node journals reconstructs
        # every acknowledged job, cleanly, on a cold reader.
        settled_ids = set()
        for node in ports:
            replayed = JobJournal(
                tmp_path / "spool" / journal_file_for(node)).replay(
                _service_config())
            settled_ids.update(job.job_id for job in replayed
                               if job.settled)
        missing = set(acked.values()) - settled_ids
        assert not missing, \
            f"acknowledged jobs fell out of the merged journals: " \
            f"{sorted(missing)}"
    finally:
        for proc in procs.values():
            if proc.poll() is None:
                try:
                    os.killpg(proc.pid, signal.SIGKILL)
                except ProcessLookupError:
                    pass
                proc.wait(timeout=10)
