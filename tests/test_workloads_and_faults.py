"""Workload catalog integrity and fault injection."""

import pytest

from repro.ir.verify import verify_module
from repro.vm import ALUFaultInjector, RunStatus, TrapKind, VM, flip_bit
from repro.vm.faults import random_bit_flips, stray_dma_write
from repro.workloads import REGISTRY, generate_corpus
from repro.workloads.hwfaults import standard_scenarios


@pytest.mark.parametrize("name", REGISTRY.names())
def test_every_workload_compiles_and_verifies(name):
    workload = REGISTRY.get(name)
    verify_module(workload.module)


@pytest.mark.parametrize("name", REGISTRY.names())
def test_every_workload_triggers_its_expected_trap(name):
    workload = REGISTRY.get(name)
    if name == "triage_corpus":
        pytest.skip("driven via generate_corpus")
    dump = workload.trigger()
    assert dump.trap.kind is workload.expected_trap


def test_registry_rejects_duplicates():
    from repro.errors import ReproError
    from repro.workloads import Workload, WorkloadRegistry

    reg = WorkloadRegistry()
    w = REGISTRY.get("race_flag")
    reg.register(w)
    with pytest.raises(ReproError):
        reg.register(w)


def test_corpus_generation_is_deterministic_and_labelled():
    a = generate_corpus(6, seed=3)
    b = generate_corpus(6, seed=3)
    assert [r.true_cause for r in a] == [r.true_cause for r in b]
    assert {r.true_cause for r in a} <= {"overflow-into-state", "logic-store"}
    for report in a:
        assert report.coredump.trap.kind is TrapKind.ASSERT_FAIL


def test_corpus_generation_byte_identical_and_rng_isolated():
    """Same seed → byte-identical coredumps; the module-level ``random``
    state must play no part (regression: an unseeded draw would make
    triage corpora irreproducible across runs)."""
    import random

    from repro.workloads import sample_corpus_params

    random.seed(11)
    a = generate_corpus(5, seed=9)
    random.seed(999)  # perturb global state between runs
    b = generate_corpus(5, seed=9)
    assert [r.report_id for r in a] == [r.report_id for r in b]
    assert [r.coredump.to_json() for r in a] \
        == [r.coredump.to_json() for r in b]

    # An explicit RNG threads through and matches the seed path.
    c = generate_corpus(5, rng=random.Random(9))
    assert [r.coredump.to_json() for r in c] \
        == [r.coredump.to_json() for r in a]

    # Different seeds draw different parameter sequences.
    params_9 = sample_corpus_params(32, random.Random(9))
    params_10 = sample_corpus_params(32, random.Random(10))
    assert params_9 != params_10


def test_flip_bit_changes_exactly_one_bit():
    from repro.workloads import HW_CANARY

    dump = HW_CANARY.trigger()
    addr = HW_CANARY.module.layout()["stamp"]
    original = dump.read(addr)
    fault = flip_bit(dump, addr, bit=3)
    assert dump.read(addr) == original ^ 8
    assert fault.original == original


def test_stray_dma_write_overwrites():
    from repro.workloads import HW_CANARY

    dump = HW_CANARY.trigger()
    addr = HW_CANARY.module.layout()["stamp"]
    stray_dma_write(dump, addr, 0xDEAD)
    assert dump.read(addr) == 0xDEAD


def test_random_bit_flips_reproducible():
    from repro.workloads import HW_CANARY

    dump_a = HW_CANARY.trigger()
    dump_b = HW_CANARY.trigger()
    faults_a = random_bit_flips(dump_a, 3, seed=5)
    faults_b = random_bit_flips(dump_b, 3, seed=5)
    assert [(f.addr, f.bit) for f in faults_a] == \
        [(f.addr, f.bit) for f in faults_b]


def test_alu_injector_fires_once():
    from repro.workloads import HW_CANARY

    injector = ALUFaultInjector(op="add", fire_at=1, xor_mask=2)
    result = VM(HW_CANARY.module, inputs=[4], alu_fault=injector).run()
    assert injector.fired is not None
    assert injector.fired.corrupted == injector.fired.original ^ 2


def test_standard_scenarios_cover_both_truths():
    scenarios = standard_scenarios()
    assert any(s.is_hardware for s in scenarios)
    assert any(not s.is_hardware for s in scenarios)
    assert any(s.is_hardware and not s.detectable for s in scenarios)
