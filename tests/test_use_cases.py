"""The paper's three use cases (§3): triage, hardware errors, debugging."""

import pytest

from repro.core import RESConfig, ReverseExecutionSynthesizer
from repro.core.debugger import ReverseDebugger
from repro.core.exploitability import (
    Exploitability,
    classify_heuristic,
    classify_with_res,
)
from repro.core.hwerror import HardwareVerdict, diagnose
from repro.core.rootcause import analyze, find_root_cause
from repro.core.triage import (
    BugReport,
    TriageEngine,
    bucket_accuracy,
    misbucketed_fraction,
)
from repro.baselines.wer import triage as wer_triage
from repro.workloads import (
    ATOMICITY_READCHECK,
    DIV_BY_ZERO,
    HW_CANARY,
    PAPER_EVAL_BUGS,
    RACE_COUNTER,
    RACE_FLAG,
    TAINTED_OVERFLOW,
    UNTAINTED_OVERFLOW,
    USE_AFTER_FREE,
    generate_corpus,
)
from repro.workloads.hwfaults import (
    alu_miscompute,
    clean_scenario,
    flipped_derived_word,
    flipped_untouched_word,
    flipped_written_word,
)


# ---------------------------------------------------------------------------
# §4: root causes of the three concurrency bugs (the paper's evaluation)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("workload", PAPER_EVAL_BUGS,
                         ids=[w.name for w in PAPER_EVAL_BUGS])
def test_paper_eval_concurrency_root_causes(workload):
    dump = workload.trigger()
    cause, suffixes = find_root_cause(
        workload.module, dump, RESConfig(max_depth=16, max_nodes=8000))
    assert cause is not None
    assert cause.kind in ("data-race", "atomicity-violation")
    assert len(cause.threads) == 2
    # no false positives: every supporting suffix replays exactly
    assert all(s.report.ok for s in suffixes)


def test_root_cause_use_after_free():
    dump = USE_AFTER_FREE.trigger()
    cause, _ = find_root_cause(USE_AFTER_FREE.module, dump,
                               RESConfig(max_depth=12))
    assert cause.kind == "use-after-free"


def test_root_cause_div_by_zero():
    dump = DIV_BY_ZERO.trigger()
    cause, _ = find_root_cause(DIV_BY_ZERO.module, dump,
                               RESConfig(max_depth=12))
    assert cause.kind == "div-by-zero"


def test_root_cause_signature_is_stable():
    dump = RACE_FLAG.trigger()
    causes = set()
    for _ in range(2):
        cause, _ = find_root_cause(RACE_FLAG.module, dump,
                                   RESConfig(max_depth=14, max_nodes=6000))
        causes.add(cause.signature())
    assert len(causes) == 1


# ---------------------------------------------------------------------------
# §3.1: triage
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(12, seed=1)


def test_wer_splits_causes_across_stack_buckets(corpus):
    from repro.workloads import TRIAGE_PROGRAM

    results = wer_triage(corpus)
    buckets = {r.bucket for r in results}
    causes = {r.true_cause for r in corpus}
    # more buckets than causes: the stack aliasing WER suffers from
    assert len(buckets) > len(causes)


def test_res_triage_beats_wer(corpus):
    from repro.workloads import TRIAGE_PROGRAM

    engine = TriageEngine(TRIAGE_PROGRAM.module,
                          RESConfig(max_depth=24, max_nodes=4000))
    res_results = engine.triage(corpus)
    wer_results = wer_triage(corpus)
    res_acc = bucket_accuracy(res_results, corpus)
    wer_acc = bucket_accuracy(wer_results, corpus)
    assert res_acc > wer_acc
    assert misbucketed_fraction(res_results, corpus) \
        <= misbucketed_fraction(wer_results, corpus)


# ---------------------------------------------------------------------------
# §3.1: exploitability
# ---------------------------------------------------------------------------

def test_res_flags_tainted_overflow_exploitable():
    dump = TAINTED_OVERFLOW.trigger()
    verdict = classify_with_res(TAINTED_OVERFLOW.module, dump,
                                RESConfig(max_depth=12))
    assert verdict.rating is Exploitability.EXPLOITABLE


def test_res_clears_untainted_overflow():
    dump = UNTAINTED_OVERFLOW.trigger()
    verdict = classify_with_res(UNTAINTED_OVERFLOW.module, dump,
                                RESConfig(max_depth=12))
    assert verdict.rating is Exploitability.PROBABLY_NOT


def test_heuristic_baseline_false_positives():
    """!exploitable-style rating is fooled by the untainted twin."""
    dump = UNTAINTED_OVERFLOW.trigger()
    assert classify_heuristic(dump).rating is Exploitability.EXPLOITABLE


# ---------------------------------------------------------------------------
# §3.2: hardware errors
# ---------------------------------------------------------------------------

def test_clean_coredump_is_software():
    sc = clean_scenario()
    assert diagnose(HW_CANARY.module, sc.coredump).verdict \
        is HardwareVerdict.SOFTWARE


def test_bit_flip_in_written_word_detected():
    sc = flipped_written_word()
    assert diagnose(HW_CANARY.module, sc.coredump).verdict \
        is HardwareVerdict.HARDWARE


def test_cpu_style_inconsistency_detected():
    sc = flipped_derived_word()
    assert diagnose(HW_CANARY.module, sc.coredump).verdict \
        is HardwareVerdict.HARDWARE


def test_alu_miscompute_detected():
    sc = alu_miscompute()
    assert diagnose(HW_CANARY.module, sc.coredump).verdict \
        is HardwareVerdict.HARDWARE


def test_untouched_flip_is_the_admitted_blind_spot():
    """The paper concedes full accuracy needs all suffixes; corruption
    outside every suffix's write set passes as software."""
    sc = flipped_untouched_word()
    assert diagnose(HW_CANARY.module, sc.coredump).verdict \
        is HardwareVerdict.SOFTWARE


# ---------------------------------------------------------------------------
# §3.3: reverse debugging
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def debug_session():
    dump = RACE_FLAG.trigger()
    res = ReverseExecutionSynthesizer(RACE_FLAG.module, dump,
                                      RESConfig(max_depth=14, max_nodes=8000))
    chosen = None
    for s in res.suffixes():
        chosen = s
        if len(s.suffix.threads_involved()) > 1:
            break
    return ReverseDebugger(RACE_FLAG.module, chosen)


def test_debugger_runs_to_failure(debug_session):
    dbg = debug_session
    pc = dbg.run_to_failure()
    assert pc == dbg.suffix.coredump.trap.pc
    dbg.reverse_step(dbg.total_steps)


def test_debugger_reverse_step_is_deterministic(debug_session):
    dbg = debug_session
    dbg.run_to_failure()
    end_pc = dbg.current_pc()
    dbg.reverse_step(2)
    dbg.step(2)
    assert dbg.current_pc() == end_pc
    dbg.reverse_step(dbg.total_steps)


def test_debugger_prints_source_variables(debug_session):
    dbg = debug_session
    dbg.run_to_failure()
    # 'd' holds the stale read of data (the assert's operand)
    value = dbg.print_var("d", tid=dbg.suffix.coredump.trap.tid)
    assert value is not None and value != 42
    dbg.reverse_step(dbg.total_steps)


def test_debugger_focus_sets(debug_session):
    dbg = debug_session
    layout = RACE_FLAG.module.layout()
    touched = dbg.focus_read_set() | dbg.focus_write_set()
    assert layout["flag"] in touched or layout["data"] in touched


def test_debugger_info_threads(debug_session):
    info = debug_session.info_threads()
    assert 0 in info
