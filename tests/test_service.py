"""Tests for the crash-intake triage daemon (``src/repro/service/``).

The load-bearing guarantees, in the order the ISSUE states them:

* **equivalence** — a drained daemon's report store is byte-identical
  under :func:`repro.core.triage_service.verdict_view` to a batch
  ``res triage`` run over the same submissions, cold *and* warm;
* **dedup** — a second submission of a known fingerprint settles
  instantly with ``dedup_of`` and never touches a worker;
* **backpressure** — a full queue answers 429 with a Retry-After;
* **durability** — a SIGKILLed daemon restarts from its journal and
  resumes every unsettled job (subprocess test, no mercy given);
* **graceful shutdown** — SIGTERM flushes the store, flags it
  interrupted, and leaves no worker behind.
"""

import json
import os
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

import repro
from repro.core.triage_service import (
    TriageServiceConfig,
    store_payload,
    triage_corpus,
    verdict_view,
)
from repro.fuzz.triage_corpus import build_labeled_corpus
from repro.service import DaemonConfig, TriageDaemon, start_http_server
from repro.service.client import (
    ServiceClientError,
    get_job,
    scan_directory,
    submit_report,
    wait_for_job,
    watch_directory,
)
from repro.service.jobs import JobJournal, JobState
from repro.workloads import FIGURE1_OVERFLOW

SRC_DIR = Path(repro.__file__).resolve().parents[1]

#: the standard small-but-real corpus: 4 armed fuzz programs, each
#: crash filed twice, shuffled like traffic (8 reports, 4 dedup hits)
CORPUS_SEEDS = range(9001, 9005)


@pytest.fixture(scope="module")
def corpus():
    built = build_labeled_corpus(CORPUS_SEEDS, duplicates=2,
                                 shuffle_seed=3)
    assert len(built.entries) == 8 and len(built.programs) == 4
    return built


def _service_config(tmp_path=None, **kwargs):
    defaults = dict(max_depth=8, max_nodes=300)
    defaults.update(kwargs)
    return TriageServiceConfig(**defaults)


def _daemon(tmp_path, workers=2, store=True, **kwargs):
    service_kwargs = {k: kwargs.pop(k) for k in
                      ("cache_dir", "warm_from") if k in kwargs}
    service = _service_config(
        store_path=str(tmp_path / "daemon-store.json") if store else None,
        **service_kwargs)
    config = DaemonConfig(service=service,
                          spool_dir=str(tmp_path / "spool"),
                          workers=workers, **kwargs)
    return TriageDaemon(config)


def _submit_corpus(daemon, corpus):
    """Submit every corpus entry in order (the daemon-side mirror of a
    batch run's corpus order); returns the per-entry responses."""
    responses = []
    for entry in corpus.entries:
        spec = corpus.programs[entry.program_key]
        status, body = daemon.submit(
            {"key": spec.key, "source": spec.source, "name": spec.name},
            entry.report.coredump.to_json(),
            report_id=entry.report.report_id,
            true_cause=entry.report.true_cause)
        assert status in (200, 202), body
        responses.append((status, body))
    return responses


def _batch_view(corpus, config):
    result = triage_corpus(corpus, config)
    return json.dumps(
        verdict_view(store_payload(result, corpus, config, complete=True)),
        sort_keys=True)


def _daemon_view(tmp_path):
    payload = json.loads((tmp_path / "daemon-store.json").read_text())
    assert payload["complete"] is True
    return json.dumps(verdict_view(payload), sort_keys=True)


# ---------------------------------------------------------------------------
# Equivalence: daemon == batch, cold and warm
# ---------------------------------------------------------------------------

def test_daemon_verdicts_equal_batch_cold(tmp_path, corpus):
    daemon = _daemon(tmp_path, workers=2)
    daemon.start()
    _submit_corpus(daemon, corpus)
    assert daemon.wait_idle(120)
    daemon.shutdown(drain=True)
    assert _daemon_view(tmp_path) == _batch_view(corpus, _service_config())


def test_daemon_verdicts_equal_batch_warm(tmp_path, corpus):
    # A prior batch run populates the cross-run cache ...
    cache_dir = str(tmp_path / "rescache")
    triage_corpus(corpus, _service_config(cache_dir=cache_dir))
    # ... so the daemon's workers answer everything from warm hits,
    # and the verdicts must still match a cold batch run exactly.
    daemon = _daemon(tmp_path, workers=2, cache_dir=cache_dir)
    daemon.start()
    _submit_corpus(daemon, corpus)
    assert daemon.wait_idle(120)
    daemon.shutdown(drain=True)
    assert _daemon_view(tmp_path) == _batch_view(corpus, _service_config())
    snapshot = daemon.metrics.snapshot()
    assert snapshot["warm_hits_total"] == snapshot["verdicts_total"] > 0
    assert snapshot["warm_hit_rate"] == 1.0


# ---------------------------------------------------------------------------
# Admission: dedup, priority, backpressure, validation
# ---------------------------------------------------------------------------

def _figure1_submission():
    dump = FIGURE1_OVERFLOW.trigger()
    program = {"key": "figure1_overflow",
               "source": FIGURE1_OVERFLOW.source,
               "name": "figure1_overflow"}
    return program, dump.to_json()


def test_dedup_second_submission_settles_instantly(tmp_path):
    daemon = _daemon(tmp_path, workers=1)
    daemon.start()
    program, core = _figure1_submission()
    status, first = daemon.submit(program, core, report_id="first")
    assert status == 202
    assert daemon.wait_idle(60)
    started = time.perf_counter()
    status, second = daemon.submit(program, core, report_id="second")
    instant = time.perf_counter() - started
    daemon.shutdown()
    assert status == 200  # known crash: verdict attached, WER-style
    assert second["state"] == "done"
    assert second["dedup_of"] == "first"
    assert second["verdict"]["bucket"] == \
        daemon.job_payload(first["job_id"])["verdict"]["bucket"]
    assert instant < 0.5, "dedup answer must not touch a worker"
    assert daemon.metrics.snapshot()["dedup_total"] == 1


def test_dedup_attaches_to_pending_representative(tmp_path):
    # Workers not started yet: the representative stays queued, so the
    # duplicate must attach instead of queueing a second drive.
    daemon = _daemon(tmp_path, workers=1)
    program, core = _figure1_submission()
    status, first = daemon.submit(program, core, report_id="rep")
    assert status == 202
    status, second = daemon.submit(program, core, report_id="dup")
    assert status == 202
    assert second["attached_to"] == first["job_id"]
    assert daemon.healthz()["queue_depth"] == 1  # one drive, two jobs
    daemon.start()
    assert daemon.wait_idle(60)
    daemon.shutdown()
    dup = daemon.job_payload(second["job_id"])
    assert dup["state"] == "done" and dup["dedup_of"] == "rep"
    assert daemon.metrics.snapshot()["verdicts_total"] == 1


def test_priority_new_fingerprints_ahead_of_resubmissions(tmp_path, corpus):
    daemon = _daemon(tmp_path, workers=0, store=False)
    entries = [corpus.entries[index] for index in (0, 1)]
    specs = [corpus.programs[e.program_key] for e in entries]
    core0 = entries[0].report.coredump.to_json()
    core1 = entries[1].report.coredump.to_json()
    program0 = {"key": specs[0].key, "source": specs[0].source}
    program1 = {"key": specs[1].key, "source": specs[1].source}
    daemon.submit(program0, core0, report_id="a")
    # Forced re-submission of a seen fingerprint: deprioritized.
    status, forced = daemon.submit(program0, core0, report_id="a2",
                                   force=True)
    assert status == 202 and forced["priority"] == 1
    # A never-seen fingerprint submitted later still overtakes it.
    status, fresh = daemon.submit(program1, core1, report_id="b")
    assert status == 202 and fresh["priority"] == 0
    order = [daemon._jobs[job_id].report_id
             for __, __, job_id in sorted(daemon._heap)]
    assert order == ["a", "b", "a2"]
    daemon.shutdown()


def test_backpressure_429_with_retry_after(tmp_path, corpus):
    daemon = _daemon(tmp_path, workers=0, store=False, max_queue=2)
    responses = []
    for index, entry in enumerate(corpus.entries[:4]):
        spec = corpus.programs[entry.program_key]
        responses.append(daemon.submit(
            {"key": spec.key, "source": spec.source},
            entry.report.coredump.to_json(),
            report_id=f"r{index}", force=True))
    daemon.shutdown()
    statuses = [status for status, __ in responses]
    assert statuses[:2] == [202, 202]
    assert statuses[2] == 429 and statuses[3] == 429
    refused = responses[2][1]
    assert refused["retry_after_seconds"] >= 1
    assert daemon.metrics.snapshot()["rejected_total"] == 2
    # Refused submissions were never journaled: nothing to resume.
    resumed = TriageDaemon(daemon.config)
    assert resumed.resumed_jobs == 2


def test_submit_rejects_malformed_input(tmp_path):
    daemon = _daemon(tmp_path, workers=0, store=False)
    program, core = _figure1_submission()
    status, body = daemon.submit({"key": "x"}, core)
    assert status == 400 and "program" in body["error"]
    status, body = daemon.submit(program, "{not json")
    assert status == 400 and "malformed coredump" in body["error"]
    status, body = daemon.submit(program, json.dumps({"module": "x"}))
    assert status == 400 and "malformed coredump" in body["error"]
    status, body = daemon.submit(program, 42)
    assert status == 400
    daemon.shutdown()
    assert daemon.metrics.snapshot()["submitted_total"] == 0


# ---------------------------------------------------------------------------
# Durability: journal replay (in-process) and SIGKILL (subprocess)
# ---------------------------------------------------------------------------

def test_journal_replay_resumes_unsettled_jobs(tmp_path, corpus):
    # First life: accept submissions but never triage (workers=0), then
    # vanish without any shutdown — exactly what a crash leaves behind.
    first = _daemon(tmp_path, workers=0)
    _submit_corpus(first, corpus)
    del first

    second = _daemon(tmp_path, workers=2)
    assert second.resumed_jobs == 8  # every unsettled job came back ...
    # ... but only the 4 unique fingerprints queue a drive; the
    # duplicates re-attach to their representative during re-admission.
    assert second.healthz()["queue_depth"] == 4
    second.start()
    assert second.wait_idle(120)
    second.shutdown(drain=True)
    assert _daemon_view(tmp_path) == _batch_view(corpus, _service_config())


def test_dedup_edited_program_recomputes(tmp_path):
    """Admission dedup keys on the module fingerprint: re-submitting a
    crash under the same program *name* but edited source must
    recompute against the new source, never echo the stale verdict."""
    daemon = _daemon(tmp_path, workers=1)
    daemon.start()
    program, core = _figure1_submission()
    status, first = daemon.submit(program, core, report_id="v1")
    assert status == 202
    assert daemon.wait_idle(60)
    edited = dict(program, source=program["source"] + "\n// v2\n")
    status, second = daemon.submit(edited, core, report_id="v2")
    assert status == 202, "edited source must be a fresh drive, not 200"
    assert "dedup_of" not in second
    assert daemon.wait_idle(60)
    daemon.shutdown()
    assert daemon.job_payload(second["job_id"])["state"] == "done"
    assert daemon.metrics.snapshot()["verdicts_total"] == 2
    assert daemon.metrics.snapshot()["dedup_total"] == 0


def test_force_bypasses_warm_cache_and_replaces_representative(tmp_path):
    """--force means a fresh drive: the warm-cache short-circuit is
    skipped and the recomputed verdict becomes the new representative
    for future dedups (and refreshes the cached row)."""
    daemon = _daemon(tmp_path, workers=1,
                     cache_dir=str(tmp_path / "rescache"))
    daemon.start()
    program, core = _figure1_submission()
    status, first = daemon.submit(program, core, report_id="orig")
    assert status == 202
    assert daemon.wait_idle(60)
    status, forced = daemon.submit(program, core, report_id="fresh",
                                   force=True)
    assert status == 202, "force must queue a drive, not dedup"
    assert daemon.wait_idle(60)
    payload = daemon.job_payload(forced["job_id"])
    assert payload["state"] == "done"
    assert payload["verdict"]["cached"] is False, \
        "forced drive must not be served from the warm cache"
    assert payload["verdict"]["bucket"] == \
        daemon.job_payload(first["job_id"])["verdict"]["bucket"]
    # The forced verdict is the new representative for this key.
    status, third = daemon.submit(program, core, report_id="after")
    assert status == 200 and third["dedup_of"] == "fresh"
    daemon.shutdown()


def test_force_survives_journal_resume(tmp_path):
    """A forced recompute acknowledged with 202 must still run after a
    crash: replay re-admits it as forced (no dedup against the stale
    verdict it was sent to replace), and once done it replaces the
    representative across restarts too."""
    cache_dir = str(tmp_path / "rescache")
    first = _daemon(tmp_path, workers=1, cache_dir=cache_dir)
    first.start()
    program, core = _figure1_submission()
    first.submit(program, core, report_id="orig")
    assert first.wait_idle(60)
    first.shutdown()
    # New life, workers never started: the forced job stays queued —
    # the crash window between 202 and the recompute.
    second = _daemon(tmp_path, workers=0, cache_dir=cache_dir)
    status, forced = second.submit(program, core, report_id="fresh",
                                   force=True)
    assert status == 202
    del second  # SIGKILL-equivalent: no shutdown, journal is the truth

    third = _daemon(tmp_path, workers=1, cache_dir=cache_dir)
    assert third.healthz()["queue_depth"] == 1, \
        "the forced job must resume as a drive, not settle as a dedup"
    third.start()
    assert third.wait_idle(60)
    third.shutdown()
    payload = third.job_payload(forced["job_id"])
    assert payload["state"] == "done"
    assert "dedup_of" not in payload
    # And it is now the representative for later submissions.
    status, after = third.submit(program, core, report_id="after")
    assert status == 200 and after["dedup_of"] == "fresh"


def test_journal_dedup_rows_are_references(tmp_path):
    """Dedup-dominated traffic must not grow the journal by a full
    program + coredump per re-report: duplicate submissions journal
    references to the representative's row, and replay resolves them."""
    daemon = _daemon(tmp_path, workers=0, store=False)
    program, core = _figure1_submission()
    daemon.submit(program, core, report_id="rep")
    daemon.submit(program, core, report_id="dup1")  # attaches pending
    daemon.submit(program, core, report_id="dup2")
    daemon.shutdown()
    rows = [json.loads(line)
            for line in daemon.config.journal_path.read_text().splitlines()]
    submits = [row for row in rows if row["event"] == "submit"]
    assert "core" in submits[0] and "program" in submits[0]
    for row in submits[1:]:
        assert row["core_ref"] == "j000000" and "core" not in row
        assert row["program_ref"] == "j000000" and "program" not in row
    replayed = JobJournal(daemon.config.journal_path).replay(
        _service_config())
    assert [job.report_id for job in replayed] == ["rep", "dup1", "dup2"]
    # The duplicates share the representative's parsed coredump.
    assert replayed[1].core_obj is replayed[0].core_obj
    assert replayed[1].program == replayed[0].program


def test_http_rejects_non_integer_priority(live_server):
    __, base = live_server
    program, core = _figure1_submission()
    request = urllib.request.Request(
        base + "/jobs",
        data=json.dumps({"program": program,
                         "coredump": json.loads(core),
                         "priority": "high"}).encode(),
        headers={"Content-Type": "application/json"}, method="POST")
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(request)
    assert excinfo.value.code == 400
    assert "priority" in json.loads(excinfo.value.read())["error"]


def test_watch_once_returns_despite_backpressure(tmp_path, corpus):
    """`res watch --once` means one scan — a daemon that keeps
    answering 429 must not turn it into an infinite retry loop."""
    daemon = _daemon(tmp_path, workers=0, store=False, max_queue=1)
    server = start_http_server(daemon)
    host, port = server.server_address[:2]
    try:
        corpus_dir = tmp_path / "intake"
        corpus.save(str(corpus_dir))
        forwarded = watch_directory(str(corpus_dir),
                                    f"http://{host}:{port}", once=True)
        # One unique drive fits the queue; its duplicates attach free;
        # the first submission of a second fingerprint hit 429 and
        # ended the scan.
        assert 1 <= forwarded < len(corpus.entries)
    finally:
        server.shutdown()
        daemon.shutdown()


def test_unreadable_journal_refuses_to_start(tmp_path):
    """A journal that exists but cannot be read is not an empty one:
    starting blank would re-issue job identities the file already
    assigned (and replay could later stitch an old verdict onto a new
    coredump).  The daemon must refuse instead."""
    from repro.errors import ReproError

    spool = tmp_path / "spool"
    (spool / "jobs.jsonl").mkdir(parents=True)  # unreadable-as-file
    with pytest.raises(ReproError, match="unreadable"):
        TriageDaemon(DaemonConfig(service=_service_config(),
                                  spool_dir=str(spool)))


def test_journal_tolerates_torn_final_line(tmp_path):
    daemon = _daemon(tmp_path, workers=0, store=False)
    program, core = _figure1_submission()
    daemon.submit(program, core, report_id="kept")
    daemon.shutdown()
    journal_path = daemon.config.journal_path
    with open(journal_path, "ab") as handle:
        handle.write(b'{"event": "submit", "job_id": "torn...')
    jobs = JobJournal(journal_path).replay(_service_config())
    assert [job.report_id for job in jobs] == ["kept"]
    resumed = TriageDaemon(daemon.config)
    assert resumed.resumed_jobs == 1


def _spawn_serve(cwd, *extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
         "--spool", "spool", "--store", "store.json",
         "--max-depth", "8", "--max-nodes", "300", *extra],
        cwd=str(cwd), env=env, stdout=subprocess.PIPE, text=True)
    banner = proc.stdout.readline().strip()
    assert "listening on" in banner, banner
    return proc, banner.split()[3]


def _wait_drained(base_url, timeout=90.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        health = json.loads(
            urllib.request.urlopen(base_url + "/healthz").read())
        if health["queue_depth"] == 0 and health["in_flight"] == 0:
            return health
        time.sleep(0.1)
    raise AssertionError(f"daemon at {base_url} never drained")


def _http_shutdown(proc, base_url, drain=True):
    request = urllib.request.Request(
        base_url + "/shutdown",
        data=json.dumps({"drain": drain}).encode(),
        headers={"Content-Type": "application/json"}, method="POST")
    urllib.request.urlopen(request).read()
    return proc.wait(timeout=60)


def test_journal_resume_after_sigkill(tmp_path):
    """The acceptance gate: SIGKILL mid-queue loses nothing."""
    program, core = _figure1_submission()
    (tmp_path / "core.json").write_text(core)
    # Life 1 accepts but never works (workers=0), then dies hard.
    proc, base = _spawn_serve(tmp_path, "--workers", "0")
    for index in range(3):
        status, body = submit_report(base, program, core,
                                     report_id=f"r{index}")
        assert status == 202, body
    # All three share a fingerprint: one queued drive, two attached.
    health = json.loads(urllib.request.urlopen(base + "/healthz").read())
    assert health["queue_depth"] == 1 and health["jobs"] == 3
    proc.send_signal(signal.SIGKILL)
    proc.wait(timeout=30)

    # Life 2 resumes from the journal and settles everything.
    proc, base = _spawn_serve(tmp_path, "--workers", "2")
    assert "resumed" in proc.stdout.readline()
    _wait_drained(base)
    payloads = [get_job(base, f"j{index:06d}") for index in range(3)]
    assert all(p["state"] == "done" for p in payloads)
    assert payloads[0].get("dedup_of") is None
    assert {p["dedup_of"] for p in payloads[1:]} == {"r0"}
    assert _http_shutdown(proc, base) == 0
    store = json.loads((tmp_path / "store.json").read_text())
    assert store["complete"] is True
    assert len(store["results"]) == 3


# ---------------------------------------------------------------------------
# Graceful shutdown (SIGTERM): daemon and batch triage
# ---------------------------------------------------------------------------

def test_serve_sigterm_flushes_store_and_keeps_queue(tmp_path):
    program, core = _figure1_submission()
    proc, base = _spawn_serve(tmp_path, "--workers", "0")
    for index in range(2):
        submit_report(base, program, core, report_id=f"r{index}")
    proc.send_signal(signal.SIGTERM)
    assert proc.wait(timeout=30) == 130
    store = json.loads((tmp_path / "store.json").read_text())
    assert store["complete"] is False
    assert store["interrupted"] is True
    # The queue survived: a fresh daemon resumes the undone drive.
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
    resumed = TriageDaemon(DaemonConfig(
        service=_service_config(), spool_dir=str(tmp_path / "spool")))
    assert resumed.resumed_jobs == 2
    assert resumed.healthz()["queue_depth"] == 1  # one unique drive


def test_triage_jobs_sigterm_exits_130_with_partial_store(tmp_path):
    """`res triage --jobs N` under SIGTERM: pool terminated, partial
    verdicts kept, store flagged interrupted — the ^C contract, now
    wired to the signal a supervisor actually sends."""
    store = tmp_path / "store.json"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "triage",
         "--fuzz-count", "40", "--fuzz-duplicates", "1", "--jobs", "2",
         "--max-depth", "8", "--max-nodes", "300",
         "--store", str(store)],
        cwd=str(tmp_path), env=env,
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
    # Wait for the first streaming store flush (triage is mid-corpus),
    # then pull the plug.
    deadline = time.monotonic() + 180
    while not store.exists() and time.monotonic() < deadline:
        if proc.poll() is not None:
            pytest.fail(f"triage finished before SIGTERM could be sent:"
                        f"\n{proc.communicate()[0]}")
        time.sleep(0.1)
    assert store.exists(), "no streaming store flush within budget"
    proc.send_signal(signal.SIGTERM)
    out, err = proc.communicate(timeout=60)
    assert proc.returncode == 130, (out, err)
    assert "interrupted" in out
    payload = json.loads(store.read_text())
    assert payload["interrupted"] is True and payload["complete"] is False
    assert payload["results"], "partial verdicts must be kept"


# ---------------------------------------------------------------------------
# HTTP API + clients (in-process server)
# ---------------------------------------------------------------------------

@pytest.fixture()
def live_server(tmp_path):
    daemon = _daemon(tmp_path, workers=2)
    daemon.start()
    server = start_http_server(daemon)
    host, port = server.server_address[:2]
    yield daemon, f"http://{host}:{port}"
    server.shutdown()
    daemon.shutdown(drain=True)


def test_http_submit_status_and_wait(live_server):
    daemon, base = live_server
    program, core = _figure1_submission()
    status, body = submit_report(base, program, core, report_id="via-http")
    assert status in (200, 202)
    settled = wait_for_job(base, body["job_id"], timeout=60)
    assert settled["state"] == "done"
    assert settled["report_id"] == "via-http"
    assert settled["verdict"]["cause_kind"] == "buffer-overflow"
    assert settled["verdict"]["exploitable"] in (False, True)
    assert "latency_seconds" in settled


def test_http_buckets_reports_healthz_metrics_routes(live_server):
    daemon, base = live_server
    program, core = _figure1_submission()
    __, body = submit_report(base, program, core, report_id="one")
    wait_for_job(base, body["job_id"], timeout=60)
    submit_report(base, program, core, report_id="two")

    payload = json.loads(urllib.request.urlopen(base + "/buckets").read())
    [(bucket, ids)] = payload["buckets"].items()
    assert "buffer-overflow" in bucket and ids == ["one", "two"]
    # the refined view rides along: raw leaves, hierarchy, pass stats
    assert sum(len(v) for v in payload["raw_buckets"].values()) == 2
    assert payload["stats"]["reports"] == 2
    assert isinstance(payload["hierarchy"], dict)

    fingerprint = daemon.job_payload("j000000")["fingerprint"]
    reports = json.loads(urllib.request.urlopen(
        base + f"/reports/{fingerprint}").read())["reports"]
    assert [r["report_id"] for r in reports] == ["one", "two"]
    assert reports[1]["dedup_of"] == "one"

    health = json.loads(urllib.request.urlopen(base + "/healthz").read())
    assert health["status"] == "ok" and health["jobs"] == 2

    metrics = urllib.request.urlopen(base + "/metrics").read().decode()
    assert "res_intake_verdicts_total 1" in metrics
    assert "res_intake_dedup_total 1" in metrics
    assert "# TYPE res_intake_rebucket_passes_total counter" in metrics
    assert 'res_intake_latency_seconds{quantile="0.95"}' in metrics
    assert "# TYPE res_intake_queue_depth gauge" in metrics

    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(base + "/jobs/nonesuch")
    assert excinfo.value.code == 404
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(base + "/definitely/not/a/route")
    assert excinfo.value.code == 404


def test_client_error_paths(live_server):
    __, base = live_server
    with pytest.raises(ServiceClientError, match="no such job"):
        get_job(base, "j999999")
    with pytest.raises(ServiceClientError, match="cannot reach"):
        get_job("http://127.0.0.1:1", "j000000")
    program, __ = _figure1_submission()
    with pytest.raises(ServiceClientError, match="refused"):
        submit_report(base, program, "{not json}")


# ---------------------------------------------------------------------------
# res watch: directory intake
# ---------------------------------------------------------------------------

def test_watch_forwards_corpus_directory(live_server, tmp_path, corpus):
    daemon, base = live_server
    corpus_dir = tmp_path / "intake"
    corpus.save(str(corpus_dir))
    forwarded = watch_directory(str(corpus_dir), base, once=True)
    assert forwarded == len(corpus.entries)
    assert daemon.wait_idle(120)
    # Labels rode along: the store-equality accuracy section exists.
    daemon.flush_store()
    payload = json.loads(
        (Path(daemon.service_config.store_path)).read_text())
    assert payload["corpus"]["labeled"] == len(corpus.entries)
    assert "accuracy" in payload


def test_watch_flat_directory_requires_program(tmp_path):
    flat = tmp_path / "flat"
    flat.mkdir()
    (flat / "a.json").write_text(FIGURE1_OVERFLOW.trigger().to_json())
    with pytest.raises(ServiceClientError, match="manifest"):
        scan_directory(str(flat))
    program, __ = _figure1_submission()
    items = scan_directory(str(flat), program)
    assert [item["report_id"] for item in items] == ["a"]
    with pytest.raises(ServiceClientError, match="not found"):
        scan_directory(str(tmp_path / "missing"))


# ---------------------------------------------------------------------------
# Daemon smoke cycle (the CI gate: start, submit 5, drain, clean stop)
# ---------------------------------------------------------------------------

def test_daemon_smoke_cycle(tmp_path):
    program, core = _figure1_submission()
    proc, base = _spawn_serve(tmp_path, "--workers", "2",
                              "--cache-dir", "cache")
    for index in range(5):
        status, body = submit_report(base, program, core,
                                     report_id=f"smoke-{index}")
        assert status in (200, 202), body
    _wait_drained(base)
    metrics = urllib.request.urlopen(base + "/metrics").read().decode()
    assert "res_intake_submitted_total 5" in metrics
    assert proc.poll() is None, "daemon must still be alive"
    assert _http_shutdown(proc, base, drain=True) == 0
    store = json.loads((tmp_path / "store.json").read_text())
    assert store["complete"] is True
    assert len(store["results"]) == 5
    assert sum(1 for row in store["results"]
               if row["dedup_of"] is not None) == 4
