"""Concrete VM semantics: arithmetic, memory, threads, traps, coredumps."""

import pytest

from repro.minic import compile_source
from repro.vm import (
    Coredump,
    RandomPreemptScheduler,
    RoundRobinScheduler,
    RunStatus,
    TrapKind,
    VM,
)


def run_main(body, inputs=(), check_bounds=True, globals_decl=""):
    src = f"{globals_decl}\nfunc main() {{ {body} }}"
    module = compile_source(src)
    vm = VM(module, inputs=list(inputs), check_bounds=check_bounds,
            record_trace=True)
    return vm.run(), module, vm


def test_arithmetic_and_output():
    result, _, _ = run_main("output(2 + 3 * 4); output(10 / 3); output(10 % 3); return 0;")
    assert result.status is RunStatus.EXITED
    assert result.outputs == [14, 3, 1]


def test_signed_division_truncates_toward_zero():
    result, _, _ = run_main("output(-7 / 2); return 0;")
    # -3 as an unsigned 64-bit word
    assert result.outputs == [(1 << 64) - 3]


def test_comparison_signedness():
    result, _, _ = run_main("output(-1 < 1); output(0 - 1 > 5); return 0;")
    assert result.outputs == [1, 0]


def test_wraparound():
    result, _, _ = run_main("int big = 1 << 63; output(big + big); return 0;")
    assert result.outputs == [0]


def test_division_by_zero_traps():
    result, _, _ = run_main("int z = input(); output(1 / z); return 0;", inputs=[0])
    assert result.trapped
    assert result.coredump.trap.kind is TrapKind.DIV_BY_ZERO


def test_assert_failure_traps_with_message():
    result, _, _ = run_main('assert(1 == 2, "nope"); return 0;')
    assert result.coredump.trap.kind is TrapKind.ASSERT_FAIL
    assert result.coredump.trap.message == "nope"


def test_abort_traps():
    result, _, _ = run_main('abort("bye");')
    assert result.coredump.trap.kind is TrapKind.ABORT


def test_halt_exits_with_code():
    result, _, _ = run_main("halt(7);")
    assert result.status is RunStatus.EXITED
    assert result.exit_code == 7


def test_global_out_of_bounds_traps():
    result, _, _ = run_main("buf[9] = 1; return 0;",
                            globals_decl="global int buf[4];")
    assert result.coredump.trap.kind is TrapKind.OUT_OF_BOUNDS
    assert result.coredump.trap.fault_addr is not None


def test_unchecked_mode_corrupts_silently():
    result, module, vm = run_main(
        "buf[4] = 99; output(canary); return 0;",
        globals_decl="global int buf[4];\nglobal int canary = 7;",
        check_bounds=False)
    assert result.status is RunStatus.EXITED
    assert result.outputs == [99]  # the overflow clobbered the canary


def test_heap_alloc_free_and_uaf():
    result, _, _ = run_main(
        "int p = malloc(2); *p = 1; free(p); output(*p); return 0;")
    assert result.coredump.trap.kind is TrapKind.USE_AFTER_FREE


def test_double_free_traps():
    result, _, _ = run_main("int p = malloc(1); free(p); free(p); return 0;")
    assert result.coredump.trap.kind is TrapKind.DOUBLE_FREE


def test_heap_guard_word_traps():
    result, _, _ = run_main("int p = malloc(2); p[2] = 5; return 0;")
    assert result.coredump.trap.kind is TrapKind.OUT_OF_BOUNDS


def test_inputs_consumed_in_order_then_zero():
    result, _, _ = run_main(
        "output(input()); output(input()); output(input()); return 0;",
        inputs=[5, 6])
    assert result.outputs == [5, 6, 0]


def test_call_and_return_value():
    src = """
func twice(int a) { return a * 2; }
func main() { output(twice(21)); return 0; }
"""
    vm = VM(compile_source(src))
    result = vm.run()
    assert result.outputs == [42]


def test_recursion():
    src = """
func fact(int n) {
    if (n <= 1) { return 1; }
    return n * fact(n - 1);
}
func main() { output(fact(6)); return 0; }
"""
    assert VM(compile_source(src)).run().outputs == [720]


def test_threads_join_and_locks():
    src = """
global int counter;
global int mtx;
func worker(int n) {
    int i = 0;
    while (i < n) {
        lock(&mtx);
        counter = counter + 1;
        unlock(&mtx);
        i = i + 1;
    }
    return 0;
}
func main() {
    int a = spawn worker(30);
    int b = spawn worker(30);
    join(a);
    join(b);
    output(counter);
    return 0;
}
"""
    module = compile_source(src)
    for seed in range(5):
        vm = VM(module, scheduler=RandomPreemptScheduler(seed=seed,
                                                         preempt_prob=0.5))
        result = vm.run()
        assert result.status is RunStatus.EXITED
        assert result.outputs == [60]


def test_unsynchronized_counter_loses_updates_under_some_schedule():
    src = """
global int counter;
func worker(int n) {
    int i = 0;
    while (i < n) {
        int old = counter;
        counter = old + 1;
        i = i + 1;
    }
    return 0;
}
func main() {
    int a = spawn worker(40);
    int b = spawn worker(40);
    join(a);
    join(b);
    output(counter);
    return 0;
}
"""
    module = compile_source(src)
    results = set()
    for seed in range(10):
        vm = VM(module, scheduler=RandomPreemptScheduler(seed=seed,
                                                         preempt_prob=0.5))
        results.add(vm.run().outputs[0])
    assert any(value < 80 for value in results), "no lost update observed"


def test_deadlock_detected():
    src = """
global int a;
global int b;
func t(int u) { lock(&b); lock(&a); unlock(&a); unlock(&b); return 0; }
func main() {
    int w = spawn t(0);
    lock(&a);
    lock(&b);
    unlock(&b);
    unlock(&a);
    join(w);
    return 0;
}
"""
    module = compile_source(src)
    kinds = set()
    for seed in range(40):
        vm = VM(module, scheduler=RandomPreemptScheduler(seed=seed,
                                                         preempt_prob=0.5))
        result = vm.run()
        if result.trapped:
            kinds.add(result.coredump.trap.kind)
    assert TrapKind.DEADLOCK in kinds


def test_self_relock_traps():
    result, _, _ = run_main("lock(&m); lock(&m); return 0;",
                            globals_decl="global int m;")
    assert result.coredump.trap.kind is TrapKind.DEADLOCK


def test_unlock_not_held_traps():
    result, _, _ = run_main("unlock(&m); return 0;",
                            globals_decl="global int m;")
    assert result.coredump.trap.kind is TrapKind.UNLOCK_NOT_HELD


def test_coredump_contains_full_state():
    result, module, _ = run_main(
        'int x = 5; g = x + 1; assert(g == 99, "bad"); return 0;',
        globals_decl="global int g;")
    dump = result.coredump
    layout = module.layout()
    assert dump.read(layout["g"]) == 6
    main_frame = dump.failing_thread.frames[0]
    assert main_frame.function == "main"
    assert dump.trap.pc.function == "main"


def test_coredump_json_roundtrip():
    result, _, _ = run_main('assert(0, "x"); return 0;')
    dump = result.coredump
    clone = Coredump.from_json(dump.to_json())
    assert clone.trap == dump.trap
    assert clone.memory == dump.memory
    assert clone.threads.keys() == dump.threads.keys()
    assert clone.bounds_checked == dump.bounds_checked
    for tid in dump.threads:
        assert clone.threads[tid].frames == dump.threads[tid].frames


def test_trace_records_reads_and_writes():
    result, module, _ = run_main(
        "g = 3; output(g); return 0;", globals_decl="global int g;")
    layout = module.layout()
    writes = [e for e in result.trace if any(w.addr == layout["g"]
                                             for w in e.writes)]
    reads = [e for e in result.trace if any(r.addr == layout["g"]
                                            for r in e.reads)]
    assert writes and reads


def test_round_robin_scheduler_is_deterministic():
    src = """
global int g;
func w(int n) { g = g + n; return 0; }
func main() {
    int a = spawn w(1);
    int b = spawn w(2);
    join(a);
    join(b);
    output(g);
    return 0;
}
"""
    module = compile_source(src)
    outs = {VM(module, scheduler=RoundRobinScheduler(quantum=3)).run().outputs[0]
            for _ in range(3)}
    assert len(outs) == 1


def test_budget_exhaustion():
    result, _, _ = run_main("while (1) { } return 0;")
    # infinite loop: run() must stop at the budget
    assert result.status is RunStatus.BUDGET_EXHAUSTED
