"""TriageEngine paths, the §3.1 accuracy metrics, and the batch triage
service (dedup, sharding, store, serial-vs-parallel equality)."""

import json

import pytest

from repro.core import RESConfig
from repro.core.triage import (
    BugReport,
    TriageAnnotation,
    TriageEngine,
    TriageResult,
    bucket_accuracy,
    misbucketed_fraction,
)
from repro.core.triage_service import (
    CorpusEntry,
    ProgramSpec,
    TriageCorpus,
    TriageServiceConfig,
    refined_results,
    triage_corpus,
)
from repro.fuzz.triage_corpus import ARM_CAUSE_NAMES, build_labeled_corpus
from repro.workloads import TAINTED_OVERFLOW, TRIAGE_PROGRAM, service_corpus


# ---------------------------------------------------------------------------
# TriageEngine paths
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def small_corpus():
    return service_corpus(8, seed=3)


def test_annotation_match_bucketing(small_corpus):
    """Developer feedback (§3.1): a matched cause lands in the named
    annotation bucket instead of its raw signature bucket."""
    engine = TriageEngine(
        TRIAGE_PROGRAM.module, RESConfig(max_depth=24, max_nodes=4000),
        annotations=[TriageAnnotation(
            name="known-overflow",
            matcher=lambda cause: any(pc.function == "check"
                                      for pc in cause.pcs))])
    overflow = next(e.report for e in small_corpus.entries
                    if e.report.true_cause == "overflow-into-state")
    result = engine.triage_one(overflow)
    assert result.bucket == ("annotated", "known-overflow")
    assert not result.used_fallback
    assert result.cause is not None
    # the logic-store cause does not match: raw signature bucket
    logic = next(e.report for e in small_corpus.entries
                 if e.report.true_cause == "logic-store")
    other = engine.triage_one(logic)
    assert other.bucket == other.cause.signature()


def test_wer_fallback_on_unexplainable_report(small_corpus):
    """Graceful degradation: when RES cannot explain a report within
    budget, triage falls back to a WER-style stack signature qualified
    by the trap site (so refinement can attach it to a cause family)."""
    report = small_corpus.entries[0].report
    engine = TriageEngine(TRIAGE_PROGRAM.module,
                          RESConfig(max_depth=0, max_nodes=1),
                          stack_depth=5)
    result = engine.triage_one(report)
    assert result.used_fallback
    assert result.cause is None
    trap = report.coredump.trap
    assert result.bucket == (
        "stack", trap.kind.value, trap.pc.function,
        report.coredump.call_stack_signature(5))


def test_empty_stack_fallback_gets_per_fingerprint_bucket(small_corpus):
    """An empty stack signature used to land every unexplained crash in
    one bare ``("stack", ())`` mega-bucket; it must fall back to a
    per-fingerprint bucket instead (stack_depth=0 yields the empty
    signature for any dump)."""
    from repro.core.triage import synthesize_result

    r1 = small_corpus.entries[0].report
    r2 = next(e.report for e in small_corpus.entries
              if e.report.coredump.fingerprint()
              != r1.coredump.fingerprint())
    a = synthesize_result(r1, None, False, stack_depth=0)
    b = synthesize_result(r2, None, False, stack_depth=0)
    assert a.used_fallback and b.used_fallback
    assert a.bucket != b.bucket
    assert a.bucket[0] == "stack"
    assert a.bucket[3] == ("fingerprint", r1.coredump.fingerprint())


def test_exploitable_propagates_to_result():
    """A suffix with a tainted store must mark the triage result
    exploitable (the §3.1 prioritization signal)."""
    dump = TAINTED_OVERFLOW.trigger()
    engine = TriageEngine(TAINTED_OVERFLOW.module,
                          RESConfig(max_depth=12, max_nodes=4000))
    result = engine.triage_one(
        BugReport(report_id="x1", coredump=dump))
    assert result.exploitable


def test_unexploitable_report_not_flagged(small_corpus):
    engine = TriageEngine(TRIAGE_PROGRAM.module,
                          RESConfig(max_depth=24, max_nodes=4000))
    logic = next(e.report for e in small_corpus.entries
                 if e.report.true_cause == "logic-store")
    assert not engine.triage_one(logic).exploitable


# ---------------------------------------------------------------------------
# Accuracy-metric regressions (unlabeled reports must not count)
# ---------------------------------------------------------------------------

def _report(rid, cause):
    return BugReport(report_id=rid, coredump=None, true_cause=cause)


def _result(rid, bucket):
    return TriageResult(report_id=rid, bucket=bucket, cause=None,
                        used_fallback=False)


def test_bucket_accuracy_ignores_unlabeled_pairs():
    """Two unlabeled reports do NOT share a true cause: ``None == None``
    must not count as an agreeing (or disagreeing) pair."""
    reports = [_report("a", "c1"), _report("b", "c1"),
               _report("u1", None), _report("u2", None)]
    # labeled pair bucketed together (correct); unlabeled pair split
    results = [_result("a", "B1"), _result("b", "B1"),
               _result("u1", "B2"), _result("u2", "B3")]
    assert bucket_accuracy(results, reports) == 1.0
    # the old metric scored the same corpus 3/6 by counting None==None
    # pairs as shared-cause and unlabeled-vs-labeled as distinct-cause
    together = [_result("a", "B1"), _result("b", "B1"),
                _result("u1", "B2"), _result("u2", "B2")]
    assert bucket_accuracy(together, reports) == 1.0


def test_bucket_accuracy_all_unlabeled_is_vacuous():
    reports = [_report("u1", None), _report("u2", None)]
    results = [_result("u1", "B1"), _result("u2", "B2")]
    assert bucket_accuracy(results, reports) == 1.0


def test_bucket_accuracy_still_penalizes_labeled_mistakes():
    reports = [_report("a", "c1"), _report("b", "c2"),
               _report("u", None)]
    results = [_result("a", "B1"), _result("b", "B1"),
               _result("u", "B1")]  # merged distinct causes: wrong
    assert bucket_accuracy(results, reports) == 0.0


def test_misbucketed_fraction_excludes_unlabeled():
    """Unlabeled reports must join neither the majority map (they are
    not one shared pseudo-cause) nor the numerator/denominator."""
    reports = [_report("a", "c1"), _report("b", "c1"),
               _report("u1", None), _report("u2", None),
               _report("u3", None)]
    results = [_result("a", "B1"), _result("b", "B1"),
               _result("u1", "B2"), _result("u2", "B3"),
               _result("u3", "B4")]
    assert misbucketed_fraction(results, reports) == 0.0


def test_misbucketed_fraction_counts_labeled_minority():
    reports = [_report(r, "c1") for r in ("a", "b", "c")] \
        + [_report("u", None)]
    results = [_result("a", "B1"), _result("b", "B1"),
               _result("c", "B2"), _result("u", "B9")]
    # 1 of 3 labeled reports off the majority bucket
    assert misbucketed_fraction(results, reports) == pytest.approx(1 / 3)


def test_misbucketed_fraction_all_unlabeled_is_zero():
    reports = [_report("u1", None), _report("u2", None)]
    results = [_result("u1", "B1"), _result("u2", "B2")]
    assert misbucketed_fraction(results, reports) == 0.0


def test_misbucketed_fraction_tie_break_is_order_independent():
    """A deliberate 2-2 majority tie: whichever bucket the iteration
    happens to meet first must NOT decide the election (the old
    ``max(..., key=get)`` resolved ties by dict insertion order, so the
    same corpus could score differently across shard orderings).  Ties
    break by (count, stable bucket repr) — here "A1" < "B2" — and every
    permutation of the result list must agree."""
    import itertools

    reports = [_report(r, "c1") for r in ("a", "b", "c", "d")]
    results = [_result("a", "B2"), _result("b", "B2"),
               _result("c", "A1"), _result("d", "A1")]
    scores = {misbucketed_fraction(list(perm), reports)
              for perm in itertools.permutations(results)}
    assert scores == {0.5}


def test_bucket_accuracy_excludes_dedup_children():
    """A filed duplicate copies its representative's verdict verbatim;
    counting its pairs re-counts the representative's (in)correctness
    as independent evidence.  Here the representative "a" is
    misbucketed with cause c2's report, but its 3 duplicate copies
    pair "correctly" with it and each other (same bucket, same cause)
    — without the exclusion they inflate the score of a triage that
    got 2 of its 3 genuine pairs wrong."""
    reports = [_report("a", "c1"), _report("b", "c1"),
               _report("x", "c2")] \
        + [_report(f"a{i}", "c1") for i in range(3)]
    results = [_result("a", "BAD"), _result("b", "B1"),
               _result("x", "BAD")] \
        + [_result(f"a{i}", "BAD") for i in range(3)]
    dedup_children = {"a0", "a1", "a2"}
    with_copies = bucket_accuracy(results, reports)
    deduped = bucket_accuracy(results, reports, exclude=dedup_children)
    # a-b split (wrong), a-x merged (wrong), b-x split (right) -> 1/3
    assert deduped == pytest.approx(1 / 3)
    assert with_copies == pytest.approx(7 / 15)  # inflated by copies


# ---------------------------------------------------------------------------
# Coredump fingerprints
# ---------------------------------------------------------------------------

def test_fingerprint_stable_across_json_round_trip(small_corpus):
    from repro.vm.coredump import Coredump

    dump = small_corpus.entries[0].report.coredump
    round_tripped = Coredump.from_json(dump.to_json())
    assert dump.fingerprint() == round_tripped.fingerprint()


def test_fingerprint_distinguishes_dumps(small_corpus):
    dumps = [e.report.coredump for e in small_corpus.entries]
    causes = {e.report.true_cause for e in small_corpus.entries}
    prints = {d.fingerprint() for d in dumps}
    # 2 causes x 2 routes of deterministic runs: >= |causes| distinct
    # dumps, and every repeat of the same (cause, route) collides
    assert len(prints) >= len(causes)
    assert len(prints) < len(dumps)


# ---------------------------------------------------------------------------
# The batch triage service
# ---------------------------------------------------------------------------

def test_service_matches_plain_engine(small_corpus):
    """The service (dedup + groups) must bucket exactly like a plain
    per-report engine sweep."""
    engine = TriageEngine(TRIAGE_PROGRAM.module,
                          RESConfig(max_depth=16, max_nodes=4000))
    plain = engine.triage([e.report for e in small_corpus.entries])
    service = triage_corpus(
        small_corpus, TriageServiceConfig(jobs=1, max_depth=16,
                                          max_nodes=4000))
    assert [r.bucket for r in service.results] == [r.bucket for r in plain]
    assert [r.report_id for r in service.results] \
        == [r.report_id for r in plain]
    assert [r.exploitable for r in service.results] \
        == [r.exploitable for r in plain]


def test_service_dedups_identical_coredumps(small_corpus):
    service = triage_corpus(
        small_corpus, TriageServiceConfig(jobs=1, max_depth=16,
                                          max_nodes=4000))
    assert service.dedup_hits > 0
    assert service.triaged + service.dedup_hits == len(small_corpus.entries)
    for item in service.reports:
        if item.dedup_of is not None:
            assert item.seconds == 0.0
            rep = next(r for r in service.reports
                       if r.result.report_id == item.dedup_of)
            assert rep.dedup_of is None
            assert rep.result.bucket == item.result.bucket
            assert rep.fingerprint == item.fingerprint


def test_serial_and_parallel_buckets_identical_on_mixed_corpus():
    """ISSUE acceptance: parallel triage buckets byte-identically to
    serial triage on a corpus mixing fuzz programs with the synthetic
    §3.1 program."""
    fuzz_part = build_labeled_corpus(range(9100, 9106), duplicates=2,
                                     shuffle_seed=5)
    synth_part = service_corpus(6, seed=2)
    mixed = TriageCorpus(
        programs={**fuzz_part.programs, **synth_part.programs},
        entries=fuzz_part.entries + synth_part.entries)
    serial = triage_corpus(mixed, TriageServiceConfig(jobs=1))
    parallel = triage_corpus(mixed, TriageServiceConfig(jobs=2))
    assert [r.bucket for r in serial.results] \
        == [r.bucket for r in parallel.results]
    assert [r.report_id for r in serial.results] \
        == [r.report_id for r in parallel.results]
    reports = mixed.reports
    assert bucket_accuracy(serial.results, reports) \
        == bucket_accuracy(parallel.results, reports)


def test_single_program_corpus_shards_across_jobs(small_corpus):
    """A one-program corpus (the common production shape) must still
    fan out: groups are chunked, not one-shard-per-program — and the
    chunked run stays byte-identical to serial."""
    serial = triage_corpus(small_corpus,
                           TriageServiceConfig(jobs=1, max_depth=16,
                                               max_nodes=4000))
    parallel = triage_corpus(small_corpus,
                             TriageServiceConfig(jobs=2, max_depth=16,
                                                 max_nodes=4000))
    assert [r.bucket for r in serial.results] \
        == [r.bucket for r in parallel.results]
    assert [r.report_id for r in serial.results] \
        == [r.report_id for r in parallel.results]


def test_pool_error_propagates_without_leaking_workers(small_corpus):
    """A failing progress callback must surface its own error (not a
    masked pool shutdown error) and leave no live workers behind."""
    import multiprocessing as mp

    before = {p.pid for p in mp.active_children()}

    def exploding_progress(landed):
        raise RuntimeError("progress died")

    with pytest.raises(RuntimeError, match="progress died"):
        triage_corpus(small_corpus,
                      TriageServiceConfig(jobs=2, max_depth=16,
                                          max_nodes=4000),
                      progress=exploding_progress)
    leaked = [p for p in mp.active_children() if p.pid not in before]
    assert not leaked, f"zombie triage workers: {leaked}"


def test_service_streams_anytime_results(small_corpus):
    seen = []
    triage_corpus(small_corpus,
                  TriageServiceConfig(jobs=1, max_depth=16,
                                      max_nodes=4000),
                  progress=lambda landed: seen.append(len(landed)))
    # every report lands through the stream exactly once
    assert sum(seen) == len(small_corpus.entries)


def test_report_store_is_written_and_complete(small_corpus, tmp_path):
    store = tmp_path / "store.json"
    service = triage_corpus(
        small_corpus,
        TriageServiceConfig(jobs=1, max_depth=16, max_nodes=4000,
                            store_path=str(store), flush_every=1))
    payload = json.loads(store.read_text())
    assert payload["complete"] is True
    assert payload["timing"]["dedup_hits"] == service.dedup_hits
    assert sum(len(ids) for ids in payload["buckets"].values()) \
        == len(small_corpus.entries)
    assert len(payload["results"]) == len(small_corpus.entries)
    # stored accuracy is scored on the refined buckets, with dedup
    # children excluded from pair counting
    refined, refinement = refined_results(service.reports)
    dedup_children = {r.result.report_id for r in service.reports
                     if r.dedup_of is not None}
    assert payload["accuracy"]["bucket_accuracy"] == round(
        bucket_accuracy(refined, small_corpus.reports,
                        exclude=dedup_children), 4)
    assert payload["bucketing"]["stats"] == refinement.stats
    # every row carries both the refined and the raw leaf bucket
    assert all("raw_bucket" in row for row in payload["results"])
    # no stray temp files from the atomic writes
    assert [p.name for p in tmp_path.iterdir()] == ["store.json"]


def test_corpus_save_load_round_trip(tmp_path):
    corpus = build_labeled_corpus(range(9100, 9103), duplicates=2,
                                  shuffle_seed=0)
    corpus.save(str(tmp_path / "corpus"))
    loaded = TriageCorpus.load(str(tmp_path / "corpus"))
    assert {k for k in loaded.programs} == {k for k in corpus.programs}
    assert [e.report.report_id for e in loaded.entries] \
        == [e.report.report_id for e in corpus.entries]
    assert [e.report.true_cause for e in loaded.entries] \
        == [e.report.true_cause for e in corpus.entries]
    a = triage_corpus(corpus, TriageServiceConfig(jobs=1))
    b = triage_corpus(loaded, TriageServiceConfig(jobs=1))
    assert [r.bucket for r in a.results] == [r.bucket for r in b.results]


def test_labeled_corpus_causes_follow_arm_kind():
    corpus = build_labeled_corpus(range(9100, 9110))
    causes = {e.report.true_cause for e in corpus.entries}
    assert causes <= set(ARM_CAUSE_NAMES.values())
    assert len(corpus.entries) == len(corpus.programs) > 0


def test_corpus_rejects_unknown_program_key():
    from repro.errors import ReproError

    spec = ProgramSpec(key="p", source="func main() { return 0; }")
    report = BugReport(report_id="r", coredump=None)
    with pytest.raises(ReproError):
        TriageCorpus(programs={spec.key: spec},
                     entries=[CorpusEntry(report=report,
                                          program_key="other")])


# ---------------------------------------------------------------------------
# Warm-start triage (PR 4): cold ≡ warm ≡ sharded warm
# ---------------------------------------------------------------------------

def _mixed_corpus():
    """Fuzz-labeled reports + synthetic reports, with a slice of the
    labels stripped so the accuracy metrics run over a genuinely mixed
    labeled/unlabeled corpus."""
    fuzz_part = build_labeled_corpus(range(9100, 9105), duplicates=2,
                                     shuffle_seed=3)
    synth_part = service_corpus(6, seed=2)
    mixed = TriageCorpus(
        programs={**fuzz_part.programs, **synth_part.programs},
        entries=fuzz_part.entries + synth_part.entries)
    for entry in mixed.entries[::3]:
        entry.report.true_cause = None
    return mixed


def _view(result, corpus, config):
    import json as json_module

    from repro.core.triage_service import store_payload, verdict_view

    return json_module.dumps(
        verdict_view(store_payload(result, corpus, config, complete=True)),
        sort_keys=True)


def test_cold_warm_and_sharded_warm_stores_byte_identical(tmp_path):
    """ISSUE 4 acceptance: on a mixed labeled/unlabeled corpus the
    cold run, the warm run (every unique report cached), and a sharded
    warm run must produce byte-identical buckets, per-report rows, and
    accuracy metrics (the verdict view of the report store)."""
    corpus = _mixed_corpus()
    cache_dir = str(tmp_path / "cache")
    cold_config = TriageServiceConfig(jobs=1, cache_dir=cache_dir)

    cold = triage_corpus(corpus, cold_config)
    assert cold.cache_hits == 0 and cold.triaged > 0
    warm = triage_corpus(corpus, cold_config)
    sharded_warm = triage_corpus(
        corpus, TriageServiceConfig(jobs=2, cache_dir=cache_dir))

    unique = {(e.program_key, e.report.coredump.fingerprint())
              for e in corpus.entries}
    assert warm.triaged == 0
    assert warm.cache_hits == len(unique)
    assert sharded_warm.cache_hits == len(unique)

    cold_view = _view(cold, corpus, cold_config)
    assert _view(warm, corpus, cold_config) == cold_view
    assert _view(sharded_warm, corpus, cold_config) == cold_view

    reports = corpus.reports
    assert bucket_accuracy(warm.results, reports) \
        == bucket_accuracy(cold.results, reports)
    assert misbucketed_fraction(warm.results, reports) \
        == misbucketed_fraction(cold.results, reports)


def test_warm_run_against_no_cache_cold_run_is_identical(tmp_path):
    """The warm path must match a run that never saw a cache at all,
    not just the run that populated it."""
    corpus = _mixed_corpus()
    plain_config = TriageServiceConfig(jobs=1)
    plain = triage_corpus(corpus, plain_config)

    cache_dir = str(tmp_path / "cache")
    caching = TriageServiceConfig(jobs=1, cache_dir=cache_dir)
    triage_corpus(corpus, caching)
    warm = triage_corpus(corpus, caching)
    assert warm.triaged == 0
    assert _view(warm, corpus, plain_config) \
        == _view(plain, corpus, plain_config)


def test_interrupted_warm_run_resumes_from_partial_cache(tmp_path):
    """Ctrl-C mid-run: the verdict rows appended before the interrupt
    must warm-start the resumed run, and the resumed run's store must
    be byte-identical to an uninterrupted cold run."""
    corpus = _mixed_corpus()
    cache_dir = str(tmp_path / "cache")
    store = tmp_path / "store.json"
    config = TriageServiceConfig(jobs=1, cache_dir=cache_dir,
                                 store_path=str(store), flush_every=1)

    landed_groups = []

    def interrupt_after_two(landed):
        landed_groups.append(landed)
        if len(landed_groups) == 2:
            raise KeyboardInterrupt

    partial = triage_corpus(corpus, config, progress=interrupt_after_two)
    assert partial.interrupted
    assert 0 < len(partial.reports) < len(corpus.entries)
    # the partial store is valid, parseable, and flagged incomplete
    payload = json.loads(store.read_text())
    assert payload["complete"] is False

    resumed = triage_corpus(corpus, config)
    assert not resumed.interrupted
    assert resumed.cache_hits >= sum(
        1 for batch in landed_groups for item in batch
        if item.dedup_of is None)
    assert len(resumed.reports) == len(corpus.entries)

    reference = triage_corpus(corpus, TriageServiceConfig(jobs=1))
    assert _view(resumed, corpus, config) \
        == _view(reference, corpus, config)


def test_annotation_changes_rebucket_cached_verdicts(tmp_path):
    """Annotations are outside the cache key on purpose: a warm run
    with a new annotation must re-bucket cached causes exactly like a
    cold run would."""
    corpus = service_corpus(6, seed=3)
    cache_dir = str(tmp_path / "cache")
    triage_corpus(corpus, TriageServiceConfig(jobs=1, cache_dir=cache_dir,
                                              max_depth=16,
                                              max_nodes=4000))
    annotation = TriageAnnotation(
        name="known-overflow",
        matcher=_check_function_matcher)
    annotated = TriageServiceConfig(jobs=1, cache_dir=cache_dir,
                                    max_depth=16, max_nodes=4000,
                                    annotations=[annotation])
    warm = triage_corpus(corpus, annotated)
    assert warm.triaged == 0, "annotation change must not invalidate"
    cold = triage_corpus(corpus, TriageServiceConfig(
        jobs=1, max_depth=16, max_nodes=4000, annotations=[annotation]))
    assert [r.bucket for r in warm.results] \
        == [r.bucket for r in cold.results]
    assert any(r.bucket == ("annotated", "known-overflow")
               for r in warm.results)


def _check_function_matcher(cause):
    return any(pc.function == "check" for pc in cause.pcs)
