"""Replayer unit behaviour: materialization, schedule driving, verification."""

import pytest

from repro.minic import compile_source
from repro.vm import RunStatus, VM
from repro.core import RESConfig, ReverseExecutionSynthesizer
from repro.core.replay import SuffixReplayer
from repro.symex import Const, Sym, bin_expr


SIMPLE = """
global int g;
func main() {
    int v = input();
    g = v + 1;
    assert(g == 0, "boom");
    return 0;
}
"""


def synthesize_one(src=SIMPLE, inputs=(41,), depth=12):
    module = compile_source(src)
    result = VM(module, inputs=list(inputs)).run()
    assert result.status is RunStatus.TRAPPED
    res = ReverseExecutionSynthesizer(module, result.coredump,
                                      RESConfig(max_depth=depth))
    deepest = None
    for s in res.suffixes():
        deepest = s
    assert deepest is not None
    return module, result.coredump, deepest


def test_replay_is_idempotent():
    module, dump, deepest = synthesize_one()
    replayer = SuffixReplayer(module)
    first = replayer.replay(deepest.suffix)
    second = replayer.replay(deepest.suffix)
    assert first.ok and second.ok
    assert first.inputs == second.inputs


def test_replay_report_carries_trace_and_model():
    module, dump, deepest = synthesize_one()
    report = SuffixReplayer(module).replay(deepest.suffix)
    assert report.trace is not None and len(report.trace) > 0
    assert report.model is not None


def test_replay_detects_poisoned_constraints():
    """If the suffix's constraint set is made unsatisfiable, replay
    refuses to materialize rather than producing garbage."""
    module, dump, deepest = synthesize_one()
    poisoned = deepest.suffix
    poisoned.constraints = poisoned.constraints + [
        bin_expr("eq", Const(1), Const(2))
    ]
    report = SuffixReplayer(module).replay(poisoned)
    assert not report.ok
    assert any("materialize" in m for m in report.mismatches)


def test_replay_detects_corrupted_coredump_memory():
    """Tampering with the coredump after synthesis must break the
    word-for-word verification."""
    module, dump, deepest = synthesize_one()
    layout = module.layout()
    dump.memory[layout["g"]] ^= 1 << 7
    report = SuffixReplayer(module).replay(deepest.suffix)
    assert not report.ok
    assert any("memory mismatch" in m or "register" in m or "trap" in m
               for m in report.mismatches)


def test_replay_verifies_failing_thread_registers():
    module, dump, deepest = synthesize_one()
    frame = dump.failing_thread.frames[0]
    victim = next(iter(frame.regs))
    frame.regs[victim] = frame.regs[victim] + 1
    report = SuffixReplayer(module).replay(deepest.suffix)
    # either the register check or (if the register feeds memory) the
    # memory check must catch it
    assert not report.ok


def test_replay_heap_state_reconstruction():
    src = """
global int sink;
func main() {
    int p = malloc(3);
    p[0] = 7;
    p[1] = 8;
    sink = p[0] + p[1];
    assert(sink == 0, "boom");
    return 0;
}
"""
    module, dump, deepest = synthesize_one(src=src, inputs=(), depth=20)
    report = SuffixReplayer(module).replay(deepest.suffix)
    assert report.ok
