"""End-to-end RES on a deadlock coredump.

Paper §2: "this tool would work for failures whose state can be
snapshotted in a coredump (e.g., crashes, deadlocks)."  The ABBA
workload deadlocks; the coredump freezes both blocked threads; RES must
synthesize a suffix whose replay re-blocks the threads on the same
locks, and the root-cause detector must name the circular wait.
"""

import pytest

from repro.core import RESConfig, ReverseExecutionSynthesizer
from repro.core.rootcause import find_root_cause
from repro.vm import ThreadStatus, TrapKind
from repro.workloads import DEADLOCK_ABBA


@pytest.fixture(scope="module")
def deadlock_dump():
    return DEADLOCK_ABBA.trigger()


def test_deadlock_coredump_shape(deadlock_dump):
    assert deadlock_dump.trap.kind is TrapKind.DEADLOCK
    blocked = [t for t in deadlock_dump.threads.values()
               if t.status is ThreadStatus.BLOCKED_LOCK]
    assert len(blocked) == 2
    # each blocked thread holds the lock the other wants
    waits = {t.tid: t.blocked_on for t in blocked}
    holds = {t.tid: set(t.held_locks) for t in blocked}
    tids = sorted(waits)
    assert waits[tids[0]] in holds[tids[1]]
    assert waits[tids[1]] in holds[tids[0]]


def test_deadlock_suffix_synthesizes_and_replays(deadlock_dump):
    res = ReverseExecutionSynthesizer(
        DEADLOCK_ABBA.module, deadlock_dump,
        RESConfig(max_depth=12, max_nodes=6000))
    suffixes = list(res.suffixes())
    assert suffixes, "a deadlock suffix must exist"
    assert all(s.report.ok for s in suffixes)


def test_deadlock_root_cause_names_circular_wait(deadlock_dump):
    cause, suffixes = find_root_cause(
        DEADLOCK_ABBA.module, deadlock_dump,
        RESConfig(max_depth=12, max_nodes=6000))
    assert cause is not None
    assert cause.kind == "deadlock"
    assert set(cause.threads) == {0, 1}
    assert suffixes and all(s.report.ok for s in suffixes)


def test_deadlock_suffix_contains_lock_events(deadlock_dump):
    res = ReverseExecutionSynthesizer(
        DEADLOCK_ABBA.module, deadlock_dump,
        RESConfig(max_depth=12, max_nodes=6000))
    deepest = None
    for item in res.suffixes():
        deepest = item
    events = [e for step in deepest.suffix.steps for e in step.lock_events]
    assert events, "the suffix must include lock operations"
