"""Flight recorder: end-to-end tracing, phase profiling, operator
surfaces.

What must hold, in the ISSUE's order:

* **span model** — span ids are deterministic functions of
  (trace id, name, qualifier), so a SIGKILL + journal replay re-emits
  the *same* ids and readers dedup instead of double-counting;
* **bounded ring** — the per-node span ring rotates like the journal
  and never exceeds its segment budget, whatever the write volume;
* **zero-cost off** — with no sampling configured, jobs carry no
  trace id and the hot path does no span work;
* **propagation** — the trace context crosses the workerpool pipe
  (drive phases come back from the worker process), crosses fleet 307
  redirects via the ``X-Res-Trace`` header, and survives SIGKILL +
  journal replay with no orphan spans;
* **metrics exposition** — ``/metrics`` carries ``# HELP``/``# TYPE``
  for every family, in deterministic order, parseable by the strict
  little parser in this file;
* **smoke** (``@pytest.mark.obs``, ``make obs-smoke``) — a live
  three-node fleet with sampling on: a submission that crossed a 307
  renders a complete submit→settle waterfall from *any* node, and the
  per-phase histograms land on ``/metrics``.
"""

import subprocess
import sys
import urllib.request
from pathlib import Path

import pytest

import repro
from repro import obs
from repro.core.triage_service import TriageServiceConfig
from repro.fuzz.triage_corpus import build_labeled_corpus
from repro.obs.render import parse_metrics, render_top, render_waterfall
from repro.service import DaemonConfig, TriageDaemon, start_http_server
from repro.service.client import get_trace, submit_report
from repro.workloads import FIGURE1_OVERFLOW

SRC_DIR = Path(repro.__file__).resolve().parents[1]


@pytest.fixture(autouse=True)
def _no_leaked_tracer():
    """Tracing is process-global state; a test that died mid-trace must
    not keep sampling for its neighbours."""
    yield
    obs.deactivate()


def _service_config(**kwargs):
    defaults = dict(max_depth=8, max_nodes=300)
    defaults.update(kwargs)
    return TriageServiceConfig(**defaults)


def _daemon(tmp_path, workers=2, **kwargs):
    config = DaemonConfig(service=_service_config(),
                          spool_dir=str(tmp_path / "spool"),
                          workers=workers, **kwargs)
    return TriageDaemon(config)


def _figure1_submission():
    dump = FIGURE1_OVERFLOW.trigger()
    program = {"key": "figure1_overflow",
               "source": FIGURE1_OVERFLOW.source,
               "name": "figure1_overflow"}
    return program, dump.to_json()


def _assert_no_orphans(spans):
    """Every parent id resolves and exactly one root span exists."""
    ids = {span["span"] for span in spans}
    roots = [span for span in spans if span["parent"] is None]
    assert len(roots) == 1, [s["name"] for s in roots]
    assert roots[0]["name"] == "job"
    for span in spans:
        if span["parent"] is not None:
            assert span["parent"] in ids, \
                f"orphan span {span['name']} (parent {span['parent']})"


def _names(spans):
    return {span["name"] for span in spans}


# ---------------------------------------------------------------------------
# Span model and ring
# ---------------------------------------------------------------------------

def test_span_ids_are_deterministic():
    trace = "a" * 32
    assert obs.span_id(trace, "admit") == obs.span_id(trace, "admit")
    assert obs.span_id(trace, "admit") != obs.span_id(trace, "job")
    assert obs.span_id(trace, "redirect", "node-a") \
        != obs.span_id(trace, "redirect", "node-b")
    assert len(obs.span_id(trace, "job")) == 16
    span = obs.make_span(trace, "queue-1", 1.23456789, -0.5,
                         parent=obs.span_id(trace, "job"),
                         node="node-a")
    assert span["start"] == 1.234568 and span["dur"] == 0.0
    assert span["span"] == obs.span_id(trace, "queue-1")
    assert "attrs" not in span


def test_tracer_sampling_is_deterministic_and_rate_shaped():
    always = obs.Tracer(1.0)
    never = obs.Tracer(0.0)
    half = obs.Tracer(0.5)
    ids = [obs.new_trace_id() for __ in range(200)]
    assert all(always.sampled(trace) for trace in ids)
    assert not any(never.sampled(trace) for trace in ids)
    drawn = [half.sampled(trace) for trace in ids]
    assert drawn == [half.sampled(trace) for trace in ids], \
        "the sampling draw must be a pure function of the trace id"
    assert 40 <= sum(drawn) <= 160  # rate-shaped, not degenerate


def test_span_ring_rotates_and_stays_bounded(tmp_path):
    ring = obs.SpanRing(tmp_path / "spans.jsonl", rotate_bytes=2048,
                        max_segments=3)
    for index in range(400):
        trace = f"{index:032d}"
        ring.append([obs.make_span(trace, "job", float(index), 0.5,
                                   node="n")])
    segments = ring.segment_paths()
    assert len(segments) <= 4  # 3 closed + the active file
    total = sum(path.stat().st_size for path in segments)
    assert total <= 4 * 2048 + 4096, "ring must stay bounded"
    # The newest write always survives; dedup is last-wins by span id.
    newest = f"{399:032d}"
    assert ring.read(trace_id=newest), "latest span lost by rotation"
    dup = obs.make_span(newest, "job", 400.0, 0.25, node="n")
    ring.append([dup])
    spans = ring.read(trace_id=newest)
    assert len(spans) == 1 and spans[0]["start"] == 400.0


def test_activation_env_and_context(monkeypatch):
    from repro.obs import core

    monkeypatch.delenv(obs.SAMPLE_ENV, raising=False)
    obs.deactivate()
    assert obs.active() is None and not obs.enabled()
    with obs.sampling(1.0):
        assert obs.enabled()
        assert obs.active().sampled(obs.new_trace_id())
    assert not obs.enabled()
    # A fresh process resolves the environment exactly once (the
    # double-checked pattern shared with faultinject); simulate one by
    # resetting the module global.
    monkeypatch.setenv(obs.SAMPLE_ENV, "1.0")
    monkeypatch.setattr(core, "_tracer", core._UNRESOLVED)
    assert obs.enabled()
    monkeypatch.setenv(obs.SAMPLE_ENV, "not-a-float")
    monkeypatch.setattr(core, "_tracer", core._UNRESOLVED)
    assert not obs.enabled(), "garbage rates must read as off"


# ---------------------------------------------------------------------------
# Zero-cost when off
# ---------------------------------------------------------------------------

def test_untraced_jobs_carry_no_trace_state(tmp_path):
    daemon = _daemon(tmp_path, workers=1)
    daemon.start()
    program, core = _figure1_submission()
    status, body = daemon.submit(program, core, report_id="dark",
                                 trace_id="f" * 32)
    assert status == 202
    assert "trace_id" not in body, \
        "sampling off: the submitted header must be dropped"
    assert daemon.wait_idle(60)
    daemon.shutdown(drain=True)
    assert daemon.job_payload(body["job_id"]).get("trace_id") is None
    assert daemon.trace_payload(body["job_id"]) is not None
    assert daemon.trace_payload(body["job_id"])["spans"] == []
    assert not daemon.config.spans_path.exists(), \
        "no sampling → no span ring on disk"


# ---------------------------------------------------------------------------
# Propagation: worker pipe, HTTP header, SIGKILL + replay
# ---------------------------------------------------------------------------

def test_trace_crosses_the_workerpool_pipe(tmp_path):
    """The drive's phase timings come back over the worker-process
    pipe and land as child spans of the attempt."""
    obs.activate(1.0)
    daemon = _daemon(tmp_path, workers=1, worker_mode="process")
    daemon.start()
    program, core = _figure1_submission()
    status, body = daemon.submit(program, core, report_id="piped")
    assert status == 202 and body.get("trace_id")
    assert daemon.wait_idle(60)
    daemon.shutdown(drain=True)
    payload = daemon.trace_payload(body["job_id"])
    assert payload["trace_id"] == body["trace_id"]
    spans = payload["spans"]
    _assert_no_orphans(spans)
    names = _names(spans)
    assert {"job", "admit", "queue-1", "attempt-1",
            "compile-1"} <= names
    # A cold drive ran the full engine: the symex phases crossed the
    # pipe as measured durations.
    assert {"enumerate-1", "execute-1", "replay-1", "bucket-1"} <= names
    attempt = next(s for s in spans if s["name"] == "attempt-1")
    phases = [s for s in spans if s["parent"] == attempt["span"]]
    assert phases and all(s["dur"] >= 0 for s in phases)
    enumerate_span = next(s for s in spans
                          if s["name"] == "enumerate-1")
    assert enumerate_span["attrs"]["solver_calls"] > 0


def test_trace_header_propagates_over_http(tmp_path):
    obs.activate(1.0)
    daemon = _daemon(tmp_path, workers=1)
    daemon.start()
    server = start_http_server(daemon)
    host, port = server.server_address[:2]
    base = f"http://{host}:{port}"
    try:
        program, core = _figure1_submission()
        status, body = submit_report(base, program, core,
                                     report_id="http-traced",
                                     trace_id="ab" * 16)
        assert status == 202 and body["trace_id"] == "ab" * 16
        assert daemon.wait_idle(60)
        payload = get_trace(base, body["job_id"])
        assert payload["trace_id"] == "ab" * 16
        _assert_no_orphans(payload["spans"])
        # A raw trace id resolves too (cross-node askers have no job).
        raw = get_trace(base, "ab" * 16)
        assert _names(raw["spans"]) == _names(payload["spans"])
        text = render_waterfall(payload)
        assert "attempt-1" in text and "admit" in text
    finally:
        server.shutdown()
        daemon.shutdown(drain=True)


def test_trace_crosses_fleet_redirect(tmp_path):
    """A misrouted submission's 307 leaves a redirect span on the
    wrong node and the admission on the owner — one trace id, and the
    union of the two rings is a complete, orphan-free tree."""
    obs.activate(1.0)
    corpus = build_labeled_corpus(range(9001, 9005), duplicates=1,
                                  shuffle_seed=3)
    peers = {"node-a": "", "node-b": ""}  # in-process: URLs unused
    daemons = {
        node: TriageDaemon(DaemonConfig(
            service=_service_config(),
            spool_dir=str(tmp_path / "spool"), workers=1,
            node_id=node, peers=peers))
        for node in peers}
    for daemon in daemons.values():
        daemon.start()
    try:
        redirected = None
        trace_id = None
        for entry in corpus.entries:
            spec = corpus.programs[entry.program_key]
            program = {"key": spec.key, "source": spec.source,
                       "name": spec.name}
            core = entry.report.coredump.to_json()
            minted = obs.new_trace_id()
            status, body = daemons["node-a"].submit(
                program, core, report_id=entry.report.report_id,
                trace_id=minted)
            if status != 307:
                continue
            assert body["trace_id"] == minted
            # Re-POST to the owner with the same header, like the
            # client's redirect following does.
            status, body = daemons[body["owner"]].submit(
                program, core, report_id=entry.report.report_id,
                trace_id=minted)
            assert status in (200, 202)
            redirected, trace_id = body["job_id"], minted
            break
        assert redirected is not None, \
            "corpus never crossed a redirect — ring moved under us?"
        for daemon in daemons.values():
            assert daemon.wait_idle(60)
    finally:
        for daemon in daemons.values():
            daemon.shutdown(drain=True)
    merged = {}
    for daemon in daemons.values():
        payload = daemon.trace_payload(trace_id, local_only=True)
        for span in (payload or {}).get("spans", ()):
            merged.setdefault(span["span"], span)
    spans = list(merged.values())
    _assert_no_orphans(spans)
    names = _names(spans)
    assert "redirect" in names and "admit" in names
    redirect = next(s for s in spans if s["name"] == "redirect")
    assert redirect["node"] == "node-a"
    assert redirect["attrs"]["owner"] == "node-b"
    owner_nodes = {s["node"] for s in spans if s["name"] != "redirect"}
    assert owner_nodes == {"node-b"}


def test_sigkill_replay_keeps_span_ids_stable(tmp_path):
    """Kill the daemon with a traced job still queued: the resumed
    daemon finishes the trace under the same ids — the admission span
    from the first life and the attempt from the second stitch into
    one orphan-free tree."""
    obs.activate(1.0)
    first = _daemon(tmp_path, workers=0)
    program, core = _figure1_submission()
    status, body = first.submit(program, core, report_id="undying")
    assert status == 202
    trace_id, job_id = body["trace_id"], body["job_id"]
    admit_id = obs.span_id(trace_id, "admit")
    assert any(span["span"] == admit_id
               for span in first._span_ring.read(trace_id=trace_id)), \
        "the admission span must be durable before the kill"
    del first  # SIGKILL-equivalent: no shutdown, no drain

    second = _daemon(tmp_path, workers=1)
    assert second.resumed_jobs == 1
    second.start()
    assert second.wait_idle(60)
    second.shutdown(drain=True)
    payload = second.trace_payload(job_id)
    assert payload["trace_id"] == trace_id
    spans = payload["spans"]
    _assert_no_orphans(spans)
    names = _names(spans)
    assert {"job", "admit", "queue-1", "attempt-1"} <= names
    assert sum(1 for span in spans if span["span"] == admit_id) == 1, \
        "replay must dedup, not double-count, the first life's spans"
    root = next(s for s in spans if s["name"] == "job")
    assert root["attrs"]["state"] == "done"


# ---------------------------------------------------------------------------
# Metrics exposition: HELP/TYPE, deterministic order, parseable
# ---------------------------------------------------------------------------

def _parse_exposition(text):
    """Strict parse: returns {family: (type, [sample lines])} and
    asserts the HELP → TYPE → samples shape for every family."""
    families = {}
    current = None
    for line in text.strip().splitlines():
        if line.startswith("# HELP "):
            name, __, help_text = line[len("# HELP "):].partition(" ")
            assert help_text, f"empty HELP for {name}"
            assert name not in families, f"family {name} repeated"
            families[name] = {"type": None, "samples": []}
            current = name
        elif line.startswith("# TYPE "):
            name, __, kind = line[len("# TYPE "):].partition(" ")
            assert name == current, "TYPE must follow its own HELP"
            assert kind in ("counter", "gauge", "summary"), kind
            families[name]["type"] = kind
        else:
            sample_name = line.partition("{")[0].partition(" ")[0]
            assert sample_name == current, \
                f"sample {sample_name!r} outside its family block"
            value = line.rpartition(" ")[2]
            float(value)  # every sample value must parse
            families[current]["samples"].append(line)
    for name, family in families.items():
        assert family["type"] is not None, f"{name} has no TYPE"
        assert family["samples"], f"{name} has no samples"
    return families


def test_metrics_exposition_is_valid_and_deterministic(tmp_path):
    obs.activate(1.0)
    daemon = _daemon(tmp_path, workers=1)
    daemon.start()
    program, core = _figure1_submission()
    daemon.submit(program, core, report_id="metered")
    daemon.submit(program, core, report_id="metered-again")  # dedup
    assert daemon.wait_idle(60)
    daemon.shutdown(drain=True)
    text = daemon.metrics_text()
    families = _parse_exposition(text)
    assert list(families) == sorted(families), \
        "families must be emitted in sorted order"
    assert families["res_intake_submitted_total"]["type"] == "counter"
    assert families["res_intake_queue_depth"]["type"] == "gauge"
    assert families["res_intake_latency_seconds"]["type"] == "summary"
    phase = families["res_intake_phase_latency_seconds"]
    assert phase["type"] == "summary"
    assert any('phase="queue"' in line for line in phase["samples"])
    assert any('phase="attempt"' in line for line in phase["samples"])
    assert any('quantile="0.95"' in line for line in phase["samples"])
    assert phase["samples"] == sorted(phase["samples"]), \
        "labeled samples must be in deterministic order"
    # Two scrapes of an idle daemon expose the same families.
    assert set(_parse_exposition(daemon.metrics_text())) \
        == set(families)
    # The exact line shapes other suites grep for still hold.
    assert "res_intake_dedup_total 1" in text
    assert "res_intake_verdicts_total 1" in text
    assert "# TYPE res_intake_rebucket_passes_total counter" in text
    assert 'res_intake_latency_seconds{quantile="0.95"}' in text


def test_parse_metrics_reads_unlabeled_samples(tmp_path):
    daemon = _daemon(tmp_path, workers=0)
    daemon.shutdown(drain=False)
    parsed = parse_metrics(daemon.metrics_text())
    assert parsed["res_intake_submitted_total"] == 0.0
    assert parsed["res_intake_degraded"] in (0.0, 1.0)
    assert "res_intake_latency_seconds" not in parsed  # labeled


# ---------------------------------------------------------------------------
# Renderers
# ---------------------------------------------------------------------------

def test_render_waterfall_empty_and_orphan_tolerant():
    assert "(no spans recorded)" in render_waterfall(
        {"trace_id": "t", "spans": []})
    # An orphan (parent id missing) surfaces at top level, not hidden.
    trace = "c" * 32
    spans = [obs.make_span(trace, "job", 0.0, 1.0),
             obs.make_span(trace, "ghost-1", 0.5, 0.1,
                           parent="0badc0ffee0badc0")]
    text = render_waterfall({"trace_id": trace, "spans": spans})
    assert "ghost-1" in text and "job" in text


def test_render_top_totals_and_down_nodes():
    rows = [
        {"url": "http://a", "health": {
            "node_id": "node-a", "status": "ok", "queue_depth": 3,
            "in_flight": 1, "workers": 2, "workers_alive": 2,
            "quarantined": 0},
         "metrics": {"res_intake_verdicts_total": 10.0,
                     "res_intake_warm_hits_total": 5.0,
                     "res_intake_verdicts_per_second": 2.5},
         "buckets": {"buckets": {"sig-x": ["r1", "r2"],
                                 "sig-y": ["r3"]}}},
        {"url": "http://b", "health": None, "metrics": None,
         "error": "connection refused"},
    ]
    text = render_top(rows)
    assert "node-a" in text and "DOWN" in text
    assert "TOTAL" in text and "2 node(s)" in text
    assert "sig-x" in text and "top buckets" in text


# ---------------------------------------------------------------------------
# Smoke (@obs): live 3-node fleet, sampling on, stitched waterfall
# ---------------------------------------------------------------------------

@pytest.mark.obs
def test_obs_smoke_cycle(tmp_path):
    """The CI gate: a three-node ``res serve`` fleet with
    ``--trace-sample 1``; every submission lands through node-a, so
    ring-owned-elsewhere jobs cross a real 307 with the trace header.
    ``res trace`` then renders the full waterfall from a *non-owner*
    node, and the owners' ``/metrics`` carry phase histograms."""
    from test_fleet import (_fleet_drained, _fleet_synced, _free_ports,
                            _http_shutdown, _spawn_fleet_node)
    corpus = build_labeled_corpus(range(9001, 9005), duplicates=2,
                                  shuffle_seed=3)
    ports = dict(zip(("node-a", "node-b", "node-c"), _free_ports(3)))
    urls = {node: f"http://127.0.0.1:{port}"
            for node, port in ports.items()}
    procs = {}
    try:
        for node, port in ports.items():
            procs[node] = _spawn_fleet_node(
                tmp_path, node, port, ports,
                extra=("--trace-sample", "1"))
        acked = []
        for entry in corpus.entries:
            spec = corpus.programs[entry.program_key]
            status, body = submit_report(
                urls["node-a"],
                {"key": spec.key, "source": spec.source,
                 "name": spec.name},
                entry.report.coredump.to_json(),
                report_id=entry.report.report_id,
                true_cause=entry.report.true_cause)
            assert status in (200, 202), body
            assert body.get("trace_id"), "sampling on: every ack traced"
            acked.append(body["job_id"])
        assert _fleet_drained(list(urls.values()), timeout=120.0)
        assert _fleet_synced(list(urls.values()), len(corpus.entries),
                             timeout=30.0)
        crossed = [job_id for job_id in acked
                   if not job_id.startswith("node-a-")]
        assert crossed, "no submission crossed a redirect"

        def run_cli(*argv):
            import os
            env = dict(os.environ)
            env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get(
                "PYTHONPATH", "")
            done = subprocess.run(
                [sys.executable, "-m", "repro.cli", *argv],
                capture_output=True, text=True, timeout=60, env=env)
            assert done.returncode == 0, done.stderr
            return done.stdout

        # The acceptance waterfall: a redirected job, asked of a node
        # that does NOT own it — the stitch crosses two nodes.
        text = run_cli("trace", crossed[0], "--url", urls["node-a"])
        for needle in ("redirect", "admit", "queue-1", "attempt-1",
                       "compile-1", "state=done"):
            assert needle in text, f"waterfall missing {needle}:\n{text}"
        owner = crossed[0].split("-j")[0]
        metrics = urllib.request.urlopen(
            urls[owner] + "/metrics", timeout=10).read().decode()
        assert "res_intake_phase_latency_seconds{" in metrics
        assert 'phase="attempt"' in metrics

        # The other operator surfaces answer fleet-wide.
        top = run_cli("top", "--iterations", "1", "--no-clear",
                      *[arg for url in urls.values()
                        for arg in ("--url", url)])
        assert "TOTAL" in top and "3 node(s)" in top
        status_text = run_cli(
            "status", *[arg for url in urls.values()
                        for arg in ("--url", url)])
        assert "[fleet: 3 node(s)]" in status_text
        assert "res_intake_verdicts_total" in status_text
    finally:
        for node, proc in procs.items():
            try:
                _http_shutdown(proc, urls[node])
            except Exception:
                proc.kill()
