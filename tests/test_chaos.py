"""Fault injection and the self-healing intake daemon.

Two layers of proof that no acknowledged job is ever lost:

* **unit** (unmarked, tier-1): each fault site and each self-healing
  mechanism in isolation — deterministic injector schedules, worker
  death → retry → verdict, poison-job quarantine (with journal
  persistence), watchdog reaping of hung drives, ENOSPC-safe
  journaling (503, never a corrupt journal), degraded-mode read-only
  dedup, malformed/corrupt-on-the-wire submissions, and client-side
  retry across daemon restarts.
* **chaos** (``@pytest.mark.chaos``, ``make chaos-smoke``): a live
  ``res serve`` subprocess hammered with a seeded random fault
  schedule *plus* SIGKILL, restarted twice, and then verified: every
  202-acknowledged job settles (verdict or quarantine), every settled
  verdict is semantically identical to a fault-free batch run, and the
  journal replays clean end to end.  A failing seed dumps its fault
  schedule, fault log, and journal tail for exact reproduction.
"""

import json
import os
import random
import signal
import socket
import subprocess
import sys
import threading
import time
import urllib.request
from pathlib import Path

import pytest

import repro
from repro import faultinject
from repro.faultinject import FaultInjector, WorkerCrashError
from repro.faultinject import core as faultinject_core
from repro.core.triage_service import TriageServiceConfig, triage_corpus
from repro.fuzz.triage_corpus import build_labeled_corpus
from repro.service import DaemonConfig, TriageDaemon, start_http_server
from repro.service.client import (
    RetryPolicy,
    ServiceClientError,
    get_job,
    submit_report,
    submit_with_retries,
    watch_directory,
)
from repro.service.jobs import JobJournal
from repro.workloads import FIGURE1_OVERFLOW

SRC_DIR = Path(repro.__file__).resolve().parents[1]

#: the chaos matrix: every seed must hold the no-lost-jobs invariant
CHAOS_SEEDS = (101, 202, 303, 404, 505)


@pytest.fixture(autouse=True)
def _no_leaked_injector():
    """Fault plans are process-global state; a test that died mid-plan
    must not inject faults into its neighbours."""
    yield
    faultinject.deactivate()


def _service_config(**kwargs):
    defaults = dict(max_depth=8, max_nodes=300)
    defaults.update(kwargs)
    return TriageServiceConfig(**defaults)


def _daemon(tmp_path, workers=1, store=False, **kwargs):
    service = _service_config(
        store_path=str(tmp_path / "daemon-store.json") if store else None)
    kwargs.setdefault("monitor_interval", 0.02)
    kwargs.setdefault("retry_backoff_base", 0.01)
    kwargs.setdefault("backoff_seed", 0)
    config = DaemonConfig(service=service,
                          spool_dir=str(tmp_path / "spool"),
                          workers=workers, **kwargs)
    return TriageDaemon(config)


def _figure1_submission():
    dump = FIGURE1_OVERFLOW.trigger()
    program = {"key": "figure1_overflow",
               "source": FIGURE1_OVERFLOW.source,
               "name": "figure1_overflow"}
    return program, dump.to_json()


# ---------------------------------------------------------------------------
# The injector itself: determinism, env activation, reproduction log
# ---------------------------------------------------------------------------

def test_injector_schedule_is_deterministic():
    plan = {"seed": 42, "sites": {"solver.call": {"prob": 0.3,
                                                  "kinds": ["error",
                                                            "delay"]}}}
    first = FaultInjector(plan)
    second = FaultInjector(plan)
    schedule = [first.decide("solver.call") for __ in range(200)]
    assert schedule == [second.decide("solver.call") for __ in range(200)]
    fired = [kind for kind in schedule if kind is not None]
    assert fired and set(fired) <= {"error", "delay"}
    assert first.counters()["total"] == len(fired)


def test_injector_sites_are_independent():
    """Instrumenting a new site must never shift an existing plan's
    schedule — per-site RNGs are derived from (seed, site)."""
    base = {"prob": 0.3, "kinds": ["error"]}
    alone = FaultInjector({"seed": 42, "sites": {"solver.call": base}})
    paired = FaultInjector({"seed": 42, "sites": {
        "solver.call": base,
        "worker.task": {"prob": 0.5, "kinds": ["crash"]}}})
    schedule = []
    for __ in range(200):
        paired.decide("worker.task")  # interleaved draws at another site
        schedule.append(paired.decide("solver.call"))
    assert schedule == [alone.decide("solver.call") for __ in range(200)]


def test_injector_max_caps_total_injections():
    fi = FaultInjector({"seed": 1, "sites": {"worker.task":
                                             {"prob": 1.0, "max": 3,
                                              "kinds": ["crash"]}}})
    fired = [fi.decide("worker.task") for __ in range(10)]
    assert fired.count("crash") == 3 and fired[3:] == [None] * 7


def test_env_activation_and_fault_log(tmp_path, monkeypatch):
    """The subprocess path: RES_FAULT_SPEC (file or inline JSON) +
    RES_FAULT_LOG, resolved once on first active() call."""
    spec = {"seed": 5, "sites": {"worker.task": {"prob": 1.0,
                                                 "kinds": ["crash"]}}}
    spec_path = tmp_path / "faults.json"
    spec_path.write_text(json.dumps(spec))
    log_path = tmp_path / "fault-log.jsonl"
    monkeypatch.setenv(faultinject.SPEC_ENV, str(spec_path))
    monkeypatch.setenv(faultinject.LOG_ENV, str(log_path))
    monkeypatch.setattr(faultinject_core, "_injector",
                        faultinject_core._UNRESOLVED)
    fi = faultinject.active()
    assert fi is not None and fi.seed == 5
    with pytest.raises(WorkerCrashError):
        fi.check("worker.task")
    rows = [json.loads(line)
            for line in log_path.read_text().splitlines()]
    assert rows[0]["event"] == "plan" and rows[0]["seed"] == 5
    assert rows[1]["event"] == "fault"
    assert rows[1]["site"] == "worker.task"
    assert rows[1]["kind"] == "crash" and rows[1]["call"] == 0
    # Inline-JSON form of the same variable.
    monkeypatch.setenv(faultinject.SPEC_ENV, json.dumps(spec))
    monkeypatch.delenv(faultinject.LOG_ENV)
    monkeypatch.setattr(faultinject_core, "_injector",
                        faultinject_core._UNRESOLVED)
    assert faultinject.active().rules["worker.task"].prob == 1.0


def test_disabled_injection_is_inert(tmp_path):
    """No plan → no faults, no counters, no metrics noise: the
    zero-cost-when-disabled contract the acceptance gate measures."""
    assert faultinject.active() is None
    assert faultinject.injected_total() == 0
    daemon = _daemon(tmp_path, workers=1)
    daemon.start()
    program, core = _figure1_submission()
    status, body = daemon.submit(program, core, report_id="calm")
    assert status == 202
    assert daemon.wait_idle(60)
    daemon.shutdown(drain=True)
    metrics = daemon.metrics_text()
    assert "res_intake_injected_faults_total 0" in metrics
    assert "res_intake_retries_total 0" in metrics
    assert "res_intake_quarantined_total 0" in metrics
    assert "res_intake_worker_restarts_total 0" in metrics
    assert "res_intake_degraded 0" in metrics
    assert daemon.job_payload(body["job_id"])["state"] == "done"


# ---------------------------------------------------------------------------
# Self-healing: crash-tolerant workers, quarantine, watchdog
# ---------------------------------------------------------------------------

def test_worker_crash_is_retried_to_verdict(tmp_path):
    """A worker dying mid-job costs one backoff, never the job: the
    monitor respawns the pool and the retry settles normally."""
    with faultinject.injected({"seed": 1, "sites": {
            "worker.task": {"at": [0], "kinds": ["crash"], "max": 1}}}):
        daemon = _daemon(tmp_path, workers=1)
        daemon.start()
        program, core = _figure1_submission()
        status, body = daemon.submit(program, core, report_id="bumpy")
        assert status == 202
        assert daemon.wait_idle(60)
        daemon.shutdown(drain=True)
        metrics = daemon.metrics_text()
        assert "res_intake_injected_faults_total 1" in metrics
    payload = daemon.job_payload(body["job_id"])
    assert payload["state"] == "done"
    assert payload["attempts"] == 2
    assert payload["worker_crashes"] == 1
    snapshot = daemon.metrics.snapshot()
    assert snapshot["retries_total"] == 1
    assert snapshot["worker_restarts_total"] >= 1


def test_traced_retry_records_every_attempt(tmp_path):
    """The flight recorder must not flatter a bumpy job: a traced job
    whose first worker died shows attempt-1 as a worker-crash AND
    attempt-2 as the settle — every attempt, not just the last."""
    from repro import obs

    with faultinject.injected({"seed": 1, "sites": {
            "worker.task": {"at": [0], "kinds": ["crash"], "max": 1}}}):
        obs.activate(1.0)
        try:
            daemon = _daemon(tmp_path, workers=1)
            daemon.start()
            program, core = _figure1_submission()
            status, body = daemon.submit(program, core,
                                         report_id="bumpy-traced")
            assert status == 202 and body.get("trace_id")
            assert daemon.wait_idle(60)
            daemon.shutdown(drain=True)
        finally:
            obs.deactivate()
    assert daemon.job_payload(body["job_id"])["attempts"] == 2
    spans = daemon.trace_payload(body["job_id"])["spans"]
    by_name = {span["name"]: span for span in spans}
    assert by_name["attempt-1"]["attrs"]["outcome"] == "worker-crash"
    assert "error" in by_name["attempt-1"]["attrs"]
    assert by_name["attempt-2"]["attrs"]["outcome"] == "ok"
    # Each attempt waited in the queue once: two queue spans.
    assert "queue-1" in by_name and "queue-2" in by_name
    assert by_name["job"]["attrs"]["state"] == "done"
    assert by_name["job"]["attrs"]["attempts"] == 2


def test_quarantined_trace_shows_every_attempt(tmp_path):
    """A poison job's trace ends at quarantine with one attempt span
    per worker it killed — the operator's post-mortem of the fuse."""
    from repro import obs

    program, core = _figure1_submission()
    with faultinject.injected({"seed": 2, "sites": {
            "worker.task": {"prob": 1.0, "kinds": ["crash"]}}}):
        obs.activate(1.0)
        try:
            daemon = _daemon(tmp_path, workers=1, quarantine_after=2)
            daemon.start()
            status, body = daemon.submit(program, core,
                                         report_id="poison-traced")
            assert status == 202
            assert daemon.wait_idle(60)
            daemon.shutdown()
        finally:
            obs.deactivate()
    assert daemon.job_payload(body["job_id"])["state"] == "quarantined"
    spans = daemon.trace_payload(body["job_id"])["spans"]
    by_name = {span["name"]: span for span in spans}
    assert by_name["attempt-1"]["attrs"]["outcome"] == "worker-crash"
    assert by_name["attempt-2"]["attrs"]["outcome"] == "worker-crash"
    root = by_name["job"]
    assert root["attrs"]["state"] == "quarantined"
    assert "error" in root["attrs"]


def test_poison_job_quarantined_with_dependents(tmp_path):
    """A job that kills every worker that touches it must settle as
    quarantined — with diagnostics — instead of crash-looping the
    fleet, and must take its attached duplicates with it."""
    program, core = _figure1_submission()
    with faultinject.injected({"seed": 2, "sites": {
            "worker.task": {"prob": 1.0, "kinds": ["crash"]}}}):
        daemon = _daemon(tmp_path, workers=1, quarantine_after=2)
        status, rep = daemon.submit(program, core, report_id="poison")
        assert status == 202
        status, dup = daemon.submit(program, core, report_id="tagalong")
        assert status == 202 and dup["attached_to"] == rep["job_id"]
        daemon.start()
        assert daemon.wait_idle(60), "quarantine must settle the queue"
        daemon.shutdown()
    payload = daemon.job_payload(rep["job_id"])
    assert payload["state"] == "quarantined"
    assert "killed 2 worker" in payload["error"]
    assert payload["worker_crashes"] == 2
    dependent = daemon.job_payload(dup["job_id"])
    assert dependent["state"] == "quarantined"
    assert "representative" in dependent["error"]
    assert daemon.metrics.snapshot()["quarantined_total"] == 2
    rows = daemon.quarantine_payload()["quarantined"]
    assert [row["job_id"] for row in rows] == [rep["job_id"],
                                               dup["job_id"]]

    # Quarantine is durable: a restart replays it settled, not queued.
    second = TriageDaemon(daemon.config)
    health = second.healthz()
    assert health["quarantined"] == 2 and health["queue_depth"] == 0
    assert second.resumed_jobs == 0
    # ... but it is a fuse, not a verdict: with the fault gone, a fresh
    # submission of the same crash drives and completes.
    second.start()
    status, fresh = second.submit(program, core, report_id="fresh")
    assert status == 202 and "dedup_of" not in fresh
    assert second.wait_idle(60)
    second.shutdown(drain=True)
    assert second.job_payload(fresh["job_id"])["state"] == "done"


def test_watchdog_reaps_hung_drive(tmp_path):
    """A drive parked in a hung solver call is written off by the
    watchdog: the worker is abandoned and replaced, the job re-queued,
    and its stale settle (when the hang finally returns) discarded."""
    with faultinject.injected({"seed": 3, "sites": {
            "solver.call": {"at": [0], "kinds": ["hang"], "hang": 2.0,
                            "max": 1}}}):
        daemon = _daemon(tmp_path, workers=1, watchdog_timeout=0.3)
        daemon.start()
        program, core = _figure1_submission()
        status, body = daemon.submit(program, core, report_id="stuck")
        assert status == 202
        assert daemon.wait_idle(60)
        daemon.shutdown(drain=True)
    payload = daemon.job_payload(body["job_id"])
    assert payload["state"] == "done"
    assert payload["worker_crashes"] == 1  # the reap counted
    assert daemon.metrics.snapshot()["worker_restarts_total"] >= 1


# ---------------------------------------------------------------------------
# Disk trouble: ENOSPC-safe journaling, degraded read-only mode
# ---------------------------------------------------------------------------

def test_enospc_journal_refuses_submission_then_recovers(tmp_path):
    """A 202 that would not survive SIGKILL is a lie: when the journal
    cannot append, the submission is refused (OSError → HTTP 503) with
    no phantom job behind it, healthz turns degraded, and the first
    successful append heals the signal."""
    daemon = _daemon(tmp_path, workers=0)
    program, core = _figure1_submission()
    with faultinject.injected({"seed": 4, "sites": {
            "ioutil.append_line": {"prob": 1.0, "kinds": ["enospc"],
                                   "max": 1,
                                   "path_contains": "jobs.jsonl"}}}):
        with pytest.raises(OSError):
            daemon.submit(program, core, report_id="refused")
        health = daemon.healthz()
        assert health["disk"] == "unhealthy"
        assert health["status"] == "degraded"
        assert "res_intake_degraded 1" in daemon.metrics_text()
        snapshot = daemon.metrics.snapshot()
        assert snapshot["journal_errors_total"] == 1
        assert snapshot["submitted_total"] == 0  # no phantom admitted
        assert daemon.healthz()["queue_depth"] == 0
        # Disk back (the fault plan's max=1 is spent): same submission
        # is accepted, journaled, and the degraded signal clears.
        status, body = daemon.submit(program, core, report_id="kept")
        assert status == 202
    assert daemon.healthz()["disk"] == "ok"
    daemon.shutdown()
    resumed = TriageDaemon(daemon.config)
    assert resumed.resumed_jobs == 1  # the refused one left no trace


def test_degraded_disk_serves_instant_dedup_read_only(tmp_path):
    """With the spool disk gone, known crashes still get their verdict:
    the answer is computed and durable from the representative, so only
    the duplicate's bookkeeping row is lost (replay self-heals it)."""
    daemon = _daemon(tmp_path, workers=1)
    daemon.start()
    program, core = _figure1_submission()
    status, first = daemon.submit(program, core, report_id="rep")
    assert status == 202
    assert daemon.wait_idle(60)
    with faultinject.injected({"seed": 5, "sites": {
            "ioutil.append_line": {"prob": 1.0, "kinds": ["enospc"],
                                   "path_contains": "jobs.jsonl"}}}):
        with pytest.warns(RuntimeWarning, match="read-only"):
            status, body = daemon.submit(program, core,
                                         report_id="while-down")
        assert status == 200
        assert body["state"] == "done" and body["dedup_of"] == "rep"
        assert body["verdict"]["bucket"]
        assert daemon.healthz()["disk"] == "unhealthy"
    daemon.shutdown()


# ---------------------------------------------------------------------------
# Malformed and corrupt-on-the-wire submissions
# ---------------------------------------------------------------------------

def test_fuzzed_submission_bytes_never_reach_a_worker(tmp_path):
    """Byte-level truncations and bitflips of a real coredump must
    produce a structured 400 (or parse back to a valid dump and be
    accepted) — never an unhandled exception, never a worker claim."""
    daemon = _daemon(tmp_path, workers=0)
    program, core = _figure1_submission()
    accepted = rejected = 0
    for cut in (1, len(core) // 3, len(core) // 2, len(core) - 3):
        status, body = daemon.submit(program, core[:cut],
                                     report_id=f"cut{cut}")
        assert status == 400, "a truncated JSON can never parse"
        assert body["error"], "the one-line diagnostic contract"
        rejected += 1
    rng = random.Random(1234)
    for index in range(25):
        pos = rng.randrange(len(core))
        flipped = (core[:pos]
                   + chr(ord(core[pos]) ^ (1 << rng.randrange(7)))
                   + core[pos + 1:])
        status, body = daemon.submit(program, flipped,
                                     report_id=f"flip{index}")
        assert status in (200, 202, 400), (status, body)
        if status == 400:
            assert body["error"]
            rejected += 1
        else:
            accepted += 1
    assert rejected > 4, "bitflips must trip the parser sometimes"
    snapshot = daemon.metrics.snapshot()
    assert snapshot["malformed_total"] == rejected
    assert snapshot["submitted_total"] == accepted
    # The daemon is unharmed: a clean submission still lands.
    status, __ = daemon.submit(program, core, report_id="still-alive")
    assert status in (200, 202)
    daemon.shutdown()


def test_oversized_coredump_rejected_at_admission(tmp_path):
    daemon = _daemon(tmp_path, workers=0, max_core_bytes=64)
    program, core = _figure1_submission()
    assert len(core) > 64
    status, body = daemon.submit(program, core, report_id="huge")
    assert status == 400 and "oversized" in body["error"]
    assert daemon.metrics.snapshot()["malformed_total"] == 1
    daemon.shutdown()


def test_wire_corruption_rejected_never_acknowledged(tmp_path):
    """Corrupt-on-the-wire submissions (the http.body fault site) come
    back 400 + rejected metric; the moment the wire heals, the same
    submission is accepted."""
    daemon = _daemon(tmp_path, workers=0)
    server = start_http_server(daemon)
    host, port = server.server_address[:2]
    base = f"http://{host}:{port}"
    program, core = _figure1_submission()
    try:
        with faultinject.injected({"seed": 6, "sites": {
                "http.body": {"prob": 1.0, "max": 3,
                              "kinds": ["garbage", "truncate"]}}}):
            for index in range(3):
                with pytest.raises(ServiceClientError, match="refused"):
                    submit_report(base, program, core,
                                  report_id=f"wire{index}")
            status, body = submit_report(base, program, core,
                                         report_id="healed")
            assert status == 202, body
        assert daemon.metrics.snapshot()["malformed_total"] == 3
        assert daemon.metrics.snapshot()["submitted_total"] == 1
    finally:
        server.shutdown()
        daemon.shutdown()


# ---------------------------------------------------------------------------
# Client-side resilience: retries across restarts and outages
# ---------------------------------------------------------------------------

def _free_port() -> int:
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()
    return port


def test_submit_with_retries_survives_daemon_restart(tmp_path):
    """Connection refused mid-restart is backoff-and-retry, not fatal:
    the submission lands once the daemon is back."""
    daemon = _daemon(tmp_path, workers=1)
    daemon.start()
    port = _free_port()
    base = f"http://127.0.0.1:{port}"
    box = {}

    def bring_up():
        time.sleep(0.5)
        box["server"] = start_http_server(daemon, port=port)

    thread = threading.Thread(target=bring_up, daemon=True)
    thread.start()
    retries = []
    program, core = _figure1_submission()
    try:
        status, body = submit_with_retries(
            base, program, core, report_id="patient",
            policy=RetryPolicy(max_retries=20, backoff_base=0.1,
                               backoff_cap=0.5, seed=0, timeout=20.0),
            notify=lambda marker, st, info: retries.append(info))
        assert status == 202, body
        assert retries, "the pre-restart refusals must have been retried"
        assert daemon.wait_idle(60)
    finally:
        thread.join(timeout=5)
        if "server" in box:
            box["server"].shutdown()
        daemon.shutdown()


def test_watch_survives_daemon_outage(tmp_path):
    """`res watch` (not --once) rides out a daemon outage: jittered
    backoff, notify-visible retries, and forwarding resumes when the
    daemon returns."""
    program, core = _figure1_submission()
    intake = tmp_path / "intake"
    intake.mkdir()
    (intake / "crash-a.json").write_text(core)
    daemon = _daemon(tmp_path, workers=1)
    daemon.start()
    port = _free_port()
    base = f"http://127.0.0.1:{port}"
    box = {}

    def bring_up():
        time.sleep(0.5)
        box["server"] = start_http_server(daemon, port=port)

    thread = threading.Thread(target=bring_up, daemon=True)
    thread.start()
    events = []
    try:
        forwarded = watch_directory(
            str(intake), base, program=program, interval=0.05,
            notify=lambda marker, st, body: events.append((marker, st)),
            stop=lambda: any(st in (200, 202) for __, st in events),
            policy=RetryPolicy(max_retries=40, backoff_base=0.05,
                               backoff_cap=0.2, seed=0))
        assert forwarded == 1
        assert any(marker == "daemon" for marker, __ in events), \
            "the outage must surface as retried 'daemon' notifications"
    finally:
        thread.join(timeout=5)
        if "server" in box:
            box["server"].shutdown()
        daemon.shutdown()


# ---------------------------------------------------------------------------
# The chaos suite: live daemon + random fault schedule + SIGKILL
# ---------------------------------------------------------------------------

def _chaos_spec(seed: int) -> dict:
    """A seed's randomized fault schedule.  Kinds are chosen so that a
    fault can delay, kill, or refuse — but never legitimately *change*
    — a verdict: the fault-free reference comparison stays exact."""
    return {
        "seed": seed,
        "sites": {
            "worker.task": {"prob": 0.25, "kinds": ["crash"], "max": 3},
            "solver.call": {"prob": 0.2, "kinds": ["delay", "hang"],
                            "delay": 0.05, "hang": 1.2, "max": 2},
            "ioutil.append_line": {"prob": 0.15, "max": 4,
                                   "kinds": ["enospc", "torn", "fsync"]},
            "ioutil.atomic_write": {"prob": 0.15, "max": 2,
                                    "kinds": ["enospc", "interrupt"]},
        },
    }


@pytest.fixture(scope="module")
def corpus():
    built = build_labeled_corpus(range(9001, 9005), duplicates=2,
                                 shuffle_seed=3)
    assert len(built.entries) == 8 and len(built.programs) == 4
    return built


@pytest.fixture(scope="module")
def reference(corpus):
    """The fault-free truth: report_id → semantic verdict from a batch
    run (the same fields verdict_view compares runs by)."""
    result = triage_corpus(corpus, _service_config())
    return {
        item.result.report_id: {
            "bucket": repr(item.result.bucket),
            "cause_kind": item.result.cause.kind
            if item.result.cause else None,
            "used_fallback": item.result.used_fallback,
            "exploitable": item.result.exploitable,
        }
        for item in result.reports
    }


def _spawn_chaos_serve(cwd, fault_env=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH",
                                                            "")
    env.pop(faultinject.SPEC_ENV, None)
    env.pop(faultinject.LOG_ENV, None)
    if fault_env:
        env.update(fault_env)
    stderr = open(Path(cwd) / "serve-err.log", "a")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
         "--spool", "spool", "--store", "store.json",
         "--cache-dir", "cache", "--max-depth", "8", "--max-nodes",
         "300", "--workers", "2", "--max-attempts", "4",
         "--quarantine-after", "2", "--watchdog-timeout", "1.0",
         "--retry-backoff", "0.02"],
        cwd=str(cwd), env=env, stdout=subprocess.PIPE, stderr=stderr,
        text=True)
    stderr.close()  # the child owns the descriptor now
    banner = proc.stdout.readline().strip()
    assert "listening on" in banner, f"daemon failed to start: {banner!r}"
    return proc, banner.split()[3]


def _wait_settled(base_url, timeout):
    deadline = time.monotonic() + timeout
    health = {}
    while time.monotonic() < deadline:
        health = json.loads(
            urllib.request.urlopen(base_url + "/healthz").read())
        if health["queue_depth"] == 0 and health["in_flight"] == 0 \
                and health["delayed_retries"] == 0:
            return True
        time.sleep(0.1)
    return False


def _diagnostics(tmp_path, seed):
    """Everything needed to replay a failing seed by hand."""
    parts = [f"\n--- chaos seed {seed} diagnostics ---",
             f"fault spec: {json.dumps(_chaos_spec(seed))}"]
    for name in ("fault-log.jsonl", "serve-err.log"):
        path = tmp_path / name
        if path.exists():
            parts.append(f"--- {name} ---\n{path.read_text()[-4000:]}")
    journal = tmp_path / "spool" / "jobs.jsonl"
    if journal.exists():
        lines = journal.read_text().splitlines()
        parts.append(f"--- spool/jobs.jsonl (last 30 of {len(lines)}) "
                     f"---\n" + "\n".join(lines[-30:]))
    return "\n".join(parts)


@pytest.mark.chaos
@pytest.mark.parametrize("seed", CHAOS_SEEDS)
def test_chaos_no_acknowledged_job_is_lost(tmp_path, corpus, reference,
                                           seed):
    """The tentpole invariant, against a live daemon under fire:

    * every 202-acknowledged job settles — verdict or quarantine —
      across two SIGKILLs and a restart;
    * every settled verdict is semantically identical to the fault-free
      batch reference (faults may delay or kill work, never bend it);
    * the journal replays clean end to end, acknowledged jobs included.
    """
    spec_path = tmp_path / "faults.json"
    spec_path.write_text(json.dumps(_chaos_spec(seed)))
    fault_env = {faultinject.SPEC_ENV: str(spec_path),
                 faultinject.LOG_ENV: str(tmp_path / "fault-log.jsonl")}
    rng = random.Random(seed)
    acked = []  # (report_id, job_id) for every 202 acknowledgment

    def push(base, entries):
        for entry in entries:
            spec = corpus.programs[entry.program_key]
            status, body = submit_with_retries(
                base,
                {"key": spec.key, "source": spec.source,
                 "name": spec.name},
                entry.report.coredump.to_json(),
                report_id=entry.report.report_id,
                true_cause=entry.report.true_cause,
                policy=RetryPolicy(max_retries=10, backoff_base=0.05,
                                   backoff_cap=1.0, seed=seed,
                                   timeout=30.0))
            assert status in (200, 202), (status, body)
            if status == 200:
                check_verdict(entry.report.report_id, body["verdict"])
            else:
                acked.append((entry.report.report_id, body["job_id"]))

    def check_verdict(report_id, verdict):
        expected = reference[report_id]
        got = {key: verdict[key] for key in expected}
        assert got == expected, (f"verdict for {report_id} diverged "
                                 f"under faults: {got} != {expected}")

    proc = None
    try:
        # Life 1: faults on; accept some traffic, then die mid-flight.
        proc, base = _spawn_chaos_serve(tmp_path, fault_env)
        push(base, corpus.entries[:4])
        time.sleep(rng.uniform(0.2, 1.0))
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)

        # Life 2: faults still on; the rest of the traffic, a bounded
        # settle window, another SIGKILL.
        proc, base = _spawn_chaos_serve(tmp_path, fault_env)
        push(base, corpus.entries[4:])
        _wait_settled(base, timeout=10.0)  # best effort under fire
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)

        # Life 3: faults off.  Everything acknowledged must settle.
        proc, base = _spawn_chaos_serve(tmp_path)
        assert _wait_settled(base, timeout=120.0), \
            "the queue never drained after the faults were lifted"
        for report_id, job_id in acked:
            payload = get_job(base, job_id)
            assert payload["state"] in ("done", "quarantined"), \
                (f"acknowledged job {job_id} ({report_id}) ended "
                 f"{payload['state']}: {payload.get('error')}")
            if payload["state"] == "done":
                check_verdict(report_id, payload["verdict"])
        request = urllib.request.Request(
            base + "/shutdown", data=json.dumps({"drain": True}).encode(),
            headers={"Content-Type": "application/json"}, method="POST")
        urllib.request.urlopen(request).read()
        assert proc.wait(timeout=60) == 0

        # Zero journal corruption: the full history replays without
        # error and still contains every acknowledged job.
        replayed = JobJournal(tmp_path / "spool" / "jobs.jsonl").replay(
            _service_config())
        replayed_ids = {job.job_id for job in replayed}
        for report_id, job_id in acked:
            assert job_id in replayed_ids, \
                f"acknowledged job {job_id} ({report_id}) fell out " \
                f"of the journal"
    except AssertionError as exc:
        raise AssertionError(str(exc) + _diagnostics(tmp_path, seed)) \
            from exc
    finally:
        if proc is not None and proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)
