"""Segment/boundary unit behaviour (the schedule-exact refinement)."""

import pytest

from repro.ir.instructions import CallInst, LoadInst, StoreInst
from repro.minic import compile_source
from repro.vm import RunStatus, VM
from repro.core import CandidateEnumerator, SegmentKind, SymbolicSnapshot
from repro.core.segments import boundaries, prev_boundary


def block_of(src, func="main", label="entry"):
    module = compile_source(src)
    return module, module.function(func).block(label)


def test_shared_effect_instructions_open_boundaries():
    module, block = block_of("""
global int g;
func main() {
    int a = 1;
    g = a;
    int b = g;
    return b;
}
""")
    points = boundaries(block)
    store_idx = next(i for i, ins in enumerate(block.instrs)
                     if isinstance(ins, StoreInst))
    load_idx = next(i for i, ins in enumerate(block.instrs)
                    if isinstance(ins, LoadInst))
    assert store_idx in points
    assert load_idx in points
    assert 0 in points


def test_call_landing_creates_boundary():
    module, block = block_of("""
func callee(int a) { return a; }
func main() {
    int r = callee(1);
    return r;
}
""")
    call_idx = next(i for i, ins in enumerate(block.instrs)
                    if isinstance(ins, CallInst))
    assert call_idx + 1 in boundaries(block)


def test_atomic_call_suppresses_landing_boundary():
    module, block = block_of("""
func callee(int a) { return a; }
func main() {
    int r = callee(1);
    return r;
}
""")
    call_idx = next(i for i, ins in enumerate(block.instrs)
                    if isinstance(ins, CallInst))
    plain = boundaries(block)
    atomic = boundaries(block, frozenset({"callee"}))
    assert call_idx + 1 in plain
    assert call_idx + 1 not in atomic


def test_prev_boundary_is_strictly_below():
    module, block = block_of("""
global int g;
func main() {
    g = 1;
    g = 2;
    return 0;
}
""")
    points = boundaries(block)
    for point in points:
        assert prev_boundary(block, point) < point or point == 0


def crash_snapshot(src, inputs=()):
    module = compile_source(src)
    result = VM(module, inputs=list(inputs)).run()
    assert result.status is RunStatus.TRAPPED
    return module, SymbolicSnapshot.initial(module, result.coredump)


def test_candidates_for_merge_block_cover_all_preds():
    module, snap = crash_snapshot("""
global int g;
func main() {
    int v = input();
    if (v) { g = 1; } else { g = 2; }
    assert(g == 3, "always");
    return 0;
}
""", inputs=[1])
    enum = CandidateEnumerator(module)
    trap = enum.trap_segment(snap)
    from repro.core.slice_exec import SegmentExecutor

    result = SegmentExecutor(module).execute(snap, trap)
    assert result.feasible
    result.snapshot.trap_pending = False
    # walk back until we sit at the merge block's start
    inner = result.snapshot
    enumr = CandidateEnumerator(module)
    for _ in range(8):
        cands = enumr.candidates(inner)
        top = inner.threads[0].top
        if top.index == 0 and len(cands) >= 2:
            assert {c.block for c in cands} == {"then1", "else2"}
            return
        assert cands, "ran out of candidates before reaching the merge"
        step = SegmentExecutor(module).execute(inner, cands[0])
        assert step.feasible
        inner = step.snapshot
    pytest.fail("never reached the merge block")


def test_finished_thread_yields_root_return_candidates():
    module, snap = crash_snapshot("""
global int flag;
func worker(int u) { flag = 1; return 0; }
func main() {
    int t = spawn worker(0);
    int w = 0;
    while (flag == 0) { w = w + 1; }
    assert(flag == 2, "boom");
    return 0;
}
""")
    enum = CandidateEnumerator(module)
    snap.trap_pending = False
    worker_thread = snap.threads[1]
    if not worker_thread.frames:  # worker finished before the dump
        cands = enum.thread_candidates(snap, 1)
        assert cands
        assert all(c.kind is SegmentKind.RETURN for c in cands)
        assert all(c.function == "worker" for c in cands)
