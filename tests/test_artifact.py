"""Tests for suffix artifact serialization (`repro.core.artifact`)."""

import json

import pytest
from hypothesis import given, strategies as st

from repro.core import RESConfig, ReverseExecutionSynthesizer
from repro.core.artifact import (
    expr_from_obj,
    expr_to_obj,
    load_suffix,
    save_suffix,
    suffix_from_json,
    suffix_to_json,
)
from repro.core.debugger import ReverseDebugger
from repro.core.queries import SuffixQueryEngine
from repro.errors import ReplayError
from repro.symex.expr import BinExpr, Const, Sym, bin_expr
from repro.workloads import FIGURE1_OVERFLOW, RACE_FLAG, USE_AFTER_FREE


def deepest(workload, max_depth=14):
    dump = workload.trigger()
    res = ReverseExecutionSynthesizer(
        workload.module, dump, RESConfig(max_depth=max_depth))
    best = None
    for item in res.suffixes():
        best = item
    assert best is not None
    return best


@pytest.fixture(scope="module")
def figure1_suffix():
    return deepest(FIGURE1_OVERFLOW)


# ---------------------------------------------------------------------------
# Expression round-trips
# ---------------------------------------------------------------------------

def test_expr_const_round_trip():
    assert expr_from_obj(expr_to_obj(Const(42))) == Const(42)


def test_expr_sym_round_trip():
    assert expr_from_obj(expr_to_obj(Sym("in3"))) == Sym("in3")


def test_expr_tree_round_trip():
    expr = bin_expr("add", Sym("a"), bin_expr("mul", Const(3), Sym("b")))
    assert expr_from_obj(expr_to_obj(expr)) == expr


def test_expr_malformed_string_rejected():
    with pytest.raises(ReplayError):
        expr_from_obj("not-a-symbol")


def test_expr_malformed_list_rejected():
    with pytest.raises(ReplayError):
        expr_from_obj(["add", 1])


_exprs = st.deferred(lambda: st.one_of(
    st.integers(min_value=0, max_value=2**64 - 1).map(Const),
    st.from_regex(r"[a-z][a-z0-9_]{0,8}", fullmatch=True).map(Sym),
    st.tuples(st.sampled_from(["add", "sub", "mul", "xor", "eq", "ult"]),
              _exprs, _exprs).map(lambda t: BinExpr(t[0], t[1], t[2])),
))


@given(_exprs)
def test_expr_round_trip_property(expr):
    restored = expr_from_obj(expr_to_obj(expr))
    assert restored == expr


@given(_exprs)
def test_expr_obj_is_json_safe(expr):
    json.dumps(expr_to_obj(expr))


# ---------------------------------------------------------------------------
# Suffix round-trips
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("workload", (FIGURE1_OVERFLOW, RACE_FLAG,
                                      USE_AFTER_FREE),
                         ids=lambda w: w.name)
def test_suffix_round_trip_replays(workload, tmp_path):
    original = deepest(workload)
    path = tmp_path / "suffix.json"
    save_suffix(original, path)
    loaded = load_suffix(workload.module, path)
    assert loaded.report.ok
    assert loaded.suffix.schedule() == original.suffix.schedule()
    assert loaded.suffix.read_set() == original.suffix.read_set()
    assert loaded.suffix.write_set() == original.suffix.write_set()


def test_round_trip_preserves_constraints(figure1_suffix):
    text = suffix_to_json(figure1_suffix.suffix)
    restored = suffix_from_json(FIGURE1_OVERFLOW.module, text)
    assert restored.constraints == figure1_suffix.suffix.constraints


def test_loaded_suffix_supports_debugger(figure1_suffix, tmp_path):
    path = tmp_path / "suffix.json"
    save_suffix(figure1_suffix, path)
    loaded = load_suffix(FIGURE1_OVERFLOW.module, path)
    debugger = ReverseDebugger(FIGURE1_OVERFLOW.module, loaded)
    debugger.run_to_failure()
    assert debugger.print_var("y") == 10


def test_loaded_suffix_supports_queries(figure1_suffix, tmp_path):
    path = tmp_path / "suffix.json"
    save_suffix(figure1_suffix, path)
    loaded = load_suffix(FIGURE1_OVERFLOW.module, path)
    engine = SuffixQueryEngine(FIGURE1_OVERFLOW.module, loaded)
    last = engine.last_writer("x")
    assert last is not None and last.value == 1


# ---------------------------------------------------------------------------
# Rejection paths
# ---------------------------------------------------------------------------

def test_wrong_module_rejected(figure1_suffix):
    text = suffix_to_json(figure1_suffix.suffix)
    with pytest.raises(ReplayError, match="module"):
        suffix_from_json(RACE_FLAG.module, text)


def test_unknown_format_rejected(figure1_suffix):
    payload = json.loads(suffix_to_json(figure1_suffix.suffix))
    payload["format"] = 99
    with pytest.raises(ReplayError, match="format"):
        suffix_from_json(FIGURE1_OVERFLOW.module, json.dumps(payload))


def test_tampered_schedule_fails_verification(figure1_suffix, tmp_path):
    """A corrupted artifact must be rejected at load, not replayed."""
    payload = json.loads(suffix_to_json(figure1_suffix.suffix))
    payload["steps"] = payload["steps"][:-1]  # drop the trap step
    path = tmp_path / "tampered.json"
    path.write_text(json.dumps(payload))
    with pytest.raises(ReplayError, match="verification"):
        load_suffix(FIGURE1_OVERFLOW.module, path)


def test_tampered_memory_fails_verification(figure1_suffix, tmp_path):
    """Corrupting a word the suffix writes makes the embedded coredump
    unreachable by the recorded schedule — load must reject it.
    (Tampering an *unwritten* word is self-consistent: the word becomes
    part of the instantiated pre-state; only the hwerror diagnosis can
    catch that, not replay.)"""
    payload = json.loads(suffix_to_json(figure1_suffix.suffix))
    written = sorted(figure1_suffix.suffix.write_set())
    key = str(written[0])
    memory = payload["coredump"]["memory"]
    memory[key] = memory.get(key, 0) + 1
    path = tmp_path / "tampered.json"
    path.write_text(json.dumps(payload))
    with pytest.raises(ReplayError):
        load_suffix(FIGURE1_OVERFLOW.module, path)
