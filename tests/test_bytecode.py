"""Bytecode engine A/B suite: compiler round trips, VM equivalence,
interning canonicity, and the solver's range-memo regression.

The bytecode path (`ir/bytecode.py` + `vm/bytecode_vm.py`) is a pure
engine swap: every observable — outputs, trap, coredump, trace event
stream, emitted suffixes, prune counters — must be byte-identical to
the tree-walking interpreter.  These tests pin that contract at three
layers (compiler, VM, RES search) plus the expression-interning
invariants the symbolic side's caches depend on.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import RESConfig, ReverseExecutionSynthesizer
from repro.fuzz.oracles import behavioral_counters, suffix_fingerprint
from repro.ir.bytecode import (
    compile_module,
    compile_program,
    disassemble,
    program_signature,
)
from repro.minic import compile_source
from repro.symex.expr import (
    ALL_OPS,
    BinExpr,
    Const,
    Sym,
    bin_expr,
    evaluate,
    evaluate_compiled,
)
from repro.symex.solver import Solver
from repro.vm import VM, RandomPreemptScheduler
from repro.vm.bytecode_vm import BytecodeVM
from repro.workloads import REGISTRY


# ---------------------------------------------------------------------------
# Compiler: deterministic output, stable across recompilation
# ---------------------------------------------------------------------------

AB_WORKLOADS = ["figure1_overflow", "atomicity_readcheck", "div_by_zero",
                "double_free", "race_counter", "branch_chain"]


@pytest.mark.parametrize("name", AB_WORKLOADS)
def test_recompilation_is_a_fixpoint(name):
    """Compile → disassemble → recompile → disassemble must agree:
    the compiled form is a deterministic function of the module."""
    module = REGISTRY.get(name).module
    first = compile_module(module)
    second = compile_module(module)
    assert program_signature(first) == program_signature(second)
    assert disassemble(first) == disassemble(second)
    # the cached accessor hands back a program with the same signature
    assert program_signature(compile_program(module)) \
        == program_signature(first)


def test_disassembly_names_every_function():
    module = REGISTRY.get("figure1_overflow").module
    text = disassemble(compile_program(module))
    for name in module.functions:
        assert f"func {name}" in text


# ---------------------------------------------------------------------------
# Whole-VM A/B: the dispatch loop is observationally identical
# ---------------------------------------------------------------------------

def _run_both(module, inputs, seed=0, check_bounds=True):
    tree = VM(module, inputs=list(inputs),
              scheduler=RandomPreemptScheduler(seed=seed),
              check_bounds=check_bounds, record_trace=True)
    tree_result = tree.run()
    fast = BytecodeVM(module, inputs=list(inputs),
                      scheduler=RandomPreemptScheduler(seed=seed),
                      check_bounds=check_bounds, record_trace=True)
    fast_result = fast.run()
    return tree, tree_result, fast, fast_result


@pytest.mark.parametrize("name", AB_WORKLOADS)
def test_bytecode_vm_matches_tree_vm(name):
    workload = REGISTRY.get(name)
    tree, tr, fast, fr = _run_both(workload.module, workload.inputs,
                                   check_bounds=workload.check_bounds)
    assert fr.status is tr.status
    assert fr.outputs == tr.outputs
    assert list(fast.trace.events) == list(tree.trace.events)
    if tr.trapped:
        assert fr.trapped
        assert fr.coredump.to_json() == tr.coredump.to_json()


def test_bytecode_vm_matches_on_schedule_dependent_program():
    """Same scheduler seed ⇒ same interleaving ⇒ same lost update."""
    module = REGISTRY.get("race_counter").module
    for seed in range(12):
        _, tr, _, fr = _run_both(module, (), seed=seed)
        assert fr.status is tr.status
        assert fr.outputs == tr.outputs


# ---------------------------------------------------------------------------
# RES-level A/B: engine choice is invisible to the search
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("name", ["figure1_overflow", "div_by_zero"])
def test_res_bytecode_engine_is_invisible(name):
    workload = REGISTRY.get(name)
    result = workload.run_once(seed=0)
    assert result.trapped

    def fingerprints(bytecode):
        config = RESConfig(max_depth=12, max_nodes=4000, bytecode=bytecode)
        res = ReverseExecutionSynthesizer(workload.module, result.coredump,
                                          config)
        suffixes = [suffix_fingerprint(s) for s in res.suffixes()]
        return suffixes, behavioral_counters(res.stats)

    fast_suffixes, fast_counters = fingerprints(True)
    tree_suffixes, tree_counters = fingerprints(False)
    assert fast_suffixes == tree_suffixes
    assert fast_counters == tree_counters
    assert fast_suffixes  # the comparison must compare something


# ---------------------------------------------------------------------------
# Interning: structurally-equal exprs are the same object
# ---------------------------------------------------------------------------

_ALL_OPS = sorted(ALL_OPS)


def _expr_strategy():
    leaves = st.one_of(
        st.integers(min_value=0, max_value=(1 << 64) - 1).map(Const),
        st.sampled_from(["a", "b", "c"]).map(Sym),
    )
    return st.recursive(
        leaves,
        lambda children: st.tuples(st.sampled_from(_ALL_OPS), children,
                                   children)
        .map(lambda t: bin_expr(t[0], t[1], t[2])),
        max_leaves=12,
    )


@settings(max_examples=120, deadline=None)
@given(_expr_strategy())
def test_interned_exprs_are_canonical(expr):
    """Rebuilding an expression from its own structure yields the very
    same object — the invariant every id()-keyed cache relies on."""
    def rebuild(e):
        if isinstance(e, Const):
            return Const(e.value)
        if isinstance(e, Sym):
            return Sym(e.name)
        return bin_expr(e.op, rebuild(e.a), rebuild(e.b))

    assert rebuild(expr) is expr


@settings(max_examples=120, deadline=None)
@given(_expr_strategy(),
       st.fixed_dictionaries({n: st.integers(min_value=0,
                                             max_value=(1 << 64) - 1)
                              for n in ("a", "b", "c")}))
def test_compiled_evaluator_matches_tree_walk(expr, model):
    assert evaluate_compiled(expr, model) == evaluate(expr, model)


# ---------------------------------------------------------------------------
# Range memo: repeated queries must hit, not re-walk
# ---------------------------------------------------------------------------

def test_range_memo_hits_grow_on_repeated_queries():
    """`expr_range` results are memoized by interned-expr identity; a
    context re-solved with the same residual must answer range queries
    from the memo (stat_range_hits strictly grows) and agree with the
    first verdict."""
    x, y = Sym("x"), Sym("y")
    constraints = (
        bin_expr("ult", x, Const(10)),
        bin_expr("eq", bin_expr("add", x, y), Const(12)),
        bin_expr("ult", y, Const(50)),
    )
    solver = Solver()
    ctx = solver.context_for(constraints)
    delta = (bin_expr("ne", x, Const(3)),)
    first, child = solver.solve_extended(ctx, delta)
    baseline = solver.stat_range_hits

    # Same structural delta against the same context: the verdict comes
    # from the delta cache, and any range work left re-uses the memo.
    again, _ = solver.solve_extended(ctx, delta, want_context=False)
    assert again.status is first.status

    # A sibling delta over the same interned sub-exprs must *hit* the
    # persistent range cache rather than re-walking the shared DAG.
    sibling = (bin_expr("ne", x, Const(4)),)
    solver.solve_extended(ctx, sibling, want_context=False)
    assert solver.stat_range_hits > baseline
