"""Unit tests for the MiniC lexer."""

import pytest

from repro.errors import CompileError
from repro.minic.lexer import Token, tokenize


def kinds(source):
    return [(t.kind, t.text) for t in tokenize(source)[:-1]]


def test_empty_source_yields_only_eof():
    tokens = tokenize("")
    assert len(tokens) == 1
    assert tokens[0].kind == "eof"


def test_integers_decimal_and_hex():
    assert kinds("12 0x1f 0") == [("int", "12"), ("int", "0x1f"), ("int", "0")]


def test_keywords_vs_identifiers():
    toks = kinds("int foo while whiles input inputx")
    assert toks == [
        ("keyword", "int"), ("ident", "foo"), ("keyword", "while"),
        ("ident", "whiles"), ("keyword", "input"), ("ident", "inputx"),
    ]


def test_multichar_operators_maximal_munch():
    toks = kinds("a <= b << c == d != e >= f && g || h")
    ops = [t for k, t in toks if k == "op"]
    assert ops == ["<=", "<<", "==", "!=", ">=", "&&", "||"]


def test_single_char_operators():
    toks = kinds("a + b - c * d / e % f & g | h ^ i ~ j ! k")
    ops = [t for k, t in toks if k == "op"]
    assert ops == list("+-*/%&|^~!")


def test_line_comments_are_skipped():
    assert kinds("a // comment here\nb") == [("ident", "a"), ("ident", "b")]


def test_block_comments_preserve_line_numbers():
    tokens = tokenize("a /* multi\nline\ncomment */ b")
    b_token = [t for t in tokens if t.text == "b"][0]
    assert b_token.line == 3


def test_unterminated_block_comment_raises():
    with pytest.raises(CompileError):
        tokenize("a /* never closed")


def test_string_literals_with_escapes():
    tokens = tokenize('"hello\\nworld"')
    assert tokens[0].kind == "string"
    assert tokens[0].text == "hello\nworld"


def test_unterminated_string_raises():
    with pytest.raises(CompileError):
        tokenize('"oops')


def test_newline_in_string_raises():
    with pytest.raises(CompileError):
        tokenize('"bad\nstring"')


def test_unexpected_character_raises_with_location():
    with pytest.raises(CompileError) as exc:
        tokenize("a\n  @")
    assert "line 2" in str(exc.value)


def test_token_positions_track_columns():
    tokens = tokenize("ab cd")
    assert tokens[0].column == 1
    assert tokens[1].column == 4
