"""IR container, CFG, verifier, and printer tests."""

import pytest

from repro.errors import IRError
from repro.ir import (
    BasicBlock,
    BrInst,
    CBrInst,
    CFG,
    CallGraph,
    ConstInst,
    Function,
    GlobalVar,
    Imm,
    Module,
    Reg,
    RetInst,
    collect_problems,
    format_module,
    to_signed,
    to_unsigned,
    verify_module,
)
from repro.minic import compile_source


def diamond_function():
    func = Function(name="main")
    entry = func.add_block("entry")
    entry.instrs = [ConstInst(Reg("c"), 1), CBrInst(Reg("c"), "left", "right")]
    left = func.add_block("left")
    left.instrs = [BrInst("exit")]
    right = func.add_block("right")
    right.instrs = [BrInst("exit")]
    exit_block = func.add_block("exit")
    exit_block.instrs = [RetInst(Imm(0))]
    return func


def test_word_conversions():
    assert to_unsigned(-1) == (1 << 64) - 1
    assert to_signed((1 << 64) - 1) == -1
    assert to_signed(5) == 5
    assert to_unsigned(1 << 64) == 0


def test_block_successors():
    func = diamond_function()
    assert set(func.block("entry").successors()) == {"left", "right"}
    assert func.block("exit").successors() == ()


def test_predecessors():
    func = diamond_function()
    preds = func.predecessors()
    assert sorted(preds["exit"]) == ["left", "right"]
    assert preds["entry"] == []


def test_cfg_reachability():
    func = diamond_function()
    cfg = CFG(func)
    assert cfg.reachable_from_entry() == {"entry", "left", "right", "exit"}
    assert cfg.backward_reachable("exit") == {"entry", "left", "right", "exit"}
    assert cfg.reaches_within("entry", "exit", 2)
    assert not cfg.reaches_within("entry", "exit", 1)


def test_dominators():
    func = diamond_function()
    dom = CFG(func).dominators()
    assert dom["exit"] == frozenset({"entry", "exit"})
    assert "left" not in dom["exit"]


def test_duplicate_block_rejected():
    func = Function(name="f")
    func.add_block("entry")
    with pytest.raises(IRError):
        func.add_block("entry")


def test_module_layout_and_global_at():
    module = Module(name="m")
    module.add_global(GlobalVar("a", size=2, init=[7, 8]))
    module.add_global(GlobalVar("b", size=1))
    layout = module.layout()
    assert layout["b"] == layout["a"] + 2
    assert module.global_at(layout["a"] + 1) == ("a", 1)
    assert module.global_at(layout["b"] + 5) is None
    mem = module.initial_global_memory()
    assert mem[layout["a"]] == 7 and mem[layout["a"] + 1] == 8
    assert mem[layout["b"]] == 0


def test_verify_detects_missing_terminator():
    module = Module(name="m")
    func = Function(name="main")
    block = func.add_block("entry")
    block.instrs = [ConstInst(Reg("x"), 1)]
    module.add_function(func)
    problems = collect_problems(module)
    assert any("terminator" in p for p in problems)


def test_verify_detects_branch_to_unknown_block():
    module = Module(name="m")
    func = Function(name="main")
    block = func.add_block("entry")
    block.instrs = [BrInst("nowhere")]
    module.add_function(func)
    assert any("unknown block" in p for p in collect_problems(module))


def test_verify_detects_unknown_callee_and_arity():
    module = compile_source("""
func callee(int a) { return a; }
func main() { callee(1); return 0; }
""")
    # sanity: compiled modules verify
    verify_module(module)


def test_callgraph():
    module = compile_source("""
func leaf(int a) { return a; }
func mid(int a) { return leaf(a); }
func main() { return mid(1); }
""")
    graph = CallGraph(module)
    assert graph.callees_of("main") == {"mid"}
    sites = graph.call_sites_of("leaf")
    assert len(sites) == 1 and sites[0][0] == "mid"
    assert not graph.may_recurse("main")


def test_callgraph_detects_recursion():
    module = compile_source("""
func rec(int n) {
    if (n == 0) { return 0; }
    return rec(n - 1);
}
func main() { return rec(3); }
""")
    assert CallGraph(module).may_recurse("rec")


def test_printer_round_includes_all_blocks():
    module = compile_source("""
global int g = 4;
func main() {
    if (g) { g = 1; } else { g = 2; }
    return 0;
}
""")
    text = format_module(module)
    assert "func @main" in text
    assert "global @g" in text
    for label in module.function("main").blocks:
        assert f"{label}:" in text
