"""Tests for the differential fuzzing subsystem (generator, oracles,
campaign, shrinker), plus the fuzz-marked 200-program smoke campaign."""

import json

import pytest

from repro.fuzz import (
    CampaignConfig,
    GenConfig,
    fuzz_one,
    generate_program,
    run_campaign,
    shrink_program,
    unparse,
)
from repro.fuzz.campaign import divergence_predicate, shrink_verdict
from repro.fuzz.shrink import ShrinkResult
from repro.minic import compile_source
from repro.minic.parser import parse
from repro.vm.interpreter import RunStatus, VM
from repro.workloads import FIGURE1_OVERFLOW

#: seeds used by the deterministic unit tests (kept small — the smoke
#: campaign covers breadth)
SAMPLE_SEEDS = range(12)


# ---------------------------------------------------------------------------
# Generator
# ---------------------------------------------------------------------------

def test_generator_is_deterministic():
    a = generate_program(7)
    b = generate_program(7)
    assert a.source == b.source
    assert a.skeleton == b.skeleton
    assert a.inputs == b.inputs
    assert a.probe_value == b.probe_value
    assert a.sched_seed == b.sched_seed


def test_generator_seeds_differ():
    sources = {generate_program(seed).source for seed in SAMPLE_SEEDS}
    assert len(sources) == len(SAMPLE_SEEDS)


@pytest.mark.parametrize("seed", SAMPLE_SEEDS)
def test_generated_program_traps_as_armed(seed):
    gen = generate_program(seed)
    vm = VM(gen.module, inputs=gen.inputs, scheduler=gen.make_scheduler(),
            lbr_depth=16)
    result = vm.run(max_steps=500_000)
    assert result.status is RunStatus.TRAPPED
    assert result.coredump.trap.kind is gen.expected_trap


def test_generator_config_changes_shape():
    sequential = generate_program(3, GenConfig(threads_prob=0.0))
    assert not sequential.uses_threads
    assert "spawn" not in sequential.source


# ---------------------------------------------------------------------------
# Campaign + oracles
# ---------------------------------------------------------------------------

def test_fuzz_one_clean_program_has_no_divergence():
    config = CampaignConfig(hw_fault_prob=0.0, alu_fault_prob=0.0)
    verdict = fuzz_one(0, config)
    assert verdict.status == "ok"
    assert verdict.divergences == []
    assert verdict.suffixes_emitted > 0
    assert verdict.replays_checked > 0


def test_campaign_small_batch_zero_divergences(tmp_path):
    config = CampaignConfig(seed=0, count=12,
                            artifact_dir=str(tmp_path / "artifacts"))
    result = run_campaign(config)
    summary = result.summary()
    assert summary["programs"] == 12
    assert summary["divergent"] == 0
    assert summary["suffixes"] > 0
    assert not (tmp_path / "artifacts").exists()


def test_campaign_multiprocessing_matches_inline(tmp_path):
    inline = run_campaign(CampaignConfig(
        seed=40, count=6, jobs=1, artifact_dir=str(tmp_path / "a")))
    fanned = run_campaign(CampaignConfig(
        seed=40, count=6, jobs=2, artifact_dir=str(tmp_path / "b")))
    key = lambda result: [(v.seed, v.status, v.trap_kind,
                           v.suffixes_emitted, v.divergences)
                          for v in result.verdicts]
    assert key(inline) == key(fanned)


def test_forced_divergence_writes_reproducible_artifact(tmp_path):
    config = CampaignConfig(seed=0, count=2, force_divergence=True,
                            hw_fault_prob=0.0, alu_fault_prob=0.0,
                            artifact_dir=str(tmp_path / "artifacts"))
    result = run_campaign(config)
    assert result.divergent, "force hook must produce divergences"
    assert result.artifacts
    payload = json.loads((tmp_path / "artifacts" /
                          result.artifacts[0].rsplit("/", 1)[1]).read_text())
    assert payload["program_seed"] == result.divergent[0].seed
    assert "--count 1" in payload["reproduce"]
    # Non-default campaign knobs must ride along in the repro command,
    # or it would regenerate a different program / different verdicts.
    assert "--hw-fault-prob 0.0" in payload["reproduce"]
    assert "--force-divergence" in payload["reproduce"]
    assert compile_source(payload["source"], name="repro_check") is not None
    # Reproducibility: re-fuzzing the recorded seed under the recorded
    # config reproduces the same divergence kinds.
    again = fuzz_one(payload["program_seed"], config)
    assert {k for k, _ in again.divergences} \
        == {k for k, _ in result.divergent[0].divergences}


def test_forced_divergence_shrinks_to_small_repro(tmp_path):
    """The ISSUE acceptance bound: a known-divergent config must shrink
    to a repro of at most 25 MiniC source lines."""
    config = CampaignConfig(seed=0, count=1, force_divergence=True,
                            hw_fault_prob=0.0, alu_fault_prob=0.0,
                            shrink=True,
                            artifact_dir=str(tmp_path / "artifacts"))
    result = run_campaign(config)
    assert len(result.artifacts) == 1
    from pathlib import Path
    payload = json.loads(Path(result.artifacts[0]).read_text())
    assert payload["shrunk_lines"] <= 25
    # The shrunk repro still satisfies the divergence predicate.
    predicate = divergence_predicate(result.divergent[0], config)
    assert predicate(payload["shrunk_source"])


def test_campaign_serial_interrupt_keeps_partial_results(tmp_path):
    """Ctrl-C mid-campaign: the verdicts that landed are kept, the
    result is flagged interrupted, and artifacts are still written for
    divergences seen so far."""
    hits = []

    def interrupting_progress(verdict):
        hits.append(verdict)
        if len(hits) == 2:
            raise KeyboardInterrupt

    config = CampaignConfig(seed=0, count=6, force_divergence=True,
                            hw_fault_prob=0.0, alu_fault_prob=0.0,
                            artifact_dir=str(tmp_path / "artifacts"))
    result = run_campaign(config, progress=interrupting_progress)
    assert result.interrupted
    assert len(result.verdicts) == 2
    assert result.summary()["programs"] == 2
    # divergences that landed before the interrupt still get artifacts
    assert len(result.artifacts) == len(result.divergent)
    for path in result.artifacts:
        json.loads(open(path).read())  # complete, parseable JSON


def test_campaign_pool_interrupt_terminates_workers(tmp_path):
    """The --jobs pool shuts down cleanly on Ctrl-C: no zombie workers,
    partial verdicts preserved and summarized."""
    import multiprocessing as mp

    def interrupting_progress(verdict):
        raise KeyboardInterrupt

    config = CampaignConfig(seed=0, count=8, jobs=2,
                            artifact_dir=str(tmp_path / "artifacts"))
    before = {p.pid for p in mp.active_children()}
    result = run_campaign(config, progress=interrupting_progress)
    leaked = [p for p in mp.active_children() if p.pid not in before]
    assert not leaked, f"zombie pool workers: {leaked}"
    assert result.interrupted
    assert 1 <= len(result.verdicts) < 8
    assert result.summary()["programs"] == len(result.verdicts)


def test_shrink_verdict_skips_unshrinkable_kinds():
    config = CampaignConfig()
    verdict = fuzz_one(0, CampaignConfig(hw_fault_prob=0.0,
                                         alu_fault_prob=0.0))
    verdict.divergences = [("generator", "boom")]
    assert shrink_verdict(verdict, config) is None


# ---------------------------------------------------------------------------
# Shrinker + unparser
# ---------------------------------------------------------------------------

def test_unparse_round_trip_compiles_catalog_program():
    source = FIGURE1_OVERFLOW.source
    once = unparse(parse(source))
    twice = unparse(parse(once))
    assert once == twice, "unparse must be a fixed point of parse"
    module = compile_source(once, name="roundtrip")
    result = VM(module, inputs=[4]).run()
    assert result.status is RunStatus.TRAPPED


@pytest.mark.parametrize("seed", [0, 3, 5, 9])
def test_unparse_round_trip_generated_program(seed):
    gen = generate_program(seed)
    once = unparse(parse(gen.source))
    assert once == unparse(parse(once))
    compile_source(once, name="roundtrip")


def test_shrinker_removes_irrelevant_statements():
    source = """
global int g;
global int unused;

func side(int a) {
    unused = a * 3;
    return a;
}

func main() {
    int x = input();
    int noise = side(4);
    output(noise);
    g = 7;
    int y = g - 7;
    int boom = 1 / y;
    output(boom);
    return 0;
}
"""

    def still_divides_by_zero(candidate: str) -> bool:
        try:
            module = compile_source(candidate, name="shrinkme")
        except Exception:
            return False
        result = VM(module, inputs=[0]).run(max_steps=10_000)
        return (result.status is RunStatus.TRAPPED
                and result.coredump.trap.kind.value == "div-by-zero")

    shrunk = shrink_program(source, still_divides_by_zero)
    assert shrunk.improved
    assert shrunk.lines < ShrinkResult.count_lines(source)
    assert "side" not in shrunk.source
    assert "unused" not in shrunk.source
    assert still_divides_by_zero(shrunk.source)
    assert shrunk.lines <= 8


def test_shrinker_respects_budget():
    gen = generate_program(2)
    calls = [0]

    def predicate(candidate: str) -> bool:
        calls[0] += 1
        return True  # accept everything: worst case for pass looping

    shrink_program(gen.source, predicate, max_tests=10)
    assert calls[0] <= 10


#: program seeds whose campaigns exposed real engine/solver bugs during
#: PR 2 (assertion-order-dependent solver verdicts, orphaned domain
#: refinements, weaker chained contexts, unfolded cancellation
#: tautologies), PR 3 (seed 7059: the loop-counter contradiction
#: ``i+1 == i`` left as a residual, refuted by the chained context but
#: UNKNOWN to the from-scratch solve), and PR 4 (seed 11870: a symbol
#: bound early to an open boolean term — ``t1 ↦ (ne t2 0)`` — kept a
#: second symbol alive inside a really-single-symbol ``shl`` residual,
#: blocking the exact bit-fixing layer, so the from-scratch replay
#: solve stayed UNKNOWN on a SAT suffix the incremental chain emitted;
#: fixed by domain-driven point-range folding in ``Solver._search``),
#: and PR 8 (seed 18074: the chained context *proved* a cross-thread
#: ``xor`` extension UNSAT where the from-scratch solve only reached
#: UNKNOWN and admitted it, so the incremental engine pruned five
#: candidates the naive engine explored; fixed by aligning every
#: non-SAT ``solve_extended`` verdict on the naive solve in
#: ``SegmentExecutor.execute``); each must stay divergence-free
REGRESSION_SEEDS = (1132, 2082, 2262, 2304, 2699, 7059, 11870, 18074)


@pytest.mark.parametrize("seed", REGRESSION_SEEDS)
def test_fuzzer_found_bug_seeds_stay_fixed(seed):
    verdict = fuzz_one(seed, CampaignConfig())
    assert verdict.divergences == [], \
        f"seed {seed} regressed: {verdict.divergences}"


# ---------------------------------------------------------------------------
# The smoke campaign (deselected by default; `pytest -m fuzz`)
# ---------------------------------------------------------------------------

@pytest.mark.fuzz
def test_fuzz_smoke_campaign_200_programs(tmp_path):
    """The ISSUE acceptance campaign: 200 programs from seed 0, all four
    oracles, zero unexplained divergences."""
    config = CampaignConfig(seed=0, count=200,
                            artifact_dir=str(tmp_path / "artifacts"))
    result = run_campaign(config)
    summary = result.summary()
    assert summary["programs"] == 200
    assert summary["gen_errors"] == 0
    assert summary["divergent"] == 0, \
        [v.divergences for v in result.divergent]
    # The campaign must actually exercise the oracles, not vacuously pass.
    assert summary["suffixes"] > 500
    assert summary["replays_checked"] > 300
    assert summary["wp_checked"] > 20
    assert summary["threaded"] > 10
