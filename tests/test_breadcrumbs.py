"""Execution breadcrumbs (§2.4): LBR and error-log guided search."""

import pytest

from repro.core import RESConfig, ReverseExecutionSynthesizer
from repro.minic import compile_source
from repro.vm import LastBranchRecord, LBRMode, RunStatus, VM
from repro.vm.state import PC
from repro.workloads import BRANCH_CHAIN


def test_lbr_ring_keeps_newest():
    lbr = LastBranchRecord(depth=2)
    pcs = [PC("f", "b", i) for i in range(6)]
    lbr.record(pcs[0], pcs[1])
    lbr.record(pcs[2], pcs[3])
    lbr.record(pcs[4], pcs[5])
    contents = lbr.contents()
    assert len(contents) == 2
    assert contents[-1] == (pcs[4], pcs[5])


def test_lbr_filter_trivial_skips_inferable():
    lbr = LastBranchRecord(depth=4, mode=LBRMode.FILTER_TRIVIAL)
    a, b = PC("f", "x", 0), PC("f", "y", 0)
    lbr.record(a, b, inferable=True)
    lbr.record(a, b, inferable=False)
    assert len(lbr.contents()) == 1


def test_lbr_disabled_with_zero_depth():
    lbr = LastBranchRecord(depth=0)
    lbr.record(PC("f", "a", 0), PC("f", "b", 0))
    assert lbr.contents() == []


def test_vm_populates_lbr_on_branches():
    module = compile_source("""
func main() {
    int i = 0;
    while (i < 5) { i = i + 1; }
    assert(0, "stop");
    return 0;
}
""")
    result = VM(module, lbr_depth=16).run()
    assert result.trapped
    assert len(result.coredump.lbr) > 0


def test_lbr_trims_backward_search():
    """§2.4: "LBR provides a precise execution suffix that can
    substantially trim the search space in RES."""
    dump = BRANCH_CHAIN.trigger(lbr_depth=16)
    assert len(dump.lbr) == 16

    def effort(use_lbr):
        res = ReverseExecutionSynthesizer(
            BRANCH_CHAIN.module, dump,
            RESConfig(max_depth=30, max_nodes=4000, use_lbr=use_lbr,
                      verify=False))
        for _ in res.suffixes():
            pass
        return res.stats

    without = effort(False)
    with_lbr = effort(True)
    assert with_lbr.candidates_executed < without.candidates_executed
    assert with_lbr.pruned_by_lbr > 0


def test_lbr_guided_search_still_verifies():
    dump = BRANCH_CHAIN.trigger(lbr_depth=16)
    res = ReverseExecutionSynthesizer(
        BRANCH_CHAIN.module, dump,
        RESConfig(max_depth=12, max_nodes=4000, use_lbr=True))
    suffixes = list(res.suffixes())
    assert suffixes and all(s.report.ok for s in suffixes)


def test_log_breadcrumbs_bind_outputs():
    """Error-log entries anchor the suffix's outputs (§2.4)."""
    module = compile_source("""
global int g;
func main() {
    int v = input();
    output(v);
    g = v;
    assert(g == 0, "fails on nonzero input");
    return 0;
}
""")
    result = VM(module, inputs=[123]).run()
    dump = result.coredump
    assert dump.log_tail and dump.log_tail[-1][1] == 123
    res = ReverseExecutionSynthesizer(module, dump,
                                      RESConfig(max_depth=12, use_log=True))
    deepest = None
    for s in res.suffixes():
        deepest = s
    assert deepest is not None
    assert 123 in deepest.report.inputs
