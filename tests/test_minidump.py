"""Tests for minidump truncation and the §1 full-coredump advantage."""

import pytest

from repro.ir.module import GLOBALS_BASE, STACKS_BASE, STACK_WINDOW
from repro.core import RESConfig, ReverseExecutionSynthesizer
from repro.core.snapshot import SymbolicSnapshot
from repro.symex.expr import Const, Sym
from repro.vm.minidump import MiniDump, minidump_of
from repro.workloads import FIGURE1_OVERFLOW, MINIDUMP_BLINDSPOT, RACE_FLAG


@pytest.fixture(scope="module")
def blindspot_dump():
    return MINIDUMP_BLINDSPOT.trigger()


@pytest.fixture(scope="module")
def blindspot_mini(blindspot_dump):
    return minidump_of(blindspot_dump)


# ---------------------------------------------------------------------------
# Truncation
# ---------------------------------------------------------------------------

def test_minidump_is_partial(blindspot_mini):
    assert blindspot_mini.is_partial
    assert isinstance(blindspot_mini, MiniDump)


def test_minidump_drops_globals(blindspot_dump, blindspot_mini):
    layout = MINIDUMP_BLINDSPOT.module.layout()
    assert blindspot_dump.read(layout["x"]) == 1
    assert not blindspot_mini.available(layout["x"])
    assert layout["x"] not in blindspot_mini.memory


def test_minidump_keeps_stack_words(blindspot_mini):
    lo = STACKS_BASE
    hi = STACKS_BASE + STACK_WINDOW
    assert blindspot_mini.available(lo)
    assert blindspot_mini.available(hi - 1)


def test_minidump_keeps_threads_and_trap(blindspot_dump, blindspot_mini):
    assert blindspot_mini.trap == blindspot_dump.trap
    assert set(blindspot_mini.threads) == set(blindspot_dump.threads)
    failing = blindspot_mini.failing_thread
    assert failing.frames, "register files must survive truncation"


def test_minidump_read_raises_outside_ranges(blindspot_mini):
    with pytest.raises(KeyError):
        blindspot_mini.read(GLOBALS_BASE)


def test_minidump_read_inside_range(blindspot_dump, blindspot_mini):
    addr = STACKS_BASE  # within thread 0's window
    assert blindspot_mini.read(addr) == blindspot_dump.read(addr)


def test_minidump_ranges_cover_every_thread():
    dump = RACE_FLAG.trigger()
    mini = minidump_of(dump)
    assert len(mini.retained_ranges) == len(dump.threads)
    for tid in dump.threads:
        base = STACKS_BASE + tid * STACK_WINDOW
        assert mini.available(base)


def test_minidump_breadcrumbs_optional(blindspot_dump):
    with_crumbs = minidump_of(blindspot_dump, keep_breadcrumbs=True)
    without = minidump_of(blindspot_dump, keep_breadcrumbs=False)
    assert with_crumbs.lbr == blindspot_dump.lbr
    assert without.lbr == []
    assert without.log_tail == []


# ---------------------------------------------------------------------------
# Snapshot integration: unknown words become memoized symbols
# ---------------------------------------------------------------------------

def test_snapshot_reads_unknown_word_as_symbol(blindspot_mini):
    snap = SymbolicSnapshot.initial(MINIDUMP_BLINDSPOT.module, blindspot_mini)
    layout = MINIDUMP_BLINDSPOT.module.layout()
    value = snap.memory.read(layout["x"])
    assert isinstance(value, Sym)


def test_snapshot_unknown_word_is_memoized(blindspot_mini):
    snap = SymbolicSnapshot.initial(MINIDUMP_BLINDSPOT.module, blindspot_mini)
    layout = MINIDUMP_BLINDSPOT.module.layout()
    assert snap.memory.read(layout["x"]) == snap.memory.read(layout["x"])


def test_snapshot_known_word_stays_concrete(blindspot_dump, blindspot_mini):
    snap = SymbolicSnapshot.initial(MINIDUMP_BLINDSPOT.module, blindspot_mini)
    addr = STACKS_BASE
    assert snap.memory.read(addr) == Const(blindspot_dump.read(addr))


def test_full_dump_snapshot_unaffected(blindspot_dump):
    snap = SymbolicSnapshot.initial(MINIDUMP_BLINDSPOT.module, blindspot_dump)
    layout = MINIDUMP_BLINDSPOT.module.layout()
    assert snap.memory.read(layout["x"]) == Const(1)


# ---------------------------------------------------------------------------
# The §1 claim: full coredump refutes what the minidump cannot
# ---------------------------------------------------------------------------

def pick_branches_on_suffixes(module, dump, max_depth=16):
    res = ReverseExecutionSynthesizer(module, dump, RESConfig(max_depth=max_depth))
    branches = set()
    for synthesized in res.suffixes():
        for step in synthesized.suffix.steps:
            seg = step.segment
            if seg.function == "pick" and seg.block.startswith(("then", "else")):
                branches.add(seg.block)
    return branches, res.stats


def test_full_coredump_disambiguates(blindspot_dump):
    branches, stats = pick_branches_on_suffixes(
        MINIDUMP_BLINDSPOT.module, blindspot_dump)
    assert branches == {"then1"}
    assert stats.pruned_incompatible >= 1


def test_minidump_cannot_disambiguate(blindspot_mini):
    branches, stats = pick_branches_on_suffixes(
        MINIDUMP_BLINDSPOT.module, blindspot_mini)
    assert branches == {"then1", "else2"}, \
        "without the global image both predecessors stay feasible"


def test_minidump_suffixes_still_replay(blindspot_mini):
    """Suffixes synthesized from a minidump are still verified — but
    only against the words the minidump retains."""
    res = ReverseExecutionSynthesizer(
        MINIDUMP_BLINDSPOT.module, blindspot_mini, RESConfig(max_depth=16))
    suffixes = list(res.suffixes())
    assert suffixes
    assert all(s.report.ok for s in suffixes)


def test_figure1_minidump_still_solved_by_registers():
    """Figure 1 is NOT a minidump blind spot in this substrate: the
    crash frame's register file retains y = 10, which pins Pred1.  The
    blind spot needs the evidence confined to dropped memory."""
    dump = FIGURE1_OVERFLOW.trigger()
    mini = minidump_of(dump)
    res = ReverseExecutionSynthesizer(
        FIGURE1_OVERFLOW.module, mini, RESConfig(max_depth=16))
    blocks = set()
    for synthesized in res.suffixes():
        blocks.update(st.segment.block for st in synthesized.suffix.steps)
    assert "then1" in blocks
    assert "else2" not in blocks
