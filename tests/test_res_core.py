"""RES core: snapshots, segments, slice execution, backward search.

These are the paper-faithfulness tests: Figure 1's disambiguation, the
havoc rule of §2.4, anytime operation of §2.1, and the no-false-
positives property of §4 (every emitted suffix replays to the dump).
"""

import pytest

from repro.minic import compile_source
from repro.vm import RandomPreemptScheduler, RunStatus, TrapKind, VM
from repro.core import (
    CandidateEnumerator,
    RESConfig,
    ReverseExecutionSynthesizer,
    SegmentExecutor,
    SegmentKind,
    SymbolicSnapshot,
    boundaries,
)
from repro.workloads import (
    ATOMICITY_READCHECK,
    FIGURE1_OVERFLOW,
    PAPER_EVAL_BUGS,
    RACE_FLAG,
    USE_AFTER_FREE,
)


def crash(src, inputs=(), seed=0, check_bounds=True):
    module = compile_source(src)
    vm = VM(module, inputs=list(inputs), check_bounds=check_bounds,
            scheduler=RandomPreemptScheduler(seed=seed, preempt_prob=0.6))
    result = vm.run()
    assert result.status is RunStatus.TRAPPED
    return module, result.coredump


SIMPLE = """
global int x;
global int y;
func main() {
    int v = input();
    if (v > 3) { x = 1; } else { x = 2; }
    y = x + 10;
    assert(y == 12, "bug");
    return 0;
}
"""


# ---------------------------------------------------------------------------
# Segments
# ---------------------------------------------------------------------------

def test_boundaries_at_block_start_and_shared_effect():
    module = compile_source(SIMPLE)
    entry = module.function("main").block("entry")
    points = boundaries(entry)
    assert 0 in points
    # the input instruction is a shared-effect boundary... only if not at 0
    assert all(0 <= p < len(entry.instrs) for p in points)


def test_trap_segment_is_forced_first():
    module, dump = crash(SIMPLE, inputs=[7])
    snap = SymbolicSnapshot.initial(module, dump)
    enum = CandidateEnumerator(module)
    cands = enum.candidates(snap)
    assert len(cands) == 1
    assert cands[0].kind is SegmentKind.TRAP
    assert cands[0].hi == dump.trap.pc.index + 1


def test_initial_snapshot_mirrors_coredump():
    module, dump = crash(SIMPLE, inputs=[7])
    snap = SymbolicSnapshot.initial(module, dump)
    assert snap.trap_pending
    thread = snap.threads[dump.trap.tid]
    assert thread.top.pc == dump.trap.pc
    # memory view reads through to the dump
    layout = module.layout()
    from repro.symex import Const
    assert snap.memory.read(layout["x"]) == Const(dump.read(layout["x"]))


# ---------------------------------------------------------------------------
# Slice execution: the §2.4 rules
# ---------------------------------------------------------------------------

def test_figure1_pred_disambiguation():
    """The coredump's x=1 keeps Pred1 and discards Pred2 (Figure 1)."""
    module, dump = crash(SIMPLE, inputs=[7])
    synthesizer = ReverseExecutionSynthesizer(module, dump,
                                              RESConfig(max_depth=12))
    suffixes = list(synthesizer.suffixes())
    assert suffixes, "no verified suffix"
    blocks = {step.segment.block for s in suffixes for step in s.suffix.steps}
    assert "then1" in blocks       # x = 1 predecessor kept
    assert "else2" not in blocks   # x = 2 predecessor pruned
    assert synthesizer.stats.pruned_incompatible + \
        synthesizer.stats.pruned_structural >= 1


def test_figure1_workload_end_to_end():
    dump = FIGURE1_OVERFLOW.trigger()
    assert dump.trap.kind is TrapKind.OUT_OF_BOUNDS
    res = ReverseExecutionSynthesizer(FIGURE1_OVERFLOW.module, dump,
                                      RESConfig(max_depth=16))
    deepest = None
    for s in res.suffixes():
        deepest = s
    assert deepest is not None
    blocks = {st.segment.block for st in deepest.suffix.steps}
    assert "then1" in blocks and "else2" not in blocks
    # the synthesized input must take the Pred1 branch (even number)
    assert deepest.report.inputs and deepest.report.inputs[0] % 2 == 0


def test_havoc_rule_register_reconstruction():
    """A register overwritten by the segment is reconstructed via the
    compatibility equation, matching §2.4's description."""
    module, dump = crash("""
global int g;
func main() {
    int a = input();
    int b = a + 5;
    g = b;
    assert(g == 0, "always fails with nonzero input");
    return 0;
}
""", inputs=[37])
    res = ReverseExecutionSynthesizer(module, dump, RESConfig(max_depth=16))
    deepest = None
    for s in res.suffixes():
        deepest = s
    assert deepest is not None
    # replay must rediscover the input 37 (b = a+5 = 42 = g in the dump)
    assert 37 in deepest.report.inputs


def test_input_reconstruction_from_coredump():
    """RES infers inputs (system call returns) from the dump (§2.1)."""
    module, dump = crash("""
global int g;
func main() {
    int v = input();
    g = v * 3;
    assert(g != 21, "crash when v == 7");
    return 0;
}
""", inputs=[7])
    res = ReverseExecutionSynthesizer(module, dump, RESConfig(max_depth=12))
    deepest = None
    for s in res.suffixes():
        deepest = s
    assert deepest is not None and deepest.report.inputs == [7]


def test_anytime_suffixes_grow_monotonically():
    module, dump = crash(SIMPLE, inputs=[7])
    res = ReverseExecutionSynthesizer(module, dump, RESConfig(max_depth=10))
    depths = [s.depth for s in res.suffixes()]
    assert depths == sorted(depths), "BFS must yield shortest first"
    assert depths[0] == 1


def test_every_emitted_suffix_is_replay_verified():
    """§4's 'no false positives': emission implies exact replay."""
    for workload in PAPER_EVAL_BUGS:
        dump = workload.trigger()
        res = ReverseExecutionSynthesizer(workload.module, dump,
                                          RESConfig(max_depth=10,
                                                    max_nodes=3000))
        for s in res.suffixes():
            assert s.report.ok
            assert not s.report.mismatches


def test_race_flag_reconstructs_cross_thread_interleaving():
    dump = RACE_FLAG.trigger()
    res = ReverseExecutionSynthesizer(RACE_FLAG.module, dump,
                                      RESConfig(max_depth=14, max_nodes=8000))
    found_cross_thread = False
    for s in res.suffixes():
        if len(s.suffix.threads_involved()) > 1:
            found_cross_thread = True
            break
    assert found_cross_thread


def test_interprocedural_backward_navigation():
    module, dump = crash("""
global int g;
func set_it(int v) {
    g = v;
    return v + 1;
}
func main() {
    int r = set_it(41);
    assert(r == 0, "fails");
    return 0;
}
""")
    res = ReverseExecutionSynthesizer(module, dump, RESConfig(max_depth=20))
    functions = set()
    deepest = None
    for s in res.suffixes():
        deepest = s
        functions |= {st.segment.function for st in s.suffix.steps}
    assert "set_it" in functions, "suffix should cross into the callee"
    assert deepest.report.ok


def test_uaf_workload_synthesizes():
    dump = USE_AFTER_FREE.trigger()
    res = ReverseExecutionSynthesizer(USE_AFTER_FREE.module, dump,
                                      RESConfig(max_depth=16))
    suffixes = list(res.suffixes())
    assert suffixes and all(s.report.ok for s in suffixes)


def test_read_write_sets_exposed():
    module, dump = crash(SIMPLE, inputs=[7])
    res = ReverseExecutionSynthesizer(module, dump, RESConfig(max_depth=12))
    deepest = None
    for s in res.suffixes():
        deepest = s
    layout = module.layout()
    assert layout["y"] in deepest.suffix.write_set()
    assert layout["x"] in deepest.suffix.read_set() \
        or layout["x"] in deepest.suffix.write_set()


def test_mismatched_module_rejected():
    module, dump = crash(SIMPLE, inputs=[7])
    other = compile_source(SIMPLE, name="other")
    from repro.errors import SynthesisError
    with pytest.raises(SynthesisError):
        ReverseExecutionSynthesizer(other, dump)


def test_stats_exposed_and_consistent():
    module, dump = crash(SIMPLE, inputs=[7])
    res = ReverseExecutionSynthesizer(module, dump, RESConfig(max_depth=8))
    list(res.suffixes())
    stats = res.stats
    assert stats.candidates_executed <= stats.candidates_generated
    assert stats.feasible_extensions <= stats.candidates_executed
    assert stats.suffixes_emitted <= stats.replays_attempted
