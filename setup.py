"""Legacy setup shim for environments without the `wheel` package.

`pyproject.toml` is the canonical metadata; this file mirrors the bits
`python setup.py develop` needs for an offline editable install.
"""

from setuptools import setup, find_packages

setup(
    name="repro",
    version="1.0.0",
    description=("Reverse Execution Synthesis (RES): automated post-mortem "
                 "debugging from coredumps, after Zamfir et al., HotOS 2013"),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    entry_points={
        "console_scripts": ["res = repro.cli.main:main"],
    },
    python_requires=">=3.9",
)
