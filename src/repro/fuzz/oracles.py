"""The cross-oracles a generated failure is checked against.

Four independent ways of asking "did RES get this right?":

1. **Incremental vs. naive** — the two ``RESConfig.incremental`` modes
   must emit byte-identical suffixes (fingerprints cover the schedule,
   per-step effects, and the constraint set) and identical behavioral
   prune counters.  This is the PR-1 equivalence claim, previously
   asserted on two benchmark workloads only.
2. **Replay feasibility** — every emitted suffix must replay on the
   concrete interpreter through a *fresh* replayer (fresh solver, no
   model reuse), independently re-verifying the paper's feasibility
   guarantee.
3. **Weakest-precondition consistency** — when RES proves the failing
   assert reachable, the WP baseline's path disjunction for the crash
   function must contain at least one satisfiable precondition
   (checked only where WP is precise: loop-free crash function, no
   lost-precision paths, untruncated enumeration).
4. **Forward-synthesis agreement** (optional, expensive) — the ESD-style
   forward searcher is run for the record; it cannot prove absence
   within a budget, so disagreement is logged but never a divergence.

``suffix_fingerprint`` / ``behavioral_counters`` are the canonical
byte-exact comparison helpers; the P1 throughput benchmark imports them
from here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core import RESConfig, ReverseExecutionSynthesizer, SuffixReplayer
from repro.core.fingerprints import (  # canonical home since PR 4;
    NON_BEHAVIORAL_STATS,             # re-exported for existing callers
    behavioral_counters,
    suffix_fingerprint,
)
from repro.ir.module import Module
from repro.vm.coredump import Coredump, TrapKind
from repro.symex.solver import Solver


def collect_suffixes(module: Module, coredump: Coredump, config: RESConfig,
                     max_suffixes: int, solver: Optional[Solver] = None):
    """Up to ``max_suffixes`` suffixes plus the final search stats.

    Both engines of a differential pair stop at the same emission count,
    so partial collection keeps the counter comparison exact (the search
    is deterministic).
    """
    res = ReverseExecutionSynthesizer(module, coredump, config,
                                      solver=solver)
    collected = []
    gen = res.suffixes()
    try:
        for item in gen:
            collected.append(item)
            if len(collected) >= max_suffixes:
                break
    finally:
        gen.close()
    return collected, res.stats


@dataclass
class OracleReport:
    """Everything the campaign records about one program's checks."""

    suffixes_emitted: int = 0
    replays_checked: int = 0
    wp_checked: bool = False
    wp_paths: int = 0
    forward_checked: bool = False
    forward_found: Optional[bool] = None
    divergences: List[Tuple[str, str]] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Oracle 1: incremental vs. naive
# ---------------------------------------------------------------------------

def compare_incremental(module: Module, coredump: Coredump,
                        config_kwargs: Dict, max_suffixes: int,
                        tamper_naive: bool = False,
                        check_cache: bool = False):
    """Run both engines; returns ``(incremental_suffixes, divergences)``.

    ``tamper_naive`` is the campaign's force-divergence test hook: it
    corrupts the naive fingerprint list so every suffix-emitting program
    reports a mismatch, exercising the artifact + shrink pipeline.

    ``check_cache`` adds the PR-4 warm-start oracle: the incremental
    engine's residual-component cache is exported, pushed through a full
    JSON round trip, imported into a *fresh* solver, and the search is
    re-run primed — the warm run must produce byte-identical suffix
    fingerprints and behavioral counters (a cached component verdict is
    a pure function of its key, so any difference is a real bug in the
    export/import or cache-keying layer).
    """
    import json as _json

    incr_solver = Solver()
    incr, incr_stats = collect_suffixes(
        module, coredump, RESConfig(incremental=True, **config_kwargs),
        max_suffixes, solver=incr_solver)
    naive, naive_stats = collect_suffixes(
        module, coredump, RESConfig(incremental=False, **config_kwargs),
        max_suffixes)

    incr_fp = [suffix_fingerprint(s) for s in incr]
    naive_fp = [suffix_fingerprint(s) for s in naive]
    if tamper_naive and naive_fp:
        naive_fp.append(("forced-divergence-sentinel",))

    divergences: List[Tuple[str, str]] = []
    if incr_fp != naive_fp:
        first = next((i for i, (a, b) in enumerate(zip(incr_fp, naive_fp))
                      if a != b), min(len(incr_fp), len(naive_fp)))
        divergences.append((
            "incremental-vs-naive",
            f"suffix streams differ (incremental {len(incr_fp)} vs naive "
            f"{len(naive_fp)} suffixes, first mismatch at index {first})"))
    else:
        incr_counters = behavioral_counters(incr_stats)
        naive_counters = behavioral_counters(naive_stats)
        if incr_counters != naive_counters:
            diff = sorted(key for key in incr_counters
                          if incr_counters[key] != naive_counters.get(key))
            divergences.append((
                "incremental-vs-naive",
                f"prune counters differ: {diff}"))

    if check_cache:
        snapshot = _json.loads(_json.dumps(
            incr_solver.export_component_cache()))
        primed_solver = Solver()
        primed_solver.import_component_cache(snapshot)
        primed, primed_stats = collect_suffixes(
            module, coredump, RESConfig(incremental=True, **config_kwargs),
            max_suffixes, solver=primed_solver)
        primed_fp = [suffix_fingerprint(s) for s in primed]
        if primed_fp != incr_fp:
            first = next(
                (i for i, (a, b) in enumerate(zip(incr_fp, primed_fp))
                 if a != b), min(len(incr_fp), len(primed_fp)))
            divergences.append((
                "cache-primed",
                f"warm-start suffix streams differ (cold {len(incr_fp)} vs "
                f"primed {len(primed_fp)} suffixes, first mismatch at "
                f"index {first})"))
        else:
            cold_counters = behavioral_counters(incr_stats)
            primed_counters = behavioral_counters(primed_stats)
            if cold_counters != primed_counters:
                diff = sorted(key for key in cold_counters
                              if cold_counters[key]
                              != primed_counters.get(key))
                divergences.append((
                    "cache-primed",
                    f"warm-start prune counters differ: {diff}"))
    return incr, divergences


# ---------------------------------------------------------------------------
# Oracle 2: independent replay feasibility
# ---------------------------------------------------------------------------

def check_replay_feasibility(module: Module, suffixes,
                             limit: int) -> Tuple[int, List[Tuple[str, str]]]:
    """Re-replay emitted suffixes through a fresh replayer (fresh solver,
    no model reuse); returns ``(checked, divergences)``."""
    divergences: List[Tuple[str, str]] = []
    checked = 0
    for item in suffixes[:limit]:
        checked += 1
        report = SuffixReplayer(module).replay(item.suffix)
        if not report.ok:
            divergences.append((
                "replay-infeasible",
                f"depth-{item.depth} suffix failed independent replay: "
                f"{'; '.join(report.mismatches[:3])}"))
    return checked, divergences


# ---------------------------------------------------------------------------
# Oracle 3: weakest-precondition consistency
# ---------------------------------------------------------------------------

def _loop_free(func) -> bool:
    """True if the function's CFG has no cycle (WP's precise fragment)."""
    colors: Dict[str, int] = {}

    def visit(label: str) -> bool:
        colors[label] = 1
        for succ in func.block(label).successors():
            state = colors.get(succ, 0)
            if state == 1:
                return False
            if state == 0 and not visit(succ):
                return False
        colors[label] = 2
        return True

    return visit(func.entry)


def check_wp_consistency(module: Module, coredump: Coredump,
                         suffixes_emitted: int,
                         max_paths: int = 64):
    """If RES proved the failing assert reachable, WP's path disjunction
    must contain a satisfiable precondition.

    Returns ``(checked, n_paths, divergences)``.  The check is skipped —
    not failed — wherever WP is allowed to be imprecise: non-assert
    traps, cyclic crash functions, lost-precision paths, or a truncated
    path enumeration.
    """
    from repro.baselines.wp import WeakestPrecondition

    trap = coredump.trap
    if trap.kind is not TrapKind.ASSERT_FAIL or suffixes_emitted == 0:
        return False, 0, []
    func = module.function(trap.pc.function)
    if not _loop_free(func):
        return False, 0, []
    wp = WeakestPrecondition(module)
    results = wp.failure_precondition(trap.pc.function, trap.pc.block,
                                      trap.pc.index, max_paths=max_paths)
    if not results or len(results) >= max_paths \
            or any(r.lost_precision for r in results):
        return False, len(results), []
    if wp.feasible_paths(results):
        return True, len(results), []
    return True, len(results), [(
        "wp-inconsistent",
        f"RES emitted {suffixes_emitted} suffixes but all "
        f"{len(results)} WP failure paths of {trap.pc.function} are "
        f"unsatisfiable")]


# ---------------------------------------------------------------------------
# Oracle 4 (optional): forward-synthesis agreement
# ---------------------------------------------------------------------------

def check_forward_agreement(module: Module, coredump: Coredump,
                            max_instructions: int = 200_000,
                            max_paths: int = 2_000) -> Optional[bool]:
    """Run the ESD-style forward searcher for the record.

    Returns whether it found a matching execution, or None when it gave
    up on budget.  Never a divergence: forward synthesis legitimately
    loses on symbolic addresses, so "not found" proves nothing.
    """
    from repro.baselines.forward_synthesis import ForwardSynthesizer

    result = ForwardSynthesizer(module, coredump,
                                max_instructions=max_instructions,
                                max_paths=max_paths).synthesize()
    if result.budget_exhausted and not result.found:
        return None
    return result.found
