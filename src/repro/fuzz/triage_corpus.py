"""Labeled triage corpora synthesized from fuzz seeds.

The PR 2 generator mass-produces armed programs whose failure class is
known by construction (`arm_kind`), which makes it a ground-truth
factory for the triage service: every coredump a seed produces is
labeled with its armed failure class — same armed-failure class, same
``true_cause`` — without any human labeling.  Duplicate reports (the
same crash reported ``duplicates`` times, as production traffic does)
exercise the service's fingerprint dedup without changing the
ground truth.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional

from repro.errors import ReproError
from repro.vm.interpreter import RunStatus, VM
from repro.core.triage import BugReport
from repro.core.triage_service import CorpusEntry, ProgramSpec, TriageCorpus
from repro.fuzz.generator import GenConfig, generate_program

#: ``arm_kind`` → the corpus ground-truth label (the §3.1 "true root
#: cause" of every report the armed program files)
ARM_CAUSE_NAMES = {
    "assert": "armed-assert",
    "oob": "armed-oob",
    "div": "armed-div",
    "abort": "armed-abort",
}

#: VM step budget for one armed run (matches the campaign's backstop)
_RUN_BUDGET = 500_000


def build_labeled_corpus(seeds: Iterable[int],
                         gen_config: Optional[GenConfig] = None,
                         duplicates: int = 1,
                         shuffle_seed: Optional[int] = None) -> TriageCorpus:
    """One labeled report per (seed, duplicate): generate the armed
    program, run it to its deterministic coredump, and label the report
    with the armed failure class.

    ``duplicates`` files each crash that many times (same coredump →
    same fingerprint → dedup short-circuit in the service).  With
    ``shuffle_seed`` the report order is deterministically shuffled so
    duplicates interleave like real traffic instead of arriving
    back-to-back.
    """
    if duplicates < 1:
        raise ReproError(f"duplicates must be >= 1, got {duplicates}")
    programs = {}
    entries: List[CorpusEntry] = []
    for seed in seeds:
        try:
            gen = generate_program(seed, gen_config)
        except ReproError:
            continue  # a generator refusal is not a corpus bug
        vm = VM(gen.module, inputs=gen.inputs,
                scheduler=gen.make_scheduler(), lbr_depth=16)
        result = vm.run(max_steps=_RUN_BUDGET)
        if result.status is not RunStatus.TRAPPED or result.coredump is None:
            continue
        key = gen.name
        programs[key] = ProgramSpec(key=key, source=gen.source, name=key)
        cause = ARM_CAUSE_NAMES[gen.arm_kind]
        for copy in range(duplicates):
            entries.append(CorpusEntry(
                report=BugReport(report_id=f"s{seed}-r{copy}",
                                 coredump=result.coredump,
                                 true_cause=cause),
                program_key=key))
    if shuffle_seed is not None:
        random.Random(shuffle_seed).shuffle(entries)
    return TriageCorpus(programs=programs, entries=entries)
