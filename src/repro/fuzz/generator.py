"""Seeded, grammar-driven MiniC program generator.

Every program this module emits is correct by construction in three
ways that matter to a differential campaign:

* it **typechecks** — variables are declared before use, calls match
  arity, array sizes are positive;
* it **terminates** — every loop is counter-bounded and every call
  chain is acyclic (helper ``i`` may only call helpers ``j < i``);
* it **traps deterministically** — the skeleton performs only safe
  operations (array indices are masked to the array size, divisors are
  masked away from zero, worker threads touch only their own globals
  and are joined before the probe), so a calibration run can observe
  the concrete value of a probe expression, and the armed variant then
  plants a failure site that is guaranteed to fire on that value.

The two-phase generate → calibrate → arm scheme is what lets the
campaign promise "every generated program reaches a trap" without ever
solving for inputs: the generator controls both the program *and* its
inputs, so it simply asks the VM what the probe works out to.

Determinism: all decisions come from one ``random.Random(seed)``; the
same ``(seed, GenConfig)`` pair always yields the same program, inputs,
and scheduler seed — which is what makes divergence artifacts
reproducible from their seed alone.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass, field
from typing import List, Optional, Tuple

from repro.errors import ReproError
from repro.ir.module import Module
from repro.minic import compile_source
from repro.vm.coredump import TrapKind
from repro.vm.interpreter import RunStatus, VM
from repro.vm.scheduler import RandomPreemptScheduler

#: the global array every program declares for the out-of-bounds arming;
#: the armed store lands this many words past the globals region, which
#: is always inside the unmapped gap below HEAP_BASE.
_OOB_SKEW = 5000

#: arming kinds, pre-weighted (assert twice: it is the kind the WP
#: oracle can cross-check, so it deserves the most coverage)
_ARM_KINDS = ("assert", "assert", "oob", "div", "abort")

_ARM_TRAPS = {
    "assert": TrapKind.ASSERT_FAIL,
    "oob": TrapKind.OUT_OF_BOUNDS,
    "div": TrapKind.DIV_BY_ZERO,
    "abort": TrapKind.ABORT,
}

_ARRAY_SIZES = (4, 8, 16)

_CMP_OPS = ("==", "!=", "<", "<=", ">", ">=")
_ARITH_OPS = ("+", "-", "*", "&", "|", "^")


class GeneratorError(ReproError):
    """The generator violated one of its own guarantees (a fuzz finding
    in its own right: campaign runs record it as a divergence)."""


@dataclass(frozen=True)
class GenConfig:
    """Grammar weights and size bounds (all decisions still seeded)."""

    threads_prob: float = 0.25
    heap_prob: float = 0.3
    output_prob: float = 0.3
    lock_prob: float = 0.6
    max_helpers: int = 3
    max_workers: int = 2
    min_main_stmts: int = 4
    max_main_stmts: int = 9
    max_helper_stmts: int = 4
    max_block_depth: int = 2
    max_expr_depth: int = 3
    #: VM step budget for the calibration run (loops are bounded, so
    #: hitting this means the generator is broken, not the program)
    calibration_budget: int = 300_000
    preempt_prob: float = 0.3


@dataclass
class GeneratedProgram:
    """One armed program plus everything needed to reproduce its trap."""

    seed: int
    name: str
    source: str            #: armed variant (guaranteed to trap)
    skeleton: str          #: trap-free probe variant (for debugging)
    inputs: List[int]
    expected_trap: TrapKind
    arm_kind: str
    probe_value: int
    uses_threads: bool
    sched_seed: int
    #: crash function of the ``assert`` arming (WP oracle target)
    gate_function: Optional[str] = None
    gen_config: dict = field(default_factory=dict)
    _module: Optional[Module] = None

    @property
    def module(self) -> Module:
        if self._module is None:
            self._module = compile_source(self.source, name=self.name)
        return self._module

    def make_scheduler(self) -> RandomPreemptScheduler:
        preempt = self.gen_config.get("preempt_prob", 0.3)
        return RandomPreemptScheduler(seed=self.sched_seed,
                                      preempt_prob=preempt)

    def line_count(self) -> int:
        return sum(1 for line in self.source.splitlines() if line.strip())


# ---------------------------------------------------------------------------
# The emitter
# ---------------------------------------------------------------------------

@dataclass
class _Scope:
    """Readable scalar names, writable scalar names, and live arrays."""

    readable: List[str]
    writable: List[str]
    arrays: List[Tuple[str, int]]   # (name, size); includes live pointers
    helpers: List[str]              # callable from this context


class _Emitter:
    def __init__(self, seed: int, config: GenConfig):
        self.rng = random.Random(seed)
        self.config = config
        self.tmp_counter = 0
        self.lines: List[str] = []

    def fresh(self, prefix: str) -> str:
        self.tmp_counter += 1
        return f"{prefix}{self.tmp_counter}"

    # -- expressions -------------------------------------------------------

    def expr(self, scope: _Scope, depth: Optional[int] = None) -> str:
        rng = self.rng
        if depth is None:
            depth = self.config.max_expr_depth
        if depth <= 0 or rng.random() < 0.3:
            return self._leaf(scope)
        roll = rng.random()
        if roll < 0.45:
            op = rng.choice(_ARITH_OPS)
            return f"({self.expr(scope, depth - 1)} {op} " \
                   f"{self.expr(scope, depth - 1)})"
        if roll < 0.55:
            op = rng.choice(_CMP_OPS)
            return f"({self.expr(scope, depth - 1)} {op} " \
                   f"{self.expr(scope, depth - 1)})"
        if roll < 0.63:
            op = rng.choice(("/", "%"))
            return f"({self.expr(scope, depth - 1)} {op} " \
                   f"(({self.expr(scope, depth - 1)} & 7) + 1))"
        if roll < 0.71:
            if rng.random() < 0.5:
                return f"({self.expr(scope, depth - 1)} << " \
                       f"({self._leaf(scope)} & 7))"
            return f"({self.expr(scope, depth - 1)} >> " \
                   f"({self._leaf(scope)} & 15))"
        if roll < 0.79:
            op = rng.choice(("-", "~", "!"))
            return f"({op}{self.expr(scope, depth - 1)})"
        if roll < 0.87 and scope.arrays:
            return self._array_read(scope, depth)
        if roll < 0.93 and scope.helpers:
            callee = rng.choice(scope.helpers)
            return f"{callee}({self.expr(scope, depth - 1)}, " \
                   f"{self.expr(scope, depth - 1)})"
        op = rng.choice(("&&", "||"))
        return f"({self.expr(scope, depth - 1)} {op} " \
               f"{self.expr(scope, depth - 1)})"

    def _leaf(self, scope: _Scope) -> str:
        rng = self.rng
        if scope.readable and rng.random() < 0.65:
            return rng.choice(scope.readable)
        value = rng.randint(-8, 16)
        return f"({value})" if value < 0 else str(value)

    def _array_read(self, scope: _Scope, depth: int) -> str:
        name, size = self.rng.choice(scope.arrays)
        return f"{name}[({self.expr(scope, depth - 1)}) & {size - 1}]"

    def _array_index(self, scope: _Scope) -> Tuple[str, str]:
        name, size = self.rng.choice(scope.arrays)
        return name, f"({self.expr(scope, 1)}) & {size - 1}"

    # -- statements --------------------------------------------------------

    def body(self, out: List[str], indent: str, scope: _Scope,
             n_stmts: int, block_depth: int) -> None:
        """Emit ``n_stmts`` statements into ``out``; declarations extend
        ``scope`` for the remainder of this block only."""
        scope = _Scope(list(scope.readable), list(scope.writable),
                       list(scope.arrays), list(scope.helpers))
        for _ in range(n_stmts):
            self._statement(out, indent, scope, block_depth)

    def _statement(self, out: List[str], indent: str, scope: _Scope,
                   block_depth: int) -> None:
        rng = self.rng
        roll = rng.random()
        if roll < 0.22:
            name = self.fresh("t")
            out.append(f"{indent}int {name} = {self.expr(scope)};")
            scope.readable.append(name)
            scope.writable.append(name)
        elif roll < 0.42 and scope.writable:
            target = rng.choice(scope.writable)
            out.append(f"{indent}{target} = {self.expr(scope)};")
        elif roll < 0.56 and scope.arrays:
            name, index = self._array_index(scope)
            out.append(f"{indent}{name}[{index}] = {self.expr(scope)};")
        elif roll < 0.70 and block_depth < self.config.max_block_depth:
            self._if_stmt(out, indent, scope, block_depth)
        elif roll < 0.84 and block_depth < self.config.max_block_depth:
            self._loop_stmt(out, indent, scope, block_depth)
        elif roll < 0.84 + self.config.output_prob * 0.5:
            out.append(f"{indent}output({self.expr(scope, 2)});")
        elif scope.helpers:
            name = self.fresh("t")
            callee = rng.choice(scope.helpers)
            out.append(f"{indent}int {name} = {callee}("
                       f"{self.expr(scope, 2)}, {self.expr(scope, 2)});")
            scope.readable.append(name)
            scope.writable.append(name)
        elif scope.writable:
            target = rng.choice(scope.writable)
            out.append(f"{indent}{target} = {self.expr(scope)};")
        else:
            out.append(f"{indent}output({self.expr(scope, 2)});")

    def _if_stmt(self, out: List[str], indent: str, scope: _Scope,
                 block_depth: int) -> None:
        out.append(f"{indent}if ({self.expr(scope, 2)}) {{")
        self.body(out, indent + "    ", scope,
                  self.rng.randint(1, 3), block_depth + 1)
        if self.rng.random() < 0.5:
            out.append(f"{indent}}} else {{")
            self.body(out, indent + "    ", scope,
                      self.rng.randint(1, 2), block_depth + 1)
        out.append(f"{indent}}}")

    def _loop_stmt(self, out: List[str], indent: str, scope: _Scope,
                   block_depth: int) -> None:
        bound = self.rng.randint(1, 4)
        var = self.fresh("i")
        inner = _Scope(scope.readable + [var], list(scope.writable),
                       list(scope.arrays), list(scope.helpers))
        if self.rng.random() < 0.6:
            out.append(f"{indent}for (int {var} = 0; {var} < {bound}; "
                       f"{var} = {var} + 1) {{")
            self.body(out, indent + "    ", inner,
                      self.rng.randint(1, 3), block_depth + 1)
            out.append(f"{indent}}}")
        else:
            out.append(f"{indent}int {var} = {bound};")
            out.append(f"{indent}while ({var} > 0) {{")
            self.body(out, indent + "    ", inner,
                      self.rng.randint(1, 2), block_depth + 1)
            out.append(f"{indent}    {var} = {var} - 1;")
            out.append(f"{indent}}}")
            scope.readable.append(var)
            scope.writable.append(var)


# ---------------------------------------------------------------------------
# Program assembly
# ---------------------------------------------------------------------------

def _build_skeleton(seed: int, config: GenConfig):
    """Emit the trap-free skeleton; returns everything arming needs."""
    em = _Emitter(seed, config)
    rng = em.rng

    n_scalars = rng.randint(2, 5)
    scalars = [f"g{i}" for i in range(n_scalars)]
    n_arrays = rng.randint(1, 3)
    arrays = [(f"a{i}", rng.choice(_ARRAY_SIZES)) for i in range(n_arrays)]
    uses_threads = rng.random() < config.threads_prob
    n_workers = rng.randint(1, config.max_workers) if uses_threads else 0
    n_helpers = rng.randint(0, config.max_helpers)
    n_inputs = rng.randint(1, 3)
    inputs = [rng.randint(-4, 12) for _ in range(n_inputs)]
    sched_seed = rng.randrange(1000)

    lines: List[str] = []
    for name in scalars:
        if rng.random() < 0.5:
            lines.append(f"global int {name} = {rng.randint(-3, 9)};")
        else:
            lines.append(f"global int {name};")
    for name, size in arrays:
        lines.append(f"global int {name}[{size}];")
    lines.append("global int trip[4];")
    for j in range(n_workers):
        lines.append(f"global int wg{j};")
        lines.append(f"global int wl{j};")
    lines.append("")

    # Helpers: pure-ish computation over params and shared globals.
    helper_names: List[str] = []
    for i in range(n_helpers):
        name = f"h{i}"
        scope = _Scope(readable=["a", "b"] + scalars,
                       writable=["a", "b"] + scalars,
                       arrays=list(arrays), helpers=list(helper_names))
        lines.append(f"func {name}(int a, int b) {{")
        em.body(lines, "    ", scope,
                rng.randint(1, config.max_helper_stmts), block_depth=1)
        lines.append(f"    return {em.expr(scope, 2)};")
        lines.append("}")
        lines.append("")
        helper_names.append(name)

    # Workers: each owns wg{j} exclusively and is joined before the
    # probe, so the final value is schedule-independent.
    for j in range(n_workers):
        locked = rng.random() < config.lock_prob
        scope = _Scope(readable=["n", "i", f"wg{j}"], writable=[f"wg{j}"],
                       arrays=[], helpers=[])
        lines.append(f"func w{j}(int n) {{")
        lines.append("    int i = 0;")
        lines.append("    while (i < ((n & 3) + 1)) {")
        if locked:
            lines.append(f"        lock(&wl{j});")
        lines.append(f"        wg{j} = wg{j} + {em.expr(scope, 2)};")
        if locked:
            lines.append(f"        unlock(&wl{j});")
        lines.append("        i = i + 1;")
        lines.append("    }")
        lines.append("    return 0;")
        lines.append("}")
        lines.append("")

    # Main.
    input_vars = [f"v{k}" for k in range(n_inputs)]
    main: List[str] = []
    for var in input_vars:
        main.append(f"    int {var} = input();")
    for j in range(n_workers):
        arg = rng.choice(input_vars + [str(rng.randint(0, 7))])
        main.append(f"    int th{j} = spawn w{j}({arg});")

    ptrs: List[Tuple[str, int]] = []
    if rng.random() < config.heap_prob:
        for k in range(rng.randint(1, 2)):
            ptrs.append((f"hp{k}", 4))
            main.append(f"    int hp{k} = malloc(4);")

    scope = _Scope(readable=input_vars + scalars,
                   writable=list(scalars),
                   arrays=arrays + ptrs,
                   helpers=helper_names)
    em.body(main, "    ", scope,
            rng.randint(config.min_main_stmts, config.max_main_stmts),
            block_depth=0)

    for j in range(n_workers):
        main.append(f"    join(th{j});")
    freed = [name for name, _ in ptrs if rng.random() < 0.5]
    for name in freed:
        main.append(f"    free({name});")

    # The probe mixes a random subset of final state (a subset, not
    # everything: statements off the probe's dataflow stay removable by
    # the shrinker).
    sources = list(scalars) + [f"wg{j}" for j in range(n_workers)]
    sources += [f"{name}[{rng.randrange(size)}]" for name, size in arrays]
    sources += [f"{name}[{rng.randrange(size)}]"
                for name, size in ptrs if name not in freed]
    rng.shuffle(sources)
    picked = sources[:rng.randint(2, min(4, len(sources)))]
    mix = picked[0]
    for term in picked[1:]:
        mix = f"({mix} {rng.choice(('+', '^', '-'))} {term})"
    main.append(f"    int probe = {mix};")

    arm_kind = rng.choice(_ARM_KINDS)
    preamble = lines + ["func main() {"] + main
    return (preamble, inputs, arm_kind, uses_threads, sched_seed)


def _armed_tail(arm_kind: str, probe_value: int) -> Tuple[List[str], List[str]]:
    """(extra functions, main tail) for one arming kind."""
    P = probe_value
    if arm_kind == "assert":
        gate = [
            "func fail_gate(int p) {",
            f"    int delta = p - {P};",
            "    if (delta > 0) {",
            "        return delta;",
            "    }",
            "    assert(delta != 0, \"fuzz: armed assert\");",
            "    return 0;",
            "}",
            "",
        ]
        tail = ["    int fz = fail_gate(probe);",
                "    output(fz);",
                "    return 0;",
                "}"]
        return gate, tail
    if arm_kind == "oob":
        tail = [f"    trip[(probe - {P}) + {_OOB_SKEW}] = 1;",
                "    output(probe);",
                "    return 0;",
                "}"]
        return [], tail
    if arm_kind == "div":
        tail = [f"    int boom = (1 / (probe - {P}));",
                "    output(boom);",
                "    return 0;",
                "}"]
        return [], tail
    if arm_kind == "abort":
        tail = [f"    if (probe == {P}) {{",
                "        abort(\"fuzz: armed abort\");",
                "    }",
                "    output(probe);",
                "    return 0;",
                "}"]
        return [], tail
    raise GeneratorError(f"unknown arm kind {arm_kind!r}")


def generate_program(seed: int,
                     config: Optional[GenConfig] = None) -> GeneratedProgram:
    """Generate, calibrate, and arm one program for ``seed``."""
    config = config or GenConfig()
    preamble, inputs, arm_kind, uses_threads, sched_seed = \
        _build_skeleton(seed, config)

    name = f"fuzz_{seed}"
    skeleton = "\n".join(preamble
                         + ["    output(probe);", "    halt(0);", "}"]) + "\n"
    try:
        module = compile_source(skeleton, name=name)
    except ReproError as exc:
        raise GeneratorError(
            f"seed {seed}: skeleton does not compile: {exc}") from exc

    vm = VM(module, inputs=inputs,
            scheduler=RandomPreemptScheduler(seed=sched_seed,
                                             preempt_prob=config.preempt_prob),
            lbr_depth=16)
    result = vm.run(max_steps=config.calibration_budget)
    if result.status is not RunStatus.EXITED or not result.outputs:
        raise GeneratorError(
            f"seed {seed}: calibration run ended {result.status.value} "
            f"instead of exiting through the probe")
    probe_value = result.outputs[-1]

    gate_fns, tail = _armed_tail(arm_kind, probe_value)
    armed = "\n".join(gate_fns + preamble + tail) + "\n"
    try:
        armed_module = compile_source(armed, name=name)
    except ReproError as exc:
        raise GeneratorError(
            f"seed {seed}: armed variant does not compile: {exc}") from exc

    return GeneratedProgram(
        seed=seed,
        name=name,
        source=armed,
        skeleton=skeleton,
        inputs=list(inputs),
        expected_trap=_ARM_TRAPS[arm_kind],
        arm_kind=arm_kind,
        probe_value=probe_value,
        uses_threads=uses_threads,
        sched_seed=sched_seed,
        gate_function="fail_gate" if arm_kind == "assert" else None,
        gen_config=asdict(config),
        _module=armed_module,
    )
