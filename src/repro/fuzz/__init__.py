"""Differential fuzzing of the RES stack.

The paper's feasibility claim — backward synthesis recovers a suffix
the concrete VM would actually execute — is only credible across a far
wider program space than the hand-written workload catalog.  This
package buys that coverage at scale:

* :mod:`repro.fuzz.generator` — a seeded, grammar-driven MiniC program
  generator that emits typechecking, terminating programs (globals,
  arrays, loops, call chains, threads, heap use) armed with a
  guaranteed failure site.
* :mod:`repro.fuzz.oracles` — the cross-checks one generated failure is
  run through: RES incremental vs. naive (byte-identical suffixes and
  prune counters), independent replay feasibility on the concrete
  interpreter, and weakest-precondition consistency.
* :mod:`repro.fuzz.campaign` — the campaign engine: generate, crash,
  cross-check, and record divergences as reproducible ``(seed, config)``
  artifacts, with optional multiprocessing fan-out.
* :mod:`repro.fuzz.shrink` — an AST-level delta-debugging shrinker that
  minimizes a divergent program while preserving its divergence.
* :mod:`repro.fuzz.triage_corpus` — labeled triage corpora built from
  fuzz seeds (armed failure class = ground-truth cause), feeding the
  batch triage service and its throughput benchmark.
"""

from repro.fuzz.campaign import (
    CampaignConfig,
    CampaignResult,
    ProgramVerdict,
    fuzz_one,
    run_campaign,
)
from repro.fuzz.generator import (
    GenConfig,
    GeneratedProgram,
    GeneratorError,
    generate_program,
)
from repro.fuzz.oracles import (
    OracleReport,
    behavioral_counters,
    collect_suffixes,
    suffix_fingerprint,
)
from repro.fuzz.shrink import ShrinkResult, shrink_program, unparse
from repro.fuzz.triage_corpus import ARM_CAUSE_NAMES, build_labeled_corpus

__all__ = [
    "ARM_CAUSE_NAMES", "CampaignConfig", "CampaignResult", "GenConfig",
    "GeneratedProgram", "GeneratorError", "OracleReport", "ProgramVerdict",
    "ShrinkResult", "behavioral_counters", "build_labeled_corpus",
    "collect_suffixes", "fuzz_one", "generate_program", "run_campaign",
    "shrink_program", "suffix_fingerprint", "unparse",
]
