"""AST-level delta-debugging shrinker for divergent MiniC programs.

Given a program and a predicate ("is it still divergent?"), the
shrinker parses the source, applies reduction passes, and keeps every
candidate the predicate accepts:

* drop whole functions and globals,
* delta-debug statement lists (chunked deletion, halving down to
  single statements, in every body including nested blocks),
* flatten ``if`` statements into one arm and unwrap loop bodies,
* substitute declaration/assignment right-hand sides with constants
  drawn from the program's own literal pool — the pass that collapses
  a calibrated probe computation into ``int probe = <literal>;`` and
  thereby unlocks deleting everything upstream of it.

The predicate sees *source text* and is expected to be total: any
exception it raises counts as "not divergent".  All passes run to a
fixed point under a test budget.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Callable, List, Tuple

from repro.minic import ast
from repro.minic.parser import parse
from repro.minic.unparse import unparse


# ---------------------------------------------------------------------------
# Shrinker
# ---------------------------------------------------------------------------

@dataclass
class ShrinkResult:
    source: str
    lines: int
    tests_run: int
    improved: bool

    @staticmethod
    def count_lines(source: str) -> int:
        return sum(1 for line in source.splitlines() if line.strip())


#: (statement-index, body-attribute) steps below a function's top body
_BodyPath = Tuple[int, Tuple[Tuple[int, str], ...]]


def _body_paths(program: ast.ProgramAST) -> List[_BodyPath]:
    paths: List[_BodyPath] = []

    def walk(body: List[ast.Stmt], fi: int,
             steps: Tuple[Tuple[int, str], ...]) -> None:
        paths.append((fi, steps))
        for si, stmt in enumerate(body):
            if isinstance(stmt, ast.If):
                walk(stmt.then_body, fi, steps + ((si, "then_body"),))
                if stmt.else_body:
                    walk(stmt.else_body, fi, steps + ((si, "else_body"),))
            elif isinstance(stmt, (ast.While, ast.For)):
                walk(stmt.body, fi, steps + ((si, "body"),))

    for fi, func in enumerate(program.functions):
        walk(func.body, fi, ())
    return paths


def _resolve(program: ast.ProgramAST, path: _BodyPath) -> List[ast.Stmt]:
    """Body list at ``path``, or ``[]`` when mutations made it stale.

    A stale path is harmless: every candidate is judged solely by the
    predicate, so resolving "the wrong body" can only waste a try, and
    the empty-list fallback makes the pass loops skip it instead of
    crashing.
    """
    fi, steps = path
    try:
        body = program.functions[fi].body
        for si, attr in steps:
            body = getattr(body[si], attr)
    except (IndexError, AttributeError):
        return []
    return body if isinstance(body, list) else []


class _Shrinker:
    def __init__(self, source: str, predicate: Callable[[str], bool],
                 max_tests: int):
        self.predicate = predicate
        self.max_tests = max_tests
        self.tests = 0
        self.best_src = source
        self.best_ast = parse(source)

    def exhausted(self) -> bool:
        return self.tests >= self.max_tests

    def _try(self, candidate: ast.ProgramAST) -> bool:
        if self.exhausted():
            return False
        try:
            src = unparse(candidate)
        except TypeError:
            return False
        if src == self.best_src:
            return False
        self.tests += 1
        try:
            ok = bool(self.predicate(src))
        except Exception:
            ok = False
        if ok:
            self.best_src = src
            self.best_ast = parse(src)
        return ok

    # -- passes ------------------------------------------------------------

    def drop_functions(self) -> bool:
        improved = False
        fi = len(self.best_ast.functions) - 1
        while fi >= 0 and not self.exhausted():
            if self.best_ast.functions[fi].name != "main":
                cand = copy.deepcopy(self.best_ast)
                del cand.functions[fi]
                improved |= self._try(cand)
            fi = min(fi - 1, len(self.best_ast.functions) - 1)
        return improved

    def drop_globals(self) -> bool:
        improved = False
        gi = len(self.best_ast.globals) - 1
        while gi >= 0 and not self.exhausted():
            cand = copy.deepcopy(self.best_ast)
            del cand.globals[gi]
            improved |= self._try(cand)
            gi = min(gi - 1, len(self.best_ast.globals) - 1)
        return improved

    def delete_statements(self) -> bool:
        """ddmin-style chunked deletion over every body, to fixpoint."""
        improved = False
        progress = True
        while progress and not self.exhausted():
            progress = False
            for path in _body_paths(self.best_ast):
                body_len = len(_resolve(self.best_ast, path))
                chunk = max(1, body_len // 2)
                while chunk >= 1 and not self.exhausted():
                    start = 0
                    while start < len(_resolve(self.best_ast, path)):
                        cand = copy.deepcopy(self.best_ast)
                        body = _resolve(cand, path)
                        if start >= len(body):
                            break
                        del body[start:start + chunk]
                        if self._try(cand):
                            progress = improved = True
                        else:
                            start += chunk
                        if self.exhausted():
                            break
                    chunk //= 2
        return improved

    def flatten_blocks(self) -> bool:
        """Replace an If by one arm, a loop by its body (run once)."""
        improved = True
        any_improved = False
        while improved and not self.exhausted():
            improved = False
            for path in _body_paths(self.best_ast):
                body = _resolve(self.best_ast, path)
                for si, stmt in enumerate(body):
                    replacements: List[List[ast.Stmt]] = []
                    if isinstance(stmt, ast.If):
                        replacements = [stmt.then_body, stmt.else_body]
                    elif isinstance(stmt, (ast.While, ast.For)):
                        replacements = [stmt.body]
                    for repl in replacements:
                        cand = copy.deepcopy(self.best_ast)
                        cand_body = _resolve(cand, path)
                        cand_body[si:si + 1] = copy.deepcopy(repl)
                        if self._try(cand):
                            improved = any_improved = True
                            break
                    if improved:
                        break
                if improved:
                    break
        return any_improved

    def literal_pool(self) -> List[int]:
        pool = set()

        def walk_expr(expr: ast.Expr) -> None:
            if isinstance(expr, ast.IntLit):
                pool.add(expr.value)
            for attr in ("operand", "left", "right", "base", "index",
                         "pointer", "target", "size", "cond", "value"):
                child = getattr(expr, attr, None)
                if isinstance(child, ast.Expr):
                    walk_expr(child)
            for child in getattr(expr, "args", []):
                walk_expr(child)

        for path in _body_paths(self.best_ast):
            for stmt in _resolve(self.best_ast, path):
                for attr in ("init", "value", "cond", "expr", "addr",
                             "tid", "code", "target"):
                    child = getattr(stmt, attr, None)
                    if isinstance(child, ast.Expr):
                        walk_expr(child)
        pool.update((0, 1))
        # Largest magnitude first: the calibrated probe constant is the
        # one whose substitution collapses the program.
        return sorted(pool, key=abs, reverse=True)[:12]

    def substitute_constants(self) -> bool:
        improved = False
        pool = self.literal_pool()
        for path in _body_paths(self.best_ast):
            if self.exhausted():
                break
            for si, stmt in enumerate(_resolve(self.best_ast, path)):
                attr = None
                if isinstance(stmt, ast.Decl) and stmt.init is not None:
                    attr = "init"
                elif isinstance(stmt, ast.Assign):
                    attr = "value"
                if attr is None or isinstance(getattr(stmt, attr),
                                              ast.IntLit):
                    continue
                for value in pool:
                    cand = copy.deepcopy(self.best_ast)
                    cand_body = _resolve(cand, path)
                    setattr(cand_body[si], attr, ast.IntLit(value=value))
                    if self._try(cand):
                        improved = True
                        break
                    if self.exhausted():
                        break
        return improved


def shrink_program(source: str, predicate: Callable[[str], bool],
                   max_tests: int = 500) -> ShrinkResult:
    """Minimize ``source`` while ``predicate(candidate_source)`` holds.

    The input program itself is assumed divergent (callers should check
    ``predicate(source)`` first if unsure); the result is the smallest
    accepted candidate found within ``max_tests`` predicate runs.
    """
    shrinker = _Shrinker(source, predicate, max_tests)
    original = shrinker.best_src
    progress = True
    while progress and not shrinker.exhausted():
        progress = False
        progress |= shrinker.drop_functions()
        progress |= shrinker.drop_globals()
        progress |= shrinker.delete_statements()
        progress |= shrinker.substitute_constants()
        progress |= shrinker.flatten_blocks()
    return ShrinkResult(
        source=shrinker.best_src,
        lines=ShrinkResult.count_lines(shrinker.best_src),
        tests_run=shrinker.tests,
        improved=shrinker.best_src != original,
    )
