"""The differential fuzzing campaign engine.

One campaign = ``count`` programs generated from consecutive seeds
(``seed .. seed + count - 1``).  Each program is compiled, run to its
armed trap in the concrete VM, its coredump captured (optionally
corrupted through the hardware-fault hooks), and the failure pushed
through the cross-oracles in :mod:`repro.fuzz.oracles`.  Divergences
are written out as reproducible JSON artifacts keyed by the program
seed — ``res fuzz --seed <program_seed> --count 1`` replays exactly
that program — and can be minimized in-place by the AST shrinker.

``--jobs N`` fans the per-program work out over a multiprocessing pool;
each program is fully independent, so the only serial phases are
artifact writing and shrinking (both parent-side).
"""

from __future__ import annotations

import random
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.ioutil import atomic_write_json
from repro.ir.module import GLOBALS_BASE, HEAP_BASE
from repro.minic import compile_source
from repro.vm.coredump import TrapKind
from repro.vm.faults import ALUFaultInjector, flip_bit
from repro.vm.interpreter import RunStatus, VM
from repro.vm.scheduler import RandomPreemptScheduler
from repro.fuzz.generator import GenConfig, generate_program
from repro.fuzz.oracles import (
    OracleReport,
    check_forward_agreement,
    check_replay_feasibility,
    check_wp_consistency,
    compare_incremental,
)
from repro.fuzz.shrink import ShrinkResult, shrink_program

#: VM step budget for one armed run (generated loops are tiny; this is
#: a backstop against generator bugs, not a tuning knob)
_RUN_BUDGET = 500_000


@dataclass
class CampaignConfig:
    """Everything a campaign needs; must stay picklable for ``--jobs``."""

    seed: int = 0
    count: int = 200
    jobs: int = 1
    #: RES search budget per oracle run (kept small: differential
    #: coverage scales with program count, not per-program depth)
    max_depth: int = 8
    max_nodes: int = 300
    max_suffixes: int = 12
    max_replay_checks: int = 6
    threads_prob: float = 0.25
    #: post-hoc coredump bit flips (DRAM model); flipped dumps only
    #: check incremental-vs-naive agreement — RES finding them
    #: infeasible is the expected §3.2 outcome, not a divergence
    hw_fault_prob: float = 0.05
    #: online ALU miscompute during the producing run (§3.2)
    alu_fault_prob: float = 0.03
    check_forward: bool = False
    #: PR-4 warm-start oracle: re-run the incremental engine on a fresh
    #: solver primed from a JSON round trip of the first run's exported
    #: residual-component cache; the primed run must be byte-identical.
    #: On by default — the cache layer is a live divergence surface.
    check_cache: bool = True
    #: test hook: corrupt the naive oracle's fingerprints so every
    #: suffix-emitting program diverges (exercises artifacts + shrink)
    force_divergence: bool = False
    shrink: bool = False
    shrink_budget: int = 400
    artifact_dir: str = "fuzz-artifacts"

    def gen_config(self) -> GenConfig:
        return GenConfig(threads_prob=self.threads_prob)


@dataclass
class ProgramVerdict:
    """Outcome of fuzzing one program seed."""

    seed: int
    status: str                    # "ok" | "no-trap" | "gen-error"
    arm_kind: str = ""
    trap_kind: str = ""
    uses_threads: bool = False
    hw_faulted: bool = False
    alu_faulted: bool = False
    oracle_flags: Dict[str, bool] = field(default_factory=dict)
    suffixes_emitted: int = 0
    replays_checked: int = 0
    wp_checked: bool = False
    forward_found: Optional[bool] = None
    divergences: List[Tuple[str, str]] = field(default_factory=list)
    source: str = ""
    inputs: List[int] = field(default_factory=list)
    sched_seed: int = 0
    preempt_prob: float = 0.3
    seconds: float = 0.0

    @property
    def divergent(self) -> bool:
        return bool(self.divergences)


@dataclass
class CampaignResult:
    config: CampaignConfig
    verdicts: List[ProgramVerdict]
    artifacts: List[str] = field(default_factory=list)
    elapsed: float = 0.0
    #: the campaign was cut short (Ctrl-C); verdicts hold the programs
    #: that finished before the interrupt, and are still summarized
    interrupted: bool = False

    @property
    def divergent(self) -> List[ProgramVerdict]:
        return [v for v in self.verdicts if v.divergent]

    def summary(self) -> Dict[str, int]:
        out: Dict[str, int] = {
            "programs": len(self.verdicts),
            "trapped": sum(1 for v in self.verdicts if v.status == "ok"),
            "no_trap": sum(1 for v in self.verdicts
                           if v.status == "no-trap"),
            "gen_errors": sum(1 for v in self.verdicts
                              if v.status == "gen-error"),
            "threaded": sum(1 for v in self.verdicts if v.uses_threads),
            "hw_faulted": sum(1 for v in self.verdicts if v.hw_faulted),
            "alu_faulted": sum(1 for v in self.verdicts if v.alu_faulted),
            "suffixes": sum(v.suffixes_emitted for v in self.verdicts),
            "replays_checked": sum(v.replays_checked
                                   for v in self.verdicts),
            "wp_checked": sum(1 for v in self.verdicts if v.wp_checked),
            "divergent": len(self.divergent),
        }
        return out


def _campaign_rng(program_seed: int) -> random.Random:
    # Decorrelated from the generator's rng (which consumes the raw
    # seed): campaign-level draws must not disturb program shape.
    return random.Random(program_seed * 2654435761 + 17)


def _draw_oracle_flags(rng: random.Random) -> Dict[str, bool]:
    return {
        "use_lbr": rng.random() < 0.3,
        "use_log": rng.random() < 0.3,
        "use_writer_index": rng.random() < 0.5,
    }


def _oracle_kwargs(flags: Dict[str, bool],
                   config: CampaignConfig) -> Dict:
    return dict(max_depth=config.max_depth, max_nodes=config.max_nodes,
                **flags)


def _run_oracles(module, dump, flags: Dict[str, bool],
                 config: CampaignConfig,
                 gate_function: Optional[str],
                 hw_faulted: bool) -> OracleReport:
    report = OracleReport()
    kwargs = _oracle_kwargs(flags, config)
    suffixes, divergences = compare_incremental(
        module, dump, kwargs, config.max_suffixes,
        tamper_naive=config.force_divergence,
        check_cache=config.check_cache)
    report.suffixes_emitted = len(suffixes)
    report.divergences.extend(divergences)

    if not hw_faulted:
        # Corrupted dumps only check incremental-vs-naive agreement:
        # what RES makes of an inconsistent dump is the §3.2 question,
        # not a feasibility contract the extra oracles may enforce.
        report.replays_checked, replay_div = check_replay_feasibility(
            module, suffixes, config.max_replay_checks)
        report.divergences.extend(replay_div)

    if gate_function is not None and not hw_faulted \
            and dump.trap.pc.function == gate_function:
        report.wp_checked, report.wp_paths, wp_div = check_wp_consistency(
            module, dump, report.suffixes_emitted)
        report.divergences.extend(wp_div)

    if config.check_forward and not hw_faulted:
        report.forward_checked = True
        report.forward_found = check_forward_agreement(module, dump)
    return report


def fuzz_one(program_seed: int, config: CampaignConfig) -> ProgramVerdict:
    """Generate, crash, and cross-check one program."""
    start = time.perf_counter()
    try:
        gen = generate_program(program_seed, config.gen_config())
    except ReproError as exc:
        return ProgramVerdict(
            seed=program_seed, status="gen-error",
            divergences=[("generator", str(exc))],
            seconds=time.perf_counter() - start)

    verdict = ProgramVerdict(
        seed=program_seed, status="ok", arm_kind=gen.arm_kind,
        uses_threads=gen.uses_threads, source=gen.source,
        inputs=list(gen.inputs), sched_seed=gen.sched_seed,
        preempt_prob=gen.gen_config.get("preempt_prob", 0.3))
    rng = _campaign_rng(program_seed)
    verdict.oracle_flags = _draw_oracle_flags(rng)
    alu = rng.random() < config.alu_fault_prob
    hw = not alu and rng.random() < config.hw_fault_prob

    injector = None
    if alu:
        verdict.alu_faulted = True
        injector = ALUFaultInjector(op="add",
                                    fire_at=rng.randint(1, 40),
                                    xor_mask=1 << rng.randrange(8))
    try:
        module = gen.module
    except ReproError as exc:
        verdict.status = "gen-error"
        verdict.divergences.append(("generator", str(exc)))
        verdict.seconds = time.perf_counter() - start
        return verdict

    vm = VM(module, inputs=gen.inputs, scheduler=gen.make_scheduler(),
            lbr_depth=16, alu_fault=injector)
    result = vm.run(max_steps=_RUN_BUDGET)

    if result.status is not RunStatus.TRAPPED or result.coredump is None:
        verdict.status = "no-trap"
        if not alu:  # an ALU fault is allowed to defuse the armed failure
            verdict.divergences.append((
                "trap-mismatch",
                f"armed program ended {result.status.value} instead of "
                f"trapping {gen.expected_trap.value}"))
        verdict.seconds = time.perf_counter() - start
        return verdict

    dump = result.coredump
    verdict.trap_kind = dump.trap.kind.value
    if not alu and dump.trap.kind is not gen.expected_trap:
        verdict.divergences.append((
            "trap-mismatch",
            f"armed for {gen.expected_trap.value} but trapped "
            f"{dump.trap.kind.value} at {dump.trap.pc}"))
        verdict.seconds = time.perf_counter() - start
        return verdict

    if hw:
        candidates = sorted(a for a in dump.memory
                            if GLOBALS_BASE <= a < HEAP_BASE)
        if candidates:
            flip_bit(dump, rng.choice(candidates), rng.randrange(16))
            verdict.hw_faulted = True

    report = _run_oracles(module, dump, verdict.oracle_flags, config,
                          gen.gate_function,
                          verdict.hw_faulted or verdict.alu_faulted)
    verdict.suffixes_emitted = report.suffixes_emitted
    verdict.replays_checked = report.replays_checked
    verdict.wp_checked = report.wp_checked
    verdict.forward_found = report.forward_found
    verdict.divergences.extend(report.divergences)
    verdict.seconds = time.perf_counter() - start
    return verdict


def _pool_worker(args: Tuple[int, CampaignConfig]) -> ProgramVerdict:
    return fuzz_one(*args)


# ---------------------------------------------------------------------------
# Shrinking divergent programs
# ---------------------------------------------------------------------------

def divergence_predicate(verdict: ProgramVerdict, config: CampaignConfig):
    """Predicate closure for the shrinker: does ``source`` still show
    (any of) the verdict's divergence kinds under the same oracle
    configuration?  Fault injection is *not* re-applied: a divergence
    that only manifests on a corrupted dump is reported unshrunk."""
    kinds = {kind for kind, _ in verdict.divergences}
    kwargs = _oracle_kwargs(verdict.oracle_flags, config)

    def predicate(source: str) -> bool:
        try:
            module = compile_source(source, name=f"shrink_{verdict.seed}")
        except ReproError:
            return False
        vm = VM(module, inputs=verdict.inputs,
                scheduler=RandomPreemptScheduler(
                    seed=verdict.sched_seed,
                    preempt_prob=verdict.preempt_prob),
                lbr_depth=16)
        result = vm.run(max_steps=_RUN_BUDGET)
        if result.status is not RunStatus.TRAPPED \
                or result.coredump is None:
            return False
        dump = result.coredump
        suffixes, divergences = compare_incremental(
            module, dump, kwargs, config.max_suffixes,
            tamper_naive=config.force_divergence,
            check_cache=config.check_cache and "cache-primed" in kinds)
        found_kinds = {kind for kind, _ in divergences}
        if found_kinds & kinds & {"incremental-vs-naive", "cache-primed"} \
                or (divergences and config.force_divergence):
            return True
        if "replay-infeasible" in kinds:
            _, replay_div = check_replay_feasibility(
                module, suffixes, config.max_replay_checks)
            if replay_div:
                return True
        if "wp-inconsistent" in kinds \
                and dump.trap.kind is TrapKind.ASSERT_FAIL:
            _, _, wp_div = check_wp_consistency(module, dump,
                                                len(suffixes))
            if wp_div:
                return True
        return False

    return predicate


_SHRINKABLE_KINDS = ("incremental-vs-naive", "cache-primed",
                     "replay-infeasible", "wp-inconsistent")


def shrink_verdict(verdict: ProgramVerdict,
                   config: CampaignConfig) -> Optional[ShrinkResult]:
    """Minimize a divergent program; None when its divergence kind
    cannot be re-checked from source alone (generator/fault cases)."""
    if not verdict.source or not any(
            kind in _SHRINKABLE_KINDS
            for kind, _ in verdict.divergences):
        return None
    predicate = divergence_predicate(verdict, config)
    if not predicate(verdict.source):
        return None  # not reproducible without the injected fault
    return shrink_program(verdict.source, predicate,
                          max_tests=config.shrink_budget)


# ---------------------------------------------------------------------------
# Artifacts
# ---------------------------------------------------------------------------

def reproduce_command(program_seed: int, config: CampaignConfig) -> str:
    """The exact ``res fuzz`` invocation that re-runs one program under
    this campaign's generator shape and oracle budgets (every flag that
    differs from the CLI default is carried along)."""
    defaults = CampaignConfig()
    flags = [f"--seed {program_seed}", "--count 1"]
    for field_name, flag in (("max_depth", "--max-depth"),
                             ("max_nodes", "--max-nodes"),
                             ("max_suffixes", "--max-suffixes"),
                             ("threads_prob", "--threads-prob"),
                             ("hw_fault_prob", "--hw-fault-prob"),
                             ("alu_fault_prob", "--alu-fault-prob")):
        value = getattr(config, field_name)
        if value != getattr(defaults, field_name):
            flags.append(f"{flag} {value}")
    if config.check_forward:
        flags.append("--check-forward")
    if not config.check_cache:
        flags.append("--no-check-cache")
    if config.force_divergence:
        flags.append("--force-divergence")
    return "res fuzz " + " ".join(flags)


def write_artifact(verdict: ProgramVerdict, config: CampaignConfig,
                   shrunk: Optional[ShrinkResult] = None) -> str:
    """One JSON artifact per divergent program, reproducible by seed.

    Written atomically (temp file + ``os.replace``): an interrupted
    campaign must never leave a truncated artifact behind — a partial
    JSON would fail to parse, and with it the divergence repro."""
    directory = Path(config.artifact_dir)
    kind = verdict.divergences[0][0] if verdict.divergences else "unknown"
    path = directory / f"div-{verdict.seed}-{kind}.json"
    payload = {
        "program_seed": verdict.seed,
        "reproduce": reproduce_command(verdict.seed, config),
        "campaign_config": asdict(config),
        "oracle_flags": verdict.oracle_flags,
        "divergences": [list(d) for d in verdict.divergences],
        "status": verdict.status,
        "arm_kind": verdict.arm_kind,
        "trap_kind": verdict.trap_kind,
        "inputs": verdict.inputs,
        "sched_seed": verdict.sched_seed,
        "hw_faulted": verdict.hw_faulted,
        "alu_faulted": verdict.alu_faulted,
        "source": verdict.source,
    }
    if shrunk is not None:
        payload["shrunk_source"] = shrunk.source
        payload["shrunk_lines"] = shrunk.lines
        payload["shrink_tests"] = shrunk.tests_run
    return atomic_write_json(path, payload, indent=2, sort_keys=False)


# ---------------------------------------------------------------------------
# The campaign driver
# ---------------------------------------------------------------------------

def run_campaign(config: CampaignConfig,
                 progress=None) -> CampaignResult:
    """Run the full campaign; ``progress`` is an optional callable
    invoked with each :class:`ProgramVerdict` as it lands.

    Ctrl-C is a first-class outcome, not a crash: the worker pool is
    terminated (no zombie workers), the verdicts that already landed are
    kept, their divergences still get (atomic) artifacts, and the
    result comes back flagged ``interrupted`` so callers can summarize
    the partial run."""
    start = time.perf_counter()
    seeds = [config.seed + i for i in range(config.count)]
    verdicts: List[ProgramVerdict] = []
    interrupted = False
    if config.jobs > 1:
        import multiprocessing as mp

        pool = mp.Pool(config.jobs)
        try:
            for verdict in pool.imap_unordered(
                    _pool_worker, [(s, config) for s in seeds],
                    chunksize=max(1, len(seeds) // (config.jobs * 8))):
                verdicts.append(verdict)
                if progress is not None:
                    progress(verdict)
            pool.close()
        except KeyboardInterrupt:
            interrupted = True
            pool.terminate()
        except BaseException:
            # Any other error still must not leak live workers (and a
            # join() on a running pool would raise, masking the cause).
            pool.terminate()
            raise
        finally:
            pool.join()
        verdicts.sort(key=lambda v: v.seed)
    else:
        try:
            for seed in seeds:
                verdict = fuzz_one(seed, config)
                verdicts.append(verdict)
                if progress is not None:
                    progress(verdict)
        except KeyboardInterrupt:
            interrupted = True

    result = CampaignResult(config=config, verdicts=verdicts,
                            interrupted=interrupted)
    for verdict in result.divergent:
        shrunk = shrink_verdict(verdict, config) if config.shrink else None
        result.artifacts.append(write_artifact(verdict, config, shrunk))
    result.elapsed = time.perf_counter() - start
    return result
