"""Small shared I/O helpers (durable file writes).

Anything the system persists incrementally — fuzz divergence artifacts,
the triage report store, the benchmark log — must never be observable
half-written: an interrupted ``--jobs`` run that leaves a truncated
JSON file behind produces artifacts that later fail to parse or
reproduce.  The pattern is always the same: write to a temp file in the
target directory, then ``os.replace`` (atomic on POSIX within one
filesystem).
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Union


def atomic_write_text(path: Union[str, Path], text: str) -> str:
    """Durably write ``text`` to ``path``; returns the path written."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(dir=str(target.parent),
                                    prefix=target.name + ".")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        os.replace(tmp_path, str(target))
    except BaseException:
        os.unlink(tmp_path)
        raise
    return str(target)


def atomic_write_json(path: Union[str, Path], payload: dict,
                      indent: int = 1, sort_keys: bool = True) -> str:
    """Durably write ``payload`` as JSON to ``path``."""
    return atomic_write_text(
        path, json.dumps(payload, indent=indent, sort_keys=sort_keys) + "\n")
