"""Small shared I/O helpers (durable file writes).

Anything the system persists incrementally — fuzz divergence artifacts,
the triage report store, the RES result cache, the benchmark log — must
never be observable half-written: an interrupted ``--jobs`` run that
leaves a truncated JSON file behind produces artifacts that later fail
to parse or reproduce.  Two patterns:

* **atomic rewrite** — write to a temp file in the target directory,
  ``fsync`` it, then ``os.replace`` (atomic on POSIX within one
  filesystem), then best-effort ``fsync`` the directory.  Without the
  temp-file fsync the rename can be durable *before* the data is: a
  power cut after the replace may surface an empty or garbage target
  even though the write "succeeded".  The directory fsync makes the
  rename itself durable; it is best-effort because some filesystems
  (and platforms) refuse to fsync a directory fd.
* **durable append** — for append-only row logs (the result cache):
  write + flush + fsync in one call, so a crash can truncate at most
  the row being written (readers must skip a torn trailing line).
"""

from __future__ import annotations

import errno
import json
import os
import tempfile
import warnings
from pathlib import Path
from typing import Iterator, Tuple, Union

from repro import faultinject


def fsync_dir(directory: Union[str, Path]) -> bool:
    """Best-effort fsync of a directory (makes renames in it durable).

    Returns whether the fsync happened; failure is not an error —
    the caller's data is already safely in the file, only the rename's
    durability window stays open on filesystems that cannot do this.
    """
    try:
        fd = os.open(str(directory), os.O_RDONLY)
    except OSError:
        return False
    try:
        os.fsync(fd)
        return True
    except OSError:
        return False
    finally:
        os.close(fd)


def atomic_write_text(path: Union[str, Path], text: str) -> str:
    """Durably write ``text`` to ``path``; returns the path written."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    fi = faultinject.active()
    fault = fi.decide("ioutil.atomic_write", path=target) \
        if fi is not None else None
    if fault == "enospc":
        raise OSError(errno.ENOSPC, f"injected ENOSPC: {target}")
    fd, tmp_path = tempfile.mkstemp(dir=str(target.parent),
                                    prefix=target.name + ".")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
            handle.flush()
            # The data must hit stable storage *before* the rename does:
            # os.replace only orders metadata, so a crash shortly after
            # it can otherwise surface an empty/garbage target.
            os.fsync(handle.fileno())
        if fault == "interrupt":
            # Die between the temp write and the rename: the crash
            # window atomic replacement exists for.  The except below
            # unlinks the temp file; the target must stay untouched.
            raise OSError(errno.EIO,
                          f"injected crash before replace: {target}")
        os.replace(tmp_path, str(target))
    except BaseException:
        os.unlink(tmp_path)
        raise
    fsync_dir(target.parent)
    return str(target)


def atomic_write_json(path: Union[str, Path], payload: dict,
                      indent: int = 1, sort_keys: bool = True) -> str:
    """Durably write ``payload`` as JSON to ``path``."""
    return atomic_write_text(
        path, json.dumps(payload, indent=indent, sort_keys=sort_keys) + "\n")


def append_line(path: Union[str, Path], line: str) -> str:
    """Durably append one line (no trailing newline needed) to ``path``.

    The append is flushed and fsynced before returning, so a crash can
    tear at most the line being written; readers of append-only row
    logs must tolerate (skip) a truncated final line.  Appending *after*
    such a crash must not merge the new row into the torn fragment
    (that would corrupt a valid row forever), so a missing final
    newline is healed first.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    fi = faultinject.active()
    fault = fi.decide("ioutil.append_line", path=target) \
        if fi is not None else None
    if fault == "enospc":
        raise OSError(errno.ENOSPC, f"injected ENOSPC: {target}")
    with open(target, "ab") as handle:
        if handle.tell() > 0:
            with open(target, "rb") as reader:
                reader.seek(-1, os.SEEK_END)
                torn = reader.read(1) != b"\n"
            if torn:
                handle.write(b"\n")
        data = line.rstrip("\n").encode("utf-8") + b"\n"
        if fault == "torn":
            # The crash-mid-append case the reader contract exists
            # for: a prefix of the row reaches the file, the caller
            # sees a failure, and iter_jsonl must skip the fragment.
            handle.write(data[:max(1, len(data) // 2)])
            handle.flush()
            raise OSError(errno.ENOSPC,
                          f"injected torn append: {target}")
        handle.write(data)
        handle.flush()
        if fault == "fsync":
            # Data written but durability not promised — the caller
            # must treat the row as lost (it may or may not survive).
            raise OSError(errno.EIO, f"injected fsync failure: {target}")
        os.fsync(handle.fileno())
    return str(target)


def iter_jsonl(path: Union[str, Path],
               strict: bool = False) -> Iterator[Tuple[int, dict]]:
    """Yield ``(line_number, row)`` for every parseable JSON-object row
    of an append-only log written via :func:`append_line`.

    The crash-safety contract of durable appends is "at most the final
    line tears", so readers must treat an unparseable line as damage to
    skip, not an error: a replayed journal loses at most the row that
    was being written when the process died.  Blank lines and rows that
    are not JSON objects are skipped the same way, with a warning when
    it is more than the contractual torn final line.

    An *unreadable* file is different: the data may be fine and merely
    inaccessible right now, so treating it as empty would silently
    discard the whole log (and let a writer re-issue identities the
    log already assigned).  By default that skips with a warning;
    ``strict`` re-raises the ``OSError`` so the caller can refuse to
    proceed — what a durable journal's replay must do.
    """
    target = Path(path)
    if not target.exists():
        return
    try:
        text = target.read_text()
    except OSError as exc:
        if strict:
            raise
        warnings.warn(f"iter_jsonl: unreadable log {target}: {exc}; "
                      f"treating as empty", RuntimeWarning, stacklevel=2)
        return
    lines = text.splitlines()
    skipped = 0
    for number, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            row = json.loads(line)
        except ValueError:
            if number < len(lines):
                skipped += 1  # mid-file damage, beyond the contract
            continue
        if isinstance(row, dict):
            yield number, row
        elif number < len(lines):
            skipped += 1  # valid JSON but not a row object: damage too
    if skipped:
        warnings.warn(f"iter_jsonl: skipped {skipped} corrupt mid-file "
                      f"row(s) in {target}", RuntimeWarning, stacklevel=2)
