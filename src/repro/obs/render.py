"""Text rendering for the flight recorder's operator surfaces.

Two views, both plain text over the daemon's existing JSON/metrics
endpoints (no curses, no color — pipe-friendly, diff-friendly):

* :func:`render_waterfall` — ``res trace <job-id>``: one trace's spans
  as an indented waterfall.  Indentation is the span tree (attempt
  spans under the root job span, drive phases under their attempt);
  the bar gutter shows each span's extent within the trace window.
* :func:`render_top` — ``res top``: a fleet-wide dashboard line per
  node (queue depth, in-flight, worker health, warm-hit rate) plus
  totals and the busiest buckets.

:func:`parse_metrics` is the shared scraper: the unlabeled samples of
a ``/metrics`` exposition as a name→float dict, which both ``res top``
and the fleet-aggregating ``res status`` consume.
"""

from __future__ import annotations

from typing import Dict, List, Optional

#: width of the waterfall bar gutter, in characters
_BAR_WIDTH = 32


def parse_metrics(text: str) -> Dict[str, float]:
    """The unlabeled samples of a Prometheus text exposition.

    Labeled samples (quantiles, per-phase latencies) are skipped — the
    aggregating callers sum counters and gauges, and summaries do not
    sum.  Unparseable lines are skipped, not fatal: a half-written
    scrape should degrade a dashboard, never crash it.
    """
    out: Dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#") or "{" in line:
            continue
        name, __, value = line.partition(" ")
        try:
            out[name] = float(value)
        except ValueError:
            continue
    return out


def _span_children(spans: List[dict]) -> Dict[Optional[str], List[dict]]:
    """Parent span id → children, each list in (start, name) order."""
    ids = {span.get("span") for span in spans}
    children: Dict[Optional[str], List[dict]] = {}
    for span in spans:
        parent = span.get("parent")
        if parent is not None and parent not in ids:
            parent = None  # orphan: surface at top level, don't hide it
        children.setdefault(parent, []).append(span)
    for siblings in children.values():
        siblings.sort(key=lambda s: (s.get("start", 0.0),
                                     s.get("name", "")))
    return children


def _bar(offset: float, duration: float, window: float) -> str:
    """The span's extent inside the trace window, as a gutter string."""
    if window <= 0:
        return "#" + " " * (_BAR_WIDTH - 1)
    lo = int(_BAR_WIDTH * (offset / window))
    hi = int(_BAR_WIDTH * ((offset + duration) / window))
    lo = max(0, min(_BAR_WIDTH - 1, lo))
    hi = max(lo + 1, min(_BAR_WIDTH, hi))
    return " " * lo + "#" * (hi - lo) + " " * (_BAR_WIDTH - hi)


def _attrs_text(attrs: Optional[dict]) -> str:
    if not attrs:
        return ""
    parts = [f"{key}={attrs[key]}" for key in sorted(attrs)]
    return "  " + " ".join(parts)


def render_waterfall(payload: dict) -> str:
    """One trace as an indented waterfall (see the module docstring).

    ``payload`` is the ``GET /trace/<id>`` answer: ``{"trace_id",
    "spans", "job_id"?, "state"?}``.  Span *durations* are the
    measured truth; the drive-phase bars are laid out sequentially
    from the attempt's claim time, so their x-positions are an
    ordering aid, not wall-clock alignment.
    """
    spans = list(payload.get("spans") or [])
    header = f"trace {payload.get('trace_id', '?')}"
    if payload.get("job_id"):
        header += (f"  job {payload['job_id']}"
                   f"  state={payload.get('state', '?')}")
    if not spans:
        return header + "\n  (no spans recorded)\n"
    origin = min(span.get("start", 0.0) for span in spans)
    end = max(span.get("start", 0.0) + span.get("dur", 0.0)
              for span in spans)
    window = end - origin
    children = _span_children(spans)
    name_width = max(
        (2 * depth + len(str(span.get("name", "")))
         for depth, span in _walk(children)),
        default=4)
    lines = [header,
             f"  {len(spans)} span(s) over {window * 1000:.1f} ms"]
    for depth, span in _walk(children):
        label = "  " * depth + str(span.get("name", "?"))
        offset = span.get("start", 0.0) - origin
        duration = span.get("dur", 0.0)
        lines.append(
            f"  {label:<{name_width}}  "
            f"[{_bar(offset, duration, window)}] "
            f"+{offset * 1000:9.1f}ms "
            f"{duration * 1000:9.1f}ms  "
            f"{span.get('node', '') or '-':<8}"
            f"{_attrs_text(span.get('attrs'))}")
    return "\n".join(lines) + "\n"


def _walk(children: Dict[Optional[str], List[dict]]):
    """Depth-first (depth, span) pairs over the span tree."""
    stack = [(0, span) for span in reversed(children.get(None, []))]
    while stack:
        depth, span = stack.pop()
        yield depth, span
        for child in reversed(children.get(span.get("span"), [])):
            stack.append((depth + 1, child))


def render_top(rows: List[dict], bucket_limit: int = 8) -> str:
    """The fleet dashboard: one line per node, totals, busiest buckets.

    Each row is ``{"url", "health": <healthz|None>, "metrics":
    <parsed dict|None>, "buckets": <payload|None>, "error"?: str}`` —
    an unreachable node renders as a labeled error line, never a
    missing one (a dashboard that silently drops a dead node is worse
    than no dashboard).
    """
    head = (f"{'node':<14} {'state':<9} {'queue':>6} {'infl':>5} "
            f"{'workers':>8} {'warm%':>6} {'rps':>7} {'quar':>5}  url")
    lines = [head, "-" * len(head)]
    totals = {"queue": 0, "infl": 0, "alive": 0, "workers": 0,
              "verdicts": 0.0, "warm": 0.0, "quar": 0}
    bucket_counts: Dict[str, int] = {}
    for row in rows:
        url = row.get("url", "?")
        health = row.get("health")
        metrics = row.get("metrics")
        if health is None or metrics is None:
            lines.append(f"{'?':<14} {'DOWN':<9} "
                         f"{row.get('error', 'unreachable')}  ({url})")
            continue
        name = health.get("node_id") or "node"
        queue = int(health.get("queue_depth", 0))
        infl = int(health.get("in_flight", 0))
        alive = int(health.get("workers_alive", 0))
        workers = int(health.get("workers", 0))
        verdicts = metrics.get("res_intake_verdicts_total", 0.0)
        warm = metrics.get("res_intake_warm_hits_total", 0.0)
        rate = metrics.get("res_intake_verdicts_per_second", 0.0)
        quar = int(health.get("quarantined", 0))
        warm_pct = 100.0 * warm / verdicts if verdicts else 0.0
        lines.append(
            f"{name:<14} {health.get('status', '?'):<9} {queue:>6} "
            f"{infl:>5} {alive:>4}/{workers:<3} {warm_pct:>5.1f}% "
            f"{rate:>7.2f} {quar:>5}  {url}")
        totals["queue"] += queue
        totals["infl"] += infl
        totals["alive"] += alive
        totals["workers"] += workers
        totals["verdicts"] += verdicts
        totals["warm"] += warm
        totals["quar"] += quar
        for signature, reports in (row.get("buckets") or {}).get(
                "buckets", {}).items():
            bucket_counts[signature] = (bucket_counts.get(signature, 0)
                                        + len(reports))
    warm_pct = (100.0 * totals["warm"] / totals["verdicts"]
                if totals["verdicts"] else 0.0)
    lines.append("-" * len(head))
    lines.append(
        f"{'TOTAL':<14} {'':<9} {totals['queue']:>6} "
        f"{totals['infl']:>5} {totals['alive']:>4}/"
        f"{totals['workers']:<3} {warm_pct:>5.1f}% {'':>7} "
        f"{totals['quar']:>5}  {len(rows)} node(s), "
        f"{int(totals['verdicts'])} verdict(s)")
    if bucket_counts:
        lines.append("")
        lines.append(f"top buckets (by settled reports, "
                     f"limit {bucket_limit}):")
        ranked = sorted(bucket_counts.items(),
                        key=lambda item: (-item[1], item[0]))
        for signature, count in ranked[:bucket_limit]:
            lines.append(f"  {count:>5}  {signature}")
        if len(ranked) > bucket_limit:
            lines.append(f"  ... {len(ranked) - bucket_limit} more")
    return "\n".join(lines) + "\n"
