"""Flight recorder: zero-dependency tracing for the triage fleet.

The daemon answers *what* happened (verdicts, counters); this module
answers *where the time went*.  Every sampled job carries one trace id
from ``res submit`` through admission, queue wait, worker claim, the
drive's internal phases, to settle — across the workerpool pipe, across
fleet 307 redirects (the :data:`TRACE_HEADER` HTTP header), and across
SIGKILL (the trace id rides the job journal, and span ids are
*deterministic*, so a replayed attempt re-emits the same span rather
than a duplicate).

Design constraints, in order (same contract as ``repro.faultinject``):

* **Zero cost when sampling is off.**  Every instrumented call site
  does one module-global check (:func:`active` returning ``None``) and
  nothing else.  The environment is read once, lazily, on the first
  call; a daemon that never sets ``RES_TRACE_SAMPLE`` pays one global
  read per site.
* **Deterministic identity.**  A span's id is a hash of
  ``(trace id, span name, qualifier)`` — no RNG, no clock, no process
  state.  Two processes (or two lives of one process, either side of a
  SIGKILL) that emit "the same" span produce the same id, so readers
  dedup by id instead of guessing.
* **Bounded on disk.**  Spans land in a per-node JSONL ring
  (:class:`SpanRing`) with journal-style rotation *plus* segment
  pruning: the ring keeps at most ``max_segments`` closed segments and
  deletes the oldest, so tracing a long-lived daemon costs a fixed
  disk budget, not an unbounded log.

The span model (one JSON object per line)::

    {"trace": <trace id>, "span": <16-hex id>, "parent": <id|null>,
     "name": "attempt-1", "start": <epoch s>, "dur": <s>,
     "node": "n1", "attrs": {...}}

Span names within one job's trace: the root ``job`` span
(submit → settle), ``admit`` / ``redirect`` / ``dedup`` for intake,
``queue-N`` (wait before claim N), ``attempt-N`` (claim N → settle),
and the drive phases as children of their attempt: ``compile-N``,
``enumerate-N``, ``execute-N``, ``replay-N``, ``bucket-N``, or
``warm-hit-N`` when the result cache short-circuited the drive.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
import uuid
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterator, List, Optional

#: environment variable holding the sampling rate — a float in
#: ``[0, 1]``; unset, empty, or 0 disables tracing entirely
SAMPLE_ENV = "RES_TRACE_SAMPLE"

#: HTTP header that carries the trace id across fleet hops (client
#: submit, 307 re-POSTs, peer trace stitching)
TRACE_HEADER = "X-Res-Trace"


def new_trace_id() -> str:
    """A fresh trace id for one logical submission (the client mints
    it once and reuses it across 307 re-POSTs and submit retries, so
    every hop of one report correlates)."""
    return uuid.uuid4().hex


def span_id(trace_id: str, name: str, qualifier: str = "") -> str:
    """Deterministic span identity: hash of (trace, name, qualifier).

    No RNG and no clock on purpose — a SIGKILL'd daemon whose journal
    replay re-runs a job emits the *same* span ids the first life did,
    so the ring converges instead of accumulating orphan duplicates.
    ``qualifier`` disambiguates same-named spans from different fleet
    nodes (e.g. the redirect span of each non-owner hop).
    """
    raw = f"{trace_id}:{name}:{qualifier}".encode()
    return hashlib.sha256(raw).hexdigest()[:16]


def make_span(trace_id: str, name: str, start: float, duration: float,
              parent: Optional[str] = None, node: str = "",
              attrs: Optional[dict] = None,
              qualifier: str = "") -> dict:
    """One finished span, ready for the ring (plain JSON types only —
    spans also cross the workerpool pickle pipe)."""
    span = {
        "trace": trace_id,
        "span": span_id(trace_id, name, qualifier),
        "parent": parent,
        "name": name,
        "start": round(float(start), 6),
        "dur": round(max(0.0, float(duration)), 6),
        "node": node,
    }
    if attrs:
        span["attrs"] = attrs
    return span


class Tracer:
    """One activated sampling decision.

    Sampling is per *trace*, not per span: a deterministic hash draw on
    the trace id against ``rate``, so every node and every worker of a
    fleet agrees on whether a given submission is traced without any
    coordination — the id itself is the coin flip.
    """

    def __init__(self, rate: float = 1.0):
        self.rate = max(0.0, min(1.0, float(rate)))

    def sampled(self, trace_id: Optional[str]) -> bool:
        if not trace_id or self.rate <= 0.0:
            return False
        if self.rate >= 1.0:
            return True
        digest = hashlib.sha256(trace_id.encode()).digest()
        draw = int.from_bytes(digest[:8], "big") / 2.0 ** 64
        return draw < self.rate


class SpanRing:
    """Bounded per-node JSONL span sink.

    Rotation mirrors the job journal (active file rotated to a closed
    ``.seg-NNNNNN`` above ``rotate_bytes``) with one extra rule the
    journal must not have: segments beyond ``max_segments`` are
    *deleted*, oldest first.  The journal is a durability record; the
    ring is telemetry — losing the oldest spans is the design, losing
    an acknowledged job never is.  Appends are best-effort and
    swallow ``OSError`` for the same reason: tracing must never be a
    failure source for the daemon.
    """

    def __init__(self, path, rotate_bytes: int = 1 << 20,
                 max_segments: int = 8):
        self.path = Path(path)
        self.rotate_bytes = int(rotate_bytes)
        self.max_segments = max(1, int(max_segments))
        self._lock = threading.Lock()

    def append(self, spans: List[dict]) -> None:
        """Append finished spans (one JSON line each).  No fsync on
        purpose — a SIGKILL may tear the final line, and replay's
        deterministic span ids re-emit whatever the tear lost."""
        if not spans:
            return
        text = "".join(json.dumps(span, sort_keys=True) + "\n"
                       for span in spans)
        with self._lock:
            try:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                with open(self.path, "a", encoding="utf-8") as handle:
                    handle.write(text)
            except OSError:
                return
            self._maybe_rotate_locked()

    def segment_paths(self) -> List[Path]:
        """Closed segments, oldest first."""
        return sorted(self.path.parent.glob(self.path.name + ".seg-*"))

    def _maybe_rotate_locked(self) -> None:
        if self.rotate_bytes <= 0:
            return
        try:
            if self.path.stat().st_size < self.rotate_bytes:
                return
        except OSError:
            return
        segments = self.segment_paths()
        generation = 1
        if segments:
            tail = segments[-1].name.rsplit("-", 1)[-1]
            generation = (int(tail) + 1 if tail.isdigit()
                          else len(segments) + 1)
        segment = self.path.with_name(
            f"{self.path.name}.seg-{generation:06d}")
        try:
            os.replace(self.path, segment)
        except OSError:
            return
        segments.append(segment)
        while len(segments) > self.max_segments:
            try:
                segments.pop(0).unlink()
            except OSError:
                break

    def read(self, trace_id: Optional[str] = None) -> List[dict]:
        """Every span in the ring, oldest segment first, optionally
        filtered to one trace.  Duplicate span ids keep the *last*
        write — a journal replay legitimately re-emits a span under
        the same deterministic id, and the re-emission is the truth
        of the attempt that actually settled."""
        by_id: Dict[str, dict] = {}
        for path in self.segment_paths() + [self.path]:
            try:
                with open(path, encoding="utf-8") as handle:
                    lines = handle.readlines()
            except OSError:
                continue
            for line in lines:
                line = line.strip()
                if not line:
                    continue
                try:
                    span = json.loads(line)
                except ValueError:
                    continue  # torn final line: the SIGKILL contract
                if not isinstance(span, dict):
                    continue
                if trace_id is not None and span.get("trace") != trace_id:
                    continue
                sid = span.get("span")
                if isinstance(sid, str):
                    by_id[sid] = span
        return sorted(by_id.values(),
                      key=lambda s: (s.get("start") or 0.0,
                                     s.get("name") or ""))


# ---------------------------------------------------------------------------
# Activation (module-global; one check per instrumented call)
# ---------------------------------------------------------------------------

_UNRESOLVED = object()
_tracer: object = _UNRESOLVED
_tracer_lock = threading.Lock()


def _from_env() -> Optional[Tracer]:
    raw = os.environ.get(SAMPLE_ENV)
    if not raw:
        return None
    try:
        rate = float(raw)
    except ValueError:
        return None
    return Tracer(rate) if rate > 0.0 else None


def active() -> Optional[Tracer]:
    """The process's tracer, or None.  The environment is resolved
    once, on first call — after that this is a single global read, the
    entire sampling-off cost at every instrumented site."""
    global _tracer
    if _tracer is _UNRESOLVED:
        with _tracer_lock:
            if _tracer is _UNRESOLVED:
                _tracer = _from_env()
    return _tracer  # type: ignore[return-value]


def enabled() -> bool:
    return active() is not None


def activate(rate: float = 1.0) -> Tracer:
    """Programmatic activation (tests).  Replaces any current tracer;
    forked workers inherit the resolved state through the fork."""
    global _tracer
    tracer = Tracer(rate)
    with _tracer_lock:
        _tracer = tracer
    return tracer


def deactivate() -> None:
    global _tracer
    with _tracer_lock:
        _tracer = None


@contextmanager
def sampling(rate: float = 1.0) -> Iterator[Tracer]:
    """``with sampling() as tracer:`` — activate for the block only."""
    tracer = activate(rate)
    try:
        yield tracer
    finally:
        deactivate()


def now() -> float:
    return time.time()
