"""Tracing, per-phase profiling, and the operator surface (PR 10).

``repro.obs.core`` is the flight recorder (trace ids, deterministic
span ids, the bounded per-node span ring, and the zero-cost-when-off
sampling gate); ``repro.obs.render`` turns trace payloads and fleet
snapshots into the ``res trace`` waterfall and the ``res top``
dashboard.
"""

from repro.obs.core import (  # noqa: F401
    SAMPLE_ENV,
    TRACE_HEADER,
    SpanRing,
    Tracer,
    activate,
    active,
    deactivate,
    enabled,
    make_span,
    new_trace_id,
    sampling,
    span_id,
)
