"""Symbolic memory: an expression overlay above a concrete base image.

Used in two roles:

* by the forward symbolic VM (baseline), where the base is the
  program's initial memory, and
* by RES snapshots, where the base is the coredump and the overlay
  holds reconstructed pre-state expressions.

When the base image is *partial* (a minidump, §1), a ``known``
predicate marks which addresses the base actually contains; reads of
unknown words materialize a fresh, unconstrained symbolic value that is
memoized so every later read observes the same unknown.

The overlay is a persistent chain of layers: ``copy()`` (the RES
``child()`` hot path) creates an empty layer over the parent instead of
duplicating the whole overlay, so deriving a child snapshot is O(1) and
writes are copy-on-write by construction.  A child's writes land in its
own layer and are invisible to the parent and to sibling copies.  Reads
walk the chain parent-ward; chains are flattened once they grow deeper
than ``_MAX_CHAIN`` so the walk stays O(1) amortized.

The one parent-side mutation — memoizing a minidump unknown — is safe
under sharing because the materialized symbol's name is a pure function
of the address: every layer that materializes it produces the same
``Sym``.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, Optional, Tuple

from repro.symex.expr import Const, Expr, Sym

#: longest layer chain tolerated before ``copy`` flattens it
_MAX_CHAIN = 12


class SymMemory:
    """Word-addressed map ``addr → Expr`` over a concrete base."""

    def __init__(self, base: Optional[Callable[[int], int]] = None,
                 known: Optional[Callable[[int], bool]] = None):
        self._local: Dict[int, Expr] = {}
        self._parent: Optional["SymMemory"] = None
        self._depth = 0
        self._base = base
        self._known = known

    @property
    def overlay(self) -> Dict[int, Expr]:
        """Merged view of the whole layer chain (local layer wins)."""
        if self._parent is None:
            return self._local
        merged = dict(self._parent.overlay)
        merged.update(self._local)
        return merged

    def read(self, addr: int) -> Expr:
        node: Optional[SymMemory] = self
        while node is not None:
            value = node._local.get(addr)
            if value is not None:
                return value
            node = node._parent
        if self._base is not None:
            if self._known is None or self._known(addr):
                return Const(self._base(addr))
            # Partial base (minidump): the word was never captured.
            unknown = Sym(f"md_{addr:x}")
            self._local[addr] = unknown
            return unknown
        return Const(0)

    def base_known(self, addr: int) -> bool:
        """Whether the base image actually holds this word."""
        return self._known is None or self._known(addr)

    def has_overlay(self, addr: int) -> bool:
        node: Optional[SymMemory] = self
        while node is not None:
            if addr in node._local:
                return True
            node = node._parent
        return False

    def write(self, addr: int, value: Expr) -> None:
        self._local[addr] = value

    def items(self) -> Iterator[Tuple[int, Expr]]:
        return iter(self.overlay.items())

    def __len__(self) -> int:
        return len(self.overlay)

    def copy(self, cow: bool = True) -> "SymMemory":
        clone = SymMemory(self._base, self._known)
        if cow and self._depth < _MAX_CHAIN:
            clone._parent = self
            clone._depth = self._depth + 1
        else:
            clone._local = dict(self.overlay)
        return clone
