"""Symbolic memory: an expression overlay above a concrete base image.

Used in two roles:

* by the forward symbolic VM (baseline), where the base is the
  program's initial memory, and
* by RES snapshots, where the base is the coredump and the overlay
  holds reconstructed pre-state expressions.

When the base image is *partial* (a minidump, §1), a ``known``
predicate marks which addresses the base actually contains; reads of
unknown words materialize a fresh, unconstrained symbolic value that is
memoized so every later read observes the same unknown.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, Optional, Tuple

from repro.symex.expr import Const, Expr, Sym


class SymMemory:
    """Word-addressed map ``addr → Expr`` over a concrete base."""

    def __init__(self, base: Optional[Callable[[int], int]] = None,
                 known: Optional[Callable[[int], bool]] = None):
        self.overlay: Dict[int, Expr] = {}
        self._base = base
        self._known = known

    def read(self, addr: int) -> Expr:
        if addr in self.overlay:
            return self.overlay[addr]
        if self._base is not None:
            if self._known is None or self._known(addr):
                return Const(self._base(addr))
            # Partial base (minidump): the word was never captured.
            unknown = Sym(f"md_{addr:x}")
            self.overlay[addr] = unknown
            return unknown
        return Const(0)

    def base_known(self, addr: int) -> bool:
        """Whether the base image actually holds this word."""
        return self._known is None or self._known(addr)

    def has_overlay(self, addr: int) -> bool:
        return addr in self.overlay

    def write(self, addr: int, value: Expr) -> None:
        self.overlay[addr] = value

    def items(self) -> Iterator[Tuple[int, Expr]]:
        return iter(self.overlay.items())

    def copy(self) -> "SymMemory":
        clone = SymMemory(self._base, self._known)
        clone.overlay = dict(self.overlay)
        return clone
