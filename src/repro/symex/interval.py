"""Unsigned interval sets over the 64-bit word domain.

The solver's domain representation: a sorted list of disjoint inclusive
``[lo, hi]`` ranges.  Signed comparisons and modular shifts both map to
at most two unsigned ranges, so the representation stays exact for
every constraint pattern the solver propagates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.ir.instructions import WORD_MASK, to_signed, to_unsigned

SIGN_BIT = 1 << 63


@dataclass(frozen=True)
class IntSet:
    """Immutable union of disjoint inclusive unsigned ranges."""

    ranges: Tuple[Tuple[int, int], ...]

    # -- constructors ------------------------------------------------------

    @staticmethod
    def full() -> "IntSet":
        return IntSet(((0, WORD_MASK),))

    @staticmethod
    def empty() -> "IntSet":
        return IntSet(())

    @staticmethod
    def of(lo: int, hi: int) -> "IntSet":
        """Range [lo, hi]; empty when lo > hi."""
        if lo > hi:
            return IntSet.empty()
        return IntSet(((max(0, lo), min(WORD_MASK, hi)),))

    @staticmethod
    def point(value: int) -> "IntSet":
        value = to_unsigned(value)
        return IntSet(((value, value),))

    @staticmethod
    def from_ranges(ranges: Iterable[Tuple[int, int]]) -> "IntSet":
        """Normalize arbitrary ranges: clip, sort, merge."""
        clipped = [(max(0, lo), min(WORD_MASK, hi)) for lo, hi in ranges if lo <= hi]
        clipped.sort()
        merged: List[Tuple[int, int]] = []
        for lo, hi in clipped:
            if merged and lo <= merged[-1][1] + 1:
                merged[-1] = (merged[-1][0], max(merged[-1][1], hi))
            else:
                merged.append((lo, hi))
        return IntSet(tuple(merged))

    # -- predicates ---------------------------------------------------------

    def is_empty(self) -> bool:
        return not self.ranges

    def is_full(self) -> bool:
        return self.ranges == ((0, WORD_MASK),)

    def __contains__(self, value: int) -> bool:
        value = to_unsigned(value)
        return any(lo <= value <= hi for lo, hi in self.ranges)

    def size(self) -> int:
        return sum(hi - lo + 1 for lo, hi in self.ranges)

    def min(self) -> Optional[int]:
        return self.ranges[0][0] if self.ranges else None

    def max(self) -> Optional[int]:
        return self.ranges[-1][1] if self.ranges else None

    # -- set algebra ---------------------------------------------------------

    def intersect(self, other: "IntSet") -> "IntSet":
        out: List[Tuple[int, int]] = []
        i = j = 0
        a, b = self.ranges, other.ranges
        while i < len(a) and j < len(b):
            lo = max(a[i][0], b[j][0])
            hi = min(a[i][1], b[j][1])
            if lo <= hi:
                out.append((lo, hi))
            if a[i][1] < b[j][1]:
                i += 1
            else:
                j += 1
        return IntSet(tuple(out))

    def union(self, other: "IntSet") -> "IntSet":
        return IntSet.from_ranges(list(self.ranges) + list(other.ranges))

    def remove_point(self, value: int) -> "IntSet":
        value = to_unsigned(value)
        out: List[Tuple[int, int]] = []
        for lo, hi in self.ranges:
            if lo <= value <= hi:
                if lo <= value - 1:
                    out.append((lo, value - 1))
                if value + 1 <= hi:
                    out.append((value + 1, hi))
            else:
                out.append((lo, hi))
        return IntSet(tuple(out))

    def shift(self, delta: int) -> "IntSet":
        """Exact image under ``x → (x + delta) mod 2^64`` (may split ranges)."""
        delta = to_unsigned(delta)
        if delta == 0:
            return self
        pieces: List[Tuple[int, int]] = []
        for lo, hi in self.ranges:
            nlo = (lo + delta) & WORD_MASK
            nhi = (hi + delta) & WORD_MASK
            if nlo <= nhi:
                pieces.append((nlo, nhi))
            else:  # wrapped around the top of the domain
                pieces.append((nlo, WORD_MASK))
                pieces.append((0, nhi))
        return IntSet.from_ranges(pieces)

    # -- iteration -----------------------------------------------------------

    def iter_values(self, limit: Optional[int] = None) -> Iterator[int]:
        emitted = 0
        for lo, hi in self.ranges:
            for value in range(lo, hi + 1):
                if limit is not None and emitted >= limit:
                    return
                yield value
                emitted += 1

    def sample(self) -> Optional[int]:
        return self.min()

    def __repr__(self) -> str:
        if self.is_full():
            return "IntSet(full)"
        parts = ", ".join(
            f"[{lo}]" if lo == hi else f"[{lo},{hi}]" for lo, hi in self.ranges[:8]
        )
        more = "…" if len(self.ranges) > 8 else ""
        return f"IntSet({parts}{more})"


def _bits_upper(value: int) -> int:
    """Smallest all-ones word covering ``value`` (0 → 0)."""
    return (1 << value.bit_length()) - 1


def _signed_bounds(iv: IntSet) -> Tuple[int, int]:
    """(smin, smax) of a non-empty set under signed interpretation."""
    neg = iv.intersect(IntSet.of(SIGN_BIT, WORD_MASK))
    pos = iv.intersect(IntSet.of(0, SIGN_BIT - 1))
    if neg.is_empty():
        return pos.min(), pos.max()
    if pos.is_empty():
        return to_signed(neg.min()), to_signed(neg.max())
    return to_signed(neg.min()), pos.max()


_BOOL = IntSet(((0, 1),))


def _order_truth(always: bool, never: bool) -> IntSet:
    if always:
        return IntSet.point(1)
    if never:
        return IntSet.point(0)
    return _BOOL


def cmp_truth(op: str, ia: IntSet, ib: IntSet) -> IntSet:
    """Over-approximation of the truth value of ``a <op> b`` given
    over-approximations of both operands (a subset of {0, 1})."""
    if ia.is_empty() or ib.is_empty():
        return IntSet.empty()
    if op == "eq" or op == "ne":
        if ia.intersect(ib).is_empty():
            certain: Optional[int] = 0
        elif ia.size() == 1 and ib.size() == 1:
            certain = 1
        else:
            return _BOOL
        if op == "ne":
            certain = 1 - certain
        return IntSet.point(certain)
    if op in ("ult", "ule", "ugt", "uge"):
        amin, amax = ia.min(), ia.max()
        bmin, bmax = ib.min(), ib.max()
    elif op in ("slt", "sle", "sgt", "sge"):
        amin, amax = _signed_bounds(ia)
        bmin, bmax = _signed_bounds(ib)
    else:
        raise ValueError(f"not a comparison: {op!r}")
    if op in ("ult", "slt"):
        return _order_truth(amax < bmin, amin >= bmax)
    if op in ("ule", "sle"):
        return _order_truth(amax <= bmin, amin > bmax)
    if op in ("ugt", "sgt"):
        return _order_truth(amin > bmax, amax <= bmin)
    return _order_truth(amin >= bmax, amax < bmin)


_NONNEG = IntSet(((0, SIGN_BIT - 1),))


def expr_range(expr, domain_of: Callable[[str], IntSet],
               memo: Optional[dict] = None) -> IntSet:
    """Conservative over-approximation of the values ``expr`` can take
    when each symbol ranges over ``domain_of(name)``.

    Soundness contract (property-tested against :func:`~repro.symex.\
expr.evaluate`): for every model assigning each symbol a value inside
    its domain, the evaluated result lies inside the returned set.
    ``full()`` is always a legal answer; precision is best-effort —
    exactly what the solver needs to refute residual constraints like
    ``((n & 3) + 1) > 5000`` that its enumeration cannot reach.

    ``memo`` optionally shares sub-results across calls: hash-consed
    expressions make ``id(node)`` a stable identity, so a caller whose
    domains are fixed (one solver search) can pass the same dict to
    every query and stop re-walking shared sub-DAGs.  Entries hold
    ``(node, range)`` — pinning the node keeps its id from being
    recycled while the memo lives.
    """
    from repro.symex.expr import BinExpr, Const, Sym

    if memo is None:
        memo = {}

    def walk(node) -> IntSet:
        cached = memo.get(id(node))
        if cached is not None:
            return cached[1]
        result = compute(node)
        memo[id(node)] = (node, result)
        return result

    def compute(node) -> IntSet:
        if isinstance(node, Const):
            return IntSet.point(node.value)
        if isinstance(node, Sym):
            return domain_of(node.name)
        if not isinstance(node, BinExpr):
            return IntSet.full()
        ia = walk(node.a)
        ib = walk(node.b)
        if ia.is_empty() or ib.is_empty():
            return IntSet.empty()
        op = node.op
        if op in ("eq", "ne", "ult", "ule", "ugt", "uge",
                  "slt", "sle", "sgt", "sge"):
            return cmp_truth(op, ia, ib)
        amin, amax = ia.min(), ia.max()
        bmin, bmax = ib.min(), ib.max()
        if op == "and":
            return IntSet.of(0, min(amax, bmax))
        if op == "or":
            return IntSet.of(max(amin, bmin), _bits_upper(amax | bmax))
        if op == "xor":
            return IntSet.of(0, _bits_upper(amax | bmax))
        if op == "add":
            if ib.size() == 1:
                return ia.shift(bmin)
            if ia.size() == 1:
                return ib.shift(amin)
            if amax + bmax <= WORD_MASK:
                return IntSet.of(amin + bmin, amax + bmax)
            return IntSet.full()
        if op == "sub":
            if ib.size() == 1:
                return ia.shift(-bmin)
            if amin >= bmax:
                return IntSet.of(amin - bmax, amax - bmin)
            return IntSet.full()
        if op == "mul":
            if amax * bmax <= WORD_MASK:
                return IntSet.of(amin * bmin, amax * bmax)
            return IntSet.full()
        if op == "udiv":
            if bmin > 0:
                return IntSet.of(amin // bmax, amax // bmin)
            return IntSet.full()
        if op == "urem":
            if bmin > 0:
                return IntSet.of(0, bmax - 1)
            return IntSet.full()
        if op in ("sdiv", "srem"):
            # Non-negative operands degenerate to the unsigned case.
            nonneg = amax < SIGN_BIT and bmax < SIGN_BIT
            if nonneg and bmin > 0:
                if op == "sdiv":
                    return IntSet.of(amin // bmax, amax // bmin)
                return IntSet.of(0, bmax - 1)
            return IntSet.full()
        if op == "shl":
            if bmax <= 63 and (amax << bmax) <= WORD_MASK:
                return IntSet.of(amin << bmin, amax << bmax)
            return IntSet.full()
        if op == "lshr":
            if bmax <= 63:
                return IntSet.of(amin >> bmax, amax >> bmin)
            return IntSet.full()
        if op == "ashr":
            if bmax <= 63 and amax < SIGN_BIT:
                return IntSet.of(amin >> bmax, amax >> bmin)
            return IntSet.full()
        return IntSet.full()

    return walk(expr)


def cmp_domain(op: str, bound: int) -> IntSet:
    """The set of x with ``x <op> bound`` true (all ten comparisons)."""
    c = to_unsigned(bound)
    if op == "eq":
        return IntSet.point(c)
    if op == "ne":
        return IntSet.full().remove_point(c)
    if op == "ult":
        return IntSet.of(0, c - 1) if c > 0 else IntSet.empty()
    if op == "ule":
        return IntSet.of(0, c)
    if op == "ugt":
        return IntSet.of(c + 1, WORD_MASK) if c < WORD_MASK else IntSet.empty()
    if op == "uge":
        return IntSet.of(c, WORD_MASK)
    # Signed comparisons: negative words occupy [SIGN_BIT, WORD_MASK] and
    # are ordered below the non-negative words [0, SIGN_BIT).
    if op in ("slt", "sle"):
        hi = c if op == "sle" else c - 1
        if c & SIGN_BIT:  # bound is negative
            if op == "slt" and c == SIGN_BIT:
                return IntSet.empty()
            return IntSet.of(SIGN_BIT, hi)
        # bound non-negative: all negatives, plus [0, hi] when hi ≥ 0
        negatives = IntSet.of(SIGN_BIT, WORD_MASK)
        if op == "slt" and c == 0:
            return negatives
        return negatives.union(IntSet.of(0, min(hi, SIGN_BIT - 1)))
    if op in ("sgt", "sge"):
        lo = c if op == "sge" else c + 1
        if c & SIGN_BIT:  # bound negative: rest of negatives + all non-negatives
            if op == "sgt" and c == WORD_MASK:
                return IntSet.of(0, SIGN_BIT - 1)
            return IntSet.of(lo, WORD_MASK).union(IntSet.of(0, SIGN_BIT - 1))
        if lo >= SIGN_BIT:  # bound was the largest positive; nothing is greater
            return IntSet.empty()
        return IntSet.of(lo, SIGN_BIT - 1)
    raise ValueError(f"not a comparison: {op!r}")
