"""Unsigned interval sets over the 64-bit word domain.

The solver's domain representation: a sorted list of disjoint inclusive
``[lo, hi]`` ranges.  Signed comparisons and modular shifts both map to
at most two unsigned ranges, so the representation stays exact for
every constraint pattern the solver propagates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Tuple

from repro.ir.instructions import WORD_MASK, to_unsigned

SIGN_BIT = 1 << 63


@dataclass(frozen=True)
class IntSet:
    """Immutable union of disjoint inclusive unsigned ranges."""

    ranges: Tuple[Tuple[int, int], ...]

    # -- constructors ------------------------------------------------------

    @staticmethod
    def full() -> "IntSet":
        return IntSet(((0, WORD_MASK),))

    @staticmethod
    def empty() -> "IntSet":
        return IntSet(())

    @staticmethod
    def of(lo: int, hi: int) -> "IntSet":
        """Range [lo, hi]; empty when lo > hi."""
        if lo > hi:
            return IntSet.empty()
        return IntSet(((max(0, lo), min(WORD_MASK, hi)),))

    @staticmethod
    def point(value: int) -> "IntSet":
        value = to_unsigned(value)
        return IntSet(((value, value),))

    @staticmethod
    def from_ranges(ranges: Iterable[Tuple[int, int]]) -> "IntSet":
        """Normalize arbitrary ranges: clip, sort, merge."""
        clipped = [(max(0, lo), min(WORD_MASK, hi)) for lo, hi in ranges if lo <= hi]
        clipped.sort()
        merged: List[Tuple[int, int]] = []
        for lo, hi in clipped:
            if merged and lo <= merged[-1][1] + 1:
                merged[-1] = (merged[-1][0], max(merged[-1][1], hi))
            else:
                merged.append((lo, hi))
        return IntSet(tuple(merged))

    # -- predicates ---------------------------------------------------------

    def is_empty(self) -> bool:
        return not self.ranges

    def is_full(self) -> bool:
        return self.ranges == ((0, WORD_MASK),)

    def __contains__(self, value: int) -> bool:
        value = to_unsigned(value)
        return any(lo <= value <= hi for lo, hi in self.ranges)

    def size(self) -> int:
        return sum(hi - lo + 1 for lo, hi in self.ranges)

    def min(self) -> Optional[int]:
        return self.ranges[0][0] if self.ranges else None

    def max(self) -> Optional[int]:
        return self.ranges[-1][1] if self.ranges else None

    # -- set algebra ---------------------------------------------------------

    def intersect(self, other: "IntSet") -> "IntSet":
        out: List[Tuple[int, int]] = []
        i = j = 0
        a, b = self.ranges, other.ranges
        while i < len(a) and j < len(b):
            lo = max(a[i][0], b[j][0])
            hi = min(a[i][1], b[j][1])
            if lo <= hi:
                out.append((lo, hi))
            if a[i][1] < b[j][1]:
                i += 1
            else:
                j += 1
        return IntSet(tuple(out))

    def union(self, other: "IntSet") -> "IntSet":
        return IntSet.from_ranges(list(self.ranges) + list(other.ranges))

    def remove_point(self, value: int) -> "IntSet":
        value = to_unsigned(value)
        out: List[Tuple[int, int]] = []
        for lo, hi in self.ranges:
            if lo <= value <= hi:
                if lo <= value - 1:
                    out.append((lo, value - 1))
                if value + 1 <= hi:
                    out.append((value + 1, hi))
            else:
                out.append((lo, hi))
        return IntSet(tuple(out))

    def shift(self, delta: int) -> "IntSet":
        """Exact image under ``x → (x + delta) mod 2^64`` (may split ranges)."""
        delta = to_unsigned(delta)
        if delta == 0:
            return self
        pieces: List[Tuple[int, int]] = []
        for lo, hi in self.ranges:
            nlo = (lo + delta) & WORD_MASK
            nhi = (hi + delta) & WORD_MASK
            if nlo <= nhi:
                pieces.append((nlo, nhi))
            else:  # wrapped around the top of the domain
                pieces.append((nlo, WORD_MASK))
                pieces.append((0, nhi))
        return IntSet.from_ranges(pieces)

    # -- iteration -----------------------------------------------------------

    def iter_values(self, limit: Optional[int] = None) -> Iterator[int]:
        emitted = 0
        for lo, hi in self.ranges:
            for value in range(lo, hi + 1):
                if limit is not None and emitted >= limit:
                    return
                yield value
                emitted += 1

    def sample(self) -> Optional[int]:
        return self.min()

    def __repr__(self) -> str:
        if self.is_full():
            return "IntSet(full)"
        parts = ", ".join(
            f"[{lo}]" if lo == hi else f"[{lo},{hi}]" for lo, hi in self.ranges[:8]
        )
        more = "…" if len(self.ranges) > 8 else ""
        return f"IntSet({parts}{more})"


def cmp_domain(op: str, bound: int) -> IntSet:
    """The set of x with ``x <op> bound`` true (all ten comparisons)."""
    c = to_unsigned(bound)
    if op == "eq":
        return IntSet.point(c)
    if op == "ne":
        return IntSet.full().remove_point(c)
    if op == "ult":
        return IntSet.of(0, c - 1) if c > 0 else IntSet.empty()
    if op == "ule":
        return IntSet.of(0, c)
    if op == "ugt":
        return IntSet.of(c + 1, WORD_MASK) if c < WORD_MASK else IntSet.empty()
    if op == "uge":
        return IntSet.of(c, WORD_MASK)
    # Signed comparisons: negative words occupy [SIGN_BIT, WORD_MASK] and
    # are ordered below the non-negative words [0, SIGN_BIT).
    if op in ("slt", "sle"):
        hi = c if op == "sle" else c - 1
        if c & SIGN_BIT:  # bound is negative
            if op == "slt" and c == SIGN_BIT:
                return IntSet.empty()
            return IntSet.of(SIGN_BIT, hi)
        # bound non-negative: all negatives, plus [0, hi] when hi ≥ 0
        negatives = IntSet.of(SIGN_BIT, WORD_MASK)
        if op == "slt" and c == 0:
            return negatives
        return negatives.union(IntSet.of(0, min(hi, SIGN_BIT - 1)))
    if op in ("sgt", "sge"):
        lo = c if op == "sge" else c + 1
        if c & SIGN_BIT:  # bound negative: rest of negatives + all non-negatives
            if op == "sgt" and c == WORD_MASK:
                return IntSet.of(0, SIGN_BIT - 1)
            return IntSet.of(lo, WORD_MASK).union(IntSet.of(0, SIGN_BIT - 1))
        if lo >= SIGN_BIT:  # bound was the largest positive; nothing is greater
            return IntSet.empty()
        return IntSet.of(lo, SIGN_BIT - 1)
    raise ValueError(f"not a comparison: {op!r}")
