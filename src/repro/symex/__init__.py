"""Symbolic execution substrate: expressions, intervals, solver, memory."""

from repro.symex.expr import (
    BinExpr,
    Const,
    Expr,
    Sym,
    apply_op,
    as_expr,
    bin_expr,
    evaluate,
    expr_size,
    free_syms,
    negate_bool,
    substitute,
    truth_of,
)
from repro.symex.interval import IntSet, cmp_domain
from repro.symex.memory import SymMemory
from repro.symex.solver import SolveResult, SolveStatus, Solver

__all__ = [
    "BinExpr", "Const", "Expr", "IntSet", "SolveResult", "SolveStatus",
    "Solver", "Sym", "SymMemory", "apply_op", "as_expr", "bin_expr",
    "cmp_domain", "evaluate", "expr_size", "free_syms", "negate_bool",
    "substitute", "truth_of",
]
