"""A from-scratch constraint solver for RES's compatibility checks.

The paper's prototype leans on a KLEE-style SMT solver; offline we
build our own, specialized to the constraint fragment RES generates:

* equalities binding block-computed expressions to concrete coredump
  words (``S' ⊇ S_post`` checks, §2.4),
* branch-condition comparisons from the block's terminator, and
* arithmetic chains over havocked symbols and program inputs.

Architecture: (1) rewrite + substitution propagation, (2) exact
interval-domain propagation for single-symbol comparisons, (3)
bounded backtracking search over the remaining finite domains.

Verdicts are three-valued.  ``UNSAT`` is only reported with a proof
(propagation contradiction or exhausted finite domains), so RES can
safely *prune* on UNSAT; ``UNKNOWN`` keeps a candidate alive, and the
final replay-verification step (which the paper also relies on: "any
execution suffix must match the full coredump exactly", §6) weeds out
wrong survivors.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.ir.instructions import COMPARE_OPS, WORD_MASK, to_unsigned
from repro.symex.expr import (
    BinExpr,
    Const,
    Expr,
    Sym,
    bin_expr,
    evaluate,
    evaluate_compiled,
    expr_from_obj,
    expr_size,
    expr_to_obj,
    free_syms,
    substitute,
    truth_of,
)
from repro.symex.interval import IntSet, cmp_domain, expr_range


class SolveStatus(Enum):
    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


@dataclass
class SolveResult:
    status: SolveStatus
    model: Optional[Dict[str, int]] = None
    #: search statistics, exposed for the benchmarks
    nodes_explored: int = 0

    @property
    def is_sat(self) -> bool:
        return self.status is SolveStatus.SAT

    @property
    def is_unsat(self) -> bool:
        return self.status is SolveStatus.UNSAT


def _mod_inverse(value: int) -> Optional[int]:
    """Multiplicative inverse mod 2^64 (exists iff value is odd)."""
    if value % 2 == 0:
        return None
    return pow(value, -1, 1 << 64)


@dataclass
class _State:
    """Mutable solving state: residual constraints + symbol knowledge."""

    constraints: List[Expr] = field(default_factory=list)
    bindings: Dict[str, Expr] = field(default_factory=dict)
    domains: Dict[str, IntSet] = field(default_factory=dict)
    all_syms: Set[str] = field(default_factory=set)
    #: closed binding map computed by the last search over this state;
    #: read-only once set (children use it to seed their own resolution).
    resolved_cache: Optional[Dict[str, Expr]] = None
    #: per-constraint preamble classifications from the last *completed*
    #: search preamble over this state: ``id(constraint) -> (constraint,
    #: residual_form_or_None, relevant_syms)``.  Rows are pure functions
    #: of (resolved entries, domains) restricted to ``relevant_syms``;
    #: a child search reuses a row when none of those inputs changed.
    #: The dict is replaced wholesale at commit, never mutated — clones
    #: share it by reference.
    preamble_cache: Optional[Dict[int, tuple]] = None
    #: symbols whose domain or binding changed since ``preamble_cache``
    #: was committed (propagation writes accumulate here; clones carry
    #: the set forward so chains of unsearched states stay sound).
    touched: Set[str] = field(default_factory=set)

    def domain(self, name: str) -> IntSet:
        return self.domains.get(name, IntSet.full())

    def clone(self) -> "_State":
        """O(|state|) structural copy — the containers are copied but the
        expressions inside are immutable and shared.  Far cheaper than
        re-propagating the constraints that produced the state."""
        return _State(
            constraints=list(self.constraints),
            bindings=dict(self.bindings),
            domains=dict(self.domains),
            all_syms=set(self.all_syms),
            resolved_cache=self.resolved_cache,
            preamble_cache=self.preamble_cache,
            touched=set(self.touched),
        )


@dataclass
class SolverContext:
    """Persistent solving context for one constraint prefix.

    RES's backward search grows one conjunction per node: a child's
    constraint set is its parent's plus a small delta.  A context keeps
    the *propagated* form of the prefix (bindings + interval domains
    already applied), so deciding the child costs only the delta's
    propagation plus the residual search — instead of re-asserting the
    whole suffix-deep conjunction from scratch at every candidate.
    """

    #: propagated state after asserting every constraint in ``constraints``
    state: _State
    #: the full conjunction this context represents, in assertion order
    constraints: Tuple[Expr, ...]
    #: True when propagation already proved the prefix unsatisfiable
    unsat: bool = False
    #: cache-key namespace for deltas extending this context
    token: int = 0
    #: verdict of solving exactly ``constraints`` (set by solve_extended);
    #: lets downstream consumers (suffix replay) reuse the model
    result: Optional[SolveResult] = None
    #: union of free symbols over ``constraints`` — lets a child's
    #: recheck compare models on the prefix instead of re-evaluating it
    syms: frozenset = frozenset()


class Solver:
    """Three-valued solver over 64-bit word constraints.

    Args:
        max_enum: largest finite domain the search will enumerate
            exhaustively (exhaustion ⇒ a sound UNSAT).
        max_nodes: search-node budget before giving up with UNKNOWN.
    """

    def __init__(self, max_enum: int = 4096, max_nodes: int = 200_000):
        self.max_enum = max_enum
        self.max_nodes = max_nodes
        #: verdicts of previously-decided (context, delta) conjunctions.
        #: Keyed by the context's token plus the *structural* delta set,
        #: so sibling candidates that raise identical compatibility
        #: checks against the same parent never re-solve.
        self._delta_cache: Dict[Tuple[int, frozenset], SolveResult] = {}
        self._delta_cache_cap = 65536
        #: partial models for symbol-connected residual components.
        #: A component search is a pure function of the *ordered*
        #: component constraints, its symbols' domains, and the solver
        #: caps, so identical components recurring across search nodes
        #: (the parent's residual re-surfacing in every child) are
        #: answered without re-searching.  Exact keys — never fuzzy.
        self._component_cache: Dict[tuple, SolveResult] = {}
        self._component_cache_cap = 65536
        #: interval over-approximations per (expr identity, relevant
        #: domains).  Values are ``(expr, range)`` — the pinned expr
        #: keeps the id key from being recycled.
        self._range_cache: Dict[tuple, tuple] = {}
        self._range_cache_cap = 65536
        #: point-range folding results, same key discipline as
        #: ``_range_cache`` (id + relevant domains, expr-pinning values)
        self._fold_cache: Dict[tuple, tuple] = {}
        self._next_token = itertools.count(1)
        #: counters exposed to SynthesisStats
        self.stat_calls = 0
        self.stat_cache_hits = 0
        #: diagnostic only (never folded into SynthesisStats): range
        #: queries answered from a memo instead of re-walking the tree
        self.stat_range_hits = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def solve(self, constraints: Sequence[Expr]) -> SolveResult:
        """Decide satisfiability of the conjunction of ``constraints``."""
        self.stat_calls += 1
        state = _State()
        status = self._assert_all(state, constraints)
        if status is SolveStatus.UNSAT:
            return SolveResult(SolveStatus.UNSAT)
        result = self._search(state)
        return self._recheck(result, constraints)

    def _recheck(self, result: SolveResult,
                 constraints: Sequence[Expr]) -> SolveResult:
        """SAT must be trustworthy: re-check the original constraints
        under the model and downgrade to UNKNOWN on any miss."""
        if result.is_sat and result.model is not None:
            for constraint in constraints:
                value = evaluate_compiled(truth_of(constraint), result.model)
                if value is None or value == 0:
                    return SolveResult(SolveStatus.UNKNOWN,
                                       nodes_explored=result.nodes_explored)
        return result

    def _recheck_extended(self, ctx: SolverContext, delta: Sequence[Expr],
                          result: SolveResult,
                          constraints: Sequence[Expr]) -> SolveResult:
        """Incremental form of :meth:`_recheck` for ``ctx + delta``.

        The parent's SAT result already passed a recheck of exactly
        ``ctx.constraints`` under its model.  If the new model assigns
        every prefix symbol the same value, each prefix constraint
        evaluates identically and only the delta needs re-evaluation;
        any difference (or no verified parent) falls back to the full
        recheck.
        """
        if not result.is_sat or result.model is None:
            return result
        prev = ctx.result
        if prev is None or not prev.is_sat or prev.model is None:
            return self._recheck(result, constraints)
        model, parent_model = result.model, prev.model
        for name in ctx.syms:
            if model.get(name) != parent_model.get(name):
                return self._recheck(result, constraints)
        for constraint in delta:
            value = evaluate_compiled(truth_of(constraint), model)
            if value is None or value == 0:
                return SolveResult(SolveStatus.UNKNOWN,
                                   nodes_explored=result.nodes_explored)
        return result

    # ------------------------------------------------------------------
    # Incremental API: contexts + delta solving
    # ------------------------------------------------------------------

    def context_for(self, constraints: Sequence[Expr]) -> SolverContext:
        """Build a context by asserting ``constraints`` from scratch."""
        state = _State()
        status = self._assert_all(state, constraints)
        syms = frozenset().union(*(free_syms(c) for c in constraints)) \
            if constraints else frozenset()
        return SolverContext(state=state, constraints=tuple(constraints),
                             unsat=status is SolveStatus.UNSAT,
                             token=next(self._next_token), syms=syms)

    def extend_context(self, ctx: SolverContext,
                       delta: Sequence[Expr]) -> SolverContext:
        """Child context for ``ctx.constraints + delta``.

        Only the delta is propagated; the parent's bindings and domains
        are cloned, not recomputed — O(|state| copy + |delta| assert)
        instead of O(total conjunction)."""
        constraints = ctx.constraints + tuple(delta)
        if ctx.unsat:
            return SolverContext(state=ctx.state, constraints=constraints,
                                 unsat=True, token=next(self._next_token),
                                 syms=ctx.syms)
        if not delta:
            return SolverContext(state=ctx.state, constraints=constraints,
                                 unsat=False, token=next(self._next_token),
                                 syms=ctx.syms)
        syms = ctx.syms.union(*(free_syms(c) for c in delta))
        state = ctx.state.clone()
        state.resolved_cache = None
        status = self._assert_all(state, delta)
        return SolverContext(state=state, constraints=constraints,
                             unsat=status is SolveStatus.UNSAT,
                             token=next(self._next_token), syms=syms)

    def solve_extended(self, ctx: SolverContext, delta: Sequence[Expr],
                       want_context: bool = True
                       ) -> Tuple[SolveResult, Optional[SolverContext]]:
        """Decide ``ctx.constraints + delta`` incrementally.

        Returns the verdict plus (when ``want_context``) a child context
        for the combined conjunction, ready for further extension.
        Verdicts are cached per (context, delta-set): sibling candidates
        generating identical checks hit the cache and skip the search.
        """
        self.stat_calls += 1
        key = (ctx.token, frozenset(delta))
        cached = self._delta_cache.get(key)
        if cached is not None:
            self.stat_cache_hits += 1
            if not want_context:
                return cached, None
            child = self.extend_context(ctx, delta)
            child.result = cached
            return cached, child
        child = self.extend_context(ctx, delta)
        if child.unsat:
            result = SolveResult(SolveStatus.UNSAT)
        else:
            seed = ctx.state.resolved_cache
            result = self._recheck_extended(
                ctx, delta,
                self._search(child.state, seed, use_component_cache=True),
                child.constraints)
        if len(self._delta_cache) < self._delta_cache_cap:
            self._delta_cache[key] = result
        child.result = result
        if not want_context:
            return result, None
        return result, child

    def unique_value_extended(self, ctx: SolverContext,
                              delta: Sequence[Expr],
                              expr: Expr) -> Tuple[Optional[int], bool]:
        """Incremental form of :meth:`unique_value` over ``ctx + delta``.

        Both queries fall back to a from-scratch solve when the chained
        context cannot decide them: the incremental path must never be
        *less* able to find a model or prove uniqueness than the flat
        path, or the two engine modes concretize addresses differently
        (differential-fuzzer finding).
        """
        first, _ = self.solve_extended(ctx, tuple(delta), want_context=False)
        if not first.is_sat or first.model is None:
            if first.is_unsat:
                return None, False
            first = self.solve(list(ctx.constraints) + list(delta))
            if not first.is_sat or first.model is None:
                return None, False
        value = evaluate(expr, first.model)
        if value is None:
            return None, False
        exclusion = bin_expr("ne", expr, Const(value))
        second, _ = self.solve_extended(ctx, tuple(delta) + (exclusion,),
                                        want_context=False)
        if not second.is_sat and not second.is_unsat:
            second = self.solve(list(ctx.constraints) + list(delta)
                                + [exclusion])
        return value, second.is_unsat

    # ------------------------------------------------------------------
    # Cache export / import (warm-start priming)
    # ------------------------------------------------------------------

    def export_component_cache(self, max_rows: int = 20_000) -> dict:
        """JSON-safe snapshot of the residual-component cache.

        A component verdict is a pure function of the *ordered* component
        constraints, the relevant symbol domains, and the solver caps —
        so a snapshot taken after one search can prime a fresh solver
        (e.g. a warm triage worker) without any risk of changing
        verdicts, **provided the caps match**: the export records them
        and :meth:`import_component_cache` rejects a mismatch outright
        (a bigger-budget verdict is not the same pure function).
        """
        rows: List[list] = []
        for (constraints, domains), result in self._component_cache.items():
            try:
                row = [
                    [expr_to_obj(c) for c in constraints],
                    [[name, [list(r) for r in ranges]]
                     for name, ranges in domains],
                    [result.status.value,
                     None if result.model is None else dict(result.model),
                     result.nodes_explored],
                ]
            except (TypeError, ValueError):
                continue  # never let one odd expr poison the export
            rows.append(row)
            if len(rows) >= max_rows:
                break
        return {"caps": [self.max_enum, self.max_nodes], "rows": rows}

    def import_component_cache(self, payload: dict) -> int:
        """Prime the component cache from an exported snapshot.

        Strict by construction: snapshots from a solver with different
        caps import zero rows (their verdicts are not equivalent), and
        malformed rows are skipped, never guessed at.  Existing entries
        win over imported ones.  Returns the number of rows adopted.
        """
        if not isinstance(payload, dict) \
                or list(payload.get("caps", [])) != [self.max_enum,
                                                     self.max_nodes]:
            return 0
        adopted = 0
        for row in payload.get("rows", []):
            try:
                raw_constraints, raw_domains, raw_result = row
                key = (
                    tuple(expr_from_obj(c) for c in raw_constraints),
                    tuple((name, tuple(tuple(r) for r in ranges))
                          for name, ranges in raw_domains),
                )
                status = SolveStatus(raw_result[0])
                model = raw_result[1]
                if model is not None:
                    model = {str(k): int(v) for k, v in model.items()}
                result = SolveResult(status, model,
                                     nodes_explored=int(raw_result[2]))
            except (TypeError, ValueError, KeyError, IndexError):
                continue
            if key in self._component_cache \
                    or len(self._component_cache) >= self._component_cache_cap:
                continue
            self._component_cache[key] = result
            adopted += 1
        return adopted

    def check_sat(self, constraints: Sequence[Expr]) -> bool:
        """True unless the constraints are *provably* unsatisfiable."""
        return not self.solve(constraints).is_unsat

    def unique_value(self, constraints: Sequence[Expr],
                     expr: Expr) -> Tuple[Optional[int], bool]:
        """Evaluate ``expr`` under the constraints.

        Returns ``(value, unique)``: a feasible value (or None if even
        one model cannot be found) and whether it is provably the only
        one — the pointer-concretization query (paper §2.4 leaves
        symbolic addresses open; we resolve them this way).
        """
        first = self.solve(constraints)
        if not first.is_sat or first.model is None:
            return None, False
        value = evaluate(expr, first.model)
        if value is None:
            return None, False
        exclusion = bin_expr("ne", expr, Const(value))
        second = self.solve(list(constraints) + [exclusion])
        return value, second.is_unsat

    def feasible_values(self, constraints: Sequence[Expr], expr: Expr,
                        limit: int = 4) -> List[int]:
        """Up to ``limit`` distinct feasible values of ``expr`` (fork set)."""
        values: List[int] = []
        extra: List[Expr] = []
        for _ in range(limit):
            result = self.solve(list(constraints) + extra)
            if not result.is_sat or result.model is None:
                break
            value = evaluate(expr, result.model)
            if value is None or value in values:
                break
            values.append(value)
            extra.append(bin_expr("ne", expr, Const(value)))
        return values

    # ------------------------------------------------------------------
    # Phase 1+2: rewriting, substitution, interval propagation
    # ------------------------------------------------------------------

    def _assert_all(self, state: _State, constraints: Sequence[Expr]) -> SolveStatus:
        pending = [truth_of(c) for c in constraints]
        for constraint in pending:
            state.all_syms |= free_syms(constraint)
        while pending:
            constraint = pending.pop()
            constraint = substitute(constraint, state.bindings)
            # Binding values may themselves mention symbols that were
            # bound *later* (t1 ↦ f(t2) recorded before t2 ↦ 0), so one
            # substitution pass can re-introduce bound symbols.  Iterate
            # to a fixpoint so contradictions fold to Const(0) instead
            # of leaking a stale symbol into the domain/residual paths —
            # a leak that made the verdict depend on assertion order
            # (found by the differential fuzzer: from-scratch solves
            # returned UNKNOWN where incremental extension proved
            # UNSAT).  The cap guards against cyclic bindings, which
            # _isolate should never produce.
            for _ in range(8):
                if free_syms(constraint).isdisjoint(state.bindings.keys()):
                    break
                constraint = substitute(constraint, state.bindings)
            if isinstance(constraint, Const):
                if constraint.value == 0:
                    return SolveStatus.UNSAT
                continue
            rewritten = self._rewrite_even_mul(constraint)
            if rewritten is not None:
                pending.append(rewritten)
                continue
            binding = self._extract_binding(constraint)
            if binding is not None:
                name, expr = binding
                # Only adopt open (non-constant) bindings while they are
                # small: substituting a large open term into every other
                # constraint mentioning the symbol grows expressions
                # multiplicatively and can stall the whole solve.
                if isinstance(expr, Const) or expr_size(expr) <= 64:
                    if self._bind(state, name, expr, pending) \
                            is SolveStatus.UNSAT:
                        return SolveStatus.UNSAT
                    continue
            refinement = self._extract_domain(constraint)
            if refinement is not None:
                name, dom = refinement
                bound = state.bindings.get(name)
                if isinstance(bound, Const):
                    # Defense in depth: a refinement for an already
                    # const-bound symbol is a membership test, not a
                    # domain update (the fixpoint above should make
                    # this unreachable).
                    if bound.value not in dom:
                        return SolveStatus.UNSAT
                    continue
                new = state.domain(name).intersect(dom)
                if new.is_empty():
                    return SolveStatus.UNSAT
                state.domains[name] = new
                state.touched.add(name)
                if new.size() == 1:
                    # Domain collapsed: promote to a binding.
                    if self._bind(state, name, Const(new.min()), pending) \
                            is SolveStatus.UNSAT:
                        return SolveStatus.UNSAT
                    continue
                # Comparisons fully captured by the domain can be dropped;
                # keep eq/ne-free comparisons out of the residual set.
                continue
            state.constraints.append(constraint)
        return SolveStatus.UNKNOWN  # not yet decided

    def _bind(self, state: _State, name: str, expr: Expr,
              pending: List[Expr]) -> SolveStatus:
        if name in state.bindings:
            pending.append(bin_expr("eq", state.bindings[name], expr))
            return SolveStatus.UNKNOWN
        if isinstance(expr, Const) and expr.value not in state.domain(name):
            return SolveStatus.UNSAT
        state.bindings[name] = expr
        state.touched.add(name)
        # Re-queue every residual constraint mentioning the symbol.
        keep: List[Expr] = []
        for constraint in state.constraints:
            if name in free_syms(constraint):
                pending.append(constraint)
            else:
                keep.append(constraint)
        state.constraints = keep
        return SolveStatus.UNKNOWN

    @classmethod
    def _peel_eq(cls, constraint: Expr) -> Expr:
        """Move symbol-free operands of an equality to the constant side
        (x ∘ k == v → x == v ∘⁻¹ k for the group operations), exposing
        the symbol-bearing core to the other rewriters."""
        if not (isinstance(constraint, BinExpr) and constraint.op == "eq"):
            return constraint
        lhs, rhs = constraint.a, constraint.b
        if not isinstance(rhs, Const):
            if isinstance(lhs, Const):
                lhs, rhs = rhs, lhs
            else:
                return constraint
        while isinstance(lhs, BinExpr) and lhs.op in ("add", "sub", "xor"):
            x, y = lhs.a, lhs.b
            if not free_syms(y):
                rhs = {"add": lambda: bin_expr("sub", rhs, y),
                       "sub": lambda: bin_expr("add", rhs, y),
                       "xor": lambda: bin_expr("xor", rhs, y)}[lhs.op]()
                lhs = x
            elif not free_syms(x):
                rhs = {"add": lambda: bin_expr("sub", rhs, x),
                       "sub": lambda: bin_expr("sub", x, rhs),
                       "xor": lambda: bin_expr("xor", rhs, x)}[lhs.op]()
                lhs = y
            else:
                break
            if not isinstance(rhs, Const):
                return constraint  # peeled into a non-ground rhs: stop
        return bin_expr("eq", lhs, rhs)

    @staticmethod
    def _rewrite_even_mul(constraint: Expr) -> Optional[Expr]:
        """``X * c == v`` with even ``c`` is exactly ``X & mask == x0``.

        With c = odd * 2^k, the equation has solutions iff 2^k divides
        v, and then constrains exactly the low 64-k bits of X:
        X ≡ (v >> k) * inv(odd)  (mod 2^(64-k)).  The rewrite exposes
        that as an ``and``-with-mask equality the rest of the pipeline
        (isolation, guesses, bit-fixing) digests.
        """
        if not (isinstance(constraint, BinExpr) and constraint.op == "eq"):
            return None
        lhs, rhs = constraint.a, constraint.b
        if not isinstance(rhs, Const):
            lhs, rhs = rhs, lhs
        if not (isinstance(rhs, Const) and isinstance(lhs, BinExpr)
                and lhs.op == "mul" and isinstance(lhs.b, Const)):
            return None
        c = lhs.b.value
        if c == 0 or c % 2 == 1:
            return None  # odd multipliers invert exactly via _isolate
        k = (c & -c).bit_length() - 1
        if rhs.value % (1 << k) != 0:
            return Const(0)  # no solutions: provably false
        odd = c >> k
        modulus = 1 << (64 - k)
        x0 = ((rhs.value >> k) * pow(odd, -1, modulus)) % modulus
        return bin_expr("eq", bin_expr("and", lhs.a, Const(modulus - 1)),
                        Const(x0))

    @classmethod
    def _extract_binding(cls, constraint: Expr) -> Optional[Tuple[str, Expr]]:
        """Match ``sym == expr`` patterns the rewriter can solve exactly."""
        if not (isinstance(constraint, BinExpr) and constraint.op == "eq"):
            return None
        a, b = constraint.a, constraint.b
        # Direct sym == expr matches carry no blow-up risk beyond what
        # the constraint itself already contains.
        if isinstance(a, Sym) and a.name not in free_syms(b):
            return a.name, b
        if isinstance(b, Sym) and b.name not in free_syms(a):
            return b.name, a
        found = cls._isolate(a, b) or cls._isolate(b, a)
        if found is None:
            return None
        name, expr = found
        # Isolation *builds* the solved-for expression; adopting a large
        # open term as a binding makes every later substitution rebuild
        # it into every constraint mentioning the symbol — quadratic
        # tree growth.  Only adopt ground or tiny results.
        if isinstance(expr, Const) or expr_size(expr) <= 8:
            return found
        return None

    @classmethod
    def _isolate(cls, lhs: Expr, rhs: Expr) -> Optional[Tuple[str, Expr]]:
        """Solve ``lhs == rhs`` for one symbol, peeling invertible
        operations: add/sub/xor are group operations on 64-bit words,
        and multiplication by an odd constant has a modular inverse."""
        if isinstance(lhs, Sym):
            return (lhs.name, rhs) if lhs.name not in free_syms(rhs) else None
        if not isinstance(lhs, BinExpr):
            return None
        x, y = lhs.a, lhs.b
        if lhs.op in ("add", "sub", "xor"):
            x_syms, y_syms = free_syms(x), free_syms(y)
            if x_syms & y_syms:
                return None  # the symbol occurs on both sides of the op
            if x_syms:
                moved = {
                    "add": lambda: bin_expr("sub", rhs, y),
                    "sub": lambda: bin_expr("add", rhs, y),
                    "xor": lambda: bin_expr("xor", rhs, y),
                }[lhs.op]()
                found = cls._isolate(x, moved)
                if found is not None:
                    return found
            if y_syms:
                moved = {
                    "add": lambda: bin_expr("sub", rhs, x),
                    "sub": lambda: bin_expr("sub", x, rhs),
                    "xor": lambda: bin_expr("xor", rhs, x),
                }[lhs.op]()
                return cls._isolate(y, moved)
            return None
        if lhs.op == "mul" and isinstance(y, Const):
            inverse = _mod_inverse(y.value)
            if inverse is not None:
                return cls._isolate(x, bin_expr("mul", rhs, Const(inverse)))
        return None

    @staticmethod
    def _extract_domain(constraint: Expr) -> Optional[Tuple[str, IntSet]]:
        """Match single-symbol comparisons → exact domain refinement."""
        if not (isinstance(constraint, BinExpr) and constraint.op in COMPARE_OPS):
            return None
        a, b = constraint.a, constraint.b
        if not isinstance(b, Const):
            return None
        if isinstance(a, Sym):
            return a.name, cmp_domain(constraint.op, b.value)
        # (op (add sym c) bound): exact for every comparison via a
        # circular shift of the satisfying set.
        if isinstance(a, BinExpr) and a.op == "add" \
                and isinstance(a.a, Sym) and isinstance(a.b, Const):
            base = cmp_domain(constraint.op, b.value)
            return a.a.name, base.shift(-a.b.value)
        return None

    # ------------------------------------------------------------------
    # Phase 3: bounded search
    def _range_of(self, expr: Expr, state: _State,
                  memo: Optional[dict] = None) -> IntSet:
        """Memoized :func:`expr_range` over the state's domains.

        Two memo layers, both keyed by expr *identity* (hash-consing
        makes structurally-equal exprs the same object, so an id key is
        as good as a structural one and costs no tree walk):

        - ``memo`` — the per-search walk memo, shared across every
          range query of one :meth:`_search` call (domains are fixed
          for its duration).  Passing it into :func:`expr_range` also
          shares *sub*-expression results between queries, so a
          sub-DAG common to two constraints is walked once.
        - ``self._range_cache`` — persistent across searches, keyed by
          (id, relevant domains); covers the naive engine re-solving
          suffix-deep conjunctions whose constraints recur verbatim.
        """
        if memo is not None:
            hit = memo.get(id(expr))
            if hit is not None:
                self.stat_range_hits += 1
                return hit[1]
        key = (id(expr), tuple(sorted(
            (name, state.domain(name).ranges)
            for name in free_syms(expr))))
        cached = self._range_cache.get(key)
        if cached is not None:
            self.stat_range_hits += 1
            result = cached[1]
            if memo is not None:
                memo[id(expr)] = (expr, result)
            return result
        result = expr_range(expr, state.domain, memo=memo)
        if len(self._range_cache) < self._range_cache_cap:
            self._range_cache[key] = (expr, result)
        return result

    def _fold_point_ranges(self, expr: Expr, state: _State,
                           memo: Optional[dict] = None) -> Expr:
        """Replace subexpressions whose interval image under the current
        domains is a single value with that constant.

        Sound by the conservatism of :func:`expr_range`: an
        over-approximation containing exactly one value means the
        subexpression evaluates to it under *every* model of the
        domains.  This closes an assertion-order hole the differential
        fuzzer found (seed 11870): a symbol bound early to an open
        boolean term — ``t1 ↦ (ne t2 0)`` with ``t2 ≠ 0`` already
        known — keeps a second symbol alive inside a residual that is
        really single-symbol, blocking the exact bit-fixing layer; the
        incremental chain, which happened to assert ``t1 == 1`` first,
        proved SAT where the from-scratch solve stayed UNKNOWN.
        """
        if not free_syms(expr):
            return expr
        if memo is not None:
            # Per-search fold memo (separate key space from the range
            # memo: values are folded *exprs*, not ranges).  Shared
            # sub-DAGs across a search's residual constraints fold once.
            hit = memo.get(("fold", id(expr)))
            if hit is not None:
                return hit[1]
        key = (id(expr), tuple(sorted(
            (name, state.domain(name).ranges)
            for name in free_syms(expr))))
        cached = self._fold_cache.get(key)
        if cached is not None:
            self.stat_range_hits += 1
            result = cached[1]
            if memo is not None:
                memo[("fold", id(expr))] = (expr, result)
            return result
        image = self._range_of(expr, state, memo)
        if image.size() == 1:
            result = Const(image.min())
        elif isinstance(expr, BinExpr):
            a = self._fold_point_ranges(expr.a, state, memo)
            b = self._fold_point_ranges(expr.b, state, memo)
            if a is not expr.a or b is not expr.b:
                result = bin_expr(expr.op, a, b)
            else:
                result = expr
        else:
            result = expr
        if memo is not None:
            memo[("fold", id(expr))] = (expr, result)
        if len(self._fold_cache) < self._range_cache_cap:
            self._fold_cache[key] = (expr, result)
        return result

    # ------------------------------------------------------------------

    def _search(self, state: _State,
                resolved_seed: Optional[Dict[str, Expr]] = None,
                use_component_cache: bool = False) -> SolveResult:
        # Bindings may map symbols to expressions over *other* symbols
        # (x == y + 1 binds x to an open term), so residual constraints
        # can still mention bound symbols after one substitution pass.
        # Resolve the binding map once, in dependency order and with a
        # size cap (deep chains grow multiplicatively), then substitute
        # each constraint a single time.  A residual the search never
        # grounds would otherwise read as an exhausted (empty) search
        # space and produce a false UNSAT.
        resolved = self._resolve_bindings(state.bindings, seed=resolved_seed)
        # Walk memo for every range query of this search: domains are
        # fixed until the residual is collected, so one memo serves all
        # constraints (and their shared sub-DAGs).
        range_memo: dict = {}
        # Incremental preamble: a parent search already classified most
        # of these constraints (dropped / residual form) under the same
        # resolved entries and domains.  A cached row is reusable when
        # none of its relevant symbols changed — ``state.touched``
        # tracks domain/binding writes since the cache was committed,
        # and the resolved map is diffed against the seed (identical
        # entries are carried by reference, so ``is`` is exact).  The
        # naive path (``solve()``/fresh states) never has a cache and is
        # untouched — it stays the independent oracle.
        cache = state.preamble_cache
        affected: Optional[Set[str]] = None
        if cache is not None and resolved_seed is not None:
            affected = set(state.touched)
            for name, expr in resolved.items():
                if resolved_seed.get(name) is not expr:
                    affected.add(name)
            for name in resolved_seed:
                if name not in resolved:
                    affected.add(name)
        # A symbol can acquire a domain refinement (x ≠ 0) and *then* an
        # open binding (x ↦ f(y)); the domain knowledge is not folded
        # into the binding at assert time, so once the binding resolves
        # it must be checked against the domain or the contradiction is
        # silently dropped (another order-dependent UNKNOWN the
        # differential fuzzer surfaced).  Iterate the (small) domain
        # map, not the (large) binding map — and with a valid preamble
        # cache, only the symbols whose domain or resolution changed
        # (the parent ran the identical check for the rest).
        check_names = state.domains.keys() if affected is None else affected
        for name in check_names:
            dom = state.domains.get(name)
            if dom is None or dom.is_full():
                continue
            expr = resolved.get(name)
            if expr is None:
                continue
            image = self._range_of(expr, state, range_memo)
            if image.intersect(dom).is_empty():
                return SolveResult(SolveStatus.UNSAT)
        residual: List[Expr] = []
        new_rows: Dict[int, tuple] = {}
        for constraint in state.constraints:
            if affected is not None:
                row = cache.get(id(constraint))
                if row is not None and row[0] is constraint \
                        and affected.isdisjoint(row[2]):
                    new_rows[id(constraint)] = row
                    if row[1] is not None:
                        residual.append(row[1])
                    continue
            original = constraint
            relevant = free_syms(constraint)
            if not relevant.isdisjoint(resolved.keys()):
                constraint = substitute(constraint, resolved)
                relevant = relevant | free_syms(constraint)
            if not isinstance(constraint, Const):
                constraint = self._fold_point_ranges(constraint, state,
                                                     range_memo)
            if isinstance(constraint, Const):
                if constraint.value == 0:
                    return SolveResult(SolveStatus.UNSAT)
                new_rows[id(original)] = (original, None, relevant)
                continue
            # Interval refutation: an over-approximation of the
            # constraint's value decides it when the bounded search
            # cannot (e.g. ((n & 3) + 1) > 5000 over a full 2^64
            # domain).  Shared by the flat and incremental paths, this
            # keeps verdicts from depending on which assertion order
            # happened to propagate a domain first — the differential
            # fuzzer found exactly such order-dependent UNKNOWNs.
            truth = self._range_of(constraint, state, range_memo)
            if truth.is_empty() or truth.max() == 0:
                return SolveResult(SolveStatus.UNSAT)
            if 0 not in truth:
                # tautological under the domains: drop
                new_rows[id(original)] = (original, None, relevant)
                continue
            residual.append(constraint)
            new_rows[id(original)] = (original, constraint, relevant)
        # Commit: rows, the resolved map they were computed under, and
        # the touched-set epoch move together.  Early-UNSAT returns
        # above leave all three untouched (children of an UNSAT context
        # fall back to the uncached path).
        state.preamble_cache = new_rows
        state.resolved_cache = resolved
        state.touched.clear()
        unbound: Set[str] = set()
        for constraint in residual:
            unbound |= free_syms(constraint)
        unbound = {n for n in unbound if n not in state.bindings}
        if any(not free_syms(c).isdisjoint(state.bindings.keys())
               for c in residual):
            # Unresolvable chain (cycle or size cap): don't let the
            # search claim exhaustion over symbols it never assigned.
            return SolveResult(SolveStatus.UNKNOWN)

        if not residual:
            model = self._complete_model(state, {}, resolved)
            if model is None:
                return SolveResult(SolveStatus.UNKNOWN)
            return SolveResult(SolveStatus.SAT, model)

        # Constraints sharing no symbols are independent subproblems;
        # solving them separately lets the exact single-symbol machinery
        # apply per component instead of only when the whole residual
        # mentions one symbol.
        total_nodes = 0
        unknown = False
        combined: Dict[str, int] = {}
        for comp_constraints, comp_syms in self._components(residual,
                                                            unbound):
            key = None
            if use_component_cache:
                key = (tuple(comp_constraints),
                       tuple(sorted((name, state.domain(name).ranges)
                                    for name in comp_syms)))
                cached = self._component_cache.get(key)
                if cached is not None:
                    result = cached
                    key = None  # already stored
                else:
                    result = self._search_component(state, comp_constraints,
                                                    comp_syms)
            else:
                result = self._search_component(state, comp_constraints,
                                                comp_syms)
            if key is not None \
                    and len(self._component_cache) < self._component_cache_cap:
                self._component_cache[key] = result
            total_nodes += result.nodes_explored
            if result.status is SolveStatus.UNSAT:
                return SolveResult(SolveStatus.UNSAT,
                                   nodes_explored=total_nodes)
            if result.status is SolveStatus.UNKNOWN or result.model is None:
                unknown = True
                continue
            combined.update(result.model)
        if unknown:
            return SolveResult(SolveStatus.UNKNOWN,
                               nodes_explored=total_nodes)
        model = self._complete_model(state, combined, resolved)
        if model is None:
            return SolveResult(SolveStatus.UNKNOWN,
                               nodes_explored=total_nodes)
        return SolveResult(SolveStatus.SAT, model,
                           nodes_explored=total_nodes)

    @staticmethod
    def _resolve_bindings(bindings: Dict[str, Expr],
                          size_cap: int = 256,
                          seed: Optional[Dict[str, Expr]] = None
                          ) -> Dict[str, Expr]:
        """Close the binding map under itself, dependency-first.

        Only bindings whose dependencies are already resolved are
        expanded, and any expansion beyond ``size_cap`` nodes is left
        open (the caller treats constraints still mentioning bound
        symbols as UNKNOWN rather than risking exponential growth).

        ``seed`` carries already-closed entries from a parent context.
        Bindings are append-only across context extension, so a parent
        expansion is still the fixpoint answer for the child — *unless*
        it mentions a symbol the child has since bound (the expansion is
        no longer closed); those entries are dropped and recomputed."""
        resolved: Dict[str, Expr] = {}
        pending: List[Tuple[str, Expr]] = []
        if seed:
            # A seed entry is closed w.r.t. the parent map, so only the
            # names added since (bindings − seed) can re-open it.
            new_names = bindings.keys() - seed.keys()
            for name, expr in bindings.items():
                prev = seed.get(name)
                if prev is not None \
                        and free_syms(prev).isdisjoint(new_names):
                    resolved[name] = prev
                elif free_syms(expr) & bindings.keys():
                    pending.append((name, expr))
                else:
                    resolved[name] = expr
        else:
            for name, expr in bindings.items():
                if free_syms(expr) & bindings.keys():
                    pending.append((name, expr))
                else:
                    resolved[name] = expr
        blocked: Set[str] = set()
        for __ in range(len(bindings)):
            progressed = False
            still: List[Tuple[str, Expr]] = []
            for name, expr in pending:
                deps = free_syms(expr) & bindings.keys()
                if deps & blocked or not deps <= resolved.keys():
                    if deps & blocked:
                        blocked.add(name)
                    else:
                        still.append((name, expr))
                    continue
                expansion = substitute(expr, resolved)
                if expr_size(expansion) <= size_cap:
                    resolved[name] = expansion
                else:
                    blocked.add(name)
                progressed = True
            pending = still
            if not progressed or not pending:
                break
        return resolved

    @staticmethod
    def _components(residual: List[Expr],
                    unbound: Set[str]) -> List[Tuple[List[Expr], Set[str]]]:
        """Partition constraints into symbol-connected components."""
        groups: List[Tuple[List[Expr], Set[str]]] = []
        for constraint in residual:
            syms = free_syms(constraint) & unbound
            merged_constraints = [constraint]
            merged_syms = set(syms)
            keep: List[Tuple[List[Expr], Set[str]]] = []
            for other_constraints, other_syms in groups:
                if merged_syms & other_syms:
                    merged_constraints.extend(other_constraints)
                    merged_syms |= other_syms
                else:
                    keep.append((other_constraints, other_syms))
            keep.append((merged_constraints, merged_syms))
            groups = keep
        return groups

    def _search_component(self, state: _State, residual: List[Expr],
                          unbound: Set[str]) -> SolveResult:
        """Decide one symbol-connected component of the residual.

        A SAT result carries a *partial* model covering the component's
        symbols only; the caller merges components and completes."""
        if len(unbound) == 1:
            name = next(iter(unbound))
            verdict = self._bitfix_single_sym(residual, name,
                                              state.domain(name))
            if verdict is not None:
                found, exact = verdict
                if found is not None:
                    return SolveResult(SolveStatus.SAT, {name: found})
                if exact:
                    return SolveResult(SolveStatus.UNSAT)

        candidates: Dict[str, List[int]] = {}
        exhaustive: Dict[str, bool] = {}
        constants = self._constants_in(residual)
        derived = self._derived_guesses(residual)
        for name in unbound:
            domain = state.domain(name)
            if domain.size() <= self.max_enum:
                candidates[name] = list(domain.iter_values())
                exhaustive[name] = True
            else:
                guesses: List[int] = []
                for value in itertools.chain(
                    derived.get(name, []),
                    [0, 1, domain.min(), domain.max()],
                    constants,
                    (to_unsigned(c + d) for c in constants for d in (-1, 1)),
                ):
                    if value is not None and value in domain and value not in guesses:
                        guesses.append(value)
                candidates[name] = guesses
                exhaustive[name] = False

        order = sorted(unbound, key=lambda n: len(candidates[n]))
        nodes = [0]
        assignment: Dict[str, int] = {}

        found = self._dfs(residual, order, 0, candidates, assignment, nodes,
                          {name: state.domain(name) for name in unbound})
        if found is not None:
            return SolveResult(SolveStatus.SAT, found,
                               nodes_explored=nodes[0])
        if all(exhaustive.get(n, False) for n in order) and nodes[0] < self.max_nodes:
            return SolveResult(SolveStatus.UNSAT, nodes_explored=nodes[0])
        return SolveResult(SolveStatus.UNKNOWN, nodes_explored=nodes[0])

    def _dfs(self, constraints: List[Expr], order: List[str], depth: int,
             candidates: Dict[str, List[int]], assignment: Dict[str, int],
             nodes: List[int],
             domains: Dict[str, IntSet],
             fresh: Optional[Set[str]] = None) -> Optional[Dict[str, int]]:
        if nodes[0] >= self.max_nodes:
            return None
        # Evaluate/simplify all constraints under the partial assignment,
        # then propagate: a partial choice often linearizes a constraint
        # into a shape the isolation rules solve outright (assigning a
        # in `2 - a*c == v` leaves a one-symbol linear equation in c).
        local = dict(assignment)
        live = list(constraints)
        # Propagation pays off on small residuals (it solves them
        # outright); on large ones the per-iteration rewriting dominates.
        propagate = len(live) <= 32
        # ``constraints`` arrived already reduced under the caller's
        # assignment except for ``fresh`` (the names bound since that
        # reduction), so each round only needs to substitute the names
        # bound since the previous round — substituting the rest is an
        # identity (they no longer occur in ``live``).
        if fresh is None:
            pending_bindings = {name: Const(v) for name, v in local.items()}
        else:
            pending_bindings = {name: Const(local[name]) for name in fresh}
        progressed = True
        while progressed:
            progressed = False
            bindings = pending_bindings
            pending_bindings = {}
            reduced_live: List[Expr] = []
            for constraint in live:
                reduced = substitute(constraint, bindings) \
                    if bindings else constraint
                if isinstance(reduced, Const):
                    if reduced.value == 0:
                        return None
                    continue
                if not propagate:
                    reduced_live.append(reduced)
                    continue
                rewritten = self._rewrite_even_mul(self._peel_eq(reduced))
                if rewritten is not None:
                    reduced = rewritten
                    if isinstance(reduced, Const):
                        if reduced.value == 0:
                            return None
                        continue
                binding = self._extract_binding(reduced)
                if binding is not None:
                    name, expr = binding
                    value = evaluate(expr, local)
                    if value is not None and name not in local:
                        if value not in domains.get(name, IntSet.full()):
                            return None  # forced value outside its domain
                        local[name] = value
                        pending_bindings[name] = Const(value)
                        progressed = True
                        continue
                reduced_live.append(reduced)
            live = reduced_live
        if not live:
            return local
        while depth < len(order) and order[depth] in local:
            depth += 1  # already fixed by propagation
        if depth >= len(order):
            return None
        name = order[depth]
        # Partial assignments expose new exact solutions (an earlier
        # choice may linearize a product); re-derive guesses from the
        # reduced constraints and try them first.
        domain = domains.get(name, IntSet.full())
        values = list(candidates[name])
        for extra in self._derived_guesses(live).get(name, []):
            if extra in domain and extra not in values:
                values.insert(0, extra)
        for constant in self._constants_in(live):
            if constant in domain and constant not in values:
                values.append(constant)
        for value in values:
            nodes[0] += 1
            if nodes[0] >= self.max_nodes:
                return None
            local[name] = value
            result = self._dfs(live, order, depth + 1, candidates,
                               local, nodes, domains, fresh={name})
            if result is not None:
                return result
            del local[name]
        return None

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    #: operators whose low k output bits depend only on the low k input
    #: bits — the fragment the bit-fixing solver is exact on.  (Right
    #: shifts, division, and comparisons move high bits downward.)
    _LOW_BITS_OPS = frozenset(("add", "sub", "mul", "and", "or", "xor",
                               "shl"))

    @classmethod
    def _low_bits_expr(cls, expr: Expr) -> bool:
        if isinstance(expr, (Const, Sym)):
            return True
        if isinstance(expr, BinExpr) and expr.op in cls._LOW_BITS_OPS:
            if expr.op == "shl" and not isinstance(expr.b, Const):
                # A symbolic shift amount lets *high* bits of the amount
                # change low result bits (shl(1, x) is 0 or 1 depending
                # on all of x): outside the fragment.
                return False
            return cls._low_bits_expr(expr.a) and cls._low_bits_expr(expr.b)
        return False

    def _bitfix_single_sym(self, residual: List[Expr], name: str,
                           domain: IntSet):
        """Exact bit-by-bit solving for one symbol (§6's hash chains).

        Every ``e1 == e2`` constraint whose operators keep low bits
        low-bit-determined becomes ``(e1 - e2) ≡ 0 (mod 2^k)`` for
        k = 1..64; viable residues double or die at each bit.  Returns
        ``(value, exact)`` — value None when no residue survives, with
        ``exact`` True iff the residue set never overflowed the cap (so
        a miss is a *proof* of UNSAT for the eq-part) and no non-eq
        constraints were deferred; returns None when the fragment does
        not apply.
        """
        deltas: List[Expr] = []
        deferred: List[Expr] = []
        for constraint in residual:
            if isinstance(constraint, BinExpr) and constraint.op == "eq" \
                    and self._low_bits_expr(constraint.a) \
                    and self._low_bits_expr(constraint.b):
                deltas.append(bin_expr("sub", constraint.a, constraint.b))
            else:
                deferred.append(constraint)
        if not deltas:
            return None

        cap = 128
        capped = False
        residues = [0]
        for k in range(1, 65):
            mask = (1 << k) - 1
            survivors: List[Tuple[int, int]] = []
            for residue in residues:
                for candidate in (residue, residue | (1 << (k - 1))):
                    values = [evaluate_compiled(delta, {name: candidate})
                              for delta in deltas]
                    if all(v is not None and v & mask == 0 for v in values):
                        # Rank by how far beyond the required k bits the
                        # deltas already vanish (min across deltas).
                        rank = min(64 if v == 0
                                   else (v & -v).bit_length() - 1
                                   for v in values)
                        survivors.append((rank, candidate))
            if len(survivors) > cap:
                # Keep the highest-ranked survivors (stable order).
                # Hensel's lemma makes delta valuation the right merit:
                # a prefix of a true root has delta ≡ 0 to roughly
                # k + v₂(derivative) bits, while a generic spurious
                # survivor sits at exactly k — so true-root families
                # outrank the chaff that merely doubles along (x^8 == c
                # has hundreds of thousands of residues mod 2^64, far
                # beyond any cap, but its root prefixes rank on top).
                survivors.sort(key=lambda ranked: -ranked[0])
                survivors = survivors[:cap]
                capped = True
            residues = [candidate for _, candidate in survivors]
            if not residues:
                if capped:
                    # Truncation may have dropped viable residues:
                    # emptiness proves nothing, but a depth-first pass
                    # can still recover a witness.
                    found = self._bitfix_dfs(deltas, name, domain, deferred)
                    return found, False
                # When never capped, `residues` was the complete solution
                # set of the eq-part, so emptiness proves UNSAT even if
                # other constraints were deferred (they only restrict).
                return None, True
        for value in residues:
            if value not in domain:
                continue
            if all(evaluate_compiled(truth_of(c), {name: value}) == 1
                   for c in deferred):
                return value, not capped
        if capped:
            # The kept prefix produced no witness, but the dropped
            # residues might: solution sets of low-bits equalities can
            # legitimately exceed any level cap (x^8 == c has hundreds
            # of thousands of roots mod 2^64).  A bounded depth-first
            # walk of the residue tree visits one branch at a time —
            # O(64) memory — and in the solution-rich cases that
            # overflow the cap it reaches a leaf almost immediately.
            return self._bitfix_dfs(deltas, name, domain, deferred), False
        # Every complete solution of the eq-part fails the domain or a
        # deferred constraint: UNSAT, provided the set really is complete.
        return None, True

    def _bitfix_dfs(self, deltas: List[Expr], name: str, domain: IntSet,
                    deferred: List[Expr],
                    budget: int = 20_000) -> Optional[int]:
        """Depth-first witness search over the bit-fixing residue tree.

        Explores ``value mod 2^k`` prefixes low-bit first, extending a
        prefix only while every delta stays ≡ 0 mod 2^k, and accepts the
        first full word inside the domain that satisfies the deferred
        constraints.  Completeness fallback only — never used to prove
        UNSAT (the budget makes exhaustion unprovable)."""
        stack: List[Tuple[int, int]] = [(0, 1)]
        nodes = 0
        while stack and nodes < budget:
            residue, k = stack.pop()
            if k == 65:
                if residue in domain \
                        and all(evaluate_compiled(truth_of(c),
                                                  {name: residue}) == 1
                                for c in deferred):
                    return residue
                continue
            mask = (1 << k) - 1
            # Pushed high-bit-set first so the plain prefix pops first:
            # matches the breadth-first candidate order.
            for candidate in (residue | (1 << (k - 1)), residue):
                nodes += 1
                values = (evaluate_compiled(delta, {name: candidate})
                          for delta in deltas)
                if all(v is not None and v & mask == 0 for v in values):
                    stack.append((candidate, k + 1))
        return None

    @staticmethod
    def _derived_guesses(constraints: Sequence[Expr]) -> Dict[str, List[int]]:
        """Exact solutions for shapes the rewriter cannot bind uniquely.

        ``sym * c == v`` with even ``c`` has 2^k solutions (k = trailing
        zero bits of c); binding would lose all but one, but the search
        can try the canonical one: x0 = (v >> k) * inv(c >> k) modulo
        2^(64-k).  Division-free and exact when it applies.
        """
        out: Dict[str, List[int]] = {}
        for constraint in constraints:
            if not (isinstance(constraint, BinExpr) and constraint.op == "eq"):
                continue
            lhs, rhs = constraint.a, constraint.b
            if not isinstance(rhs, Const):
                lhs, rhs = rhs, lhs
            if not (isinstance(rhs, Const) and isinstance(lhs, BinExpr)
                    and lhs.op == "mul" and isinstance(lhs.a, Sym)
                    and isinstance(lhs.b, Const)):
                continue
            c, v = lhs.b.value, rhs.value
            if c == 0:
                continue
            k = (c & -c).bit_length() - 1  # trailing zero bits
            if v % (1 << k) != 0:
                continue  # provably no solution; propagation will prune
            odd = c >> k
            modulus = 1 << (64 - k)
            x0 = ((v >> k) * pow(odd, -1, modulus)) % modulus
            bucket = out.setdefault(lhs.a.name, [])
            for candidate in (x0, x0 + modulus if k else None):
                if candidate is not None and candidate < (1 << 64) \
                        and candidate not in bucket:
                    bucket.append(candidate)
        return out

    @staticmethod
    def _constants_in(constraints: Sequence[Expr]) -> List[int]:
        seen: List[int] = []

        def walk(expr: Expr) -> None:
            if isinstance(expr, Const) and expr.value not in seen:
                seen.append(expr.value)
            elif isinstance(expr, BinExpr):
                walk(expr.a)
                walk(expr.b)

        for constraint in constraints:
            walk(constraint)
        return seen

    def _complete_model(self, state: _State,
                        search_values: Dict[str, int],
                        resolved: Optional[Dict[str, Expr]] = None
                        ) -> Optional[Dict[str, int]]:
        """Fold bindings + domains + search results into a full model.

        ``resolved`` (the search's closed binding map) short-circuits
        the chain-evaluation fixpoint: a closed entry mentions no bound
        symbols, so one compiled evaluation gives the same value the
        fixpoint would reach by evaluating the chain link by link
        (substitution lemma; division-by-zero propagates identically).
        Unresolved (blocked) entries still go through the fixpoint.
        """
        model: Dict[str, int] = dict(search_values)
        for name in state.all_syms.difference(model).difference(state.bindings):
            sample = state.domain(name).sample()
            if sample is None:
                return None
            model[name] = sample
        # Bindings may reference each other; iterate to a fixpoint.
        if resolved:
            remaining = {}
            for name, expr in state.bindings.items():
                closed = resolved.get(name)
                if closed is None:
                    remaining[name] = expr
                    continue
                tp = type(closed)
                if tp is Const:
                    model[name] = closed.value
                    continue
                if tp is Sym:
                    value = model.get(closed.name)
                    if value is not None:
                        value &= WORD_MASK
                    else:
                        value = evaluate_compiled(closed, model)
                else:
                    value = evaluate_compiled(closed, model)
                if value is None:
                    return None
                model[name] = value
        else:
            remaining = dict(state.bindings)
        for _ in range(len(remaining) + 1):
            progressed = False
            for name, expr in list(remaining.items()):
                value = evaluate_compiled(expr, model)
                if value is not None:
                    model[name] = value
                    del remaining[name]
                    progressed = True
            if not remaining:
                break
            if not progressed:
                # Cyclic or under-determined bindings: give the free
                # symbols a default and retry once more.
                for free in set().union(*(free_syms(e) for e in remaining.values())):
                    model.setdefault(free, 0)
        for name, expr in remaining.items():
            value = evaluate_compiled(expr, model)
            if value is None:
                return None
            model[name] = value
        return model
