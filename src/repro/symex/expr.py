"""Symbolic expressions over 64-bit machine words.

A symbolic snapshot (paper §2.3) is "a mix of known, concrete values and
currently unknown, symbolic values"; these expressions are the symbolic
half.  Semantics mirror the concrete VM bit-for-bit (wraparound, signed
ops), which property tests in ``tests/symex`` enforce: evaluating an
expression under a model must equal running the same ops on the VM.

Constructors go through :func:`bin_expr`, which constant-folds and
applies algebraic identities so expressions stay small enough for the
solver's pattern rules to fire.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Tuple, Union

from repro.ir.instructions import (
    BINARY_OPS,
    COMPARE_OPS,
    to_signed,
    to_unsigned,
)

ALL_OPS = tuple(BINARY_OPS) + tuple(COMPARE_OPS)

_COMMUTATIVE = {"add", "mul", "and", "or", "xor", "eq", "ne"}

#: Complement of each comparison (used to negate branch conditions).
NEGATED_CMP = {
    "eq": "ne", "ne": "eq",
    "ult": "uge", "ule": "ugt", "ugt": "ule", "uge": "ult",
    "slt": "sge", "sle": "sgt", "sgt": "sle", "sge": "slt",
}

#: Swapped-operand equivalent (a op b == b swap(op) a).
SWAPPED_CMP = {
    "eq": "eq", "ne": "ne",
    "ult": "ugt", "ule": "uge", "ugt": "ult", "uge": "ule",
    "slt": "sgt", "sle": "sge", "sgt": "slt", "sge": "sle",
}


class Expr:
    """Base class; all subclasses are immutable and hashable."""

    __slots__ = ()

    def is_const(self) -> bool:
        return isinstance(self, Const)


# ---------------------------------------------------------------------------
# Hash-consing (interning) tables
#
# Leaves intern through ``__new__``; interior nodes intern through
# :func:`bin_expr` (the only simplifying constructor), keyed by child
# *identity* — sound because interned children are themselves canonical.
# Tables are append-only and stop interning when full: clearing them
# would free nodes whose ``id()`` keys identity-keyed caches elsewhere
# (the solver's range memo), and a recycled id must never alias a
# different expression.  Directly constructed ``BinExpr(...)`` nodes
# (deserialization, tests) stay valid: equality and hashing remain
# structural, identity is only a fast path.
# ---------------------------------------------------------------------------

_CONST_CACHE: Dict[int, "Const"] = {}
_SYM_CACHE: Dict[str, "Sym"] = {}
_BIN_CACHE: Dict[Tuple[str, int, int], "BinExpr"] = {}
_CONST_CACHE_CAP = 1 << 16
_SYM_CACHE_CAP = 1 << 16
_BIN_CACHE_CAP = 1 << 18


def intern_stats() -> Dict[str, int]:
    """Sizes of the intern tables (diagnostics and tests)."""
    return {"const": len(_CONST_CACHE), "sym": len(_SYM_CACHE),
            "bin": len(_BIN_CACHE)}


@dataclass(frozen=True, init=False)
class Const(Expr):
    value: int

    def __new__(cls, value=None):
        # ``value is None`` is the pickle/deepcopy reconstruction path
        # (``cls.__new__(cls)`` with state applied afterwards).
        if value is None or cls is not Const:
            return object.__new__(cls)
        value = value & _WORD_MASK_LOCAL
        cached = _CONST_CACHE.get(value)
        if cached is not None:
            return cached
        self = object.__new__(cls)
        object.__setattr__(self, "value", value)
        if len(_CONST_CACHE) < _CONST_CACHE_CAP:
            _CONST_CACHE[value] = self
        return self

    def __repr__(self):
        return str(self.value)


@dataclass(frozen=True, init=False)
class Sym(Expr):
    """An unconstrained 64-bit unknown, identified by name."""

    name: str

    def __new__(cls, name=None):
        if name is None or cls is not Sym:
            return object.__new__(cls)
        cached = _SYM_CACHE.get(name)
        if cached is not None:
            return cached
        self = object.__new__(cls)
        object.__setattr__(self, "name", name)
        if len(_SYM_CACHE) < _SYM_CACHE_CAP:
            _SYM_CACHE[name] = self
        return self

    def __repr__(self):
        return f"${self.name}"


_WORD_MASK_LOCAL = to_unsigned(-1)


@dataclass(frozen=True)
class BinExpr(Expr):
    op: str
    a: Expr
    b: Expr

    def __post_init__(self):
        if self.op not in ALL_OPS:
            raise ValueError(f"unknown op {self.op!r}")

    def __repr__(self):
        return f"({self.op} {self.a!r} {self.b!r})"


def _binexpr_hash(self: "BinExpr") -> int:
    """Structural hash memoized on the node (same value the generated
    dataclass hash produces).  Constraint fingerprinting hashes whole
    expression DAGs repeatedly; without the memo every lookup re-walks
    the tree."""
    cached = self.__dict__.get("_h")
    if cached is None:
        cached = hash((self.op, self.a, self.b))
        object.__setattr__(self, "_h", cached)
    return cached


def _binexpr_eq(self: "BinExpr", other) -> bool:
    """Structural equality with an identity fast path.  Interned nodes
    make ``self is other`` the common case, so deep comparisons of
    shared sub-DAGs short-circuit without walking them."""
    if self is other:
        return True
    if other.__class__ is not BinExpr:
        return NotImplemented
    return (self.op == other.op and self.a == other.a
            and self.b == other.b)


BinExpr.__hash__ = _binexpr_hash  # type: ignore[method-assign]
BinExpr.__eq__ = _binexpr_eq  # type: ignore[method-assign]


def _make_bin(op: str, a: Expr, b: Expr) -> BinExpr:
    """Interning BinExpr constructor (used only by :func:`bin_expr`,
    *after* simplification, so the table holds canonical shapes).  The
    cached node holds strong references to its children, which pins
    their ids — an identity key can never go stale."""
    key = (op, id(a), id(b))
    cached = _BIN_CACHE.get(key)
    if cached is not None:
        return cached
    node = BinExpr(op, a, b)
    if len(_BIN_CACHE) < _BIN_CACHE_CAP:
        _BIN_CACHE[key] = node
    return node


TRUE = Const(1)
FALSE = Const(0)


def apply_op(op: str, a: int, b: int) -> Optional[int]:
    """Concrete semantics of every op; None on division by zero.

    This is the single source of truth shared by expression folding and
    model evaluation; it matches the concrete VM exactly.
    """
    if op == "add":
        return to_unsigned(a + b)
    if op == "sub":
        return to_unsigned(a - b)
    if op == "mul":
        return to_unsigned(a * b)
    if op == "udiv":
        return None if b == 0 else to_unsigned(a // b)
    if op == "urem":
        return None if b == 0 else to_unsigned(a % b)
    if op in ("sdiv", "srem"):
        if b == 0:
            return None
        sa, sb = to_signed(a), to_signed(b)
        quotient = abs(sa) // abs(sb)
        if (sa < 0) != (sb < 0):
            quotient = -quotient
        return to_unsigned(quotient if op == "sdiv" else sa - quotient * sb)
    if op == "and":
        return a & b
    if op == "or":
        return a | b
    if op == "xor":
        return a ^ b
    if op == "shl":
        return to_unsigned(a << (b % 64))
    if op == "lshr":
        return a >> (b % 64)
    if op == "ashr":
        return to_unsigned(to_signed(a) >> (b % 64))
    if op in ("slt", "sle", "sgt", "sge"):
        sa, sb = to_signed(a), to_signed(b)
        return 1 if {"slt": sa < sb, "sle": sa <= sb,
                     "sgt": sa > sb, "sge": sa >= sb}[op] else 0
    return 1 if {"eq": a == b, "ne": a != b,
                 "ult": a < b, "ule": a <= b,
                 "ugt": a > b, "uge": a >= b}[op] else 0


def bin_expr(op: str, a: Expr, b: Expr) -> Expr:
    """Build ``a op b`` with folding and identity simplification."""
    if isinstance(a, Const) and isinstance(b, Const):
        folded = apply_op(op, a.value, b.value)
        if folded is not None:
            return Const(folded)
        return _make_bin(op, a, b)  # division by zero: keep symbolic shape

    # Canonicalize: constants on the right for commutative ops,
    # comparisons with a constant left operand get swapped.
    if isinstance(a, Const) and not isinstance(b, Const):
        if op in _COMMUTATIVE:
            a, b = b, a
        elif op in SWAPPED_CMP:
            a, b = b, a
            op = SWAPPED_CMP[op]

    # sub-by-const → add of negation, so constant chains merge.
    if op == "sub" and isinstance(b, Const):
        return bin_expr("add", a, Const(-b.value))

    # Cancellation (exact in modular arithmetic): (a - b) + b → a and
    # (a + b) - b → a.  Substitution chains build these shapes — e.g. a
    # loop round-trip resolving to (c - x) + x — and an unfolded
    # tautology sent to the bit-fixing layer makes every residue
    # survive every level, the worst case of its enumeration.
    if op == "add":
        if isinstance(a, BinExpr) and a.op == "sub" and a.b == b:
            return a.a
        if isinstance(b, BinExpr) and b.op == "sub" and b.b == a:
            return b.a
    if op == "sub" and isinstance(a, BinExpr) and a.op == "add":
        if a.b == b:
            return a.a
        if a.a == b:
            return a.b

    # Distribute mul-by-const over add-by-const so affine chains
    # normalize to a single (mul x c) + d:  (x + c1) * c2 → x*c2 + c1*c2.
    if op == "mul" and isinstance(b, Const) and isinstance(a, BinExpr) \
            and a.op == "add" and isinstance(a.b, Const):
        return bin_expr("add", bin_expr("mul", a.a, b),
                        Const(a.b.value * b.value))

    # Reassociate constants outward so chains merge and same-symbol
    # operands meet:  x + (y + c) → (x + y) + c, likewise for xor.
    for assoc_op in ("add", "xor"):
        if op == assoc_op:
            if isinstance(b, BinExpr) and b.op == assoc_op \
                    and isinstance(b.b, Const):
                return bin_expr(assoc_op,
                                bin_expr(assoc_op, a, b.a), b.b)
            if isinstance(a, BinExpr) and a.op == assoc_op \
                    and isinstance(a.b, Const) and not isinstance(b, Const):
                return bin_expr(assoc_op,
                                bin_expr(assoc_op, a.a, b), a.b)

    if isinstance(b, Const):
        c = b.value
        if c == 0:
            if op in ("add", "or", "xor", "shl", "lshr", "ashr"):
                return a
            if op in ("mul", "and"):
                return FALSE
            if op == "sub":
                return a
        if c == 1 and op in ("mul", "udiv", "sdiv"):
            return a
        # Merge constant chains: (add (add x c1) c2) → (add x c1+c2)
        if op == "add" and isinstance(a, BinExpr) and a.op == "add" \
                and isinstance(a.b, Const):
            return bin_expr("add", a.a, Const(a.b.value + c))
        if op == "xor" and isinstance(a, BinExpr) and a.op == "xor" \
                and isinstance(a.b, Const):
            return bin_expr("xor", a.a, Const(a.b.value ^ c))
        # Compare of (add x c1) with c2 → compare x with c2-c1 (exact for
        # eq/ne thanks to modular arithmetic; NOT exact for inequalities).
        if op in ("eq", "ne") and isinstance(a, BinExpr) and a.op == "add" \
                and isinstance(a.b, Const):
            return bin_expr(op, a.a, Const(c - a.b.value))
        if op in ("eq", "ne") and isinstance(a, BinExpr) and a.op == "xor" \
                and isinstance(a.b, Const):
            return bin_expr(op, a.a, Const(c ^ a.b.value))

    # x == x + c (c ≢ 0 mod 2^64) is a modular-arithmetic contradiction
    # (exact for eq/ne only — inequalities can wrap).  Substitution
    # chains through loop counters build exactly this shape (i+1 == i
    # after a round of bindings), and leaving it as a residual made the
    # verdict depend on which engine's propagation order met it: the
    # chained incremental context refuted it while the from-scratch
    # solve returned UNKNOWN (differential-fuzzer finding, seed 7059).
    if op in ("eq", "ne"):
        for x, y in ((a, b), (b, a)):
            if isinstance(y, BinExpr) and y.op == "add" \
                    and isinstance(y.b, Const) and y.a == x:
                if to_unsigned(y.b.value) != 0:
                    return FALSE if op == "eq" else TRUE
                return TRUE if op == "eq" else FALSE

    if a == b:
        if op == "add":
            # x + x → x * 2, which the interval/search layers know how
            # to invert (a raw self-add they do not).
            return bin_expr("mul", a, Const(2))
        if op in ("sub", "xor"):
            return FALSE
        if op in ("and", "or"):
            return a
        if op in ("eq", "ule", "uge", "sle", "sge"):
            return TRUE
        if op in ("ne", "ult", "ugt", "slt", "sgt"):
            return FALSE

    # Boolean-result simplifications: cmp of a cmp against 0/1.
    if op in ("eq", "ne") and isinstance(b, Const) and _is_boolean(a):
        if b.value == 0:
            return negate_bool(a) if op == "eq" else a
        if b.value == 1:
            return a if op == "eq" else negate_bool(a)
        # A boolean can never equal any other constant.
        return FALSE if op == "eq" else TRUE

    return _make_bin(op, a, b)


def _is_boolean(expr: Expr) -> bool:
    return isinstance(expr, BinExpr) and expr.op in COMPARE_OPS


def negate_bool(expr: Expr) -> Expr:
    """Logical negation of a truth-valued expression."""
    if isinstance(expr, Const):
        return FALSE if expr.value != 0 else TRUE
    if isinstance(expr, BinExpr) and expr.op in COMPARE_OPS:
        return bin_expr(NEGATED_CMP[expr.op], expr.a, expr.b)
    return bin_expr("eq", expr, FALSE)


def truth_of(expr: Expr) -> Expr:
    """Coerce a word-valued expression to a truth-valued one (≠ 0).

    Memoized on the node: solver recheck and bit-fixing loops coerce
    the same constraints over and over."""
    cached = expr.__dict__.get("_truth")
    if cached is not None:
        return cached
    if isinstance(expr, Const):
        return TRUE if expr.value != 0 else FALSE
    if _is_boolean(expr):
        result = expr
    else:
        result = bin_expr("ne", expr, FALSE)
    object.__setattr__(expr, "_truth", result)
    return result


_EMPTY_SYMS: FrozenSet[str] = frozenset()


def free_syms(expr: Expr) -> FrozenSet[str]:
    """Names of all symbolic variables occurring in ``expr``.

    Memoized on the node: expressions are immutable and heavily shared
    (DAG-shaped after substitution), so the naive tree walk is
    exponential in practice while this is amortized O(1).
    """
    cached = expr.__dict__.get("_syms")
    if cached is not None:
        return cached
    if isinstance(expr, Sym):
        result = frozenset((expr.name,))
    elif isinstance(expr, BinExpr):
        result = free_syms(expr.a) | free_syms(expr.b)
    else:
        result = _EMPTY_SYMS
    object.__setattr__(expr, "_syms", result)
    return result


def substitute(expr: Expr, bindings: Dict[str, Expr]) -> Expr:
    """Replace symbols by expressions, re-simplifying along the way."""
    if free_syms(expr).isdisjoint(bindings.keys()):
        return expr  # nothing to replace anywhere below: share the node
    if isinstance(expr, Sym):
        return bindings.get(expr.name, expr)
    if isinstance(expr, BinExpr):
        a = substitute(expr.a, bindings)
        b = substitute(expr.b, bindings)
        if a is expr.a and b is expr.b:
            return expr
        return bin_expr(expr.op, a, b)
    return expr


def evaluate(expr: Expr, model: Dict[str, int]) -> Optional[int]:
    """Evaluate under a full model; None on division by zero or a
    symbol missing from the model."""
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, Sym):
        value = model.get(expr.name)
        return to_unsigned(value) if value is not None else None
    if isinstance(expr, BinExpr):
        a = evaluate(expr.a, model)
        b = evaluate(expr.b, model)
        if a is None or b is None:
            return None
        return apply_op(expr.op, a, b)
    raise TypeError(f"not an expression: {expr!r}")


def expr_size(expr: Expr) -> int:
    """Node count, used for search heuristics and complexity caps.

    Memoized like :func:`free_syms` — shared sub-DAGs are counted once
    per node, never re-walked.
    """
    cached = expr.__dict__.get("_size")
    if cached is not None:
        return cached
    if isinstance(expr, BinExpr):
        result = 1 + expr_size(expr.a) + expr_size(expr.b)
    else:
        result = 1
    object.__setattr__(expr, "_size", result)
    return result


# ---------------------------------------------------------------------------
# Compiled evaluation
#
# ``evaluate`` is the hottest solver primitive: bit-fixing, rechecking
# and model completion all call it thousands of times per query on the
# *same* expression with different models.  ``compiled_evaluator``
# flattens the DAG once into straight-line Python (shared sub-nodes
# become single temporaries) and caches the generated function on the
# node, turning every later evaluation into one cheap call.  Semantics
# are exactly :func:`evaluate`: None on division by zero or a missing
# symbol.
# ---------------------------------------------------------------------------

_COMPILE_MAX_NODES = 4096

_CMP_PY = {"eq": "==", "ne": "!=", "ult": "<", "ule": "<=",
           "ugt": ">", "uge": ">=", "slt": "<", "sle": "<=",
           "sgt": ">", "sge": ">="}


def _build_evaluator(expr: "BinExpr"):
    """Generate a ``model -> Optional[int]`` function for ``expr``.
    Returns False when the expression is too large to compile (callers
    fall back to the recursive evaluator)."""
    if expr_size(expr) > _COMPILE_MAX_NODES:
        return False
    names: Dict[int, str] = {}
    lines = []
    counter = 0

    def _signed(atom: str) -> str:
        return f"({atom} - T if {atom} >= S else {atom})"

    def emit(node: Expr) -> str:
        nonlocal counter
        key = id(node)
        name = names.get(key)
        if name is not None:
            return name
        if type(node) is Const:
            name = repr(node.value)
            names[key] = name
            return name
        counter += 1
        name = f"t{counter}"
        if type(node) is Sym:
            lines.append(f" {name} = m.get({node.name!r})")
            lines.append(f" if {name} is None: return None")
            lines.append(f" {name} &= M")
            names[key] = name
            return name
        a = emit(node.a)
        b = emit(node.b)
        op = node.op
        if op in ("add", "sub", "mul"):
            sym = {"add": "+", "sub": "-", "mul": "*"}[op]
            lines.append(f" {name} = ({a} {sym} {b}) & M")
        elif op in ("and", "or", "xor"):
            sym = {"and": "&", "or": "|", "xor": "^"}[op]
            lines.append(f" {name} = {a} {sym} {b}")
        elif op in ("udiv", "urem"):
            sym = "//" if op == "udiv" else "%"
            lines.append(f" if {b} == 0: return None")
            lines.append(f" {name} = {a} {sym} {b}")
        elif op in ("sdiv", "srem"):
            lines.append(f" {name} = _apply({op!r}, {a}, {b})")
            lines.append(f" if {name} is None: return None")
        elif op == "shl":
            lines.append(f" {name} = ({a} << ({b} % 64)) & M")
        elif op == "lshr":
            lines.append(f" {name} = {a} >> ({b} % 64)")
        elif op == "ashr":
            lines.append(f" {name} = ({_signed(a)} >> ({b} % 64)) & M")
        elif op in ("slt", "sle", "sgt", "sge"):
            lines.append(f" {name} = 1 if {_signed(a)} {_CMP_PY[op]}"
                         f" {_signed(b)} else 0")
        else:
            lines.append(f" {name} = 1 if {a} {_CMP_PY[op]} {b} else 0")
        names[key] = name
        return name

    try:
        root = emit(expr)
        source = "def _f(m):\n" + "\n".join(lines) + f"\n return {root}"
        namespace = {"M": to_unsigned(-1), "S": 1 << 63, "T": 1 << 64,
                     "_apply": apply_op}
        exec(source, namespace)  # noqa: S102 - generated from trusted IR
        return namespace["_f"]
    except (RecursionError, SyntaxError, MemoryError):
        return False


def compiled_evaluator(expr: Expr):
    """Return a compiled ``model -> Optional[int]`` callable for
    ``expr``, or None when it is not worth compiling (callers should
    use :func:`evaluate`)."""
    if type(expr) is not BinExpr:
        return None
    fn = expr.__dict__.get("_ceval")
    if fn is None:
        fn = _build_evaluator(expr)
        object.__setattr__(expr, "_ceval", fn)
    return fn if fn is not False else None


def evaluate_compiled(expr: Expr, model: Dict[str, int]) -> Optional[int]:
    """Drop-in for :func:`evaluate` that compiles (and caches) the
    expression on first use."""
    fn = expr.__dict__.get("_ceval")
    if fn is not None:
        if fn is False:
            return evaluate(expr, model)
        return fn(model)
    tp = type(expr)
    if tp is Const:
        return expr.value
    if tp is Sym:
        value = model.get(expr.name)
        return to_unsigned(value) if value is not None else None
    if tp is not BinExpr:
        return evaluate(expr, model)
    fn = _build_evaluator(expr)
    object.__setattr__(expr, "_ceval", fn)
    if fn is False:
        return evaluate(expr, model)
    return fn(model)


ExprLike = Union[Expr, int]


def as_expr(value: ExprLike) -> Expr:
    return Const(value) if isinstance(value, int) else value


# ---------------------------------------------------------------------------
# Canonical JSON-safe serialization (suffix artifacts, cache exports)
# ---------------------------------------------------------------------------

def expr_to_obj(expr: Expr) -> Union[int, str, list]:
    """Expr → JSON-safe object (int / "$name" / ["op", a, b])."""
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, Sym):
        return f"${expr.name}"
    if isinstance(expr, BinExpr):
        return [expr.op, expr_to_obj(expr.a), expr_to_obj(expr.b)]
    raise TypeError(f"unserializable expression {expr!r}")


def expr_from_obj(obj: Union[int, str, list]) -> Expr:
    if isinstance(obj, int):
        return Const(obj)
    if isinstance(obj, str):
        if not obj.startswith("$"):
            raise ValueError(f"malformed symbol literal {obj!r}")
        return Sym(obj[1:])
    if isinstance(obj, list) and len(obj) == 3:
        return BinExpr(obj[0], expr_from_obj(obj[1]), expr_from_obj(obj[2]))
    raise ValueError(f"malformed expression object {obj!r}")
