"""Symbolic expressions over 64-bit machine words.

A symbolic snapshot (paper §2.3) is "a mix of known, concrete values and
currently unknown, symbolic values"; these expressions are the symbolic
half.  Semantics mirror the concrete VM bit-for-bit (wraparound, signed
ops), which property tests in ``tests/symex`` enforce: evaluating an
expression under a model must equal running the same ops on the VM.

Constructors go through :func:`bin_expr`, which constant-folds and
applies algebraic identities so expressions stay small enough for the
solver's pattern rules to fire.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Tuple, Union

from repro.ir.instructions import (
    BINARY_OPS,
    COMPARE_OPS,
    to_signed,
    to_unsigned,
)

ALL_OPS = tuple(BINARY_OPS) + tuple(COMPARE_OPS)

_COMMUTATIVE = {"add", "mul", "and", "or", "xor", "eq", "ne"}

#: Complement of each comparison (used to negate branch conditions).
NEGATED_CMP = {
    "eq": "ne", "ne": "eq",
    "ult": "uge", "ule": "ugt", "ugt": "ule", "uge": "ult",
    "slt": "sge", "sle": "sgt", "sgt": "sle", "sge": "slt",
}

#: Swapped-operand equivalent (a op b == b swap(op) a).
SWAPPED_CMP = {
    "eq": "eq", "ne": "ne",
    "ult": "ugt", "ule": "uge", "ugt": "ult", "uge": "ule",
    "slt": "sgt", "sle": "sge", "sgt": "slt", "sge": "sle",
}


class Expr:
    """Base class; all subclasses are immutable and hashable."""

    __slots__ = ()

    def is_const(self) -> bool:
        return isinstance(self, Const)


@dataclass(frozen=True)
class Const(Expr):
    value: int

    def __post_init__(self):
        object.__setattr__(self, "value", to_unsigned(self.value))

    def __repr__(self):
        return str(self.value)


@dataclass(frozen=True)
class Sym(Expr):
    """An unconstrained 64-bit unknown, identified by name."""

    name: str

    def __repr__(self):
        return f"${self.name}"


@dataclass(frozen=True)
class BinExpr(Expr):
    op: str
    a: Expr
    b: Expr

    def __post_init__(self):
        if self.op not in ALL_OPS:
            raise ValueError(f"unknown op {self.op!r}")

    def __repr__(self):
        return f"({self.op} {self.a!r} {self.b!r})"


def _binexpr_hash(self: "BinExpr") -> int:
    """Structural hash memoized on the node (same value the generated
    dataclass hash produces).  Constraint fingerprinting hashes whole
    expression DAGs repeatedly; without the memo every lookup re-walks
    the tree."""
    cached = self.__dict__.get("_h")
    if cached is None:
        cached = hash((self.op, self.a, self.b))
        object.__setattr__(self, "_h", cached)
    return cached


BinExpr.__hash__ = _binexpr_hash  # type: ignore[method-assign]


TRUE = Const(1)
FALSE = Const(0)


def apply_op(op: str, a: int, b: int) -> Optional[int]:
    """Concrete semantics of every op; None on division by zero.

    This is the single source of truth shared by expression folding and
    model evaluation; it matches the concrete VM exactly.
    """
    if op == "add":
        return to_unsigned(a + b)
    if op == "sub":
        return to_unsigned(a - b)
    if op == "mul":
        return to_unsigned(a * b)
    if op == "udiv":
        return None if b == 0 else to_unsigned(a // b)
    if op == "urem":
        return None if b == 0 else to_unsigned(a % b)
    if op in ("sdiv", "srem"):
        if b == 0:
            return None
        sa, sb = to_signed(a), to_signed(b)
        quotient = abs(sa) // abs(sb)
        if (sa < 0) != (sb < 0):
            quotient = -quotient
        return to_unsigned(quotient if op == "sdiv" else sa - quotient * sb)
    if op == "and":
        return a & b
    if op == "or":
        return a | b
    if op == "xor":
        return a ^ b
    if op == "shl":
        return to_unsigned(a << (b % 64))
    if op == "lshr":
        return a >> (b % 64)
    if op == "ashr":
        return to_unsigned(to_signed(a) >> (b % 64))
    if op in ("slt", "sle", "sgt", "sge"):
        sa, sb = to_signed(a), to_signed(b)
        return 1 if {"slt": sa < sb, "sle": sa <= sb,
                     "sgt": sa > sb, "sge": sa >= sb}[op] else 0
    return 1 if {"eq": a == b, "ne": a != b,
                 "ult": a < b, "ule": a <= b,
                 "ugt": a > b, "uge": a >= b}[op] else 0


def bin_expr(op: str, a: Expr, b: Expr) -> Expr:
    """Build ``a op b`` with folding and identity simplification."""
    if isinstance(a, Const) and isinstance(b, Const):
        folded = apply_op(op, a.value, b.value)
        if folded is not None:
            return Const(folded)
        return BinExpr(op, a, b)  # division by zero: keep symbolic shape

    # Canonicalize: constants on the right for commutative ops,
    # comparisons with a constant left operand get swapped.
    if isinstance(a, Const) and not isinstance(b, Const):
        if op in _COMMUTATIVE:
            a, b = b, a
        elif op in SWAPPED_CMP:
            a, b = b, a
            op = SWAPPED_CMP[op]

    # sub-by-const → add of negation, so constant chains merge.
    if op == "sub" and isinstance(b, Const):
        return bin_expr("add", a, Const(-b.value))

    # Cancellation (exact in modular arithmetic): (a - b) + b → a and
    # (a + b) - b → a.  Substitution chains build these shapes — e.g. a
    # loop round-trip resolving to (c - x) + x — and an unfolded
    # tautology sent to the bit-fixing layer makes every residue
    # survive every level, the worst case of its enumeration.
    if op == "add":
        if isinstance(a, BinExpr) and a.op == "sub" and a.b == b:
            return a.a
        if isinstance(b, BinExpr) and b.op == "sub" and b.b == a:
            return b.a
    if op == "sub" and isinstance(a, BinExpr) and a.op == "add":
        if a.b == b:
            return a.a
        if a.a == b:
            return a.b

    # Distribute mul-by-const over add-by-const so affine chains
    # normalize to a single (mul x c) + d:  (x + c1) * c2 → x*c2 + c1*c2.
    if op == "mul" and isinstance(b, Const) and isinstance(a, BinExpr) \
            and a.op == "add" and isinstance(a.b, Const):
        return bin_expr("add", bin_expr("mul", a.a, b),
                        Const(a.b.value * b.value))

    # Reassociate constants outward so chains merge and same-symbol
    # operands meet:  x + (y + c) → (x + y) + c, likewise for xor.
    for assoc_op in ("add", "xor"):
        if op == assoc_op:
            if isinstance(b, BinExpr) and b.op == assoc_op \
                    and isinstance(b.b, Const):
                return bin_expr(assoc_op,
                                bin_expr(assoc_op, a, b.a), b.b)
            if isinstance(a, BinExpr) and a.op == assoc_op \
                    and isinstance(a.b, Const) and not isinstance(b, Const):
                return bin_expr(assoc_op,
                                bin_expr(assoc_op, a.a, b), a.b)

    if isinstance(b, Const):
        c = b.value
        if c == 0:
            if op in ("add", "or", "xor", "shl", "lshr", "ashr"):
                return a
            if op in ("mul", "and"):
                return FALSE
            if op == "sub":
                return a
        if c == 1 and op in ("mul", "udiv", "sdiv"):
            return a
        # Merge constant chains: (add (add x c1) c2) → (add x c1+c2)
        if op == "add" and isinstance(a, BinExpr) and a.op == "add" \
                and isinstance(a.b, Const):
            return bin_expr("add", a.a, Const(a.b.value + c))
        if op == "xor" and isinstance(a, BinExpr) and a.op == "xor" \
                and isinstance(a.b, Const):
            return bin_expr("xor", a.a, Const(a.b.value ^ c))
        # Compare of (add x c1) with c2 → compare x with c2-c1 (exact for
        # eq/ne thanks to modular arithmetic; NOT exact for inequalities).
        if op in ("eq", "ne") and isinstance(a, BinExpr) and a.op == "add" \
                and isinstance(a.b, Const):
            return bin_expr(op, a.a, Const(c - a.b.value))
        if op in ("eq", "ne") and isinstance(a, BinExpr) and a.op == "xor" \
                and isinstance(a.b, Const):
            return bin_expr(op, a.a, Const(c ^ a.b.value))

    # x == x + c (c ≢ 0 mod 2^64) is a modular-arithmetic contradiction
    # (exact for eq/ne only — inequalities can wrap).  Substitution
    # chains through loop counters build exactly this shape (i+1 == i
    # after a round of bindings), and leaving it as a residual made the
    # verdict depend on which engine's propagation order met it: the
    # chained incremental context refuted it while the from-scratch
    # solve returned UNKNOWN (differential-fuzzer finding, seed 7059).
    if op in ("eq", "ne"):
        for x, y in ((a, b), (b, a)):
            if isinstance(y, BinExpr) and y.op == "add" \
                    and isinstance(y.b, Const) and y.a == x:
                if to_unsigned(y.b.value) != 0:
                    return FALSE if op == "eq" else TRUE
                return TRUE if op == "eq" else FALSE

    if a == b:
        if op == "add":
            # x + x → x * 2, which the interval/search layers know how
            # to invert (a raw self-add they do not).
            return bin_expr("mul", a, Const(2))
        if op in ("sub", "xor"):
            return FALSE
        if op in ("and", "or"):
            return a
        if op in ("eq", "ule", "uge", "sle", "sge"):
            return TRUE
        if op in ("ne", "ult", "ugt", "slt", "sgt"):
            return FALSE

    # Boolean-result simplifications: cmp of a cmp against 0/1.
    if op in ("eq", "ne") and isinstance(b, Const) and _is_boolean(a):
        if b.value == 0:
            return negate_bool(a) if op == "eq" else a
        if b.value == 1:
            return a if op == "eq" else negate_bool(a)
        # A boolean can never equal any other constant.
        return FALSE if op == "eq" else TRUE

    return BinExpr(op, a, b)


def _is_boolean(expr: Expr) -> bool:
    return isinstance(expr, BinExpr) and expr.op in COMPARE_OPS


def negate_bool(expr: Expr) -> Expr:
    """Logical negation of a truth-valued expression."""
    if isinstance(expr, Const):
        return FALSE if expr.value != 0 else TRUE
    if isinstance(expr, BinExpr) and expr.op in COMPARE_OPS:
        return bin_expr(NEGATED_CMP[expr.op], expr.a, expr.b)
    return bin_expr("eq", expr, FALSE)


def truth_of(expr: Expr) -> Expr:
    """Coerce a word-valued expression to a truth-valued one (≠ 0)."""
    if isinstance(expr, Const):
        return TRUE if expr.value != 0 else FALSE
    if _is_boolean(expr):
        return expr
    return bin_expr("ne", expr, FALSE)


_EMPTY_SYMS: FrozenSet[str] = frozenset()


def free_syms(expr: Expr) -> FrozenSet[str]:
    """Names of all symbolic variables occurring in ``expr``.

    Memoized on the node: expressions are immutable and heavily shared
    (DAG-shaped after substitution), so the naive tree walk is
    exponential in practice while this is amortized O(1).
    """
    cached = expr.__dict__.get("_syms")
    if cached is not None:
        return cached
    if isinstance(expr, Sym):
        result = frozenset((expr.name,))
    elif isinstance(expr, BinExpr):
        result = free_syms(expr.a) | free_syms(expr.b)
    else:
        result = _EMPTY_SYMS
    object.__setattr__(expr, "_syms", result)
    return result


def substitute(expr: Expr, bindings: Dict[str, Expr]) -> Expr:
    """Replace symbols by expressions, re-simplifying along the way."""
    if not free_syms(expr) & bindings.keys():
        return expr  # nothing to replace anywhere below: share the node
    if isinstance(expr, Sym):
        return bindings.get(expr.name, expr)
    if isinstance(expr, BinExpr):
        a = substitute(expr.a, bindings)
        b = substitute(expr.b, bindings)
        if a is expr.a and b is expr.b:
            return expr
        return bin_expr(expr.op, a, b)
    return expr


def evaluate(expr: Expr, model: Dict[str, int]) -> Optional[int]:
    """Evaluate under a full model; None on division by zero or a
    symbol missing from the model."""
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, Sym):
        value = model.get(expr.name)
        return to_unsigned(value) if value is not None else None
    if isinstance(expr, BinExpr):
        a = evaluate(expr.a, model)
        b = evaluate(expr.b, model)
        if a is None or b is None:
            return None
        return apply_op(expr.op, a, b)
    raise TypeError(f"not an expression: {expr!r}")


def expr_size(expr: Expr) -> int:
    """Node count, used for search heuristics and complexity caps.

    Memoized like :func:`free_syms` — shared sub-DAGs are counted once
    per node, never re-walked.
    """
    cached = expr.__dict__.get("_size")
    if cached is not None:
        return cached
    if isinstance(expr, BinExpr):
        result = 1 + expr_size(expr.a) + expr_size(expr.b)
    else:
        result = 1
    object.__setattr__(expr, "_size", result)
    return result


ExprLike = Union[Expr, int]


def as_expr(value: ExprLike) -> Expr:
    return Const(value) if isinstance(value, int) else value


# ---------------------------------------------------------------------------
# Canonical JSON-safe serialization (suffix artifacts, cache exports)
# ---------------------------------------------------------------------------

def expr_to_obj(expr: Expr) -> Union[int, str, list]:
    """Expr → JSON-safe object (int / "$name" / ["op", a, b])."""
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, Sym):
        return f"${expr.name}"
    if isinstance(expr, BinExpr):
        return [expr.op, expr_to_obj(expr.a), expr_to_obj(expr.b)]
    raise TypeError(f"unserializable expression {expr!r}")


def expr_from_obj(obj: Union[int, str, list]) -> Expr:
    if isinstance(obj, int):
        return Const(obj)
    if isinstance(obj, str):
        if not obj.startswith("$"):
            raise ValueError(f"malformed symbol literal {obj!r}")
        return Sym(obj[1:])
    if isinstance(obj, list) and len(obj) == 3:
        return BinExpr(obj[0], expr_from_obj(obj[1]), expr_from_obj(obj[2]))
    raise ValueError(f"malformed expression object {obj!r}")
