"""Process-lifecycle helpers: translating termination signals into the
interrupt path the long-running entry points already handle.

The batch triage service and the fuzz campaign both treat
``KeyboardInterrupt`` as "stop cleanly": terminate the worker pool (no
zombies), keep the partial verdicts, flag the run ``interrupted``, and
exit 130.  Supervisors, however, stop services with SIGTERM, which by
default kills the interpreter without unwinding any of that.
:func:`deliver_sigterm_as_interrupt` closes the gap by installing a
handler that raises ``KeyboardInterrupt`` at the next bytecode
boundary, so one interrupt path serves ^C, ``kill``, and init systems
alike.

Signal handlers are process-global state, so the context manager always
restores the previous handler — nesting and test isolation stay sound.
Installation is only possible from the main thread (a CPython rule);
elsewhere the context manager is a no-op, which is exactly right for
library callers embedded in servers that own their own signal policy.
"""

from __future__ import annotations

import contextlib
import signal
import threading
from typing import Iterator, Sequence

#: the exit code of an interrupted run (128 + SIGINT, the shell
#: convention both `res triage` and `res fuzz` already use)
INTERRUPT_EXIT_CODE = 130


def _in_main_thread() -> bool:
    return threading.current_thread() is threading.main_thread()


@contextlib.contextmanager
def deliver_sigterm_as_interrupt(
        extra_signals: Sequence[int] = ()) -> Iterator[bool]:
    """Within the block, SIGTERM (plus ``extra_signals``) raises
    ``KeyboardInterrupt`` in the main thread.

    Yields whether the handlers were actually installed (False when not
    in the main thread — the block still runs, signals keep their prior
    disposition).
    """
    if not _in_main_thread():
        yield False
        return
    managed = [signal.SIGTERM, *extra_signals]

    def raise_interrupt(signum, frame):  # pragma: no cover - thin shim
        raise KeyboardInterrupt(f"signal {signum}")

    previous = {}
    try:
        for signum in managed:
            previous[signum] = signal.signal(signum, raise_interrupt)
    except (OSError, ValueError):
        # Exotic host (no SIGTERM / non-main interpreter): behave as a
        # no-op rather than breaking the wrapped run.
        for signum, handler in previous.items():
            signal.signal(signum, handler)
        yield False
        return
    try:
        yield True
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
