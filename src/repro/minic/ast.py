"""Abstract syntax tree of MiniC.

MiniC is the C-like source language of this reproduction: 64-bit ints,
pointers, arrays, functions, globals, plus the threading primitives the
paper's workloads need (``spawn``/``join``/``lock``/``unlock``) and the
failure primitives (``assert``/``abort``).  Every node carries its
source line so the compiler can thread debug info into the IR and the
debugger can map suffix steps back to source.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


class Node:
    line: int = 0


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------

class Expr(Node):
    pass


@dataclass
class IntLit(Expr):
    value: int
    line: int = 0


@dataclass
class Var(Expr):
    name: str
    line: int = 0


@dataclass
class Unary(Expr):
    """Operators: ``-`` (negate), ``!`` (logical not), ``~`` (bitwise not)."""

    op: str
    operand: Expr
    line: int = 0


@dataclass
class Binary(Expr):
    """All C binary operators MiniC supports, including short-circuit ones."""

    op: str
    left: Expr
    right: Expr
    line: int = 0


@dataclass
class Index(Expr):
    """``base[index]`` — array element or pointer arithmetic deref."""

    base: Expr
    index: Expr
    line: int = 0


@dataclass
class Deref(Expr):
    """``*pointer``."""

    pointer: Expr
    line: int = 0


@dataclass
class AddrOf(Expr):
    """``&lvalue`` where lvalue is a Var, Index, or Deref."""

    target: Expr
    line: int = 0


@dataclass
class Call(Expr):
    name: str
    args: List[Expr] = field(default_factory=list)
    line: int = 0


@dataclass
class InputExpr(Expr):
    """``input()`` — one word of external, attacker-controllable input."""

    line: int = 0


@dataclass
class MallocExpr(Expr):
    """``malloc(n)`` — allocate ``n`` words, yields the base address."""

    size: Expr = None  # type: ignore[assignment]
    line: int = 0


@dataclass
class SpawnExpr(Expr):
    """``spawn f(args)`` — start a thread, yields its tid."""

    name: str = ""
    args: List[Expr] = field(default_factory=list)
    line: int = 0


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------

class Stmt(Node):
    pass


@dataclass
class Decl(Stmt):
    """``int x;`` / ``int x = e;`` / ``int a[N];``"""

    name: str
    array_size: Optional[int] = None
    init: Optional[Expr] = None
    line: int = 0


@dataclass
class Assign(Stmt):
    """``lvalue = expr;`` — lvalue is Var, Index, or Deref."""

    target: Expr
    value: Expr
    line: int = 0


@dataclass
class ExprStmt(Stmt):
    expr: Expr
    line: int = 0


@dataclass
class If(Stmt):
    cond: Expr
    then_body: List[Stmt] = field(default_factory=list)
    else_body: List[Stmt] = field(default_factory=list)
    line: int = 0


@dataclass
class While(Stmt):
    cond: Expr
    body: List[Stmt] = field(default_factory=list)
    line: int = 0


@dataclass
class For(Stmt):
    """``for (init; cond; step) body`` — init/step are statements."""

    init: Optional[Stmt] = None
    cond: Optional[Expr] = None
    step: Optional[Stmt] = None
    body: List[Stmt] = field(default_factory=list)
    line: int = 0


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None
    line: int = 0


@dataclass
class Assert(Stmt):
    cond: Expr = None  # type: ignore[assignment]
    message: str = ""
    line: int = 0


@dataclass
class OutputStmt(Stmt):
    value: Expr = None  # type: ignore[assignment]
    line: int = 0


@dataclass
class LockStmt(Stmt):
    addr: Expr = None  # type: ignore[assignment]
    line: int = 0


@dataclass
class UnlockStmt(Stmt):
    addr: Expr = None  # type: ignore[assignment]
    line: int = 0


@dataclass
class JoinStmt(Stmt):
    tid: Expr = None  # type: ignore[assignment]
    line: int = 0


@dataclass
class FreeStmt(Stmt):
    addr: Expr = None  # type: ignore[assignment]
    line: int = 0


@dataclass
class AbortStmt(Stmt):
    message: str = ""
    line: int = 0


@dataclass
class HaltStmt(Stmt):
    code: Optional[Expr] = None
    line: int = 0


# --------------------------------------------------------------------------
# Top level
# --------------------------------------------------------------------------

@dataclass
class FuncDef(Node):
    name: str
    params: List[str] = field(default_factory=list)
    body: List[Stmt] = field(default_factory=list)
    line: int = 0


@dataclass
class GlobalDecl(Node):
    name: str
    array_size: Optional[int] = None
    init: Optional[List[int]] = None
    line: int = 0


@dataclass
class ProgramAST(Node):
    globals: List[GlobalDecl] = field(default_factory=list)
    functions: List[FuncDef] = field(default_factory=list)
