"""MiniC: the C-like source language of the reproduction.

The one-call entry point is :func:`compile_source`, which takes MiniC
text and returns a verified IR :class:`repro.ir.Module` ready for the
VM, the symbolic executor, and RES.
"""

from repro.ir.module import Module
from repro.ir.verify import verify_module
from repro.minic.lexer import Token, tokenize
from repro.minic.lower import lower_program
from repro.minic.parser import parse
from repro.minic.typecheck import check_program
from repro.minic.unparse import unparse


def compile_source(source: str, name: str = "module") -> Module:
    """Compile MiniC source text into a verified IR module."""
    program = parse(source)
    module = lower_program(program, name=name)
    verify_module(module)
    return module


__all__ = [
    "Token",
    "check_program",
    "compile_source",
    "lower_program",
    "parse",
    "tokenize",
    "unparse",
]
