"""MiniC unparser: AST → parseable source text.

The inverse of :func:`repro.minic.parser.parse`, up to formatting:
``unparse`` is a fixed point of ``parse`` (``unparse(parse(s))`` ==
``unparse(parse(unparse(parse(s))))``), and its output compiles to the
same IR.  Expressions are fully parenthesized — safe in every context,
including lvalues, because the parser unwraps parentheses before the
lvalue check.

Consumers: the fuzz shrinker rewrites programs AST-to-AST and needs
source back out; tooling that wants to pretty-print or transform
workloads can use it the same way.
"""

from __future__ import annotations

from typing import List

from repro.minic import ast


def expr_src(expr: ast.Expr) -> str:
    """Fully parenthesized expression text."""
    if isinstance(expr, ast.IntLit):
        return f"({expr.value})" if expr.value < 0 else str(expr.value)
    if isinstance(expr, ast.Var):
        return expr.name
    if isinstance(expr, ast.Unary):
        return f"({expr.op}{expr_src(expr.operand)})"
    if isinstance(expr, ast.Binary):
        return f"({expr_src(expr.left)} {expr.op} {expr_src(expr.right)})"
    if isinstance(expr, ast.Index):
        base = expr_src(expr.base)
        if not isinstance(expr.base, ast.Var):
            base = f"({base})"
        return f"{base}[{expr_src(expr.index)}]"
    if isinstance(expr, ast.Deref):
        return f"(*({expr_src(expr.pointer)}))"
    if isinstance(expr, ast.AddrOf):
        return f"(&({expr_src(expr.target)}))"
    if isinstance(expr, ast.Call):
        args = ", ".join(expr_src(a) for a in expr.args)
        return f"{expr.name}({args})"
    if isinstance(expr, ast.InputExpr):
        return "input()"
    if isinstance(expr, ast.MallocExpr):
        return f"malloc({expr_src(expr.size)})"
    if isinstance(expr, ast.SpawnExpr):
        args = ", ".join(expr_src(a) for a in expr.args)
        return f"spawn {expr.name}({args})"
    raise TypeError(f"cannot unparse expression {type(expr).__name__}")


def stmt_src(stmt: ast.Stmt, indent: str, out: List[str]) -> None:
    """Append the source lines of one statement to ``out``."""
    if isinstance(stmt, ast.Decl):
        if stmt.array_size is not None:
            out.append(f"{indent}int {stmt.name}[{stmt.array_size}];")
        elif stmt.init is not None:
            out.append(f"{indent}int {stmt.name} = {expr_src(stmt.init)};")
        else:
            out.append(f"{indent}int {stmt.name};")
    elif isinstance(stmt, ast.Assign):
        out.append(f"{indent}{expr_src(stmt.target)} = "
                   f"{expr_src(stmt.value)};")
    elif isinstance(stmt, ast.ExprStmt):
        out.append(f"{indent}{expr_src(stmt.expr)};")
    elif isinstance(stmt, ast.If):
        out.append(f"{indent}if ({expr_src(stmt.cond)}) {{")
        for s in stmt.then_body:
            stmt_src(s, indent + "    ", out)
        if stmt.else_body:
            out.append(f"{indent}}} else {{")
            for s in stmt.else_body:
                stmt_src(s, indent + "    ", out)
        out.append(f"{indent}}}")
    elif isinstance(stmt, ast.While):
        out.append(f"{indent}while ({expr_src(stmt.cond)}) {{")
        for s in stmt.body:
            stmt_src(s, indent + "    ", out)
        out.append(f"{indent}}}")
    elif isinstance(stmt, ast.For):
        if stmt.init is not None:
            tmp: List[str] = []
            stmt_src(stmt.init, "", tmp)
            init = tmp[0]
        else:
            init = ";"
        cond = expr_src(stmt.cond) if stmt.cond is not None else ""
        step = ""
        if stmt.step is not None:
            tmp = []
            stmt_src(stmt.step, "", tmp)
            step = tmp[0].rstrip(";")
        out.append(f"{indent}for ({init} {cond}; {step}) {{")
        for s in stmt.body:
            stmt_src(s, indent + "    ", out)
        out.append(f"{indent}}}")
    elif isinstance(stmt, ast.Return):
        if stmt.value is not None:
            out.append(f"{indent}return {expr_src(stmt.value)};")
        else:
            out.append(f"{indent}return;")
    elif isinstance(stmt, ast.Assert):
        if stmt.message:
            out.append(f"{indent}assert({expr_src(stmt.cond)}, "
                       f"\"{stmt.message}\");")
        else:
            out.append(f"{indent}assert({expr_src(stmt.cond)});")
    elif isinstance(stmt, ast.OutputStmt):
        out.append(f"{indent}output({expr_src(stmt.value)});")
    elif isinstance(stmt, ast.LockStmt):
        out.append(f"{indent}lock({expr_src(stmt.addr)});")
    elif isinstance(stmt, ast.UnlockStmt):
        out.append(f"{indent}unlock({expr_src(stmt.addr)});")
    elif isinstance(stmt, ast.JoinStmt):
        out.append(f"{indent}join({expr_src(stmt.tid)});")
    elif isinstance(stmt, ast.FreeStmt):
        out.append(f"{indent}free({expr_src(stmt.addr)});")
    elif isinstance(stmt, ast.AbortStmt):
        if stmt.message:
            out.append(f"{indent}abort(\"{stmt.message}\");")
        else:
            out.append(f"{indent}abort();")
    elif isinstance(stmt, ast.HaltStmt):
        if stmt.code is not None:
            out.append(f"{indent}halt({expr_src(stmt.code)});")
        else:
            out.append(f"{indent}halt();")
    else:
        raise TypeError(f"cannot unparse statement {type(stmt).__name__}")


def unparse(program: ast.ProgramAST) -> str:
    """Render a program AST back to parseable MiniC source."""
    out: List[str] = []
    for gvar in program.globals:
        decl = f"global int {gvar.name}"
        if gvar.array_size is not None:
            decl += f"[{gvar.array_size}]"
        if gvar.init is not None:
            if len(gvar.init) == 1 and gvar.array_size is None:
                decl += f" = {gvar.init[0]}"
            else:
                decl += " = {" + ", ".join(str(v) for v in gvar.init) + "}"
        out.append(decl + ";")
    if program.globals:
        out.append("")
    for func in program.functions:
        params = ", ".join(f"int {p}" for p in func.params)
        out.append(f"func {func.name}({params}) {{")
        for stmt in func.body:
            stmt_src(stmt, "    ", out)
        out.append("}")
        out.append("")
    return "\n".join(out).rstrip() + "\n"
