"""Lowering from the MiniC AST to the register IR.

Conventions:

* Scalars live in virtual registers unless their address is taken, in
  which case they get a stack-frame slot (like LLVM's ``alloca`` +
  mem2reg in reverse).
* Local arrays always live in frame slots; global arrays in the global
  segment.  Evaluating an array name yields its base address (C decay).
* ``/ % < <= > >=`` and ``>>`` are signed, matching C on ``long``.
* ``&&``/``||`` short-circuit through control flow.

Debug info: ``Function.var_regs`` and ``Function.frame_vars`` map source
variable names to their storage, and each emitted instruction carries a
source line, so the reverse debugger can print source variables from
reconstructed snapshots.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Union

from repro.errors import CompileError
from repro.ir.instructions import (
    AbortInst,
    AllocInst,
    AssertInst,
    BinInst,
    BrInst,
    CallInst,
    CBrInst,
    CmpInst,
    ConstInst,
    FrameAddrInst,
    FreeInst,
    GAddrInst,
    HaltInst,
    Imm,
    InputInst,
    JoinInst,
    LoadInst,
    LockInst,
    MovInst,
    Operand,
    OutputInst,
    Reg,
    RetInst,
    SpawnInst,
    StoreInst,
    UnlockInst,
)
from repro.ir.module import Function, GlobalVar, Module
from repro.minic import ast
from repro.minic.typecheck import check_program

_CMP_OPS = {"==": "eq", "!=": "ne", "<": "slt", "<=": "sle", ">": "sgt", ">=": "sge"}
_BIN_OPS = {
    "+": "add", "-": "sub", "*": "mul", "/": "sdiv", "%": "srem",
    "&": "and", "|": "or", "^": "xor", "<<": "shl", ">>": "ashr",
}


class _Storage:
    """Where a local variable lives: a register or a frame slot."""

    __slots__ = ("reg", "frame_offset", "is_array")

    def __init__(self, reg: Optional[Reg] = None,
                 frame_offset: Optional[int] = None, is_array: bool = False):
        self.reg = reg
        self.frame_offset = frame_offset
        self.is_array = is_array


def lower_program(program: ast.ProgramAST, name: str = "module") -> Module:
    """Lower a checked AST into a verified-shape IR module."""
    check_program(program)
    module = Module(name=name)
    for gvar in program.globals:
        size = gvar.array_size if gvar.array_size is not None else 1
        module.add_global(GlobalVar(name=gvar.name, size=size, init=gvar.init))
    global_arrays = {g.name for g in program.globals if g.array_size is not None}
    for func_ast in program.functions:
        module.add_function(
            _FunctionLowerer(module, func_ast, global_arrays).lower()
        )
    return module


class _FunctionLowerer:
    def __init__(self, module: Module, func_ast: ast.FuncDef, global_arrays: Set[str]):
        self.module = module
        self.ast = func_ast
        self.global_arrays = global_arrays
        self.func = Function(name=func_ast.name)
        self.scopes: List[Dict[str, _Storage]] = []
        self.temp_counter = 0
        self.label_counter = 0
        self.block = None  # current BasicBlock
        self.frame_cursor = 0
        self.address_taken = _address_taken_names(func_ast)

    # -- small builders -------------------------------------------------------

    def _temp(self) -> Reg:
        self.temp_counter += 1
        return Reg(f"t{self.temp_counter}")

    def _label(self, hint: str) -> str:
        self.label_counter += 1
        return f"{hint}{self.label_counter}"

    def _emit(self, instr) -> None:
        if self.block is None:
            # unreachable code after a terminator: drop it into a dead block
            self.block = self.func.add_block(self._label("dead"))
        self.block.instrs.append(instr)

    def _start_block(self, label: str) -> None:
        self.block = self.func.add_block(label)

    def _terminate(self, instr) -> None:
        self._emit(instr)
        self.block = None

    def _branch_to(self, label: str, line: int) -> None:
        if self.block is not None:
            self._terminate(BrInst(target=label, line=line))

    # -- scope handling -----------------------------------------------------

    def _lookup(self, name: str) -> Optional[_Storage]:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        return None

    def _declare_local(self, decl: ast.Decl) -> _Storage:
        if decl.array_size is not None:
            storage = _Storage(frame_offset=self.frame_cursor, is_array=True)
            self.frame_cursor += decl.array_size
            self.func.frame_vars[decl.name] = storage.frame_offset
        elif decl.name in self.address_taken:
            storage = _Storage(frame_offset=self.frame_cursor)
            self.frame_cursor += 1
            self.func.frame_vars[decl.name] = storage.frame_offset
        else:
            reg = Reg(f"v_{decl.name}_{self.temp_counter}")
            self.temp_counter += 1
            storage = _Storage(reg=reg)
            self.func.var_regs[decl.name] = reg
        self.scopes[-1][decl.name] = storage
        return storage

    # -- top level ------------------------------------------------------------

    def lower(self) -> Function:
        self.scopes.append({})
        self._start_block("entry")
        self.func.entry = "entry"
        for param in self.ast.params:
            reg = Reg(f"p_{param}")
            self.func.params.append(reg)
            if param in self.address_taken:
                storage = _Storage(frame_offset=self.frame_cursor)
                self.frame_cursor += 1
                self.func.frame_vars[param] = storage.frame_offset
                addr = self._temp()
                self._emit(FrameAddrInst(dst=addr, offset=storage.frame_offset,
                                         line=self.ast.line))
                self._emit(StoreInst(addr=addr, value=reg, line=self.ast.line))
                self.scopes[-1][param] = storage
            else:
                self.func.var_regs[param] = reg
                self.scopes[-1][param] = _Storage(reg=reg)
        self._lower_body(self.ast.body)
        if self.block is not None:
            self._terminate(RetInst(value=Imm(0), line=self.ast.line))
        self.func.frame_words = self.frame_cursor
        return self.func

    def _lower_body(self, body: List[ast.Stmt]) -> None:
        self.scopes.append({})
        for stmt in body:
            self._lower_stmt(stmt)
        self.scopes.pop()

    # -- statements -------------------------------------------------------------

    def _lower_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Decl):
            storage = self._declare_local(stmt)
            if stmt.init is not None:
                value = self._lower_expr(stmt.init)
                self._store_to(storage, value, stmt.line)
        elif isinstance(stmt, ast.Assign):
            self._lower_assign(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self._lower_expr(stmt.expr)
        elif isinstance(stmt, ast.If):
            self._lower_if(stmt)
        elif isinstance(stmt, ast.While):
            self._lower_while(stmt)
        elif isinstance(stmt, ast.For):
            self._lower_for(stmt)
        elif isinstance(stmt, ast.Return):
            value = self._lower_expr(stmt.value) if stmt.value is not None else Imm(0)
            self._terminate(RetInst(value=value, line=stmt.line))
        elif isinstance(stmt, ast.Assert):
            cond = self._lower_expr(stmt.cond)
            self._emit(AssertInst(cond=cond, message=stmt.message, line=stmt.line))
        elif isinstance(stmt, ast.OutputStmt):
            value = self._lower_expr(stmt.value)
            self._emit(OutputInst(value=value, line=stmt.line))
        elif isinstance(stmt, ast.LockStmt):
            addr = self._lower_expr(stmt.addr)
            self._emit(LockInst(addr=addr, line=stmt.line))
        elif isinstance(stmt, ast.UnlockStmt):
            addr = self._lower_expr(stmt.addr)
            self._emit(UnlockInst(addr=addr, line=stmt.line))
        elif isinstance(stmt, ast.JoinStmt):
            tid = self._lower_expr(stmt.tid)
            self._emit(JoinInst(tid=tid, line=stmt.line))
        elif isinstance(stmt, ast.FreeStmt):
            addr = self._lower_expr(stmt.addr)
            self._emit(FreeInst(addr=addr, line=stmt.line))
        elif isinstance(stmt, ast.AbortStmt):
            self._terminate(AbortInst(message=stmt.message, line=stmt.line))
        elif isinstance(stmt, ast.HaltStmt):
            code = self._lower_expr(stmt.code) if stmt.code is not None else Imm(0)
            self._terminate(HaltInst(code=code, line=stmt.line))
        else:  # pragma: no cover - typecheck rejects unknown nodes
            raise CompileError(f"cannot lower {type(stmt).__name__}", stmt.line)

    def _store_to(self, storage: _Storage, value: Operand, line: int) -> None:
        if storage.reg is not None:
            self._emit(MovInst(dst=storage.reg, src=value, line=line))
        else:
            addr = self._temp()
            self._emit(FrameAddrInst(dst=addr, offset=storage.frame_offset, line=line))
            self._emit(StoreInst(addr=addr, value=value, line=line))

    def _lower_assign(self, stmt: ast.Assign) -> None:
        target = stmt.target
        if isinstance(target, ast.Var):
            storage = self._lookup(target.name)
            if storage is not None:
                if storage.is_array:
                    raise CompileError(f"cannot assign to array {target.name!r}", stmt.line)
                value = self._lower_expr(stmt.value)
                self._store_to(storage, value, stmt.line)
                return
            if target.name in self.module.globals:
                if target.name in self.global_arrays:
                    raise CompileError(f"cannot assign to array {target.name!r}", stmt.line)
                value = self._lower_expr(stmt.value)
                addr = self._temp()
                self._emit(GAddrInst(dst=addr, name=target.name, line=stmt.line))
                self._emit(StoreInst(addr=addr, value=value, line=stmt.line))
                return
            raise CompileError(f"assignment to undeclared {target.name!r}", stmt.line)
        # Index / Deref: compute address, then store.
        addr = self._lower_address(target)
        value = self._lower_expr(stmt.value)
        self._emit(StoreInst(addr=addr, value=value, line=stmt.line))

    def _lower_if(self, stmt: ast.If) -> None:
        cond = self._lower_expr(stmt.cond)
        then_label = self._label("then")
        else_label = self._label("else") if stmt.else_body else None
        end_label = self._label("endif")
        self._terminate(CBrInst(cond=cond, then_target=then_label,
                                else_target=else_label or end_label, line=stmt.line))
        self._start_block(then_label)
        self._lower_body(stmt.then_body)
        self._branch_to(end_label, stmt.line)
        if else_label is not None:
            self._start_block(else_label)
            self._lower_body(stmt.else_body)
            self._branch_to(end_label, stmt.line)
        self._start_block(end_label)

    def _lower_while(self, stmt: ast.While) -> None:
        head_label = self._label("while")
        body_label = self._label("loopbody")
        end_label = self._label("endloop")
        self._branch_to(head_label, stmt.line)
        self._start_block(head_label)
        cond = self._lower_expr(stmt.cond)
        self._terminate(CBrInst(cond=cond, then_target=body_label,
                                else_target=end_label, line=stmt.line))
        self._start_block(body_label)
        self._lower_body(stmt.body)
        self._branch_to(head_label, stmt.line)
        self._start_block(end_label)

    def _lower_for(self, stmt: ast.For) -> None:
        self.scopes.append({})
        if stmt.init is not None:
            self._lower_stmt(stmt.init)
        head_label = self._label("for")
        body_label = self._label("forbody")
        end_label = self._label("endfor")
        self._branch_to(head_label, stmt.line)
        self._start_block(head_label)
        if stmt.cond is not None:
            cond = self._lower_expr(stmt.cond)
            self._terminate(CBrInst(cond=cond, then_target=body_label,
                                    else_target=end_label, line=stmt.line))
        else:
            self._terminate(BrInst(target=body_label, line=stmt.line))
        self._start_block(body_label)
        self._lower_body(stmt.body)
        if stmt.step is not None:
            self._lower_stmt(stmt.step)
        self._branch_to(head_label, stmt.line)
        self._start_block(end_label)
        self.scopes.pop()

    # -- expressions --------------------------------------------------------------

    def _lower_expr(self, expr: ast.Expr) -> Operand:
        if isinstance(expr, ast.IntLit):
            return Imm(expr.value)
        if isinstance(expr, ast.Var):
            return self._lower_var(expr)
        if isinstance(expr, ast.Unary):
            return self._lower_unary(expr)
        if isinstance(expr, ast.Binary):
            return self._lower_binary(expr)
        if isinstance(expr, ast.Index):
            addr = self._lower_address(expr)
            dst = self._temp()
            self._emit(LoadInst(dst=dst, addr=addr, line=expr.line))
            return dst
        if isinstance(expr, ast.Deref):
            pointer = self._lower_expr(expr.pointer)
            dst = self._temp()
            self._emit(LoadInst(dst=dst, addr=pointer, line=expr.line))
            return dst
        if isinstance(expr, ast.AddrOf):
            return self._lower_address(expr.target)
        if isinstance(expr, ast.Call):
            args = [self._lower_expr(a) for a in expr.args]
            dst = self._temp()
            self._emit(CallInst(dst=dst, callee=expr.name, args=args, line=expr.line))
            return dst
        if isinstance(expr, ast.InputExpr):
            dst = self._temp()
            self._emit(InputInst(dst=dst, line=expr.line))
            return dst
        if isinstance(expr, ast.MallocExpr):
            size = self._lower_expr(expr.size)
            dst = self._temp()
            self._emit(AllocInst(dst=dst, size=size, line=expr.line))
            return dst
        if isinstance(expr, ast.SpawnExpr):
            args = [self._lower_expr(a) for a in expr.args]
            dst = self._temp()
            self._emit(SpawnInst(dst=dst, callee=expr.name, args=args, line=expr.line))
            return dst
        raise CompileError(f"cannot lower {type(expr).__name__}", expr.line)

    def _lower_var(self, expr: ast.Var) -> Operand:
        storage = self._lookup(expr.name)
        if storage is not None:
            if storage.reg is not None:
                return storage.reg
            addr = self._temp()
            self._emit(FrameAddrInst(dst=addr, offset=storage.frame_offset, line=expr.line))
            if storage.is_array:
                return addr  # arrays decay to their base address
            dst = self._temp()
            self._emit(LoadInst(dst=dst, addr=addr, line=expr.line))
            return dst
        if expr.name in self.module.globals:
            addr = self._temp()
            self._emit(GAddrInst(dst=addr, name=expr.name, line=expr.line))
            if expr.name in self.global_arrays:
                return addr
            dst = self._temp()
            self._emit(LoadInst(dst=dst, addr=addr, line=expr.line))
            return dst
        raise CompileError(f"use of undeclared variable {expr.name!r}", expr.line)

    def _lower_address(self, lvalue: ast.Expr) -> Operand:
        """Address of an lvalue (Var with storage, Index, or Deref)."""
        if isinstance(lvalue, ast.Var):
            storage = self._lookup(lvalue.name)
            if storage is not None:
                if storage.reg is not None:
                    raise CompileError(
                        f"internal: {lvalue.name!r} should have a frame slot", lvalue.line
                    )
                addr = self._temp()
                self._emit(FrameAddrInst(dst=addr, offset=storage.frame_offset,
                                         line=lvalue.line))
                return addr
            if lvalue.name in self.module.globals:
                addr = self._temp()
                self._emit(GAddrInst(dst=addr, name=lvalue.name, line=lvalue.line))
                return addr
            raise CompileError(f"address of undeclared {lvalue.name!r}", lvalue.line)
        if isinstance(lvalue, ast.Index):
            base = self._lower_expr(lvalue.base)
            index = self._lower_expr(lvalue.index)
            if isinstance(index, Imm) and index.value == 0:
                return base
            addr = self._temp()
            self._emit(BinInst(op="add", dst=addr, a=base, b=index, line=lvalue.line))
            return addr
        if isinstance(lvalue, ast.Deref):
            return self._lower_expr(lvalue.pointer)
        raise CompileError("expression is not an lvalue", lvalue.line)

    def _lower_unary(self, expr: ast.Unary) -> Operand:
        operand = self._lower_expr(expr.operand)
        dst = self._temp()
        if expr.op == "-":
            self._emit(BinInst(op="sub", dst=dst, a=Imm(0), b=operand, line=expr.line))
        elif expr.op == "!":
            self._emit(CmpInst(op="eq", dst=dst, a=operand, b=Imm(0), line=expr.line))
        elif expr.op == "~":
            self._emit(BinInst(op="xor", dst=dst, a=operand, b=Imm(-1), line=expr.line))
        else:  # pragma: no cover
            raise CompileError(f"unknown unary op {expr.op!r}", expr.line)
        return dst

    def _lower_binary(self, expr: ast.Binary) -> Operand:
        if expr.op in ("&&", "||"):
            return self._lower_short_circuit(expr)
        left = self._lower_expr(expr.left)
        right = self._lower_expr(expr.right)
        dst = self._temp()
        if expr.op in _CMP_OPS:
            self._emit(CmpInst(op=_CMP_OPS[expr.op], dst=dst, a=left, b=right,
                               line=expr.line))
        elif expr.op in _BIN_OPS:
            self._emit(BinInst(op=_BIN_OPS[expr.op], dst=dst, a=left, b=right,
                               line=expr.line))
        else:  # pragma: no cover
            raise CompileError(f"unknown binary op {expr.op!r}", expr.line)
        return dst

    def _lower_short_circuit(self, expr: ast.Binary) -> Operand:
        result = self._temp()
        rhs_label = self._label("sc_rhs")
        end_label = self._label("sc_end")
        left = self._lower_expr(expr.left)
        left_bool = self._temp()
        self._emit(CmpInst(op="ne", dst=left_bool, a=left, b=Imm(0), line=expr.line))
        self._emit(MovInst(dst=result, src=left_bool, line=expr.line))
        if expr.op == "&&":
            self._terminate(CBrInst(cond=left_bool, then_target=rhs_label,
                                    else_target=end_label, line=expr.line))
        else:
            self._terminate(CBrInst(cond=left_bool, then_target=end_label,
                                    else_target=rhs_label, line=expr.line))
        self._start_block(rhs_label)
        right = self._lower_expr(expr.right)
        right_bool = self._temp()
        self._emit(CmpInst(op="ne", dst=right_bool, a=right, b=Imm(0), line=expr.line))
        self._emit(MovInst(dst=result, src=right_bool, line=expr.line))
        self._branch_to(end_label, expr.line)
        self._start_block(end_label)
        return result


def _address_taken_names(func_ast: ast.FuncDef) -> Set[str]:
    """Names whose address is taken anywhere in the function body."""
    names: Set[str] = set()

    def walk_expr(expr: ast.Expr) -> None:
        if isinstance(expr, ast.AddrOf):
            target = expr.target
            if isinstance(target, ast.Var):
                names.add(target.name)
            else:
                walk_expr(target)
            return
        for attr in ("operand", "left", "right", "base", "index", "pointer", "size",
                     "cond"):
            child = getattr(expr, attr, None)
            if isinstance(child, ast.Expr):
                walk_expr(child)
        for arg in getattr(expr, "args", []) or []:
            walk_expr(arg)

    def walk_stmt(stmt: ast.Stmt) -> None:
        for attr in ("init", "cond", "value", "target", "expr", "addr", "tid", "code",
                     "step"):
            child = getattr(stmt, attr, None)
            if isinstance(child, ast.Expr):
                walk_expr(child)
            elif isinstance(child, ast.Stmt):
                walk_stmt(child)
        for attr in ("body", "then_body", "else_body"):
            for child in getattr(stmt, attr, []) or []:
                walk_stmt(child)

    for stmt in func_ast.body:
        walk_stmt(stmt)
    return names
