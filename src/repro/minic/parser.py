"""Recursive-descent parser for MiniC with C-style operator precedence."""

from __future__ import annotations

from typing import List, Optional

from repro.errors import CompileError
from repro.minic import ast
from repro.minic.lexer import Token, tokenize

#: Binary operator precedence, C-like (higher binds tighter).
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6, "!=": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}


def parse(source: str) -> ast.ProgramAST:
    """Parse MiniC source text into an AST; raises :class:`CompileError`."""
    return _Parser(tokenize(source)).parse_program()


class _Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing ----------------------------------------------------

    @property
    def cur(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.cur
        if token.kind != "eof":
            self.pos += 1
        return token

    def check(self, kind: str, text: Optional[str] = None) -> bool:
        return self.cur.kind == kind and (text is None or self.cur.text == text)

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        if self.check(kind, text):
            return self.advance()
        return None

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        if not self.check(kind, text):
            want = text or kind
            raise CompileError(
                f"expected {want!r}, found {self.cur.text!r}",
                self.cur.line, self.cur.column,
            )
        return self.advance()

    # -- top level -----------------------------------------------------------

    def parse_program(self) -> ast.ProgramAST:
        program = ast.ProgramAST()
        while not self.check("eof"):
            if self.check("keyword", "global"):
                program.globals.append(self._global_decl())
            elif self.check("keyword", "func"):
                program.functions.append(self._func_def())
            else:
                raise CompileError(
                    f"expected 'global' or 'func', found {self.cur.text!r}",
                    self.cur.line, self.cur.column,
                )
        return program

    def _global_decl(self) -> ast.GlobalDecl:
        start = self.expect("keyword", "global")
        self.expect("keyword", "int")
        name = self.expect("ident").text
        size: Optional[int] = None
        if self.accept("op", "["):
            size = self._int_literal()
            self.expect("op", "]")
        init: Optional[List[int]] = None
        if self.accept("op", "="):
            if self.accept("op", "{"):
                init = [self._int_literal()]
                while self.accept("op", ","):
                    init.append(self._int_literal())
                self.expect("op", "}")
            else:
                init = [self._int_literal()]
        self.expect("op", ";")
        return ast.GlobalDecl(name=name, array_size=size, init=init, line=start.line)

    def _int_literal(self) -> int:
        negative = bool(self.accept("op", "-"))
        token = self.expect("int")
        value = int(token.text, 0)
        return -value if negative else value

    def _func_def(self) -> ast.FuncDef:
        start = self.expect("keyword", "func")
        name = self.expect("ident").text
        self.expect("op", "(")
        params: List[str] = []
        if not self.check("op", ")"):
            while True:
                self.expect("keyword", "int")
                params.append(self.expect("ident").text)
                if not self.accept("op", ","):
                    break
        self.expect("op", ")")
        body = self._block()
        return ast.FuncDef(name=name, params=params, body=body, line=start.line)

    # -- statements ----------------------------------------------------------

    def _block(self) -> List[ast.Stmt]:
        self.expect("op", "{")
        stmts: List[ast.Stmt] = []
        while not self.check("op", "}"):
            stmts.append(self._statement())
        self.expect("op", "}")
        return stmts

    def _block_or_stmt(self) -> List[ast.Stmt]:
        if self.check("op", "{"):
            return self._block()
        return [self._statement()]

    def _statement(self) -> ast.Stmt:
        token = self.cur
        if token.kind == "keyword":
            handler = {
                "int": self._decl_stmt,
                "if": self._if_stmt,
                "while": self._while_stmt,
                "for": self._for_stmt,
                "return": self._return_stmt,
                "assert": self._assert_stmt,
                "output": self._output_stmt,
                "lock": self._lock_stmt,
                "unlock": self._unlock_stmt,
                "join": self._join_stmt,
                "free": self._free_stmt,
                "abort": self._abort_stmt,
                "halt": self._halt_stmt,
            }.get(token.text)
            if handler is not None:
                return handler()
        return self._assign_or_expr_stmt(require_semi=True)

    def _decl_stmt(self) -> ast.Decl:
        start = self.expect("keyword", "int")
        name = self.expect("ident").text
        size: Optional[int] = None
        if self.accept("op", "["):
            size = self._int_literal()
            self.expect("op", "]")
        init: Optional[ast.Expr] = None
        if self.accept("op", "="):
            init = self._expr()
        self.expect("op", ";")
        return ast.Decl(name=name, array_size=size, init=init, line=start.line)

    def _if_stmt(self) -> ast.If:
        start = self.expect("keyword", "if")
        self.expect("op", "(")
        cond = self._expr()
        self.expect("op", ")")
        then_body = self._block_or_stmt()
        else_body: List[ast.Stmt] = []
        if self.accept("keyword", "else"):
            if self.check("keyword", "if"):
                else_body = [self._if_stmt()]
            else:
                else_body = self._block_or_stmt()
        return ast.If(cond=cond, then_body=then_body, else_body=else_body, line=start.line)

    def _while_stmt(self) -> ast.While:
        start = self.expect("keyword", "while")
        self.expect("op", "(")
        cond = self._expr()
        self.expect("op", ")")
        body = self._block_or_stmt()
        return ast.While(cond=cond, body=body, line=start.line)

    def _for_stmt(self) -> ast.For:
        start = self.expect("keyword", "for")
        self.expect("op", "(")
        init: Optional[ast.Stmt] = None
        if not self.check("op", ";"):
            if self.check("keyword", "int"):
                init = self._decl_stmt()  # consumes the ';'
            else:
                init = self._assign_or_expr_stmt(require_semi=True)
        else:
            self.expect("op", ";")
        cond: Optional[ast.Expr] = None
        if not self.check("op", ";"):
            cond = self._expr()
        self.expect("op", ";")
        step: Optional[ast.Stmt] = None
        if not self.check("op", ")"):
            step = self._assign_or_expr_stmt(require_semi=False)
        self.expect("op", ")")
        body = self._block_or_stmt()
        return ast.For(init=init, cond=cond, step=step, body=body, line=start.line)

    def _return_stmt(self) -> ast.Return:
        start = self.expect("keyword", "return")
        value: Optional[ast.Expr] = None
        if not self.check("op", ";"):
            value = self._expr()
        self.expect("op", ";")
        return ast.Return(value=value, line=start.line)

    def _assert_stmt(self) -> ast.Assert:
        start = self.expect("keyword", "assert")
        self.expect("op", "(")
        cond = self._expr()
        message = ""
        if self.accept("op", ","):
            message = self.expect("string").text
        self.expect("op", ")")
        self.expect("op", ";")
        return ast.Assert(cond=cond, message=message, line=start.line)

    def _one_arg_stmt(self, keyword: str, node_cls, attr: str):
        start = self.expect("keyword", keyword)
        self.expect("op", "(")
        value = self._expr()
        self.expect("op", ")")
        self.expect("op", ";")
        node = node_cls(line=start.line)
        setattr(node, attr, value)
        return node

    def _output_stmt(self):
        return self._one_arg_stmt("output", ast.OutputStmt, "value")

    def _lock_stmt(self):
        return self._one_arg_stmt("lock", ast.LockStmt, "addr")

    def _unlock_stmt(self):
        return self._one_arg_stmt("unlock", ast.UnlockStmt, "addr")

    def _join_stmt(self):
        return self._one_arg_stmt("join", ast.JoinStmt, "tid")

    def _free_stmt(self):
        return self._one_arg_stmt("free", ast.FreeStmt, "addr")

    def _abort_stmt(self) -> ast.AbortStmt:
        start = self.expect("keyword", "abort")
        self.expect("op", "(")
        message = ""
        if self.check("string"):
            message = self.advance().text
        self.expect("op", ")")
        self.expect("op", ";")
        return ast.AbortStmt(message=message, line=start.line)

    def _halt_stmt(self) -> ast.HaltStmt:
        start = self.expect("keyword", "halt")
        self.expect("op", "(")
        code: Optional[ast.Expr] = None
        if not self.check("op", ")"):
            code = self._expr()
        self.expect("op", ")")
        self.expect("op", ";")
        return ast.HaltStmt(code=code, line=start.line)

    def _assign_or_expr_stmt(self, require_semi: bool) -> ast.Stmt:
        start = self.cur
        expr = self._expr()
        if self.accept("op", "="):
            value = self._expr()
            if require_semi:
                self.expect("op", ";")
            if not isinstance(expr, (ast.Var, ast.Index, ast.Deref)):
                raise CompileError("assignment target is not an lvalue", start.line, start.column)
            return ast.Assign(target=expr, value=value, line=start.line)
        if require_semi:
            self.expect("op", ";")
        return ast.ExprStmt(expr=expr, line=start.line)

    # -- expressions -----------------------------------------------------------

    def _expr(self) -> ast.Expr:
        return self._binary(0)

    def _binary(self, min_prec: int) -> ast.Expr:
        left = self._unary()
        while True:
            token = self.cur
            if token.kind != "op":
                return left
            prec = _PRECEDENCE.get(token.text)
            if prec is None or prec < min_prec:
                return left
            self.advance()
            right = self._binary(prec + 1)
            left = ast.Binary(op=token.text, left=left, right=right, line=token.line)

    def _unary(self) -> ast.Expr:
        token = self.cur
        if token.kind == "op" and token.text in ("-", "!", "~"):
            self.advance()
            return ast.Unary(op=token.text, operand=self._unary(), line=token.line)
        if token.kind == "op" and token.text == "*":
            self.advance()
            return ast.Deref(pointer=self._unary(), line=token.line)
        if token.kind == "op" and token.text == "&":
            self.advance()
            target = self._unary()
            if not isinstance(target, (ast.Var, ast.Index, ast.Deref)):
                raise CompileError("'&' needs an lvalue", token.line, token.column)
            return ast.AddrOf(target=target, line=token.line)
        return self._postfix()

    def _postfix(self) -> ast.Expr:
        expr = self._primary()
        while True:
            if self.accept("op", "["):
                index = self._expr()
                self.expect("op", "]")
                expr = ast.Index(base=expr, index=index, line=self.cur.line)
            else:
                return expr

    def _primary(self) -> ast.Expr:
        token = self.cur
        if token.kind == "int":
            self.advance()
            return ast.IntLit(value=int(token.text, 0), line=token.line)
        if token.kind == "keyword" and token.text == "input":
            self.advance()
            self.expect("op", "(")
            self.expect("op", ")")
            return ast.InputExpr(line=token.line)
        if token.kind == "keyword" and token.text == "malloc":
            self.advance()
            self.expect("op", "(")
            size = self._expr()
            self.expect("op", ")")
            return ast.MallocExpr(size=size, line=token.line)
        if token.kind == "keyword" and token.text == "spawn":
            self.advance()
            name = self.expect("ident").text
            self.expect("op", "(")
            args: List[ast.Expr] = []
            if not self.check("op", ")"):
                args.append(self._expr())
                while self.accept("op", ","):
                    args.append(self._expr())
            self.expect("op", ")")
            return ast.SpawnExpr(name=name, args=args, line=token.line)
        if token.kind == "ident":
            self.advance()
            if self.accept("op", "("):
                args = []
                if not self.check("op", ")"):
                    args.append(self._expr())
                    while self.accept("op", ","):
                        args.append(self._expr())
                self.expect("op", ")")
                return ast.Call(name=token.text, args=args, line=token.line)
            return ast.Var(name=token.text, line=token.line)
        if token.kind == "op" and token.text == "(":
            self.advance()
            expr = self._expr()
            self.expect("op", ")")
            return expr
        raise CompileError(f"unexpected token {token.text!r}", token.line, token.column)
