"""Hand-written lexer for MiniC."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from repro.errors import CompileError

KEYWORDS = {
    "int", "global", "func", "if", "else", "while", "for", "return",
    "assert", "output", "lock", "unlock", "join", "free", "abort", "halt",
    "input", "malloc", "spawn",
}

#: Multi-character operators, longest first so maximal munch works.
MULTI_OPS = ["<<", ">>", "<=", ">=", "==", "!=", "&&", "||"]
SINGLE_OPS = "+-*/%&|^~!<>=()[]{},;"


@dataclass(frozen=True)
class Token:
    kind: str  # "int", "ident", "keyword", "op", "string", "eof"
    text: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"{self.kind}({self.text!r})@{self.line}:{self.column}"


def tokenize(source: str) -> List[Token]:
    """Lex MiniC source into tokens; raises :class:`CompileError`."""
    return list(_tokens(source))


def _tokens(source: str) -> Iterator[Token]:
    line = 1
    col = 1
    i = 0
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            col = 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise CompileError("unterminated block comment", line, col)
            skipped = source[i:end + 2]
            line += skipped.count("\n")
            if "\n" in skipped:
                col = len(skipped) - skipped.rfind("\n")
            else:
                col += len(skipped)
            i = end + 2
            continue
        if ch.isdigit():
            start = i
            if source.startswith("0x", i) or source.startswith("0X", i):
                i += 2
                while i < n and source[i] in "0123456789abcdefABCDEF":
                    i += 1
            else:
                while i < n and source[i].isdigit():
                    i += 1
            text = source[start:i]
            yield Token("int", text, line, col)
            col += i - start
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (source[i].isalnum() or source[i] == "_"):
                i += 1
            text = source[start:i]
            kind = "keyword" if text in KEYWORDS else "ident"
            yield Token(kind, text, line, col)
            col += i - start
            continue
        if ch == '"':
            start = i
            i += 1
            chars: List[str] = []
            while i < n and source[i] != '"':
                if source[i] == "\n":
                    raise CompileError("newline in string literal", line, col)
                if source[i] == "\\" and i + 1 < n:
                    escape = source[i + 1]
                    chars.append({"n": "\n", "t": "\t", '"': '"', "\\": "\\"}.get(escape, escape))
                    i += 2
                else:
                    chars.append(source[i])
                    i += 1
            if i >= n:
                raise CompileError("unterminated string literal", line, col)
            i += 1
            yield Token("string", "".join(chars), line, col)
            col += i - start
            continue
        matched = False
        for op in MULTI_OPS:
            if source.startswith(op, i):
                yield Token("op", op, line, col)
                i += len(op)
                col += len(op)
                matched = True
                break
        if matched:
            continue
        if ch in SINGLE_OPS:
            yield Token("op", ch, line, col)
            i += 1
            col += 1
            continue
        raise CompileError(f"unexpected character {ch!r}", line, col)
    yield Token("eof", "", line, col)
