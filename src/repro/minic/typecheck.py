"""Semantic checks for MiniC programs, run before lowering.

MiniC has a single value type (the 64-bit word), so "type checking" is
really name/arity/shape checking: every variable must be declared before
use, calls must match function arity, array sizes must be positive, and
``main`` must exist and take no parameters.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.errors import CompileError
from repro.minic import ast


def check_program(program: ast.ProgramAST) -> None:
    """Raise :class:`CompileError` on the first semantic problem."""
    func_arity: Dict[str, int] = {}
    global_names: Set[str] = set()

    for gvar in program.globals:
        if gvar.name in global_names:
            raise CompileError(f"duplicate global {gvar.name!r}", gvar.line)
        if gvar.array_size is not None and gvar.array_size <= 0:
            raise CompileError(f"global array {gvar.name!r} has non-positive size", gvar.line)
        global_names.add(gvar.name)

    for func in program.functions:
        if func.name in func_arity:
            raise CompileError(f"duplicate function {func.name!r}", func.line)
        func_arity[func.name] = len(func.params)

    if "main" not in func_arity:
        raise CompileError("program has no main function")
    if func_arity["main"] != 0:
        raise CompileError("main must take no parameters")

    for func in program.functions:
        _FunctionChecker(func, func_arity, global_names).check()


class _FunctionChecker:
    def __init__(self, func: ast.FuncDef, func_arity: Dict[str, int], global_names: Set[str]):
        self.func = func
        self.func_arity = func_arity
        self.global_names = global_names

    def check(self) -> None:
        params = set(self.func.params)
        if len(params) != len(self.func.params):
            raise CompileError(f"duplicate parameter in {self.func.name}", self.func.line)
        self._check_body(self.func.body, [params])

    def _check_body(self, body: List[ast.Stmt], scopes: List[Set[str]]) -> None:
        scopes = scopes + [set()]
        for stmt in body:
            self._check_stmt(stmt, scopes)

    def _declare(self, name: str, line: int, scopes: List[Set[str]]) -> None:
        if name in scopes[-1]:
            raise CompileError(f"redeclaration of {name!r} in {self.func.name}", line)
        scopes[-1].add(name)

    def _is_declared(self, name: str, scopes: List[Set[str]]) -> bool:
        if name in self.global_names:
            return True
        return any(name in scope for scope in scopes)

    def _check_stmt(self, stmt: ast.Stmt, scopes: List[Set[str]]) -> None:
        if isinstance(stmt, ast.Decl):
            if stmt.array_size is not None and stmt.array_size <= 0:
                raise CompileError(f"array {stmt.name!r} has non-positive size", stmt.line)
            if stmt.init is not None:
                if stmt.array_size is not None:
                    raise CompileError(f"array {stmt.name!r} cannot have an initializer", stmt.line)
                self._check_expr(stmt.init, scopes)
            self._declare(stmt.name, stmt.line, scopes)
        elif isinstance(stmt, ast.Assign):
            self._check_expr(stmt.target, scopes)
            self._check_expr(stmt.value, scopes)
        elif isinstance(stmt, ast.ExprStmt):
            self._check_expr(stmt.expr, scopes)
        elif isinstance(stmt, ast.If):
            self._check_expr(stmt.cond, scopes)
            self._check_body(stmt.then_body, scopes)
            self._check_body(stmt.else_body, scopes)
        elif isinstance(stmt, ast.While):
            self._check_expr(stmt.cond, scopes)
            self._check_body(stmt.body, scopes)
        elif isinstance(stmt, ast.For):
            inner = scopes + [set()]
            if stmt.init is not None:
                self._check_stmt(stmt.init, inner)
            if stmt.cond is not None:
                self._check_expr(stmt.cond, inner)
            if stmt.step is not None:
                self._check_stmt(stmt.step, inner)
            self._check_body(stmt.body, inner)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._check_expr(stmt.value, scopes)
        elif isinstance(stmt, ast.Assert):
            self._check_expr(stmt.cond, scopes)
        elif isinstance(stmt, (ast.OutputStmt,)):
            self._check_expr(stmt.value, scopes)
        elif isinstance(stmt, (ast.LockStmt, ast.UnlockStmt)):
            self._check_expr(stmt.addr, scopes)
        elif isinstance(stmt, ast.JoinStmt):
            self._check_expr(stmt.tid, scopes)
        elif isinstance(stmt, ast.FreeStmt):
            self._check_expr(stmt.addr, scopes)
        elif isinstance(stmt, (ast.AbortStmt,)):
            pass
        elif isinstance(stmt, ast.HaltStmt):
            if stmt.code is not None:
                self._check_expr(stmt.code, scopes)
        else:
            raise CompileError(f"unknown statement {type(stmt).__name__}", stmt.line)

    def _check_expr(self, expr: ast.Expr, scopes: List[Set[str]]) -> None:
        if isinstance(expr, ast.IntLit):
            return
        if isinstance(expr, ast.Var):
            if not self._is_declared(expr.name, scopes):
                raise CompileError(
                    f"use of undeclared variable {expr.name!r} in {self.func.name}", expr.line
                )
            return
        if isinstance(expr, ast.Unary):
            self._check_expr(expr.operand, scopes)
            return
        if isinstance(expr, ast.Binary):
            self._check_expr(expr.left, scopes)
            self._check_expr(expr.right, scopes)
            return
        if isinstance(expr, ast.Index):
            self._check_expr(expr.base, scopes)
            self._check_expr(expr.index, scopes)
            return
        if isinstance(expr, ast.Deref):
            self._check_expr(expr.pointer, scopes)
            return
        if isinstance(expr, ast.AddrOf):
            self._check_expr(expr.target, scopes)
            return
        if isinstance(expr, (ast.Call, ast.SpawnExpr)):
            if expr.name not in self.func_arity:
                raise CompileError(f"call to unknown function {expr.name!r}", expr.line)
            if len(expr.args) != self.func_arity[expr.name]:
                raise CompileError(
                    f"{expr.name} expects {self.func_arity[expr.name]} args, got {len(expr.args)}",
                    expr.line,
                )
            for arg in expr.args:
                self._check_expr(arg, scopes)
            return
        if isinstance(expr, ast.InputExpr):
            return
        if isinstance(expr, ast.MallocExpr):
            self._check_expr(expr.size, scopes)
            return
        raise CompileError(f"unknown expression {type(expr).__name__}", expr.line)
