"""Argument parsing and dispatch for the ``res`` command."""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.errors import ReproError
from repro.cli import commands
from repro.cli.loaders import add_config_arguments, add_program_arguments


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="res",
        description="Reverse execution synthesis: post-mortem debugging "
                    "from coredumps, with no runtime recording "
                    "(Zamfir et al., HotOS 2013).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_workloads = sub.add_parser(
        "workloads", help="list the buggy-program catalog")
    p_workloads.set_defaults(func=commands.cmd_workloads)

    p_crash = sub.add_parser(
        "crash", help="trigger a catalog workload and save its coredump")
    p_crash.add_argument("workload", help="catalog workload name")
    p_crash.add_argument("-o", "--output", default="core.json",
                         help="coredump output path (default: %(default)s)")
    p_crash.add_argument("--lbr-depth", type=int, default=16,
                         help="Last Branch Record depth (default: %(default)s)")
    p_crash.set_defaults(func=commands.cmd_crash)

    p_triage = sub.add_parser(
        "triage", help="bucket a bug-report corpus through the sharded "
                       "triage service: WER-style stacks vs RES root "
                       "causes (§3.1)")
    p_triage.add_argument("--reports", type=int, default=40,
                          help="synthetic corpus size (default: %(default)s)")
    p_triage.add_argument("--seed", type=int, default=0,
                          help="corpus RNG seed (default: %(default)s)")
    p_triage.add_argument("--jobs", type=int, default=1,
                          help="triage worker processes "
                               "(default: %(default)s)")
    p_triage.add_argument("--max-depth", type=int, default=16,
                          help="RES suffix depth per report "
                               "(default: %(default)s)")
    p_triage.add_argument("--max-nodes", type=int, default=4000,
                          help="RES node budget per report "
                               "(default: %(default)s)")
    p_triage.add_argument("--corpus-dir", metavar="DIR",
                          help="triage a saved corpus directory "
                               "(coredump JSONs + manifest) instead of "
                               "synthesizing one")
    p_triage.add_argument("--fuzz-count", type=int, default=0,
                          metavar="N",
                          help="synthesize a labeled corpus from N fuzz "
                               "seeds (armed failure class = true cause)")
    p_triage.add_argument("--fuzz-seed", type=int, default=0,
                          help="first fuzz corpus seed "
                               "(default: %(default)s)")
    p_triage.add_argument("--fuzz-duplicates", type=int, default=3,
                          metavar="K",
                          help="file each fuzz crash K times to exercise "
                               "dedup (default: %(default)s)")
    p_triage.add_argument("--save-corpus", metavar="DIR",
                          help="save the corpus (coredumps + manifest) "
                               "before triaging it")
    p_triage.add_argument("--store", metavar="FILE",
                          help="persistent JSON report store, rewritten "
                               "atomically as results stream in")
    p_triage.add_argument("--cache-dir", metavar="DIR",
                          help="cross-run RES result cache: verdicts for "
                               "unchanged (module, coredump, config) keys "
                               "are reused; new verdicts are appended")
    p_triage.add_argument("--warm-from", metavar="DIR", action="append",
                          default=[],
                          help="additional read-only cache directory "
                               "consulted on a miss (repeatable)")
    p_triage.add_argument("--rebucket", action="store_true",
                          help="re-bucket cached history only: every "
                               "report must be a warm cache hit "
                               "(requires --cache-dir/--warm-from); "
                               "no backward search ever runs")
    p_triage.set_defaults(func=commands.cmd_triage)

    p_buckets = sub.add_parser(
        "buckets", help="print the refined bucket hierarchy of a report "
                        "store or a running intake daemon")
    p_buckets.add_argument("store", nargs="?", metavar="FILE",
                           help="report store JSON (from `res triage "
                                "--store` / `res serve --store`)")
    p_buckets.add_argument("--url", metavar="URL",
                           help="query a running daemon's GET /buckets "
                                "instead of reading a store file")
    p_buckets.set_defaults(func=commands.cmd_buckets)

    p_cache = sub.add_parser(
        "cache", help="inspect or compact a cross-run RES result cache")
    p_cache.add_argument("action", choices=("stats", "gc"),
                         help="stats: entry/size/health summary; "
                              "gc: compact rows (last write per key, "
                              "stale schemas dropped)")
    p_cache.add_argument("--cache-dir", required=True, metavar="DIR",
                         help="cache directory (as given to "
                              "`res triage --cache-dir`)")
    p_cache.set_defaults(func=commands.cmd_cache)

    p_serve = sub.add_parser(
        "serve", help="run the always-on crash-intake triage daemon: "
                      "HTTP submissions, durable job queue, historical "
                      "dedup, warm-cache workers")
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="bind address (default: %(default)s)")
    p_serve.add_argument("--port", type=int, default=8321,
                         help="listen port; 0 picks a free port "
                              "(default: %(default)s)")
    p_serve.add_argument("--spool", metavar="DIR", default="res-spool",
                         help="durable job-journal directory; a killed "
                              "daemon resumes every unsettled job from "
                              "it (default: %(default)s)")
    p_serve.add_argument("--store", metavar="FILE",
                         help="persistent JSON report store (same "
                              "document as `res triage --store`)")
    p_serve.add_argument("--cache-dir", metavar="DIR",
                         help="cross-run RES result cache backing the "
                              "workers (see `res triage --cache-dir`)")
    p_serve.add_argument("--warm-from", metavar="DIR", action="append",
                         default=[],
                         help="additional read-only cache directory "
                              "consulted on a miss (repeatable)")
    p_serve.add_argument("--workers", type=int, default=2,
                         help="triage worker processes "
                              "(default: %(default)s)")
    p_serve.add_argument("--worker-mode", choices=("process", "thread"),
                         default="process",
                         help="worker isolation: 'process' runs each "
                              "worker in its own OS process (GIL-free, "
                              "crash-isolated); 'thread' keeps the "
                              "legacy in-process workers "
                              "(default: %(default)s)")
    p_serve.add_argument("--node-id", metavar="NAME",
                         help="fleet node name; enables fleet mode: "
                              "admission is sharded by coredump "
                              "fingerprint over the consistent-hash "
                              "ring of this node + --peers, and the "
                              "journal becomes journal-NAME.jsonl")
    p_serve.add_argument("--peers", action="append", default=[],
                         metavar="NODE=URL",
                         help="fleet peer as name=base-url "
                              "(repeatable, or comma-separated); "
                              "peers share the spool directory")
    p_serve.add_argument("--journal-rotate-mb", type=float, default=0.0,
                         metavar="MB",
                         help="rotate the job journal once the active "
                              "segment exceeds this size, then compact "
                              "closed segments (settled jobs collapse "
                              "to one row); 0 disables "
                              "(default: %(default)s)")
    p_serve.add_argument("--max-queue", type=int, default=64,
                         help="queued-job bound; beyond it submissions "
                              "get 429 + Retry-After "
                              "(default: %(default)s)")
    p_serve.add_argument("--max-depth", type=int, default=16,
                         help="RES suffix depth per report "
                              "(default: %(default)s)")
    p_serve.add_argument("--max-nodes", type=int, default=4000,
                         help="RES node budget per report "
                              "(default: %(default)s)")
    p_serve.add_argument("--max-attempts", type=int, default=3,
                         help="drive attempts per job before it settles "
                              "as failed (default: %(default)s)")
    p_serve.add_argument("--quarantine-after", type=int, default=2,
                         help="workers one job may kill before it is "
                              "quarantined instead of retried "
                              "(default: %(default)s)")
    p_serve.add_argument("--watchdog-timeout", type=float, default=0.0,
                         metavar="SECONDS",
                         help="reap drives running longer than this and "
                              "retry/quarantine the job (0 = disabled, "
                              "the default — a deep drive is slow, not "
                              "hung)")
    p_serve.add_argument("--retry-backoff", type=float, default=0.05,
                         metavar="SECONDS",
                         help="base of the jittered exponential retry "
                              "backoff (default: %(default)s)")
    p_serve.add_argument("--trace-sample", type=float, default=0.0,
                         metavar="RATE",
                         help="flight-recorder sampling rate in [0, 1]: "
                              "traced jobs record per-phase spans served "
                              "by `res trace` and GET /trace/<id> "
                              "(0 disables, the default; equivalent to "
                              "RES_TRACE_SAMPLE in the environment)")
    p_serve.set_defaults(func=commands.cmd_serve)

    p_submit = sub.add_parser(
        "submit", help="submit one coredump to a running intake daemon")
    p_submit.add_argument("coredump", help="coredump JSON file")
    add_program_arguments(p_submit)
    p_submit.add_argument("--url", action="append", default=None,
                          help="daemon base URL (repeatable: "
                               "submissions round-robin across the "
                               "fleet and follow the owning-node "
                               "redirect; default: "
                               "http://127.0.0.1:8321)")
    p_submit.add_argument("--report-id", metavar="ID",
                          help="client-side report identity "
                               "(default: daemon-assigned)")
    p_submit.add_argument("--force", action="store_true",
                          help="recompute even if this fingerprint was "
                               "triaged before (skips dedup)")
    p_submit.add_argument("--wait", action="store_true",
                          help="poll until the verdict lands")
    p_submit.add_argument("--timeout", type=float, default=120.0,
                          help="--wait poll timeout and overall retry "
                               "deadline in seconds (default: %(default)s)")
    p_submit.add_argument("--max-retries", type=int, default=5,
                          help="retries (jittered exponential backoff) "
                               "when the daemon is restarting, its disk "
                               "is full, or its queue pushes back "
                               "(default: %(default)s; 0 = fail fast)")
    p_submit.set_defaults(func=commands.cmd_submit)

    p_status = sub.add_parser(
        "status", help="query a running intake daemon (health + key "
                       "metrics, or one job)")
    p_status.add_argument("job_id", nargs="?",
                          help="job id from `res submit` (omit for the "
                               "service summary)")
    p_status.add_argument("--url", action="append", default=None,
                          help="daemon base URL (repeatable: a job "
                               "query fails over across the fleet; "
                               "the summary reports every node; "
                               "default: http://127.0.0.1:8321)")
    p_status.add_argument("--quarantine", action="store_true",
                          help="list quarantined (poison) jobs with "
                               "their diagnostics instead of the "
                               "service summary")
    p_status.set_defaults(func=commands.cmd_status)

    p_trace = sub.add_parser(
        "trace", help="print one job's flight-recorder waterfall "
                      "(submit -> queue -> drive phases -> settle, "
                      "stitched across fleet nodes)")
    p_trace.add_argument("job_id",
                         help="job id from `res submit` (a raw trace id "
                              "works too)")
    p_trace.add_argument("--url", action="append", default=None,
                         help="daemon base URL (repeatable: tried in "
                              "order until one knows the id; default: "
                              "http://127.0.0.1:8321)")
    p_trace.set_defaults(func=commands.cmd_trace)

    p_top = sub.add_parser(
        "top", help="live fleet dashboard: queue depth, in-flight, "
                    "worker health, warm-hit rate per node + totals")
    p_top.add_argument("--url", action="append", default=None,
                       help="daemon base URL (repeatable: one row per "
                            "node; default: http://127.0.0.1:8321)")
    p_top.add_argument("--interval", type=float, default=2.0,
                       help="refresh interval in seconds "
                            "(default: %(default)s)")
    p_top.add_argument("--iterations", type=int, default=None,
                       metavar="N",
                       help="render N frames then exit (default: "
                            "refresh until Ctrl-C)")
    p_top.add_argument("--no-clear", action="store_true",
                       help="append frames instead of clearing the "
                            "screen (for logs and pipes)")
    p_top.set_defaults(func=commands.cmd_top)

    p_watch = sub.add_parser(
        "watch", help="forward a directory of incoming coredumps to the "
                      "intake daemon (corpus dirs and flat dumps)")
    p_watch.add_argument("directory",
                         help="directory to watch: a saved corpus "
                              "(manifest.json) or flat coredump JSONs")
    p_watch.add_argument("--url", default="http://127.0.0.1:8321",
                         help="daemon base URL (default: %(default)s)")
    group = p_watch.add_mutually_exclusive_group(required=False)
    group.add_argument("--workload", metavar="NAME",
                       help="program for flat coredump directories")
    group.add_argument("--source", metavar="FILE",
                       help="MiniC source for flat coredump directories")
    p_watch.add_argument("--interval", type=float, default=2.0,
                         help="poll interval in seconds "
                              "(default: %(default)s)")
    p_watch.add_argument("--once", action="store_true",
                         help="one scan, then exit (no polling loop)")
    p_watch.add_argument("--max-retries", type=int, default=10,
                         help="consecutive daemon-down scans (each "
                              "backed off exponentially with jitter) "
                              "tolerated before the forwarder gives up "
                              "(default: %(default)s)")
    p_watch.set_defaults(func=commands.cmd_watch)

    p_fuzz = sub.add_parser(
        "fuzz", help="differential fuzzing campaign: generated programs "
                     "cross-checked against independent oracles")
    p_fuzz.add_argument("--seed", type=int, default=0,
                        help="first program seed (default: %(default)s)")
    p_fuzz.add_argument("--count", type=int, default=200,
                        help="number of programs (default: %(default)s)")
    p_fuzz.add_argument("--jobs", type=int, default=1,
                        help="multiprocessing fan-out (default: %(default)s)")
    p_fuzz.add_argument("--max-depth", type=int, default=8,
                        help="RES suffix depth per oracle run "
                             "(default: %(default)s)")
    p_fuzz.add_argument("--max-nodes", type=int, default=300,
                        help="RES node budget per oracle run "
                             "(default: %(default)s)")
    p_fuzz.add_argument("--max-suffixes", type=int, default=12,
                        help="suffixes compared per program "
                             "(default: %(default)s)")
    p_fuzz.add_argument("--threads-prob", type=float, default=0.25,
                        help="probability a program spawns threads "
                             "(default: %(default)s)")
    p_fuzz.add_argument("--hw-fault-prob", type=float, default=0.05,
                        help="probability of a post-hoc coredump bit flip "
                             "(default: %(default)s)")
    p_fuzz.add_argument("--alu-fault-prob", type=float, default=0.03,
                        help="probability of an online ALU miscompute "
                             "(default: %(default)s)")
    p_fuzz.add_argument("--check-forward", action="store_true",
                        help="also run the forward-synthesis baseline "
                             "(slow; informational only)")
    p_fuzz.add_argument("--no-check-cache", action="store_true",
                        help="skip the warm-start oracle (cache-primed "
                             "re-run must be byte-identical; on by "
                             "default)")
    p_fuzz.add_argument("--shrink", action="store_true",
                        help="delta-debug divergent programs to minimal "
                             "repros before writing artifacts")
    p_fuzz.add_argument("--artifacts", default="fuzz-artifacts",
                        help="divergence artifact directory "
                             "(default: %(default)s)")
    p_fuzz.add_argument("--force-divergence", action="store_true",
                        help="test hook: corrupt the naive oracle so every "
                             "suffix-emitting program diverges (validates "
                             "the artifact/shrink pipeline)")
    p_fuzz.set_defaults(func=commands.cmd_fuzz)

    p_disasm = sub.add_parser(
        "disasm", help="compile a program to bytecode and print the "
                       "disassembly")
    add_program_arguments(p_disasm)
    p_disasm.set_defaults(func=commands.cmd_disasm)

    for name, func, extra in (
        ("analyze", commands.cmd_analyze,
         "synthesize suffixes and report the root cause"),
        ("replay", commands.cmd_replay,
         "synthesize one suffix and replay it deterministically"),
        ("hwcheck", commands.cmd_hwcheck,
         "classify the coredump as software- or hardware-caused"),
        ("exploit", commands.cmd_exploit,
         "rate exploitability (RES taint verdict vs heuristic)"),
        ("debug", commands.cmd_debug,
         "run a scripted reverse-debugger session over a suffix"),
    ):
        p = sub.add_parser(name, help=extra)
        p.add_argument("coredump", help="coredump JSON (from `res crash`)")
        add_program_arguments(p)
        add_config_arguments(p)
        p.add_argument("--max-suffixes", type=int, default=64,
                       help="suffix budget (default: %(default)s)")
        if name == "replay":
            p.add_argument("--save", metavar="FILE",
                           help="write the replayed suffix as a reusable "
                                "artifact file")
        if name == "debug":
            p.add_argument("--script", required=True,
                           help="semicolon-separated debugger commands, "
                                "e.g. 'break main; continue; print x'")
            p.add_argument("--artifact", metavar="FILE",
                           help="debug a saved suffix artifact instead of "
                                "synthesizing from the coredump")
        p.set_defaults(func=func)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"res: error: {exc}", file=sys.stderr)
        return 64
    except OSError as exc:
        # Filesystem/network trouble that slipped past the upfront
        # checks still exits with a one-line diagnostic, not a
        # traceback (EX_IOERR).
        print(f"res: i/o error: {exc}", file=sys.stderr)
        return 74


if __name__ == "__main__":
    sys.exit(main())
