"""Shared input loading for the CLI commands.

Every analysis command takes the paper's input pair ``<C, PS>``:
a coredump file (JSON, as written by ``res crash``) and the program —
either a catalog workload name or a MiniC source file.
"""

from __future__ import annotations

import argparse
import os
from pathlib import Path

from repro.errors import ReproError
from repro.ir.module import Module
from repro.minic import compile_source
from repro.core import RESConfig
from repro.vm.coredump import Coredump
from repro.workloads import REGISTRY


class CliError(ReproError):
    """User-facing command-line failure (bad arguments, missing files)."""


def add_program_arguments(parser: argparse.ArgumentParser) -> None:
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument("--workload", metavar="NAME",
                       help="catalog workload supplying the program source")
    group.add_argument("--source", metavar="FILE",
                       help="MiniC source file of the crashed program")


def add_config_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--max-depth", type=int, default=24,
                        help="maximum suffix length in segments "
                             "(default: %(default)s)")
    parser.add_argument("--max-nodes", type=int, default=8000,
                        help="backward-search node budget "
                             "(default: %(default)s)")
    parser.add_argument("--use-lbr", action="store_true",
                        help="prune candidates with the coredump's Last "
                             "Branch Record (§2.4 breadcrumbs)")
    parser.add_argument("--use-log", action="store_true",
                        help="bind suffix outputs to the error-log tail")


def load_module(args: argparse.Namespace) -> Module:
    """Program source → compiled module, from either input style."""
    if args.workload:
        return REGISTRY.get(args.workload).module
    path = Path(args.source)
    if not path.exists():
        raise CliError(f"source file not found: {path}")
    return compile_source(path.read_text(), name=path.stem)


def load_coredump(path_str: str) -> Coredump:
    path = Path(path_str)
    if not path.exists():
        raise CliError(f"coredump file not found: {path}")
    try:
        return Coredump.from_json(path.read_text())
    except (KeyError, ValueError) as exc:
        raise CliError(f"malformed coredump {path}: {exc}") from exc


def _probe_write(directory: Path, label: str) -> None:
    """Prove ``directory`` accepts writes *now*, before hours of triage
    try to persist into it.  (An access-bit check is not enough: tests
    and containers often run as root, where mode 0555 still writes.)"""
    probe = directory / f".res-probe-{os.getpid()}"
    try:
        probe.write_text("")
    except OSError as exc:
        raise CliError(f"{label} {directory} is not writable: "
                       f"{exc.strerror or exc}") from exc
    try:
        probe.unlink()
    except OSError:
        pass


def ensure_writable_dir(path_str: str, label: str = "directory") -> Path:
    """Fail fast (one-line diagnostic, no traceback) on an unusable
    output directory — ``--cache-dir``, ``--spool``, ``--save-corpus``."""
    path = Path(path_str)
    try:
        path.mkdir(parents=True, exist_ok=True)
    except OSError as exc:
        raise CliError(f"cannot create {label} {path}: "
                       f"{exc.strerror or exc}") from exc
    if not path.is_dir():
        raise CliError(f"{label} {path} is not a directory")
    _probe_write(path, label)
    return path


def ensure_writable_file(path_str: str, label: str = "file") -> Path:
    """Fail fast on an unusable output file path — ``--store``."""
    path = Path(path_str)
    if path.exists() and path.is_dir():
        raise CliError(f"{label} {path} is a directory, not a file")
    parent = path.parent  # pathlib: a bare filename's parent is "."
    try:
        parent.mkdir(parents=True, exist_ok=True)
    except OSError as exc:
        raise CliError(f"cannot create parent directory of {label} "
                       f"{path}: {exc.strerror or exc}") from exc
    _probe_write(parent, f"parent directory of {label}")
    return path


def build_config(args: argparse.Namespace) -> RESConfig:
    return RESConfig(
        max_depth=args.max_depth,
        max_nodes=args.max_nodes,
        use_lbr=args.use_lbr,
        use_log=args.use_log,
    )
