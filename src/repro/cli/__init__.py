"""Command-line front end: the RES toolbox as a developer would run it.

``res crash`` produces a coredump from a catalog workload, and the
analysis commands (``analyze``, ``replay``, ``hwcheck``, ``exploit``,
``debug``) consume a coredump plus program source — exactly the
``<C, PS>`` input pair of paper §2.1.
"""

from repro.cli.main import build_parser, main

__all__ = ["build_parser", "main"]
