"""``python -m repro.cli`` — the ``res`` command without installation."""

import sys

from repro.cli.main import main

if __name__ == "__main__":
    sys.exit(main())
