"""Implementations of the ``res`` subcommands.

Each command returns a process exit code and prints a human-readable
report; machine consumers should use the library API directly.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import List, Optional

from repro.core import RESConfig, ReverseExecutionSynthesizer
from repro.core.debugger import ReverseDebugger
from repro.core.exploitability import classify_heuristic, classify_with_res
from repro.core.hwerror import HardwareVerdict, diagnose
from repro.core.queries import SuffixQueryEngine
from repro.core.rootcause import find_root_cause
from repro.cli.loaders import (
    CliError,
    build_config,
    ensure_writable_dir,
    ensure_writable_file,
    load_coredump,
    load_module,
)
from repro.procutil import INTERRUPT_EXIT_CODE, deliver_sigterm_as_interrupt
from repro.workloads import REGISTRY


def cmd_workloads(args: argparse.Namespace) -> int:
    """List the workload catalog."""
    for name in REGISTRY.names():
        workload = REGISTRY.get(name)
        print(f"{name:24s} {workload.expected_trap.value:16s} "
              f"{workload.description}")
    return 0


def cmd_crash(args: argparse.Namespace) -> int:
    """Trigger a catalog workload and write its coredump."""
    workload = REGISTRY.get(args.workload)
    dump = workload.trigger(lbr_depth=args.lbr_depth)
    out = Path(args.output)
    out.write_text(dump.to_json())
    print(f"crashed {workload.name}: {dump.trap!r}")
    print(f"coredump written to {out} "
          f"({len(dump.memory)} memory words, {len(dump.threads)} threads)")
    return 0


def _synthesize_deepest(module, dump, config: RESConfig, limit: int):
    res = ReverseExecutionSynthesizer(module, dump, config)
    deepest = None
    count = 0
    for item in res.suffixes():
        deepest = item
        count += 1
        if count >= limit:
            break
    return res, deepest, count


def cmd_analyze(args: argparse.Namespace) -> int:
    """Root-cause a coredump: synthesize suffixes and analyze them."""
    module = load_module(args)
    dump = load_coredump(args.coredump)
    config = build_config(args)
    cause, suffixes = find_root_cause(module, dump, config,
                                      max_suffixes=args.max_suffixes)
    print(f"trap: {dump.trap!r}")
    print(f"suffixes examined: {len(suffixes)}")
    if cause is None:
        print("root cause: none found within budget")
        return 1
    print(f"root cause: {cause.kind}")
    print(f"  {cause.description}")
    if cause.threads:
        print(f"  threads involved: {sorted(cause.threads)}")
    for pc in cause.pcs:
        print(f"  at {pc}")
    if suffixes:
        print()
        print(suffixes[-1].suffix.describe())
    return 0


def cmd_replay(args: argparse.Namespace) -> int:
    """Synthesize and deterministically replay one suffix."""
    from repro.core.artifact import save_suffix

    module = load_module(args)
    dump = load_coredump(args.coredump)
    res, deepest, count = _synthesize_deepest(
        module, dump, build_config(args), args.max_suffixes)
    if deepest is None:
        print("no feasible suffix found", file=sys.stderr)
        return 1
    if args.save:
        target = save_suffix(deepest, args.save)
        print(f"suffix artifact written to {target}")
    report = deepest.report
    print(deepest.suffix.describe())
    print(f"schedule: {deepest.suffix.schedule()}")
    print(f"inputs: {report.inputs}")
    print(f"replay verified: {report.ok}")
    print(f"read set: {sorted(hex(a) for a in deepest.suffix.read_set())}")
    print(f"write set: {sorted(hex(a) for a in deepest.suffix.write_set())}")
    return 0 if report.ok else 1


def cmd_hwcheck(args: argparse.Namespace) -> int:
    """Decide whether the coredump is software- or hardware-caused."""
    module = load_module(args)
    dump = load_coredump(args.coredump)
    diagnosis = diagnose(module, dump, build_config(args))
    print(f"verdict: {diagnosis.verdict.value}")
    print(f"rationale: {diagnosis.rationale}")
    print(f"nodes expanded: {diagnosis.stats.nodes_expanded}, "
          f"candidates executed: {diagnosis.stats.candidates_executed}")
    return 0 if diagnosis.verdict is HardwareVerdict.SOFTWARE else 2


def cmd_exploit(args: argparse.Namespace) -> int:
    """Exploitability rating: RES taint verdict vs trap-type heuristic."""
    module = load_module(args)
    dump = load_coredump(args.coredump)
    res_verdict = classify_with_res(module, dump, build_config(args))
    heuristic = classify_heuristic(dump)
    print(f"res verdict:       {res_verdict.rating.value}")
    print(f"  {res_verdict.rationale}")
    print(f"heuristic verdict: {heuristic.rating.value}")
    print(f"  {heuristic.rationale}")
    return 0


def cmd_triage(args: argparse.Namespace) -> int:
    """§3.1 triage at scale: bucket a corpus of bug reports through the
    sharded triage service and compare against WER-style call stacks.

    The corpus comes from (first match wins): ``--corpus-dir`` (a saved
    directory of coredump JSONs + manifest), ``--fuzz-count`` (labeled
    reports synthesized from fuzz seeds), or the synthetic §3.1
    corpus (``--reports``/``--seed``).
    """
    from repro.baselines.wer import triage as wer_triage
    from repro.core.triage import bucket_accuracy, misbucketed_fraction
    from repro.core.triage_service import (
        TriageCorpus,
        TriageServiceConfig,
        refined_results,
        triage_corpus,
    )

    # Output paths fail fast with a one-line diagnostic, before any
    # search effort is spent.
    if args.store:
        ensure_writable_file(args.store, "report store")
    if args.cache_dir:
        ensure_writable_dir(args.cache_dir, "cache directory")
    if args.save_corpus:
        ensure_writable_dir(args.save_corpus, "corpus directory")

    if args.corpus_dir:
        corpus = TriageCorpus.load(args.corpus_dir)
    elif args.fuzz_count:
        from repro.fuzz.triage_corpus import build_labeled_corpus

        corpus = build_labeled_corpus(
            range(args.fuzz_seed, args.fuzz_seed + args.fuzz_count),
            duplicates=args.fuzz_duplicates,
            shuffle_seed=args.seed)
    else:
        from repro.workloads import service_corpus

        corpus = service_corpus(args.reports, seed=args.seed)

    if args.save_corpus:
        manifest = corpus.save(args.save_corpus)
        print(f"corpus saved to {manifest}")

    reports = corpus.reports
    causes = {r.true_cause for r in reports if r.true_cause is not None}
    print(f"corpus: {len(reports)} reports, "
          f"{len(corpus.programs)} programs, {len(causes)} true causes")

    config = TriageServiceConfig(jobs=args.jobs,
                                 max_depth=args.max_depth,
                                 max_nodes=args.max_nodes,
                                 store_path=args.store,
                                 cache_dir=args.cache_dir,
                                 warm_from=tuple(args.warm_from),
                                 rebucket_only=args.rebucket)
    # SIGTERM (a supervisor's stop) takes the same clean-interrupt path
    # as ^C: pool terminated, partial verdicts kept, store flagged.
    with deliver_sigterm_as_interrupt():
        service_result = triage_corpus(corpus, config)
    res_results = service_result.results
    if service_result.interrupted:
        print(f"triage interrupted after {len(res_results)}/"
              f"{len(reports)} reports; partial results follow")
        done = {r.report_id for r in res_results}
        reports = [r for r in reports if r.report_id in done]
    wer_results = wer_triage(reports)
    refined, refinement = refined_results(service_result.reports)

    for name, results in (("WER (call stacks)", wer_results),
                          ("RES (root causes)", res_results),
                          ("RES (refined)", refined)):
        buckets = len({r.bucket for r in results})
        accuracy = bucket_accuracy(results, reports)
        misbucketed = misbucketed_fraction(results, reports)
        print(f"{name:20s} buckets={buckets:3d} "
              f"pair-accuracy={accuracy:5.1%} "
              f"misbucketed={misbucketed:5.1%}")
    stats = refinement.stats
    print(f"refinement: {stats['families']} families "
          f"({stats['merged_leaves']} leaves merged, "
          f"{stats['attached_fallbacks']} fallbacks attached, "
          f"{stats['conflicted_families']} conflicted, "
          f"{stats['ambiguous_fallbacks']} ambiguous)")
    print(f"service: {service_result.triaged} triaged, "
          f"{service_result.dedup_hits} dedup hits, "
          f"{service_result.cache_hits} cache hits, "
          f"{service_result.elapsed:.1f}s "
          f"({service_result.throughput():.1f} reports/s, "
          f"jobs={config.jobs})")
    if args.store:
        print(f"report store written to {args.store}")
    if args.cache_dir:
        print(f"result cache at {args.cache_dir}")
    return 130 if service_result.interrupted else 0


def cmd_cache(args: argparse.Namespace) -> int:
    """Inspect (`stats`) or compact (`gc`) a cross-run result cache."""
    from repro.core.rescache import ResultCache

    cache = ResultCache(args.cache_dir)
    if args.action == "stats":
        stats = cache.stats()
        width = max(len(key) for key in stats)
        for key, value in stats.items():
            print(f"{key:{width}s}  {value}")
        return 0
    outcome = cache.gc()
    before, after = outcome["before"], outcome["after"]
    print(f"compacted {before['rows']} row(s) -> {after['rows']} "
          f"({before['rows_bytes']} -> {after['rows_bytes']} bytes, "
          f"{after['entries']} live entries)")
    return 0


def cmd_buckets(args: argparse.Namespace) -> int:
    """Print the refined bucket hierarchy of a report store file or a
    running intake daemon (``--url``): one line per family with its
    merged signature leaves, then the flat buckets and pass stats."""
    import json as _json

    from repro.errors import ReproError

    if args.url:
        from repro.service.client import get_buckets

        payload = get_buckets(args.url)
        hierarchy = payload.get("hierarchy") or {}
        stats = payload.get("stats") or {}
        buckets = payload.get("buckets") or {}
    elif args.store:
        path = Path(args.store)
        if not path.exists():
            raise ReproError(f"report store not found: {path}")
        try:
            store = _json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            raise ReproError(f"corrupt report store {path}: {exc}") from exc
        bucketing = store.get("bucketing") or {}
        hierarchy = bucketing.get("hierarchy") or {}
        stats = bucketing.get("stats") or {}
        buckets = store.get("buckets") or {}
    else:
        raise ReproError("res buckets: give a report store file or --url")

    for bucket, info in sorted(hierarchy.items()):
        print(f"family {info['cause_kind']} @ {info['function']} "
              f"[{info['trap_kind']}] {info['skeleton'] or '(no skeleton)'} "
              f"— {info['reports']} report(s)")
        for leaf, members in info.get("leaves", {}).items():
            print(f"  leaf {leaf}: {len(members)} report(s)")
    singles = {bucket: ids for bucket, ids in buckets.items()
               if bucket not in hierarchy}
    for bucket, ids in sorted(singles.items()):
        print(f"bucket {bucket} — {len(ids)} report(s)")
    if stats:
        print(f"stats: {stats.get('families', 0)} families, "
              f"{stats.get('merged_leaves', 0)} leaves merged, "
              f"{stats.get('attached_fallbacks', 0)} fallbacks attached, "
              f"{stats.get('conflicted_families', 0)} conflicted, "
              f"{stats.get('ambiguous_fallbacks', 0)} ambiguous, "
              f"{stats.get('reports', 0)} reports")
    return 0


def cmd_disasm(args: argparse.Namespace) -> int:
    """Compile a program to bytecode and print the disassembly."""
    from repro.ir.bytecode import compile_program, disassemble

    module = load_module(args)
    print(disassemble(compile_program(module)), end="")
    return 0


def cmd_fuzz(args: argparse.Namespace) -> int:
    """Differential fuzzing campaign (see :mod:`repro.fuzz`).

    Exit code 0 when every generated program passed every oracle;
    1 when divergences were recorded (artifact paths are printed).
    """
    from repro.fuzz.campaign import CampaignConfig, run_campaign

    config = CampaignConfig(
        seed=args.seed,
        count=args.count,
        jobs=args.jobs,
        max_depth=args.max_depth,
        max_nodes=args.max_nodes,
        max_suffixes=args.max_suffixes,
        threads_prob=args.threads_prob,
        hw_fault_prob=args.hw_fault_prob,
        alu_fault_prob=args.alu_fault_prob,
        check_forward=args.check_forward,
        check_cache=not args.no_check_cache,
        force_divergence=args.force_divergence,
        shrink=args.shrink,
        artifact_dir=args.artifacts,
    )
    done = [0]

    def progress(verdict) -> None:
        done[0] += 1
        if done[0] % 50 == 0:
            print(f"  ... {done[0]}/{config.count} programs")

    with deliver_sigterm_as_interrupt():
        result = run_campaign(config, progress=progress)
    summary = result.summary()
    if result.interrupted:
        print(f"campaign interrupted after {summary['programs']}/"
              f"{config.count} programs; partial results follow")
    print(f"campaign: {summary['programs']} programs from seed "
          f"{config.seed} in {result.elapsed:.1f}s "
          f"({summary['programs'] / max(result.elapsed, 1e-9):.1f}/s)")
    print(f"  trapped: {summary['trapped']}  threaded: "
          f"{summary['threaded']}  hw-faulted: {summary['hw_faulted']}  "
          f"alu-faulted: {summary['alu_faulted']}")
    print(f"  suffixes cross-checked: {summary['suffixes']}  "
          f"independent replays: {summary['replays_checked']}  "
          f"wp checks: {summary['wp_checked']}")
    if summary["no_trap"]:
        print(f"  no-trap runs (fault-defused): {summary['no_trap']}")
    if not result.divergent:
        print("divergences: none")
        return 130 if result.interrupted else 0
    print(f"divergences: {summary['divergent']}")
    for verdict, path in zip(result.divergent, result.artifacts):
        kinds = ", ".join(sorted({k for k, _ in verdict.divergences}))
        print(f"  seed {verdict.seed}: {kinds} -> {path}")
    return 1


# ---------------------------------------------------------------------------
# The intake daemon and its clients (res serve / submit / status / watch)
# ---------------------------------------------------------------------------

def _program_payload(args: argparse.Namespace) -> dict:
    """The submission-side program object from --source/--workload."""
    if getattr(args, "workload", None):
        workload = REGISTRY.get(args.workload)
        return {"key": workload.name, "source": workload.source,
                "name": workload.name}
    path = Path(args.source)
    if not path.exists():
        raise CliError(f"source file not found: {path}")
    return {"key": path.stem, "source": path.read_text(),
            "name": path.stem}


def _parse_peers(specs: List[str]) -> dict:
    """``NODE=URL`` peer specs (repeatable/comma-separated) → dict."""
    peers = {}
    for spec in specs:
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            name, sep, url = part.partition("=")
            if not sep or not name.strip() or not url.strip():
                raise CliError(
                    f"bad --peers entry {part!r} (want NODE=URL)")
            peers[name.strip()] = url.strip()
    return peers


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the always-on crash-intake triage daemon (§3.1 as a
    service): durable job queue, historical dedup, warm worker
    processes, and the HTTP API (`POST /jobs`, `GET /jobs/<id>`,
    `/buckets`, `/reports/<fp>`, `/healthz`, `/metrics`,
    `POST /shutdown`).  With ``--node-id``/``--peers`` the daemon is
    one node of a fleet: admission is sharded by coredump fingerprint
    and misrouted submissions answer 307 to the owning node."""
    from repro.core.triage_service import TriageServiceConfig
    from repro.service import DaemonConfig, TriageDaemon, start_http_server

    ensure_writable_dir(args.spool, "spool directory")
    if args.store:
        ensure_writable_file(args.store, "report store")
    if args.cache_dir:
        ensure_writable_dir(args.cache_dir, "cache directory")
    peers = _parse_peers(args.peers)
    if peers and not args.node_id:
        raise CliError("--peers requires --node-id")

    service = TriageServiceConfig(max_depth=args.max_depth,
                                  max_nodes=args.max_nodes,
                                  store_path=args.store,
                                  cache_dir=args.cache_dir,
                                  warm_from=tuple(args.warm_from))
    config = DaemonConfig(service=service, spool_dir=args.spool,
                          workers=args.workers, max_queue=args.max_queue,
                          max_attempts=args.max_attempts,
                          quarantine_after=args.quarantine_after,
                          watchdog_timeout=args.watchdog_timeout,
                          retry_backoff_base=args.retry_backoff,
                          worker_mode=args.worker_mode,
                          node_id=args.node_id,
                          peers=peers,
                          journal_rotate_mb=args.journal_rotate_mb)
    if args.trace_sample > 0:
        # Same effect as RES_TRACE_SAMPLE in the environment; the flag
        # wins because it is the more deliberate of the two.
        from repro import obs
        obs.activate(args.trace_sample)
    daemon = TriageDaemon(config)
    server = start_http_server(daemon, host=args.host, port=args.port)
    host, port = server.server_address[:2]
    fleet = (f", node={config.node_id}, peers={len(peers)}"
             if config.node_id else "")
    print(f"res-serve listening on http://{host}:{port} "
          f"(workers={config.workers} [{config.worker_mode}], "
          f"max-queue={config.max_queue}{fleet})",
          flush=True)
    if daemon.resumed_jobs:
        print(f"resumed {daemon.resumed_jobs} journaled job(s) from "
              f"{config.journal_path}", flush=True)
    daemon.start()

    interrupted = False
    try:
        with deliver_sigterm_as_interrupt():
            daemon.wait_for_shutdown_request()
    except KeyboardInterrupt:
        interrupted = True
    finally:
        server.shutdown()  # stop accepting before the workers stop
    if interrupted:
        # A supervisor stop: finish in-flight work only, leave the
        # queue journaled for the next daemon life.  The store's
        # interrupted flag is derived inside shutdown, after the
        # workers stop — a stop that caught the daemon fully settled
        # is a complete store, not a partial one.
        daemon.shutdown(drain=False)
        print("res-serve interrupted; journal retains "
              f"{daemon.healthz()['queue_depth']} queued job(s)",
              flush=True)
        return INTERRUPT_EXIT_CODE
    daemon.shutdown(drain=server.drain_on_shutdown)
    print("res-serve stopped cleanly", flush=True)
    return 0


#: single-node default for --url (submit/status accept repeated --url)
_DEFAULT_URL = "http://127.0.0.1:8321"


def _url_list(args: argparse.Namespace) -> List[str]:
    return list(args.url) if args.url else [_DEFAULT_URL]


def cmd_submit(args: argparse.Namespace) -> int:
    """Submit one coredump to a running intake daemon (or fleet:
    repeated --url round-robins the first attempt, fails over when a
    node is down, and follows the owning-node redirect).

    Transient daemon trouble — mid-restart (connection refused), spool
    disk full (503), queue pushing back (429) — is retried with
    jittered exponential backoff up to --max-retries times within the
    --timeout budget; only then does the submission fail (exit 75,
    EX_TEMPFAIL, for the retryable cases)."""
    from repro.service.client import (FleetTargets, RetryPolicy,
                                      submit_fleet_with_retries,
                                      wait_for_job)

    program = _program_payload(args)
    dump = load_coredump(args.coredump)
    policy = RetryPolicy(max_retries=args.max_retries,
                         timeout=args.timeout)

    def notify(marker: str, status: int, body: dict) -> None:
        print(f"  retrying ({body.get('error')})", file=sys.stderr,
              flush=True)

    targets = FleetTargets(_url_list(args))
    status, body, url = submit_fleet_with_retries(
        targets, program, dump.to_json(), report_id=args.report_id,
        force=args.force, policy=policy, notify=notify)
    if status == 429:
        print(f"queue full; retry after "
              f"{body.get('retry_after_seconds', '?')}s", file=sys.stderr)
        return 75  # EX_TEMPFAIL
    job_id = body["job_id"]
    print(f"job {job_id} ({body['state']})"
          + (f" dedup_of={body['dedup_of']}" if "dedup_of" in body else ""))
    if args.wait and body.get("state") not in ("done", "failed",
                                               "quarantined"):
        body = wait_for_job(url, job_id, timeout=args.timeout)
    verdict = body.get("verdict")
    if verdict is not None:
        print(f"bucket: {verdict['bucket']}")
        print(f"cause: {verdict['cause_kind']} "
              f"(fallback={verdict['used_fallback']}, "
              f"exploitable={verdict['exploitable']}, "
              f"cached={verdict['cached']})")
    if body.get("state") == "quarantined":
        print(f"quarantined: {body.get('error')}", file=sys.stderr)
        return 1
    if body.get("state") == "failed":
        print(f"triage failed: {body.get('error')}", file=sys.stderr)
        return 1
    return 0


def cmd_status(args: argparse.Namespace) -> int:
    """Query a running intake daemon: one job, or the whole service.

    Repeated --url makes this fleet-aware: a job query fails over
    across the listed nodes (following the owning-node redirect), and
    the service summary reports every node in turn."""
    from repro.service.client import (ServiceClientError, get_health,
                                      get_job, get_metrics_text,
                                      get_quarantine)

    urls = _url_list(args)
    if getattr(args, "quarantine", False):
        # The operator's drain-and-inspect view: every poison job with
        # its diagnostics (what it did to the fleet, how to re-try it).
        empty = True
        for url in urls:
            rows = get_quarantine(url)
            if not rows:
                continue
            empty = False
            if len(urls) > 1:
                print(f"[{url}]")
            for row in rows:
                print(f"{row['job_id']}  report={row['report_id']} "
                      f"program={row['program']} "
                      f"attempts={row.get('attempts', '?')} "
                      f"worker_crashes={row.get('worker_crashes', '?')}")
                print(f"  {row.get('error')}")
                print(f"  resubmit: res submit --force --report-id "
                      f"{row['report_id']} <coredump>")
        if empty:
            print("no quarantined jobs")
        return 0
    if args.job_id:
        payload = None
        last_error: Optional[ServiceClientError] = None
        for url in urls:
            try:
                payload = get_job(url, args.job_id)
                break
            except ServiceClientError as exc:
                last_error = exc  # down or not-yet-synced: try the next
        if payload is None:
            assert last_error is not None
            raise last_error
        for key in ("job_id", "report_id", "program", "state",
                    "fingerprint", "priority", "dedup_of", "error",
                    "attempts", "worker_crashes"):
            if key in payload:
                print(f"{key:14s} {payload[key]}")
        verdict = payload.get("verdict")
        if verdict:
            for key, value in verdict.items():
                print(f"{key:14s} {value}")
        return 0 if payload.get("state") not in ("failed",
                                                 "quarantined") else 1
    from repro.obs.render import parse_metrics

    wanted = ("res_intake_verdicts_total", "res_intake_dedup_total",
              "res_intake_warm_hit_rate", "res_intake_verdicts_per_second",
              "res_intake_retries_total", "res_intake_quarantined_total",
              "res_intake_redirects_total",
              "res_intake_worker_restarts_total", "res_intake_degraded")
    #: counters that sum meaningfully across fleet nodes (rates and
    #: gauges like warm_hit_rate do not — they are per-node only)
    summable = ("res_intake_submitted_total", "res_intake_verdicts_total",
                "res_intake_dedup_total", "res_intake_warm_hits_total",
                "res_intake_failed_total", "res_intake_retries_total",
                "res_intake_quarantined_total",
                "res_intake_redirects_total",
                "res_intake_worker_restarts_total")
    nodes = []
    for url in urls:
        health = get_health(url)
        nodes.append((url, health,
                      parse_metrics(get_metrics_text(url))))
    for url, health, metrics in nodes:
        if len(nodes) > 1:
            label = health.get("node_id") or "node"
            print(f"[{label} @ {url}]")
        for key, value in health.items():
            print(f"{key:16s} {value}")
        for name in wanted:
            if name in metrics:
                print(f"{name} {metrics[name]:g}")
    if len(nodes) > 1:
        # The fleet-wide view: counters summed across every node
        # (per-node rows above keep the breakdown), queue/in-flight
        # gauges summed because they partition by node.
        print(f"[fleet: {len(nodes)} node(s)]")
        print(f"{'queue_depth':16s} "
              f"{sum(h.get('queue_depth', 0) for _, h, _ in nodes)}")
        print(f"{'in_flight':16s} "
              f"{sum(h.get('in_flight', 0) for _, h, _ in nodes)}")
        for name in summable:
            total = sum(m.get(name, 0.0) for _, _, m in nodes)
            print(f"{name} {total:g}")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Print one job's flight-recorder waterfall: every span from
    submit through admission, queue wait, each drive attempt's phases,
    to settle — stitched across fleet nodes (the answering node merges
    peer spans, so any node of the fleet can be asked)."""
    from repro.obs.render import render_waterfall
    from repro.service.client import ServiceClientError, get_trace

    last_error: Optional[ServiceClientError] = None
    for url in _url_list(args):
        try:
            payload = get_trace(url, args.job_id)
        except ServiceClientError as exc:
            last_error = exc  # down or doesn't know the id: try next
            continue
        print(render_waterfall(payload), end="")
        return 0
    assert last_error is not None
    raise last_error


def cmd_top(args: argparse.Namespace) -> int:
    """Live fleet dashboard: queue depth, in-flight drives, worker
    health, warm-hit rate per node plus fleet totals and the busiest
    buckets, refreshed every --interval seconds (Ctrl-C to stop)."""
    from repro.obs.render import parse_metrics, render_top
    from repro.service.client import (ServiceClientError, get_buckets,
                                      get_health, get_metrics_text)

    urls = _url_list(args)
    iterations = args.iterations
    try:
        while True:
            rows = []
            for url in urls:
                try:
                    rows.append({
                        "url": url,
                        "health": get_health(url),
                        "metrics": parse_metrics(get_metrics_text(url)),
                        "buckets": get_buckets(url),
                    })
                except ServiceClientError as exc:
                    rows.append({"url": url, "health": None,
                                 "metrics": None, "error": str(exc)})
            if not args.no_clear and iterations != 1:
                print("\x1b[2J\x1b[H", end="")
            print(render_top(rows), end="", flush=True)
            if iterations is not None:
                iterations -= 1
                if iterations <= 0:
                    return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def cmd_watch(args: argparse.Namespace) -> int:
    """Forward a directory of incoming coredumps to the daemon.

    With a ``manifest.json`` the directory is treated as a saved triage
    corpus (programs and labels ride along); otherwise every ``*.json``
    file is a coredump of the program named by --source/--workload.
    """
    from repro.service.client import RetryPolicy, watch_directory

    program = None
    if getattr(args, "source", None) or getattr(args, "workload", None):
        program = _program_payload(args)

    def notify(marker: str, status: int, body: dict) -> None:
        if status == 0:  # damaged/refused file: skipped, not fatal
            print(f"  {marker}: skipped ({body.get('error')})",
                  file=sys.stderr, flush=True)
            return
        state = body.get("state", "?")
        extra = f" dedup_of={body['dedup_of']}" if "dedup_of" in body else ""
        print(f"  {marker}: job {body.get('job_id')} "
              f"[{status} {state}]{extra}", flush=True)

    try:
        with deliver_sigterm_as_interrupt():
            policy = RetryPolicy(max_retries=args.max_retries,
                                 backoff_base=max(args.interval, 0.1),
                                 backoff_cap=60.0)
            forwarded = watch_directory(args.directory, args.url,
                                        program=program,
                                        interval=args.interval,
                                        once=args.once, notify=notify,
                                        policy=policy)
    except KeyboardInterrupt:
        print("watch stopped", flush=True)
        return INTERRUPT_EXIT_CODE
    print(f"forwarded {forwarded} submission(s)")
    return 0


def cmd_debug(args: argparse.Namespace) -> int:
    """Scripted reverse-debugger session over the deepest suffix.

    Commands (semicolon- or newline-separated): ``break FUNC[:BLOCK]``,
    ``watch GLOBAL``, ``continue``, ``step [N]``, ``rstep [N]``,
    ``print VAR``, ``backtrace``, ``threads``, ``writes GLOBAL``,
    ``reads GLOBAL``, ``focus``, ``run``.
    """
    from repro.core.artifact import load_suffix

    module = load_module(args)
    if args.artifact:
        if not Path(args.artifact).exists():
            raise CliError(f"artifact file not found: {args.artifact}")
        deepest = load_suffix(module, args.artifact)
    else:
        dump = load_coredump(args.coredump)
        __, deepest, __ = _synthesize_deepest(
            module, dump, build_config(args), args.max_suffixes)
    if deepest is None:
        print("no feasible suffix found", file=sys.stderr)
        return 1
    debugger = ReverseDebugger(module, deepest)
    engine = SuffixQueryEngine(module, deepest)
    script = args.script.replace(";", "\n")
    for raw in script.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        print(f"(res-dbg) {line}")
        code = _run_debug_command(debugger, engine, line)
        if code is not None:
            return code
    return 0


def _run_debug_command(debugger: ReverseDebugger,
                       engine: SuffixQueryEngine,
                       line: str) -> Optional[int]:
    parts = line.split()
    op, rest = parts[0], parts[1:]
    if op == "break" and rest:
        spec = rest[0].split(":")
        debugger.add_breakpoint(spec[0], spec[1] if len(spec) > 1 else None)
        print(f"  breakpoint at {rest[0]}")
    elif op == "watch" and rest:
        wp = debugger.add_watchpoint(rest[0])
        print(f"  watchpoint on {wp.label} ({wp.addr:#x}), "
              f"currently {wp.last_value}")
    elif op == "continue":
        pc = debugger.continue_()
        if debugger.last_watch_hit:
            print(f"  {debugger.last_watch_hit}")
        print(f"  stopped at {pc} (step {debugger.position})")
    elif op == "step":
        pc = debugger.step(int(rest[0]) if rest else 1)
        print(f"  at {pc} (step {debugger.position})")
    elif op == "rstep":
        pc = debugger.reverse_step(int(rest[0]) if rest else 1)
        print(f"  at {pc} (step {debugger.position})")
    elif op == "run":
        pc = debugger.run_to_failure()
        print(f"  failure at {pc}")
    elif op == "print" and rest:
        value = debugger.print_var(rest[0])
        print(f"  {rest[0]} = {value}")
    elif op == "backtrace":
        for depth, pc in enumerate(reversed(debugger.backtrace())):
            print(f"  #{depth} {pc}")
    elif op == "threads":
        for tid, (status, pc) in debugger.info_threads().items():
            print(f"  t{tid}: {status} at {pc}")
    elif op == "writes" and rest:
        for event in engine.writes_to(rest[0]):
            print(f"  {event.describe()}")
    elif op == "reads" and rest:
        for event in engine.reads_from(rest[0]):
            print(f"  {event.describe()}")
    elif op == "focus":
        print(f"  read set:  {sorted(hex(a) for a in debugger.focus_read_set())}")
        print(f"  write set: {sorted(hex(a) for a in debugger.focus_write_set())}")
    elif op == "quit":
        return 0
    else:
        print(f"  unknown command: {line}", file=sys.stderr)
        return 64
    return None
