"""The intake job model and the durable job journal.

Every submission the daemon accepts becomes an :class:`IntakeJob`, and
every state change that must survive a crash is appended to the
:class:`JobJournal` — an fsynced JSONL log with the same crash-safety
contract as the PR 4 result-cache row log (``ioutil.append_line``: a
dying process tears at most the final line, and replay skips torn
rows).  Two row kinds matter:

* ``submit`` — carries *everything needed to re-run the job*: the
  program source, the full coredump, the fingerprint, the priority.
  Journaled before the daemon acknowledges the submission, so an
  accepted job is never lost.
* ``done`` / ``failed`` — settles a job.  A ``done`` row stores the
  synthesized *cause* (plus exploitability and provenance), not the
  bucket: on replay the bucket is re-derived through
  :func:`repro.core.triage.synthesize_result`, the same policy the
  warm-start cache uses, so annotation changes re-bucket historical
  verdicts exactly like fresh ones.

Replaying the journal therefore reconstructs the daemon's whole world:
settled jobs become the historical dedup store, unsettled jobs (queued
*or* in-flight at the time of death — an interrupted drive leaves no
partial state worth keeping) are re-admitted to the queue.

Fleet extensions (PR 9):

* **per-node segments** — a fleet node journals to
  ``journal-<node>.jsonl`` and prefixes its job ids with the node name
  (``n1-j000004``), so N nodes sharing one spool never contend on a
  file or collide on an identity, and any node can rebuild fleet-wide
  settled state by replaying every segment (its own fully, its peers'
  settled rows as read-only shadows).
* **rotation + compaction** — an active journal above the configured
  size is rotated to a closed ``*.seg-NNNNNN`` file; closed segments
  are compacted by collapsing each settled job's submit+settle rows
  into one ``settled`` row that drops the (possibly ~100 KB) coredump
  whenever the journaled cause makes it redundant.  Replay is keyed by
  job id and idempotent, so a crash anywhere in rotate/compact leaves
  at worst a duplicate row, never a lost one.
* **global order** — jobs across nodes merge deterministically by
  :attr:`IntakeJob.order_key` (submission wall-clock, node, seq);
  journaled timestamps carry microsecond precision so the merged
  order is the true arrival order, and single-node order degrades to
  plain seq order exactly as before.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from enum import Enum
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import ReproError
from repro.ioutil import append_line, atomic_write_text, iter_jsonl
from repro.vm.coredump import Coredump
from repro.core.rescache import cause_from_obj, cause_to_obj
from repro.core.triage import BugReport, synthesize_result
from repro.core.triage_service import (
    ProgramSpec,
    TriagedReport,
    TriageServiceConfig,
)

JOURNAL_FILE = "jobs.jsonl"

#: journal format version; bump on any incompatible row change (old
#: rows are then skipped on replay — a cold queue, never a wrong one)
JOURNAL_SCHEMA = 1


def journal_file_for(node_id: Optional[str]) -> str:
    """The journal filename for one fleet node (legacy single-node
    daemons keep the historical ``jobs.jsonl``)."""
    return f"journal-{node_id}.jsonl" if node_id else JOURNAL_FILE


def node_of(job_id: str) -> str:
    """The fleet node a job id belongs to ('' for legacy ids)."""
    head, sep, tail = job_id.rpartition("-")
    return head if sep else ""


class JobState(Enum):
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    #: poison job: it killed enough workers (or outlived the watchdog
    #: enough times) that running it again would keep crash-looping the
    #: fleet.  Settled — with diagnostics instead of a verdict — so the
    #: queue drains past it and an operator can inspect and resubmit.
    QUARANTINED = "quarantined"


@dataclass
class IntakeJob:
    """One accepted submission, from intake to settled verdict."""

    job_id: str
    #: submission order; also the report-store row order, so a drained
    #: daemon store lines up row-for-row with a batch run over the same
    #: submissions
    seq: int
    report_id: str
    program: ProgramSpec
    #: the coredump as a parsed JSON object (the wire/journal form);
    #: None only for settled jobs replayed from compacted rows whose
    #: journaled cause made the dump redundant
    core_obj: Optional[dict]
    fingerprint: str
    #: 0 = never-seen fingerprint (head of the queue), 1 = re-submission
    priority: int
    true_cause: Optional[str] = None
    submitted_at: float = 0.0
    #: operator asked for a fresh drive: skip the warm-cache
    #: short-circuit and replace the historical representative
    force: bool = False
    state: JobState = JobState.QUEUED
    verdict: Optional[TriagedReport] = None
    #: report_id of the representative whose verdict this job received
    dedup_of: Optional[str] = None
    error: Optional[str] = None
    finished_at: Optional[float] = None
    #: re-admitted from a prior life's journal: its submitted_at is old
    #: wall clock, so its settle latency must stay out of the metrics
    #: window (it would poison p50/p95 and the Retry-After estimate)
    resumed: bool = False
    #: times a worker claimed this job (drives started, not finished)
    attempts: int = 0
    #: workers this job killed (injected or real crash mid-drive) or
    #: hung past the watchdog — the quarantine trigger
    worker_crashes: int = 0
    #: earliest monotonic time a retry may be claimed (backoff delay)
    not_before: float = 0.0
    #: claim token, bumped on every claim and on watchdog reaping: a
    #: settle attempt carrying a stale token (its worker was reaped and
    #: the job re-queued meanwhile) is discarded instead of racing the
    #: retry's own settle
    claim: int = 0
    #: flight-recorder trace id (PR 10); None for unsampled jobs.
    #: Journaled with the submit row so a SIGKILL'd daemon's replay
    #: re-emits the *same* trace — deterministic span ids make the
    #: re-emission converge instead of duplicating.
    trace_id: Optional[str] = None
    _dump: Optional[Coredump] = field(default=None, repr=False)
    _dedup_key: Optional[tuple] = field(default=None, repr=False)
    #: wall-clock of the last (re-)enqueue, feeding the ``queue-N``
    #: span; transient — never journaled
    _obs_enqueued: float = field(default=0.0, repr=False)
    #: wall-clock of the last claim, feeding the ``attempt-N`` span;
    #: transient — never journaled
    _obs_claimed: float = field(default=0.0, repr=False)

    def coredump(self) -> Coredump:
        if self._dump is None:
            self._dump = Coredump.from_json(json.dumps(self.core_obj))
        return self._dump

    def bug_report(self, require_coredump: bool = True) -> BugReport:
        """The report this job files.  ``require_coredump=False`` skips
        the (possibly ~100 KB) JSON parse and leaves ``coredump`` None
        — legal only for consumers that provably never dereference it
        (store assembly and settled-verdict re-bucketing read ids,
        labels, and the journaled cause; the WER stack fallback is the
        one path that needs the dump, and it only runs when the cause
        is None).  A dump already parsed is always attached."""
        if require_coredump or self._dump is not None:
            dump = self.coredump()
        else:
            dump = None
        return BugReport(report_id=self.report_id,
                         coredump=dump,
                         true_cause=self.true_cause)

    @property
    def settled(self) -> bool:
        return self.state in (JobState.DONE, JobState.FAILED,
                              JobState.QUARANTINED)

    @property
    def dedup_key(self) -> tuple:
        """The admission identity: (module fingerprint, coredump
        fingerprint).  The module fingerprint (source + name, same
        identity the rescache keys on) — not the bare program key —
        because a re-submitted crash of an *edited* program must
        recompute, never echo the stale verdict, and two clients whose
        source files happen to share a stem must not cross-contaminate.
        Within one corpus a key maps to one source, so this is exactly
        the batch service's (program, fingerprint) dedup there."""
        if self._dedup_key is None:
            self._dedup_key = (self.program.module_fp(), self.fingerprint)
        return self._dedup_key

    def latency(self) -> Optional[float]:
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at

    @property
    def order_key(self) -> tuple:
        """Deterministic fleet-wide ordering: submission wall-clock
        first (journaled at microsecond precision), then node, then
        seq.  On a single node submitted_at is monotone with seq and
        ties break by seq, so this is exactly the old per-seq order;
        across nodes it merges segments into true arrival order,
        identically on every replayer."""
        return (self.submitted_at, node_of(self.job_id), self.seq)

    def status_payload(self) -> dict:
        """The ``GET /jobs/<id>`` document."""
        payload = {
            "job_id": self.job_id,
            "report_id": self.report_id,
            "program": self.program.key,
            "fingerprint": self.fingerprint,
            "priority": self.priority,
            "state": self.state.value,
            "submitted_at": round(self.submitted_at, 3),
        }
        if self.dedup_of is not None:
            payload["dedup_of"] = self.dedup_of
        if self.trace_id is not None:
            payload["trace_id"] = self.trace_id
        if self.error is not None:
            payload["error"] = self.error
        if self.attempts > 1 or self.worker_crashes > 0:
            # Retry diagnostics only when there is a story to tell —
            # the common first-try-done payload stays byte-stable.
            payload["attempts"] = self.attempts
            payload["worker_crashes"] = self.worker_crashes
        if self.verdict is not None:
            result = self.verdict.result
            payload["verdict"] = {
                "bucket": repr(result.bucket),
                "cause_kind": result.cause.kind if result.cause else None,
                "cause_description": result.cause.description
                if result.cause else None,
                "used_fallback": result.used_fallback,
                "exploitable": result.exploitable,
                "cached": self.verdict.cached,
                "seconds": round(self.verdict.seconds, 4),
            }
            if self.latency() is not None:
                payload["latency_seconds"] = round(self.latency(), 4)
        return payload


class JobJournal:
    """Durable append-only journal of intake events.

    Appends are serialized behind a lock (HTTP threads and workers
    journal concurrently) and each row is fsynced before the daemon
    acts on it — the "journal first, acknowledge second" rule is what
    makes a 202 response a promise that survives SIGKILL.
    """

    def __init__(self, path: Union[str, Path], rotate_bytes: int = 0):
        self.path = Path(path)
        #: rotate the active file to a closed segment above this many
        #: bytes (0 disables rotation — the legacy single-file journal)
        self.rotate_bytes = int(rotate_bytes)
        self._lock = threading.Lock()

    def _append(self, row: dict) -> None:
        row = dict(row, schema=JOURNAL_SCHEMA)
        with self._lock:
            append_line(self.path, json.dumps(row, sort_keys=True))

    # -- segments ------------------------------------------------------------

    def segment_paths(self) -> List[Path]:
        """Closed segments, oldest first (the ``.seg-NNNNNN`` suffix
        sorts lexicographically in creation order)."""
        return sorted(self.path.parent.glob(self.path.name + ".seg-*"))

    def all_paths(self) -> List[Path]:
        """Every journal file in replay order: closed segments, then
        the active file."""
        return self.segment_paths() + [self.path]

    def maybe_rotate(self) -> Optional[Path]:
        """Rotate the active journal to a closed segment when it has
        outgrown ``rotate_bytes``; returns the new segment path (or
        None).  Atomic under the append lock: rows land either in the
        closed segment or in the fresh active file, never torn across
        the boundary, and replay reads both."""
        if self.rotate_bytes <= 0:
            return None
        with self._lock:
            try:
                if self.path.stat().st_size < self.rotate_bytes:
                    return None
            except OSError:
                return None  # no active file yet
            generation = len(self.segment_paths()) + 1
            segment = self.path.with_name(
                f"{self.path.name}.seg-{generation:06d}")
            try:
                os.replace(self.path, segment)
            except OSError:
                return None  # rotation is maintenance, never a failure
            return segment

    def compact_segments(self) -> dict:
        """Collapse settled jobs in every *closed* segment.

        For each job that is settled anywhere in the journal, its
        submit row in a closed segment is rewritten as one ``settled``
        row carrying the merged submit + settle fields — with the
        coredump dropped whenever the journaled cause makes replay's
        stack fallback unreachable (done-with-cause, failed, and
        quarantined jobs never read it).  Unsettled jobs keep a full
        submit row with ``core_ref``/``program_ref`` materialized
        inline, because the referent's own row may be collapsed away.

        Only closed segments are touched (the active file has live
        writers), each rewrite is atomic, and replay keys rows by job
        id — so a crash between writing a compacted segment and any
        later step costs duplicate rows, never lost ones.
        """
        stats = {"segments": 0, "rows_before": 0, "rows_after": 0,
                 "bytes_before": 0, "bytes_after": 0}
        segments = self.segment_paths()
        if not segments:
            return stats
        settles: Dict[str, dict] = {}
        for path in self.all_paths():
            for __, row in iter_jsonl(path):
                if row.get("schema") != JOURNAL_SCHEMA:
                    continue
                job_id = row.get("job_id")
                if not isinstance(job_id, str):
                    continue
                event = row.get("event")
                if event in ("done", "failed", "quarantined"):
                    settles[job_id] = dict(row, event=event)
                elif event == "settled":
                    settles[job_id] = dict(row, event=row.get("kind"))
        for path in segments:
            rows = [row for __, row in iter_jsonl(path)
                    if row.get("schema") == JOURNAL_SCHEMA]
            stats["rows_before"] += len(rows)
            try:
                stats["bytes_before"] += path.stat().st_size
            except OSError:
                pass
            submits: Dict[str, dict] = {}
            order: List[str] = []
            for row in rows:
                job_id = row.get("job_id")
                if not isinstance(job_id, str):
                    continue
                if row.get("event") in ("submit", "settled") \
                        and job_id not in submits:
                    submits[job_id] = row
                    order.append(job_id)
            out: List[dict] = []
            for job_id in order:
                row = submits[job_id]
                materialized = self._materialize(row, submits, settles)
                if materialized is None:
                    continue  # damaged beyond repair: replay skips too
                settle = settles.get(job_id)
                if settle is None:
                    out.append(materialized)  # still in flight somewhere
                    continue
                out.append(self._settled_row(materialized, settle))
            text = "".join(json.dumps(row, sort_keys=True) + "\n"
                           for row in out)
            atomic_write_text(path, text)
            stats["segments"] += 1
            stats["rows_after"] += len(out)
            stats["bytes_after"] += len(text.encode("utf-8"))
        return stats

    @staticmethod
    def _materialize(row: dict, submits: Dict[str, dict],
                     settles: Dict[str, dict]) -> Optional[dict]:
        """A submit/settled row with refs resolved inline (compacted
        rows must stand alone — their referent may collapse away)."""
        row = dict(row)
        ref_id = row.pop("program_ref", None)
        if "program" not in row and ref_id is not None:
            ref = submits.get(ref_id)
            if ref is None or "program" not in ref:
                return None
            row["program"] = ref["program"]
        ref_id = row.pop("core_ref", None)
        if "core" not in row and ref_id is not None:
            ref = submits.get(ref_id)
            if ref is not None and "core" in ref:
                row["core"] = ref["core"]
            else:
                # The referent's dump was dropped by an earlier compact
                # pass: legal only because every such referent settled
                # with a cause, and a duplicate of it settles the same
                # way — so this job's replay never needs the dump
                # either (it must itself be settled to have lost its
                # ref target).
                settle = settles.get(row.get("job_id", ""))
                if settle is None or (settle.get("event") == "done"
                                      and settle.get("cause") is None):
                    return None
                row["core"] = None
        return row

    @staticmethod
    def _settled_row(submit: dict, settle: dict) -> dict:
        """Merge one settled job into a single standalone row."""
        kind = settle.get("event")
        row = {
            "schema": JOURNAL_SCHEMA,
            "event": "settled",
            "kind": kind,
            "job_id": submit["job_id"],
            "seq": submit.get("seq"),
            "report_id": submit.get("report_id"),
            "fingerprint": submit.get("fingerprint"),
            "priority": submit.get("priority"),
            "true_cause": submit.get("true_cause"),
            "force": submit.get("force", False),
            "submitted_at": submit.get("submitted_at", 0.0),
            "program": submit.get("program"),
        }
        if submit.get("trace") is not None:
            row["trace"] = submit["trace"]
        if kind == "done":
            row.update({
                "cause": settle.get("cause"),
                "exploitable": settle.get("exploitable", False),
                "cached": settle.get("cached", False),
                "seconds": settle.get("seconds", 0.0),
                "dedup_of": settle.get("dedup_of"),
            })
            if settle.get("cause") is None:
                # Fallback verdict: replay re-derives the bucket from
                # the coredump's stack — the one settled shape that
                # still needs the dump.
                row["core"] = submit.get("core")
        else:
            row.update({
                "error": settle.get("error"),
                "attempts": settle.get("attempts", 0),
                "worker_crashes": settle.get("worker_crashes", 0),
            })
        return row

    # -- writers -------------------------------------------------------------

    def record_submit(self, job: IntakeJob,
                      dedup_ref: Optional[IntakeJob] = None) -> None:
        """Journal one accepted submission.

        Production intake is dedup-dominated (that is why bucketing
        exists), so journaling the full program + coredump for every
        duplicate would grow the journal by ~100 KB per re-report of
        the same crash.  When the submission duplicates an
        already-journaled job (``dedup_ref``), equal payloads are
        written as references to that job's row instead — replay
        resolves them, and equal fingerprints guarantee equal canonical
        coredump JSON, so nothing is lost.
        """
        row = {
            "event": "submit",
            "job_id": job.job_id,
            "seq": job.seq,
            "report_id": job.report_id,
            "fingerprint": job.fingerprint,
            "priority": job.priority,
            "true_cause": job.true_cause,
            "force": job.force,
            # Microsecond precision: the fleet's merge-on-replay order
            # key is (submitted_at, node, seq), so the journaled clock
            # must resolve distinct arrivals (3dp collapsed ~kHz intake
            # into ties, which per-node seq can no longer break alone).
            "submitted_at": round(job.submitted_at, 6),
        }
        if job.trace_id is not None:
            # Additive and optional: unsampled jobs keep the exact
            # pre-PR-10 row shape, and old journals replay unchanged.
            row["trace"] = job.trace_id
        if dedup_ref is not None \
                and dedup_ref.fingerprint == job.fingerprint:
            row["core_ref"] = dedup_ref.job_id
        else:
            row["core"] = job.core_obj
        if dedup_ref is not None and dedup_ref.program == job.program:
            row["program_ref"] = dedup_ref.job_id
        else:
            row["program"] = {"key": job.program.key,
                              "source": job.program.source,
                              "name": job.program.name}
        self._append(row)

    def record_done(self, job: IntakeJob) -> None:
        verdict = job.verdict
        result = verdict.result if verdict else None
        self._append({
            "event": "done",
            "job_id": job.job_id,
            "cause": cause_to_obj(result.cause) if result else None,
            "exploitable": result.exploitable if result else False,
            "cached": verdict.cached if verdict else False,
            "seconds": round(verdict.seconds, 6) if verdict else 0.0,
            "dedup_of": job.dedup_of,
        })

    def record_failed(self, job: IntakeJob) -> None:
        self._append({
            "event": "failed",
            "job_id": job.job_id,
            "error": job.error or "triage failed",
        })

    def record_quarantined(self, job: IntakeJob) -> None:
        """Settle a poison job durably.  An additive row kind under the
        same schema: old journals replay unchanged, and a journal with
        quarantine rows replayed by an *older* reader would re-queue
        the job (treating it as unsettled) — safe, merely un-quarantined
        until it crash-loops again."""
        self._append({
            "event": "quarantined",
            "job_id": job.job_id,
            "error": job.error or "quarantined",
            "attempts": job.attempts,
            "worker_crashes": job.worker_crashes,
        })

    # -- replay --------------------------------------------------------------

    def replay(self, config: TriageServiceConfig) -> List[IntakeJob]:
        """Reconstruct every journaled job, in submission order.

        Settled jobs carry a rebuilt verdict (bucket re-derived from
        the journaled cause under the *current* annotations, like a
        warm cache hit); unsettled jobs come back ``QUEUED`` whatever
        state they died in.  Torn or alien-schema rows are skipped —
        losing the row being written at the moment of death is the
        contract, silently corrupting a settled verdict is not.
        """
        # Two-pass replay: gather rows first, then build jobs in *seq*
        # order and apply settle events last.  Rows are journaled
        # outside the daemon's admission lock, so a duplicate's submit
        # row (which references its representative via ``core_ref`` /
        # ``program_ref``) may legitimately hit the file before the
        # representative's own row — seq order restores the dependency
        # direction (a representative always has the lower seq).
        submits: Dict[str, dict] = {}
        settles: Dict[str, dict] = {}
        rows: List[Tuple[int, dict]] = []
        for path in self.all_paths():
            try:
                rows.extend(iter_jsonl(path, strict=True))
            except OSError as exc:
                # An unreadable journal is NOT an empty one: starting
                # over would drop every acknowledged job and re-issue
                # seq/job identities the file already assigned — on the
                # next restart, old settle rows could pair with new
                # submit rows and attach a past crash's verdict to a
                # different coredump.  Refuse to run instead.
                raise ReproError(
                    f"intake journal {path} exists but is unreadable "
                    f"({exc}); refusing to start with a blank history"
                ) from exc
        for _, row in rows:
            if row.get("schema") != JOURNAL_SCHEMA:
                continue
            event = row.get("event")
            job_id = row.get("job_id")
            if not isinstance(job_id, str):
                continue
            if event == "submit":
                submits[job_id] = row
            elif event == "settled":
                # A compacted submit+settle pair: one standalone row
                # plays both parts (idempotent against any surviving
                # uncompacted settle row for the same job).
                submits[job_id] = row
                settles.setdefault(job_id,
                                   dict(row, event=row.get("kind")))
            elif event in ("done", "failed", "quarantined"):
                settles[job_id] = row

        jobs: Dict[str, IntakeJob] = {}
        ordered: List[IntakeJob] = []
        for row in sorted(submits.values(),
                          key=lambda r: r.get("seq") or 0):
            try:
                if "program_ref" in row:
                    program = jobs[row["program_ref"]].program
                else:
                    raw = row["program"]
                    program = ProgramSpec(key=raw["key"],
                                          source=raw["source"],
                                          name=raw.get("name", ""))
                if "core_ref" in row:
                    # Shared reference on purpose: duplicates of one
                    # crash share one parsed coredump in memory too.
                    core_obj = jobs[row["core_ref"]].core_obj
                elif row.get("event") == "settled":
                    # Compaction drops the dump when the journaled
                    # cause makes it unreachable on replay.
                    core_obj = row.get("core")
                else:
                    core_obj = row["core"]
                job = IntakeJob(
                    job_id=row["job_id"],
                    seq=int(row["seq"]),
                    report_id=row["report_id"],
                    program=program,
                    core_obj=core_obj,
                    fingerprint=row["fingerprint"],
                    priority=int(row["priority"]),
                    true_cause=row.get("true_cause"),
                    force=bool(row.get("force", False)),
                    submitted_at=float(row.get("submitted_at", 0.0)),
                    trace_id=row.get("trace"),
                )
            except (KeyError, TypeError, ValueError):
                continue  # damaged row: recompute rather than guess
            jobs[job.job_id] = job
            ordered.append(job)

        for job_id, row in settles.items():
            job = jobs.get(job_id)
            if job is None:
                continue
            try:
                if row["event"] == "done":
                    cause = cause_from_obj(row["cause"])
                    # The stack-fallback bucket is the only consumer of
                    # the coredump; with a journaled cause the parse
                    # (per historical crash, on every restart) is waste.
                    report = job.bug_report(
                        require_coredump=cause is None)
                    result = synthesize_result(
                        report, cause,
                        bool(row["exploitable"]),
                        annotations=config.annotations,
                        stack_depth=config.stack_depth)
                    job.verdict = TriagedReport(
                        result=result,
                        program_key=job.program.key,
                        fingerprint=job.fingerprint,
                        seconds=float(row.get("seconds", 0.0)),
                        dedup_of=row.get("dedup_of"),
                        cached=bool(row.get("cached", False)))
                    job.dedup_of = row.get("dedup_of")
                    job.state = JobState.DONE
                    job.finished_at = job.submitted_at
                elif row["event"] == "quarantined":
                    job.state = JobState.QUARANTINED
                    job.error = row.get("error", "quarantined")
                    job.attempts = int(row.get("attempts", 0))
                    job.worker_crashes = int(row.get("worker_crashes", 0))
                    job.finished_at = job.submitted_at
                else:
                    job.state = JobState.FAILED
                    job.error = row.get("error", "triage failed")
                    job.finished_at = job.submitted_at
            except (KeyError, TypeError, ValueError):
                continue  # damaged settle row: job replays as queued
        for job in ordered:
            if not job.settled:
                job.state = JobState.QUEUED
                job.resumed = True
        return ordered


def next_ids(jobs: List[IntakeJob]) -> int:
    """The first unused sequence number after a replay."""
    return max((job.seq for job in jobs), default=-1) + 1


def make_job_id(seq: int, node_id: Optional[str] = None) -> str:
    """Node-prefixed in fleet mode so ids are fleet-unique and any
    node can route a ``GET /jobs/<id>`` to the id's owner."""
    return f"{node_id}-j{seq:06d}" if node_id else f"j{seq:06d}"


def default_report_id(seq: int, node_id: Optional[str] = None) -> str:
    return f"{node_id}-r{seq:06d}" if node_id else f"r{seq:06d}"


def now() -> float:
    return time.time()
