"""Client helpers for the intake daemon (``res submit`` / ``res
status`` / ``res watch``).

Everything speaks the daemon's JSON API over stdlib ``urllib`` — no
dependencies — and raises :class:`ServiceClientError` (a
:class:`ReproError`) on transport or protocol failures so the CLI's
one-line-diagnostic contract holds for network problems too.

``watch_directory`` is the §3.1 deployment shim: point it at a
directory that crashing software drops coredumps into and it forwards
anything new to the daemon.  Two layouts are understood: a saved triage
corpus (``manifest.json`` — programs and labels ride along) and a flat
directory of coredump JSONs paired with one ``--source``/``--workload``
program.
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro import obs
from repro.errors import ReproError


class ServiceClientError(ReproError):
    """Transport/protocol failure talking to the intake daemon."""


class ServiceUnreachableError(ServiceClientError):
    """The daemon itself cannot be reached (connection-level failure).

    Distinguished from per-submission failures so a long-running
    forwarder can keep skipping one bad coredump file but must stop
    (and report) when the whole service is down.
    """


class ServiceRetryableError(ServiceClientError):
    """The daemon answered but cannot take the submission right now
    (503 — spool disk trouble).  The submission itself is fine, so a
    retrying client treats this like a connection failure, not like a
    malformed file."""


#: submissions the daemon settled or accepted (anything else is an error)
_OK_STATUSES = (200, 202, 429)

#: owning-node redirect chain cap: a correct fleet answers in one hop
#: (submit node → owner); anything longer is a misconfigured ring.
_MAX_REDIRECT_HOPS = 3


class FleetTargets:
    """Round-robin rotation over fleet node base URLs.

    ``next_order()`` returns every URL starting at the rotation
    cursor, then advances the cursor — so consecutive submissions
    spread their *first* attempt across the fleet while keeping the
    remaining nodes as in-order failover candidates.
    """

    def __init__(self, urls: List[str]):
        seen: List[str] = []
        for url in urls:
            base = url.rstrip("/")
            if base and base not in seen:
                seen.append(base)
        if not seen:
            raise ServiceClientError("no daemon URL configured")
        self.urls = seen
        self._cursor = 0

    def next_order(self) -> List[str]:
        start = self._cursor % len(self.urls)
        self._cursor += 1
        return self.urls[start:] + self.urls[:start]


class RetryPolicy:
    """Jittered exponential backoff for daemon-side trouble.

    One policy instance carries the RNG and the knobs; ``delay(n)`` is
    the sleep before retry ``n`` (0-based): ``base * 2^n`` clamped to
    ``cap``, scaled by a uniform factor in [0.5, 1.0] so a fleet of
    forwarders that all saw the same daemon restart does not stampede
    back in lockstep.  A server-suggested floor (429 Retry-After) is
    honored by raising the window to it before jittering.
    """

    def __init__(self, max_retries: int = 5, backoff_base: float = 0.2,
                 backoff_cap: float = 10.0,
                 timeout: Optional[float] = None,
                 seed: Optional[int] = None):
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.timeout = timeout
        self.rng = random.Random(seed)

    def delay(self, retry: int, suggested: Optional[float] = None) -> float:
        window = self.backoff_base * (2 ** max(0, retry))
        if suggested is not None:
            window = max(window, float(suggested))
        window = min(self.backoff_cap, window)
        return window * (0.5 + 0.5 * self.rng.random())


def submit_with_retries(base_url: str, program: Dict[str, str],
                        coredump_json: str,
                        report_id: Optional[str] = None,
                        true_cause: Optional[str] = None,
                        force: bool = False,
                        policy: Optional[RetryPolicy] = None,
                        notify: Optional[Callable[[str, int, dict],
                                                  None]] = None
                        ) -> Tuple[int, dict]:
    """:func:`submit_report` that survives daemon restarts and
    transient refusals.

    Retries (with jittered exponential backoff, up to
    ``policy.max_retries`` and ``policy.timeout`` seconds overall) on:
    connection failures (the daemon is restarting — exactly when an
    unattended forwarder must not die), 503 (spool disk trouble), and
    429 (queue full, honoring the suggested Retry-After as the backoff
    floor).  A 400 is never retried: the submission itself is bad.
    Returns the final ``(status, body)``; exhausted retries re-raise
    the last transport error (or return the final 429).
    """
    policy = policy or RetryPolicy()
    deadline = time.monotonic() + policy.timeout \
        if policy.timeout is not None else None

    def out_of_budget(retry: int) -> bool:
        if retry >= policy.max_retries:
            return True
        return deadline is not None and time.monotonic() >= deadline

    trace_id = obs.new_trace_id()  # one trace across every retry
    retry = 0
    while True:
        suggested = None
        try:
            status, body = submit_report(
                base_url, program, coredump_json, report_id=report_id,
                true_cause=true_cause, force=force, trace_id=trace_id)
            if status != 429:
                return status, body
            if out_of_budget(retry):
                return status, body
            suggested = float(body.get("retry_after_seconds", 1.0))
        except (ServiceUnreachableError, ServiceRetryableError) as exc:
            if out_of_budget(retry):
                raise
            if notify is not None:
                notify("retry", 0, {"error": str(exc), "retry": retry})
        time.sleep(policy.delay(retry, suggested=suggested))
        retry += 1


def submit_fleet_with_retries(targets: FleetTargets,
                              program: Dict[str, str],
                              coredump_json: str,
                              report_id: Optional[str] = None,
                              true_cause: Optional[str] = None,
                              force: bool = False,
                              policy: Optional[RetryPolicy] = None,
                              notify: Optional[Callable[[str, int, dict],
                                                        None]] = None
                              ) -> Tuple[int, dict, str]:
    """:func:`submit_fleet` under the same retry contract as
    :func:`submit_with_retries`; returns ``(status, body, url)`` with
    the URL of the node that answered."""
    policy = policy or RetryPolicy()
    deadline = time.monotonic() + policy.timeout \
        if policy.timeout is not None else None

    def out_of_budget(retry: int) -> bool:
        if retry >= policy.max_retries:
            return True
        return deadline is not None and time.monotonic() >= deadline

    trace_id = obs.new_trace_id()  # one trace across every retry
    retry = 0
    while True:
        suggested = None
        try:
            status, body, url = submit_fleet(
                targets, program, coredump_json, report_id=report_id,
                true_cause=true_cause, force=force, trace_id=trace_id)
            if status != 429:
                return status, body, url
            if out_of_budget(retry):
                return status, body, url
            suggested = float(body.get("retry_after_seconds", 1.0))
        except (ServiceUnreachableError, ServiceRetryableError) as exc:
            if out_of_budget(retry):
                raise
            if notify is not None:
                notify("retry", 0, {"error": str(exc), "retry": retry})
        time.sleep(policy.delay(retry, suggested=suggested))
        retry += 1


def _request(url: str, method: str = "GET",
             payload: Optional[dict] = None,
             timeout: float = 30.0,
             trace_id: Optional[str] = None) -> Tuple[int, dict]:
    data = None
    headers = {"Accept": "application/json"}
    if payload is not None:
        data = json.dumps(payload).encode("utf-8")
        headers["Content-Type"] = "application/json"
    if trace_id is not None:
        headers[obs.TRACE_HEADER] = trace_id
    try:
        request = urllib.request.Request(url, data=data, headers=headers,
                                         method=method)
    except ValueError as exc:
        raise ServiceClientError(f"invalid daemon URL {url}: {exc}") from exc
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(
                response.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        try:
            body = json.loads(exc.read().decode("utf-8"))
        except (ValueError, OSError):
            body = {"error": f"HTTP {exc.code}"}
        return exc.code, body
    except urllib.error.URLError as exc:
        raise ServiceUnreachableError(
            f"cannot reach intake daemon at {url}: {exc.reason}") from exc
    except (OSError, ValueError) as exc:
        raise ServiceClientError(
            f"bad response from intake daemon at {url}: {exc}") from exc


def _submission_payload(program: Dict[str, str], coredump_json: str,
                        report_id: Optional[str],
                        true_cause: Optional[str],
                        force: bool) -> dict:
    try:
        core_obj = json.loads(coredump_json)
    except ValueError as exc:
        raise ServiceClientError(
            f"submission refused: coredump is not JSON: {exc}") from exc
    payload = {
        "program": program,
        "coredump": core_obj,
        "force": force,
    }
    if report_id is not None:
        payload["report_id"] = report_id
    if true_cause is not None:
        payload["true_cause"] = true_cause
    return payload


def _submit_payload(base_url: str, payload: dict,
                    timeout: float,
                    trace_id: Optional[str] = None
                    ) -> Tuple[int, dict, str]:
    """POST one submission, transparently following the fleet's
    owning-node redirect (307 + ``owner_url``).  Returns
    ``(status, body, url)`` where ``url`` is the node that actually
    answered — that is where ``GET /jobs/<id>`` should be polled.

    ``trace_id`` rides the ``X-Res-Trace`` header on *every* hop, so a
    redirected submission is one trace: the first node's redirect span
    and the owner's admission span share the id."""
    base = base_url.rstrip("/")
    hops = 0
    while True:
        status, body = _request(f"{base}/jobs", method="POST",
                                payload=payload, timeout=timeout,
                                trace_id=trace_id)
        if status == 307:
            owner_url = str(body.get("owner_url") or "").rstrip("/")
            if owner_url and owner_url != base \
                    and hops < _MAX_REDIRECT_HOPS:
                base = owner_url
                hops += 1
                continue
            raise ServiceClientError(
                f"submission refused (307): "
                f"{body.get('error', 'owned by another fleet node')} "
                f"(owner: {body.get('owner', 'unknown')})")
        break
    if status == 503:
        raise ServiceRetryableError(
            f"submission deferred (503): "
            f"{body.get('error', 'service unavailable')}")
    if status not in _OK_STATUSES:
        raise ServiceClientError(
            f"submission refused ({status}): "
            f"{body.get('error', 'unknown error')}")
    return status, body, base


def submit_report(base_url: str, program: Dict[str, str],
                  coredump_json: str,
                  report_id: Optional[str] = None,
                  true_cause: Optional[str] = None,
                  force: bool = False,
                  timeout: float = 30.0,
                  trace_id: Optional[str] = None) -> Tuple[int, dict]:
    """POST one submission; returns ``(http_status, payload)``.

    In fleet mode the owning-node redirect is followed transparently,
    so the caller sees the owner's answer no matter which node it
    picked.  A trace id is minted per call (or passed in) and sent as
    ``X-Res-Trace``; the daemon decides whether to record it."""
    payload = _submission_payload(program, coredump_json, report_id,
                                  true_cause, force)
    status, body, __ = _submit_payload(
        base_url, payload, timeout,
        trace_id=trace_id if trace_id is not None
        else obs.new_trace_id())
    return status, body


def submit_fleet(targets: FleetTargets, program: Dict[str, str],
                 coredump_json: str,
                 report_id: Optional[str] = None,
                 true_cause: Optional[str] = None,
                 force: bool = False,
                 timeout: float = 30.0,
                 trace_id: Optional[str] = None) -> Tuple[int, dict, str]:
    """Submit to a fleet: round-robin the first attempt across nodes,
    fail over to the remaining nodes when one is unreachable, and
    follow the owning-node redirect.  Returns ``(status, body, url)``
    with the URL of the node that answered.  One trace id covers every
    failover attempt — the submission is one logical event."""
    last_exc: Optional[ServiceUnreachableError] = None
    payload = _submission_payload(program, coredump_json, report_id,
                                  true_cause, force)
    if trace_id is None:
        trace_id = obs.new_trace_id()
    for base in targets.next_order():
        try:
            return _submit_payload(base, payload, timeout,
                                   trace_id=trace_id)
        except ServiceUnreachableError as exc:
            # This node is down — but any node can accept (or redirect)
            # a submission, so the fleet is only down when all are.
            last_exc = exc
    assert last_exc is not None
    raise last_exc


def get_job(base_url: str, job_id: str, timeout: float = 30.0) -> dict:
    base = base_url.rstrip("/")
    status, body = 404, {}
    for __ in range(_MAX_REDIRECT_HOPS + 1):
        status, body = _request(f"{base}/jobs/{job_id}",
                                timeout=timeout)
        owner_url = str(body.get("owner_url") or "").rstrip("/")
        if status == 307 and owner_url and owner_url != base:
            base = owner_url  # the minting node owns the live status
            continue
        break
    if status != 200:
        raise ServiceClientError(
            f"job {job_id}: {body.get('error', f'HTTP {status}')}")
    return body


def get_health(base_url: str, timeout: float = 30.0) -> dict:
    status, body = _request(f"{base_url.rstrip('/')}/healthz",
                            timeout=timeout)
    if status != 200:
        raise ServiceClientError(f"healthz returned HTTP {status}")
    return body


def get_quarantine(base_url: str, timeout: float = 30.0) -> list:
    """Every quarantined (poison) job with its diagnostics."""
    status, body = _request(f"{base_url.rstrip('/')}/quarantine",
                            timeout=timeout)
    if status != 200:
        raise ServiceClientError(f"quarantine returned HTTP {status}")
    return body.get("quarantined", [])


def get_buckets(base_url: str, timeout: float = 30.0) -> dict:
    """The refined bucket hierarchy over the daemon's settled history."""
    status, body = _request(f"{base_url.rstrip('/')}/buckets",
                            timeout=timeout)
    if status != 200:
        raise ServiceClientError(f"buckets returned HTTP {status}")
    return body


def get_trace(base_url: str, job_or_trace_id: str,
              timeout: float = 30.0) -> dict:
    """Flight-recorder spans for a job id (or raw trace id).  The
    answering node merges peer spans, so any fleet node can be asked."""
    status, body = _request(
        f"{base_url.rstrip('/')}/trace/{job_or_trace_id}",
        timeout=timeout)
    if status != 200:
        raise ServiceClientError(
            f"trace {job_or_trace_id}: "
            f"{body.get('error', f'HTTP {status}')}")
    return body


def get_metrics_text(base_url: str, timeout: float = 30.0) -> str:
    url = f"{base_url.rstrip('/')}/metrics"
    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return response.read().decode("utf-8")
    except (urllib.error.URLError, OSError) as exc:
        raise ServiceUnreachableError(
            f"cannot reach intake daemon at {url}: {exc}") from exc


def wait_for_job(base_url: str, job_id: str, timeout: float = 120.0,
                 poll: float = 0.2) -> dict:
    """Poll until the job settles (done/failed) or ``timeout`` passes."""
    deadline = time.monotonic() + timeout
    while True:
        payload = get_job(base_url, job_id)
        if payload.get("state") in ("done", "failed", "quarantined"):
            return payload
        if time.monotonic() >= deadline:
            raise ServiceClientError(
                f"timed out after {timeout:.0f}s waiting for job {job_id} "
                f"(state: {payload.get('state')})")
        time.sleep(poll)


# ---------------------------------------------------------------------------
# Directory intake (res watch)
# ---------------------------------------------------------------------------

def _corpus_submissions(directory: Path,
                        skip: frozenset) -> List[dict]:
    """Submissions for a saved triage-corpus directory (manifest.json).

    Reads the manifest each scan but opens program/coredump files only
    for entries not in ``skip`` — a steady-state watch loop over an
    already-forwarded corpus must not re-read megabytes of coredumps
    every poll just to discard them.
    """
    manifest_path = directory / "manifest.json"
    try:
        manifest = json.loads(manifest_path.read_text())
        sources: Dict[str, Dict[str, str]] = {}
        out = []
        for item in manifest["entries"]:
            marker = f"corpus:{item['report_id']}"
            if marker in skip:
                continue
            key = item["program"]
            try:
                if key not in sources:
                    meta = manifest["programs"][key]
                    sources[key] = {
                        "key": key,
                        "source": (directory / meta["file"]).read_text(),
                        "name": meta["name"],
                    }
                core_json = (directory / item["core"]).read_text()
            except OSError:
                # A member file vanished or is mid-write: skip it this
                # scan (unmarked, so a later scan retries) rather than
                # killing the forwarder.
                continue
            out.append({
                "marker": marker,
                "program": sources[key],
                "coredump_json": core_json,
                "report_id": item["report_id"],
                "true_cause": item["true_cause"],
            })
        return out
    except (OSError, KeyError, TypeError, ValueError) as exc:
        raise ServiceClientError(
            f"unreadable corpus directory {directory}: {exc}") from exc


def _flat_submissions(directory: Path, program: Dict[str, str],
                      skip: frozenset) -> List[dict]:
    """Submissions for a flat directory of coredump JSON files."""
    out = []
    for path in sorted(directory.glob("*.json")):
        marker = f"file:{path.name}"
        if marker in skip:
            continue
        try:
            core_json = path.read_text()
        except OSError:
            continue  # rotated/mid-write file: retried next scan
        out.append({
            "marker": marker,
            "program": program,
            "coredump_json": core_json,
            "report_id": path.stem,
            "true_cause": None,
        })
    return out


def scan_directory(directory: str,
                   program: Optional[Dict[str, str]] = None,
                   skip: frozenset = frozenset()) -> List[dict]:
    """One intake scan: corpus layout when a manifest is present, flat
    coredump files otherwise (``program`` required for the latter).
    Entries whose marker is in ``skip`` are not even read."""
    root = Path(directory)
    if not root.is_dir():
        raise ServiceClientError(f"watch directory not found: {root}")
    if (root / "manifest.json").exists():
        return _corpus_submissions(root, skip)
    if program is None:
        raise ServiceClientError(
            f"{root} has no manifest.json; supply the program with "
            "--source or --workload")
    return _flat_submissions(root, program, skip)


def watch_directory(directory: str, base_url: str,
                    program: Optional[Dict[str, str]] = None,
                    interval: float = 2.0,
                    once: bool = False,
                    notify: Optional[Callable[[str, int, dict],
                                              None]] = None,
                    stop: Optional[Callable[[], bool]] = None,
                    policy: Optional[RetryPolicy] = None) -> int:
    """Forward new coredumps in ``directory`` to the daemon until
    ``stop()`` (or forever; exactly one scan with ``once``, even if the
    daemon pushes back).  Returns the number of submissions forwarded.
    A 429 leaves the file unmarked, so the next scan retries it after
    a jittered exponential backoff floored at the daemon's suggestion.

    One damaged file (truncated, mid-write, refused by the daemon)
    must not kill an unattended forwarder or block the valid coredumps
    behind it: per-item failures are reported through ``notify`` with
    status 0 and the scan continues; the file stays unmarked, so a
    dump that was simply still being written succeeds on a later scan.

    A daemon outage (connection refused — a restart, a deploy) is
    survived the same way: the forwarder backs off (jittered
    exponential under ``policy``) and re-tries, raising
    :class:`ServiceUnreachableError` only after
    ``policy.max_retries`` *consecutive* failed scans.
    """
    policy = policy or RetryPolicy(max_retries=10,
                                   backoff_base=max(interval, 0.1),
                                   backoff_cap=60.0)
    submitted: set = set()
    forwarded = 0
    throttle_streak = 0  # consecutive scans ended by 429
    down_streak = 0      # consecutive scans ended by unreachability
    while True:
        backoff = None
        try:
            items = scan_directory(directory, program,
                                   skip=frozenset(submitted))
        except ServiceClientError as exc:
            # Transient directory trouble (mid-write manifest, perms
            # flap): a long-running forwarder reports it and retries on
            # the next scan; a one-shot scan surfaces it.
            if once:
                raise
            if notify is not None:
                notify("scan", 0, {"error": str(exc)})
            items = []
        for item in items:
            try:
                status, body = submit_report(
                    base_url, item["program"], item["coredump_json"],
                    report_id=item["report_id"],
                    true_cause=item["true_cause"])
            except (ServiceUnreachableError, ServiceRetryableError) as exc:
                # The service (or its spool disk) is down, not the
                # file.  A daemon mid-restart must not kill the
                # forwarder: back off and rescan, give up only after
                # max_retries consecutive down scans (or immediately
                # in --once mode, whose caller owns the retry loop).
                down_streak += 1
                if once or down_streak > policy.max_retries:
                    raise
                if notify is not None:
                    notify("daemon", 0, {"error": str(exc),
                                         "retry": down_streak})
                backoff = policy.delay(down_streak - 1)
                break
            except ServiceClientError as exc:
                if notify is not None:
                    notify(item["marker"], 0, {"error": str(exc)})
                continue  # skip the damaged file, keep forwarding
            down_streak = 0
            if status == 429:
                # Queue full: stop this scan, retry after a jittered
                # exponential backoff floored at the daemon's honest
                # drain estimate (fixed backoff re-synchronizes every
                # forwarder onto the same retry tick).
                throttle_streak += 1
                backoff = policy.delay(
                    throttle_streak - 1,
                    suggested=float(body.get("retry_after_seconds",
                                             interval)))
                break
            throttle_streak = 0
            submitted.add(item["marker"])
            forwarded += 1
            if notify is not None:
                notify(item["marker"], status, body)
        if once:
            return forwarded
        if stop is not None and stop():
            return forwarded
        time.sleep(backoff if backoff is not None else interval)
