"""Stdlib-only HTTP front end for the intake daemon.

Endpoints (all JSON unless noted):

* ``POST /jobs`` — submit ``{"program": {"key", "source", "name"?},
  "coredump": <object|string>, "report_id"?, "true_cause"?,
  "priority"?, "force"?}``.  200 = known crash, verdict attached;
  202 = accepted (journaled, queued or attached); 307 = fleet mode,
  another node owns this fingerprint (``Location`` header + JSON
  ``owner``/``owner_url`` — clients re-POST there); 400 = malformed;
  429 = queue full (``Retry-After`` header attached).
* ``GET /jobs/<id>`` — job status + verdict once settled; in fleet
  mode an id minted by a peer answers 307 to that peer while the job
  is still in flight there (settled peer jobs answer locally — the
  shadow tier).
* ``GET /buckets`` — bucket signature → report ids, live.
* ``GET /reports/<fingerprint>`` — every settled report of a coredump
  fingerprint.
* ``GET /quarantine`` — every quarantined (poison) job + diagnostics.
* ``GET /healthz`` — liveness + queue/in-flight gauges and the
  degraded/disk signals.
* ``GET /metrics`` — Prometheus text exposition.
* ``GET /trace/<id>`` — flight-recorder spans for a job id or trace
  id; ``?local=1`` skips the fleet-wide peer merge (peers use it to
  answer each other without recursing).  404 = unknown id or tracing
  was off for it.
* ``POST /shutdown`` — ``{"drain": bool}``; asks the serving loop to
  stop (drain first when requested).

The server is a ``ThreadingHTTPServer``: handler threads only ever
call the daemon's locked entry points, so request concurrency is
bounded by the admission lock, not by handler count.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

from repro import faultinject, obs
from repro.service.daemon import TriageDaemon
from repro.service.jobs import node_of

#: request body cap (a coredump JSON is ~100 KB; 32 MB is generous and
#: stops a confused client from OOMing the daemon)
MAX_BODY_BYTES = 32 * 1024 * 1024


class IntakeHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, daemon: TriageDaemon,
                 drain_on_shutdown: bool = True):
        super().__init__(address, IntakeRequestHandler)
        self.triage_daemon = daemon
        self.drain_on_shutdown = drain_on_shutdown


class IntakeRequestHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server: IntakeHTTPServer

    # -- plumbing ------------------------------------------------------------

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # request logging is the metrics endpoint's job

    def _send_json(self, status: int, payload: dict,
                   headers: Optional[dict] = None) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for key, value in (headers or {}).items():
            self.send_header(key, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str,
                   content_type: str = "text/plain; version=0.0.4") -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> Tuple[Optional[dict], Optional[str]]:
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            # Rejecting without reading the body leaves its bytes on a
            # keep-alive connection, where they would be parsed as the
            # next request line — drop the connection instead.
            self.close_connection = True
            return None, "invalid Content-Length"
        if length <= 0:
            self.close_connection = True
            return None, "empty request body"
        if length > MAX_BODY_BYTES:
            self.close_connection = True  # not worth draining 32 MB
            return None, f"request body over {MAX_BODY_BYTES} bytes"
        raw = self.rfile.read(length)
        fi = faultinject.active()
        if fi is not None:
            # Corrupt-on-the-wire site: what the daemon parses is a
            # truncated/bit-flipped/garbage-prefixed version of what
            # the client sent — the chaos suite's malformed traffic.
            raw = fi.corrupt("http.body", raw)
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            return None, f"request body is not JSON: {exc}"
        if not isinstance(payload, dict):
            return None, "request body must be a JSON object"
        return payload, None

    @staticmethod
    def _peer_url_for(daemon: TriageDaemon,
                      job_id: str) -> Optional[str]:
        """URL of the fleet peer that minted ``job_id``, if the id names
        a configured peer other than this node (else ``None``)."""
        config = daemon.config
        if not config.node_id:
            return None
        owner = node_of(job_id)
        if not owner or owner == config.node_id:
            return None
        url = config.peers.get(owner, "")
        return url.rstrip("/") or None

    # -- routes --------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        daemon = self.server.triage_daemon
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        if path == "/healthz":
            self._send_json(200, daemon.healthz())
        elif path == "/metrics":
            self._send_text(200, daemon.metrics_text())
        elif path == "/buckets":
            self._send_json(200, daemon.buckets_payload())
        elif path == "/quarantine":
            self._send_json(200, daemon.quarantine_payload())
        elif path.startswith("/jobs/"):
            job_id = path[len("/jobs/"):]
            payload = daemon.job_payload(job_id)
            if payload is None:
                peer_url = self._peer_url_for(daemon, job_id)
                if peer_url is not None:
                    self._send_json(
                        307,
                        {"error": "job is owned by another fleet node",
                         "owner": node_of(job_id),
                         "owner_url": peer_url},
                        {"Location": f"{peer_url}/jobs/{job_id}"})
                else:
                    self._send_json(404, {"error": "no such job"})
            else:
                self._send_json(200, payload)
        elif path.startswith("/reports/"):
            self._send_json(
                200, daemon.report_payload(path[len("/reports/"):]))
        elif path.startswith("/trace/"):
            query = self.path.partition("?")[2]
            local_only = "local=1" in query.split("&")
            payload = daemon.trace_payload(path[len("/trace/"):],
                                           local_only=local_only)
            if payload is None:
                self._send_json(
                    404, {"error": "no trace for that id (tracing off, "
                                   "unsampled, or unknown)"})
            else:
                self._send_json(200, payload)
        else:
            self._send_json(404, {"error": f"no route for {path}"})

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        daemon = self.server.triage_daemon
        path = self.path.split("?", 1)[0].rstrip("/")
        if path == "/jobs":
            payload, error = self._read_body()
            if error is not None:
                daemon.metrics.bump("malformed_total")
                self._send_json(400, {"error": error})
                return
            priority = payload.get("priority")
            if priority is not None:
                try:
                    priority = int(priority)
                except (TypeError, ValueError):
                    daemon.metrics.bump("malformed_total")
                    self._send_json(
                        400, {"error": "priority must be an integer"})
                    return
            try:
                status, body = daemon.submit(
                    payload.get("program"),
                    payload.get("coredump"),
                    report_id=payload.get("report_id"),
                    true_cause=payload.get("true_cause"),
                    priority=priority,
                    force=bool(payload.get("force", False)),
                    trace_id=self.headers.get(obs.TRACE_HEADER))
            except OSError as exc:
                # Spool trouble (ENOSPC, ...): answer 503 instead of
                # dropping the connection — a dropped connection reads
                # as "daemon down" and kills unattended forwarders
                # that are built to survive per-submission failures.
                self._send_json(503, {"error":
                                      f"intake journal unavailable: "
                                      f"{exc}"})
                return
            headers = None
            if status == 429:
                headers = {"Retry-After":
                           str(body.get("retry_after_seconds", 1))}
            elif status == 307 and body.get("owner_url"):
                headers = {"Location":
                           f"{body['owner_url'].rstrip('/')}/jobs"}
            self._send_json(status, body, headers)
        elif path == "/shutdown":
            payload, __ = self._read_body()
            drain = bool((payload or {}).get("drain", True))
            self.server.drain_on_shutdown = drain
            self._send_json(200, {"ok": True, "drain": drain})
            daemon.request_shutdown()
        else:
            self._send_json(404, {"error": f"no route for {path}"})


def start_http_server(daemon: TriageDaemon, host: str = "127.0.0.1",
                      port: int = 0) -> IntakeHTTPServer:
    """Bind and serve in a background thread; ``port=0`` picks a free
    port (read it back from ``server.server_address``)."""
    server = IntakeHTTPServer((host, port), daemon)
    thread = threading.Thread(target=server.serve_forever,
                              name="intake-http", daemon=True)
    thread.start()
    return server
