"""Always-on crash-intake triage service (paper §3.1 as a daemon).

PRs 1–4 built the engine, the corpus tooling, batch sharding, and
cross-run persistence — but only as one-shot CLI invocations.  This
package turns them into the service the paper actually describes: a
long-running HTTP daemon that accepts coredump submissions as deployed
software crashes, dedups them against everything it has ever triaged
(WER-style instant answers for known crashes), queues the rest durably,
and synthesizes verdicts with warm-cache-backed workers.

Layers (each its own module):

* :mod:`repro.service.jobs` — the job model and the durable intake
  journal (kill the daemon, restart it, every unsettled job resumes);
* :mod:`repro.service.daemon` — admission/dedup, priority queue with
  backpressure, the worker pool, metrics, and the report store;
* :mod:`repro.service.http_api` — the stdlib-only HTTP front end;
* :mod:`repro.service.client` — ``res submit`` / ``res status`` /
  ``res watch`` client helpers.
"""

from repro.service.jobs import IntakeJob, JobJournal, JobState
from repro.service.daemon import DaemonConfig, TriageDaemon
from repro.service.http_api import start_http_server

__all__ = [
    "DaemonConfig",
    "IntakeJob",
    "JobJournal",
    "JobState",
    "TriageDaemon",
    "start_http_server",
]
