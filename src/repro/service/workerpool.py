"""Worker executors: the daemon's drive engine, out of the GIL.

PR 5's daemon ran every drive on a worker *thread* — correct, but one
GIL means one core, and cold verdicts are pure Python compute.  This
module lifts the PR 3 multiprocess sharding idea into the daemon's
per-worker shape: each worker slot owns an **executor**, and the
default executor forks a dedicated worker *process* that holds the
warm :class:`~repro.core.triage_service.StreamingTriage` session.

The daemon's self-healing contract survives the process boundary
unchanged because the *proxy thread* (the daemon-side half of each
worker slot) still runs the PR 6 claim/release protocol:

* **claim tokens** — claimed in the daemon before dispatch; a stale
  settle (watchdog reaped the drive meanwhile) is discarded exactly
  as before.
* **crash retry / quarantine** — a worker process dying mid-drive
  (SIGKILL, OOM, injected ``worker.task`` crash) surfaces as
  :class:`WorkerProcessDied` on the proxy's pipe; the daemon counts a
  worker loss against the job and requeues or quarantines it.
* **watchdog** — a hung drive is now *killable*: the daemon SIGKILLs
  the worker process, the proxy unblocks on pipe EOF, and a fresh
  process replaces it.  (Threads could only be abandoned.)
* **fault injection** — ``worker.task`` is decided daemon-side before
  dispatch, so injected worker deaths are observable in the daemon's
  metrics; sites inside the drive (``solver.call``) fire in the child,
  coordinated through the injector's shared cross-process counters.

Wire protocol (one duplex pipe per worker, pickled tuples):

    parent -> child   ("task", program, report, fingerprint, bypass,
                       trace)
    child  -> parent  ("ok", TriagedReport)
                      | ("ok", TriagedReport, phases)   traced task
                      | ("error", "Type: msg")
    parent -> child   ("stop",)

``trace`` is the job's trace id (None when the flight recorder is not
sampling — the overwhelmingly common case); a traced task's reply
carries the drive's per-phase timings as plain
``(phase, seconds, attrs)`` tuples, which the proxy exposes on
:attr:`last_phases` for the daemon to mint spans from.  Both pipe
ends run the same code image (fork), so the tuple extension needs no
version negotiation.

A child that dies mid-task closes the pipe; the proxy sees
EOF/EPIPE and reports :class:`WorkerProcessDied`.  Anything the child
can serialize an answer for is an ``("error", ...)`` reply instead —
those are drive errors, retried by the daemon's normal attempt
budget, not worker losses.

``worker_mode="thread"`` keeps the old in-thread executor as the A/B
baseline for ``make fleet-bench`` (and for platforms without fork).
"""

from __future__ import annotations

import multiprocessing as mp
import os
import threading
from typing import Optional

from repro import faultinject
from repro.core.triage import BugReport
from repro.core.triage_service import (
    ProgramSpec,
    StreamingTriage,
    TriagedReport,
    TriageServiceConfig,
)


#: parent-side pipe ends of every live worker, registered before the
#: fork so each child can close the copies it inherits.  Without this,
#: a child holds (a) its own worker's parent end and (b) the parent
#: ends of every earlier-forked sibling — so no pipe ever reaches EOF
#: from the child's side, and a SIGKILLed daemon leaves its workers
#: parked in ``recv()`` forever (each pinning a warm triage session;
#: a few chaos runs of that starves the whole box).
_parent_ends: set = set()
_parent_ends_lock = threading.Lock()


def _shed_inherited_parent_ends() -> None:
    """First act of every forked child: drop the parent-side pipe ends
    it inherited.  Runs single-threaded (fresh fork), so the registry
    is read without its lock — the lock may have been held by another
    parent thread at fork time and would deadlock here."""
    for conn in list(_parent_ends):
        try:
            conn.close()
        except OSError:
            pass
    _parent_ends.clear()


def _close_inherited_fds(keep: int) -> None:
    """Second act: close every other inherited descriptor (std streams
    and this worker's own pipe excepted).  The blanket sweep is the
    point — a fork can race any parent thread mid-I/O, and an
    inherited journal / fault-state / result-cache descriptor whose
    ``flock`` was held at fork time stays locked until *this child*
    closes its copy (the lock lives on the shared open file
    description, not the parent's fd).  A worker that parks on its
    pipe while holding such a lock wedges every later locker in every
    process.  The daemon's listening socket is swept up too, so a
    worker that outlives a killed daemon can never squat on its port."""
    os.closerange(3, keep)
    os.closerange(keep + 1, 1 << 20)


class WorkerProcessDied(RuntimeError):
    """The worker process vanished mid-drive (killed, crashed, OOMed).
    The daemon treats it like PR 6's injected worker death: count a
    worker loss against the job, requeue or quarantine, respawn."""


class TriageTaskError(RuntimeError):
    """A drive raised inside the worker; ``str()`` carries the child's
    ``"ExcType: message"`` rendering so retry/quarantine diagnostics
    read identically to the in-thread path."""


class ThreadExecutor:
    """The PR 5 shape: the drive runs on the proxy thread itself.
    Kept as the measured baseline (``worker_mode="thread"``) — the
    fleet benchmark's denominator — and as the no-fork fallback."""

    def __init__(self, config: TriageServiceConfig, chain=None):
        self._session = StreamingTriage(
            config, chain=chain if chain is not None
            else config.cache_chain())
        #: per-phase timings of the last traced task (see the module
        #: docstring's wire protocol); [] for untraced tasks
        self.last_phases: list = []

    @property
    def alive(self) -> bool:
        return True

    def run(self, program: ProgramSpec, report: BugReport,
            fingerprint: Optional[str] = None,
            bypass_cache: bool = False,
            trace: Optional[str] = None) -> TriagedReport:
        self.last_phases = []
        try:
            triaged = self._session.triage_one(
                program, report, fingerprint=fingerprint,
                bypass_cache=bypass_cache, trace=trace)
            if trace is not None:
                self.last_phases = list(self._session.last_phases)
            return triaged
        except KeyboardInterrupt:
            raise
        except faultinject.WorkerCrashError:
            raise
        except Exception as exc:  # noqa: BLE001 - worker boundary
            raise TriageTaskError(f"{type(exc).__name__}: {exc}") from exc

    def kill(self) -> None:  # nothing to kill: the thread IS the drive
        pass

    def close(self) -> None:
        self._session.flush_solver_caches()


def _child_main(conn, config: TriageServiceConfig) -> None:
    """Worker-process entry: a warm StreamingTriage session answering
    tasks until the pipe closes.  Forked from a daemon thread, so the
    first act is shedding inherited parent state we must not share:
    the injector's in-process lock (another daemon thread may have
    held it at fork time) gets replaced; the session and cache chain
    are built fresh — only the flock-guarded files are shared."""
    _shed_inherited_parent_ends()
    _close_inherited_fds(conn.fileno())
    fi = faultinject.active()
    if fi is not None:
        fi._lock = threading.Lock()
    session = StreamingTriage(config, chain=config.cache_chain())
    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError, KeyboardInterrupt):
                break
            if not msg or msg[0] == "stop":
                break
            __, program, report, fingerprint, bypass, trace = msg
            try:
                triaged = session.triage_one(
                    program, report, fingerprint=fingerprint,
                    bypass_cache=bypass, trace=trace)
            except KeyboardInterrupt:
                break
            except faultinject.WorkerCrashError:
                # An injected in-drive death must be a *real* death —
                # the daemon's pipe-EOF path is the thing under test.
                os._exit(1)
            except BaseException as exc:  # noqa: BLE001 - child boundary
                try:
                    conn.send(("error", f"{type(exc).__name__}: {exc}"))
                except (OSError, ValueError):
                    break
                continue
            try:
                if trace is not None:
                    conn.send(("ok", triaged,
                               list(session.last_phases)))
                else:
                    conn.send(("ok", triaged))
            except (OSError, ValueError):
                break
            # After the reply, not before: solver snapshots are a
            # warm-start optimization, never worth a verdict's latency.
            session.flush_solver_caches()
    finally:
        try:
            session.flush_solver_caches()
        except Exception:  # noqa: BLE001 - exiting anyway
            pass
        try:
            conn.close()
        except OSError:
            pass


class ProcessExecutor:
    """One forked worker process behind a duplex pipe."""

    def __init__(self, config: TriageServiceConfig):
        ctx = mp.get_context("fork")
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        self._conn = parent_conn
        with _parent_ends_lock:
            _parent_ends.add(parent_conn)
        self._proc = ctx.Process(target=_child_main,
                                 args=(child_conn, config),
                                 daemon=True)
        self._proc.start()
        child_conn.close()  # the child's end lives in the child only
        #: per-phase timings of the last traced task, relayed from the
        #: child's reply; [] for untraced tasks
        self.last_phases: list = []

    @property
    def alive(self) -> bool:
        return self._proc.is_alive()

    @property
    def pid(self) -> Optional[int]:
        return self._proc.pid

    def run(self, program: ProgramSpec, report: BugReport,
            fingerprint: Optional[str] = None,
            bypass_cache: bool = False,
            trace: Optional[str] = None) -> TriagedReport:
        self.last_phases = []
        try:
            self._conn.send(("task", program, report, fingerprint,
                             bypass_cache, trace))
            reply = self._conn.recv()
        except (EOFError, OSError) as exc:
            raise WorkerProcessDied(
                f"worker process pid={self._proc.pid} died mid-drive "
                f"({type(exc).__name__})") from exc
        if not isinstance(reply, tuple) or len(reply) not in (2, 3):
            raise WorkerProcessDied(
                f"worker process pid={self._proc.pid} sent a garbled "
                f"reply")
        status, payload = reply[0], reply[1]
        if status == "ok":
            if len(reply) == 3 and isinstance(reply[2], list):
                self.last_phases = reply[2]
            return payload
        raise TriageTaskError(str(payload))

    def _unregister(self) -> None:
        with _parent_ends_lock:
            _parent_ends.discard(self._conn)

    def kill(self) -> None:
        """SIGKILL the worker (watchdog reap, injected death).  The
        proxy's pending ``recv`` unblocks with EOF."""
        self._unregister()
        try:
            self._proc.kill()
        except (OSError, AttributeError):
            pass

    def close(self) -> None:
        """Polite stop, escalating to SIGKILL: shutdown must never
        hang behind a wedged child."""
        self._unregister()
        try:
            self._conn.send(("stop",))
        except (OSError, ValueError):
            pass
        try:
            self._conn.close()
        except OSError:
            pass
        self._proc.join(timeout=5.0)
        if self._proc.is_alive():
            self.kill()
            self._proc.join(timeout=1.0)


def create_executor(mode: str, config: TriageServiceConfig, chain=None):
    """The daemon's per-worker factory: ``"process"`` (default) forks a
    worker process; ``"thread"`` runs drives on the proxy thread."""
    if mode == "thread":
        return ThreadExecutor(config, chain=chain)
    if mode == "process":
        return ProcessExecutor(config)
    raise ValueError(f"unknown worker mode: {mode!r}")
