"""Consistent-hash admission sharding for the intake fleet.

Every fleet node builds the same ring from the same ``--peers`` map,
so any node can answer "who owns this coredump?" without coordination:
the owner of a submission is the first virtual node clockwise of
``sha256(fingerprint)``.  Virtual nodes (64 per physical node) keep
the key space near-uniform and membership changes incremental — adding
a node moves ~1/N of the fingerprints, never reshuffles them all.

The sharding key is the **coredump fingerprint** — the same identity
the dedup tier uses — so all re-reports of one crash land on one
owner, which is what makes per-node journal segments disjoint and the
fleet-wide dedup story simple: a crash has exactly one representative
node, and everyone else learns its verdict by tailing that node's
segment.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Tuple

#: virtual nodes per physical node; 64 keeps the max/min load ratio
#: of a 3-node ring within a few percent without measurable build cost
DEFAULT_VNODES = 64


def _point(label: str) -> int:
    return int.from_bytes(
        hashlib.sha256(label.encode("utf-8")).digest()[:8], "big")


class HashRing:
    """An immutable consistent-hash ring over node names."""

    def __init__(self, nodes: Iterable[str],
                 vnodes: int = DEFAULT_VNODES):
        names = sorted(set(str(node) for node in nodes))
        if not names:
            raise ValueError("a hash ring needs at least one node")
        points: List[Tuple[int, str]] = []
        for name in names:
            for replica in range(vnodes):
                points.append((_point(f"{name}#{replica}"), name))
        points.sort()
        self.nodes: Tuple[str, ...] = tuple(names)
        self._hashes = [point for point, __ in points]
        self._owners = [name for __, name in points]

    def owner(self, key: str) -> str:
        """The node owning ``key`` (first vnode clockwise of its hash)."""
        if len(self.nodes) == 1:
            return self.nodes[0]
        index = bisect.bisect_right(self._hashes, _point(str(key)))
        if index == len(self._hashes):
            index = 0  # wrap: the ring is a circle
        return self._owners[index]

    def spread(self, keys: Iterable[str]) -> Dict[str, int]:
        """Keys-per-node histogram (test/ops helper)."""
        counts: Dict[str, int] = {name: 0 for name in self.nodes}
        for key in keys:
            counts[self.owner(key)] += 1
        return counts
