"""The crash-intake triage daemon: admission, queue, workers, metrics.

This is the paper's §3.1 vision running as a *service*: deployed
software streams coredumps in, the daemon answers with root-cause
buckets.  Four layers, all built on the batch machinery of PRs 3–4:

* **admission** — every submission is fingerprinted
  (:meth:`Coredump.fingerprint`) and deduped against the live queue
  *and* the historical store (every verdict this daemon has ever
  journaled).  A known crash gets its verdict back instantly,
  WER-style, without touching a worker; a crash currently in flight
  attaches to the representative job and settles the moment it does.
* **durable priority queue** — accepted jobs are journaled before they
  are acknowledged (:class:`repro.service.jobs.JobJournal`), so a
  SIGKILLed daemon restarts and resumes every unsettled job.
  Never-seen fingerprints are scheduled ahead of re-submissions, and a
  bounded queue pushes back (HTTP 429 + Retry-After) instead of
  accepting work it cannot promise.
* **warm worker processes** — each worker slot drives a forked worker
  *process* (``worker_mode="process"``; see
  :mod:`repro.service.workerpool`) holding a
  :class:`repro.core.triage_service.StreamingTriage` session: the same
  per-program engines, the same strict rescache lookup, the same
  verdict synthesis as a batch ``res triage`` run — now off the GIL,
  so cold intake scales with cores.  Verdicts are byte-identical under
  :func:`repro.core.triage_service.verdict_view` to a batch run over
  the same submissions — enforced by ``tests/test_service.py`` and
  ``tests/test_fleet.py``.
* **observability** — ``healthz`` and Prometheus-style ``metrics``
  (queue depth, in-flight, verdicts/s, warm-hit rate, p50/p95
  submit→verdict latency), plus the standard JSON report store,
  flushed as verdicts land and on shutdown.

**Fleet mode** (``--node-id`` + ``--peers``) composes N such daemons
into one logical service: every member builds the same consistent-hash
ring (:mod:`repro.service.ring`) over the coredump fingerprint, so each
crash has exactly one *owning* node; misrouted new work is answered
with a 307 redirect to its owner, every member journals to its own
``journal-<node>.jsonl`` segments in the shared spool, and the monitor
tails the peers' segments to adopt their settled verdicts as *shadow*
jobs — the shared dedup tier that lets a crash settled anywhere answer
instantly everywhere, and the deterministic merge
(``(submitted_at, node, seq)``) that makes any member's report store
converge on the same fleet-wide document.
"""

from __future__ import annotations

import heapq
import json
import random
import threading
import time
import urllib.request
import warnings
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro import faultinject
from repro import obs
from repro.errors import ReproError
from repro.faultinject import WorkerCrashError
from repro.vm.coredump import Coredump
from repro.core.bucketing import IncrementalRefiner
from repro.core.triage import BugReport, TriageResult
from repro.core.triage_service import (
    CorpusEntry,
    ProgramSpec,
    TriageCorpus,
    TriagedReport,
    TriageServiceConfig,
    TriageServiceResult,
    TriageStore,
)
from repro.service import workerpool
from repro.service.jobs import (
    IntakeJob,
    JobJournal,
    JobState,
    default_report_id,
    journal_file_for,
    make_job_id,
    next_ids,
    now,
)
from repro.service.ring import HashRing


@dataclass
class DaemonConfig:
    """Tuning knobs of the intake daemon (wraps the batch config)."""

    #: the batch-service config: budgets, store path, cache dirs — the
    #: daemon inherits the whole verdict contract from it
    service: TriageServiceConfig = field(default_factory=TriageServiceConfig)
    #: spool directory holding the durable job journal
    spool_dir: str = "res-spool"
    #: worker threads (0 is legal and means "accept but never triage" —
    #: used by backpressure and resume tests)
    workers: int = 2
    #: bounded queue: submissions beyond this many queued jobs are
    #: refused with 429 + Retry-After (dedup attachments are free and
    #: exempt — they consume no worker)
    max_queue: int = 64
    #: rewrite the report store every N settled verdicts (the final
    #: shutdown flush always runs, so the store never misses verdicts —
    #: this only trades mid-run visibility against rewrite traffic,
    #: which grows with history)
    flush_every: int = 8
    #: submit→verdict latency samples kept for the p50/p95 gauges
    latency_window: int = 512
    #: drive attempts per job before it settles as failed (covers
    #: transient triage errors; worker deaths are counted separately)
    max_attempts: int = 3
    #: workers one job may kill (crash or watchdog reap) before it is
    #: quarantined instead of re-queued — the poison-job fuse
    quarantine_after: int = 2
    #: jittered exponential retry backoff: base * 2^(attempt-1),
    #: clamped to the cap, scaled by a uniform jitter in [0.5, 1.0]
    retry_backoff_base: float = 0.05
    retry_backoff_cap: float = 2.0
    #: reap a drive that has run longer than this many seconds
    #: (0 disables the watchdog — a legitimate deep drive is slow)
    watchdog_timeout: float = 0.0
    #: monitor thread cadence: delayed-retry promotion, watchdog
    #: checks, and dead-worker respawn all happen on this period
    monitor_interval: float = 0.05
    #: reject coredump JSON above this size at admission (a structured
    #: 400, not a worker OOM); generous — real dumps are ~100 KB
    max_core_bytes: int = 8 * 1024 * 1024
    #: seed for the backoff jitter (None = nondeterministic)
    backoff_seed: Optional[int] = None
    #: worker executor mode: ``"process"`` (default) forks one worker
    #: process per slot — cold verdicts are pure Python compute, and
    #: the GIL serializes threads; ``"thread"`` keeps the in-thread
    #: drive as the measured baseline and the no-fork fallback
    worker_mode: str = "process"
    #: fleet identity: a non-empty node id opts into fleet mode — the
    #: journal becomes ``journal-<node>.jsonl`` and job/report ids get
    #: a node prefix, so merged replay is collision-free by name
    node_id: Optional[str] = None
    #: fleet membership: node id → base URL, *including this node* —
    #: every member builds the same consistent-hash ring from it
    peers: Dict[str, str] = field(default_factory=dict)
    #: rotate the active journal segment once it exceeds this many MiB
    #: (0 disables); closed segments are compacted in the background
    journal_rotate_mb: float = 0.0
    #: how often the monitor tails peer journal segments (seconds)
    fleet_sync_interval: float = 0.25
    #: flight recorder (PR 10): rotate the active span-ring segment
    #: above this many bytes; the ring keeps at most ``span_segments``
    #: closed segments and deletes the oldest — tracing costs a fixed
    #: disk budget however long the daemon lives
    span_rotate_bytes: int = 1 << 20
    span_segments: int = 8

    @property
    def journal_path(self) -> Path:
        return Path(self.spool_dir) / journal_file_for(self.node_id)

    @property
    def spans_path(self) -> Path:
        """The per-node span ring (``spans-<node>.jsonl``; legacy
        single-node daemons use ``spans-node.jsonl``)."""
        return Path(self.spool_dir) / f"spans-{self.node_id or 'node'}.jsonl"


class DaemonMetrics:
    """Counter/gauge state behind ``GET /metrics`` (Prometheus text)."""

    def __init__(self, latency_window: int = 512):
        self.lock = threading.Lock()
        self.started_at = now()
        self.submitted_total = 0
        self.verdicts_total = 0      # settled by a worker or warm cache
        self.dedup_total = 0         # settled by admission/attachment
        self.warm_hits_total = 0     # verdicts served from rescache
        self.failed_total = 0
        self.rejected_total = 0      # 429 backpressure refusals
        self.malformed_total = 0     # 400 parse/size rejections
        self.redirects_total = 0     # 307 fleet owner redirects
        self.retries_total = 0       # re-queued drives (error or crash)
        self.quarantined_total = 0   # poison jobs settled as quarantined
        self.worker_restarts_total = 0  # workers respawned by the monitor
        self.journal_errors_total = 0   # failed journal appends
        self.rebucket_passes_total = 0  # background bucket refinements
        self.latencies = deque(maxlen=latency_window)
        #: worker-drive settles only (no instant dedups): the sample
        #: the Retry-After estimate needs — near-zero dedup settles
        #: would otherwise swamp the window and predict a seconds-long
        #: cold queue drains in milliseconds
        self.drive_latencies = deque(maxlen=latency_window)
        #: flight-recorder per-phase latency windows, keyed by
        #: (phase, priority class) — populated only for sampled jobs,
        #: so the sampling-off daemon never touches this dict
        self._phase_window = latency_window
        self.phase_latencies: Dict[Tuple[str, str], deque] = {}

    def bump(self, name: str, amount: int = 1) -> None:
        """Locked increment for callers outside the daemon's condition
        variable (HTTP handler threads counting malformed bodies)."""
        with self.lock:
            setattr(self, name, getattr(self, name) + amount)

    def observe_latency(self, seconds: Optional[float],
                        drive: bool = False) -> None:
        if seconds is None:
            return
        with self.lock:
            self.latencies.append(seconds)
            if drive:
                self.drive_latencies.append(seconds)

    def observe_phase(self, phase: str, priority: object,
                      seconds: float) -> None:
        """Fold one sampled phase duration into its (phase, priority)
        latency window — the source of the ``/metrics`` per-phase
        p50/p95 summaries."""
        with self.lock:
            key = (str(phase), str(priority))
            window = self.phase_latencies.get(key)
            if window is None:
                window = deque(maxlen=self._phase_window)
                self.phase_latencies[key] = window
            window.append(float(seconds))

    def phase_quantiles(self) -> Dict[Tuple[str, str],
                                      Tuple[float, float]]:
        """(p50, p95) per (phase, priority class), for ``/metrics``."""
        with self.lock:
            return {key: (self._quantile(list(window), 0.50),
                          self._quantile(list(window), 0.95))
                    for key, window in self.phase_latencies.items()}

    @staticmethod
    def _quantile(samples: List[float], q: float) -> float:
        if not samples:
            return 0.0
        ordered = sorted(samples)
        index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
        return ordered[index]

    def snapshot(self) -> dict:
        with self.lock:
            samples = list(self.latencies)
            drive_samples = list(self.drive_latencies)
            uptime = max(now() - self.started_at, 1e-9)
            settled = self.verdicts_total + self.dedup_total
            return {
                "submitted_total": self.submitted_total,
                "verdicts_total": self.verdicts_total,
                "dedup_total": self.dedup_total,
                "warm_hits_total": self.warm_hits_total,
                "failed_total": self.failed_total,
                "rejected_total": self.rejected_total,
                "malformed_total": self.malformed_total,
                "redirects_total": self.redirects_total,
                "retries_total": self.retries_total,
                "quarantined_total": self.quarantined_total,
                "worker_restarts_total": self.worker_restarts_total,
                "journal_errors_total": self.journal_errors_total,
                "rebucket_passes_total": self.rebucket_passes_total,
                "uptime_seconds": round(uptime, 3),
                "verdicts_per_second": round(settled / uptime, 3),
                "warm_hit_rate": round(
                    self.warm_hits_total / self.verdicts_total, 4)
                if self.verdicts_total else 0.0,
                "latency_p50": round(self._quantile(samples, 0.50), 4),
                "latency_p95": round(self._quantile(samples, 0.95), 4),
                "drive_latency_p50": round(
                    self._quantile(drive_samples, 0.50), 4),
            }


class TriageDaemon:
    """The always-on intake service; one instance per spool directory.

    Thread model: HTTP handler threads call :meth:`submit` and the
    read-only query methods; ``workers`` proxy threads run
    :meth:`_worker_loop`, each driving its executor (a forked worker
    process by default — the drive compute happens there, off the
    GIL).  All shared daemon state lives behind one condition
    variable.  Engines never cross threads or processes — each
    executor owns its session — and the rescache files they share are
    flock-serialized for multi-process appenders.
    """

    def __init__(self, config: Optional[DaemonConfig] = None):
        self.config = config or DaemonConfig()
        self.service_config = self.config.service
        self.journal = JobJournal(
            self.config.journal_path,
            rotate_bytes=int(self.config.journal_rotate_mb * 1024 * 1024))
        #: the admission ring: every fleet member builds the identical
        #: ring from the peers map, so ownership needs no coordination
        members = set(self.config.peers)
        if self.config.node_id:
            members.add(self.config.node_id)
        self._ring = HashRing(members) if self.config.node_id else None
        #: one shared cache chain: ResultCache is thread-safe, and
        #: sharing it means a verdict cached by worker A is a warm hit
        #: for worker B within the same daemon lifetime
        self.chain = self.service_config.cache_chain()
        self.metrics = DaemonMetrics(self.config.latency_window)
        #: flight-recorder sink — construction is cheap (a Path and a
        #: lock); nothing is written unless a sampled job emits spans
        self._span_ring = obs.SpanRing(
            self.config.spans_path,
            rotate_bytes=self.config.span_rotate_bytes,
            max_segments=self.config.span_segments)
        self._store = TriageStore(self.service_config) \
            if self.service_config.store_path else None

        self._cv = threading.Condition()
        self._jobs: Dict[str, IntakeJob] = {}
        self._by_seq: List[IntakeJob] = []
        #: settled jobs in settle order (append-only, so a (list, len)
        #: pair snapshotted under the lock can be read outside it) plus
        #: live counters — queries and store flushes must stay O(1)
        #: under the lock however long the daemon has been running
        self._settled_list: List[IntakeJob] = []
        self._unsettled = 0
        self._running = 0
        self._heap: List[Tuple[int, int, str]] = []  # (priority, seq, id)
        #: retries waiting out their backoff; the monitor promotes them
        #: into the heap once ``job.not_before`` passes
        self._delayed: List[IntakeJob] = []
        #: worker name -> (job, claim token, monotonic start) for every
        #: in-flight drive — the watchdog's view of the world
        self._running_jobs: Dict[str, tuple] = {}
        #: workers reaped by the watchdog: their thread is still alive
        #: (parked in a hung drive) but no longer counts, claims, or
        #: settles; it exits at the next loop turn (a process-mode
        #: proxy unblocks immediately — its child is SIGKILLed)
        self._abandoned: set = set()
        #: worker name → live executor (the watchdog's kill switch)
        self._executors: Dict[str, object] = {}
        self._worker_seq = 0
        self._monitor: Optional[threading.Thread] = None
        self._backoff_rng = random.Random(self.config.backoff_seed)
        #: last journal append outcome — the degraded-healthz signal
        self._disk_ok = True
        #: settle rows whose append failed — the job is already settled
        #: in memory, so nothing upstream retries; the monitor
        #: re-appends these until the spool heals (FIFO, so
        #: representative-before-duplicate order survives the retry)
        self._journal_backlog: List[tuple] = []
        #: jobs whose done rows are parked above: their verdicts stay
        #: unpublished (no instant dedup, dependents keep waiting)
        #: until the rows are durable
        self._publish_backlog: List[IntakeJob] = []
        self._quarantined_count = 0
        self._pending_by_key: Dict[tuple, str] = {}
        self._done_by_key: Dict[tuple, str] = {}
        self._dependents: Dict[str, List[str]] = {}
        self._seen_fingerprints: set = set()
        self._next_seq = 0
        self._settled_since_flush = 0
        #: store snapshot awaiting its (out-of-lock) atomic write
        self._pending_flush: Optional[tuple] = None
        #: monotonic snapshot version + last-written version: a slow
        #: writer must never clobber a newer store (the final shutdown
        #: flush included) with its stale snapshot
        self._flush_seq = 0
        self._flushed_seq = 0
        self._flush_lock = threading.Lock()
        #: (settled count, payload) memo for ``GET /buckets``, fed by
        #: the incremental refiner below: each new verdict is folded in
        #: once — O(delta), not O(history) — and read polling stays O(1)
        self._buckets_cache: Optional[Tuple[int, dict]] = None
        self._refiner = IncrementalRefiner()
        self._refined_upto = 0
        self._rebucket_lock = threading.Lock()
        #: peer verdicts adopted as shadow jobs (never driven here)
        self._shadow_ids: set = set()
        #: peer → last seen combined journal size (the tail cursor)
        self._peer_sizes: Dict[str, int] = {}
        self._fleet_last_sync = -1e9
        self._stop = False
        self._drain_on_stop = False
        self._interrupted = False
        self._threads: List[threading.Thread] = []
        self._shutdown_event = threading.Event()
        #: unsettled jobs re-admitted from the journal at construction
        self.resumed_jobs = 0

        self._resume_from_journal()
        # A restart rebuilds the fleet-wide dedup tier too: peer
        # segments replay into shadow jobs before the first submission.
        self._fleet_sync(force=True)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        if self.config.workers > 0 and self.config.worker_mode == "process":
            # Worker processes inherit the fault injector by fork; its
            # counters move to a shared flock'd file first, so the
            # seeded schedule stays deterministic across processes and
            # child-fired faults show up in this daemon's metrics.
            faultinject.share_state(
                Path(self.config.spool_dir) / "fault-state.json")
        with self._cv:
            for __ in range(self.config.workers):
                self._spawn_worker_locked()
        if self.config.workers > 0:
            self._monitor = threading.Thread(target=self._monitor_loop,
                                             name="triage-monitor",
                                             daemon=True)
            self._monitor.start()

    def _spawn_worker_locked(self, restart: bool = False) -> None:
        self._worker_seq += 1
        name = f"triage-worker-{self._worker_seq}"
        thread = threading.Thread(target=self._worker_loop, args=(name,),
                                  name=name, daemon=True)
        self._threads.append(thread)
        if restart:
            self.metrics.worker_restarts_total += 1
        thread.start()

    def shutdown(self, drain: bool = False,
                 interrupted: Optional[bool] = None,
                 timeout: Optional[float] = None) -> None:
        """Stop the worker pool and flush the report store.

        ``drain=True`` finishes the queue first (clean administrative
        stop); ``drain=False`` stops after the in-flight jobs only —
        the SIGTERM path, leaving queued work journaled for the next
        daemon life.  Either way no worker thread survives this call
        and the store on disk reflects everything settled.  The
        ``interrupted`` store flag defaults to auto: it is derived
        *after* the workers stop, so a stop that caught the daemon
        fully settled is not mislabeled as a partial run.
        """
        with self._cv:
            self._stop = True
            self._drain_on_stop = drain
            self._cv.notify_all()
        for thread in list(self._threads):
            if thread.name in self._abandoned:
                continue  # parked in a hung drive; daemon thread, let die
            thread.join(timeout=timeout)
        if self._monitor is not None:
            self._monitor.join(timeout=timeout)
        self._threads = [t for t in self._threads if t.is_alive()]
        with self._cv:
            if interrupted is None:
                interrupted = self._unsettled > 0
            self._interrupted = self._interrupted or bool(interrupted)
        self.flush_store()
        self._shutdown_event.set()

    def request_shutdown(self) -> None:
        """Async shutdown signal (the ``POST /shutdown`` endpoint)."""
        self._shutdown_event.set()

    def wait_for_shutdown_request(self, poll: float = 0.2) -> None:
        while not self._shutdown_event.wait(timeout=poll):
            pass

    def wait_idle(self, timeout: float = 60.0) -> bool:
        """Block until no job is queued or running (test/bench helper)."""
        deadline = time.monotonic() + timeout
        with self._cv:
            while time.monotonic() < deadline:
                # The unsettled counter covers heap entries, running
                # drives, and dependents awaiting their representative;
                # a settled job still in the pending map is mid
                # _complete phase 2 (its verdict is journaled but not
                # yet dedup-visible).
                busy = self._unsettled > 0 or any(
                    self._jobs[job_id].settled
                    for job_id in self._pending_by_key.values())
                if not busy:
                    return True
                self._cv.wait(timeout=0.05)
        return False

    # ------------------------------------------------------------------
    # Resume
    # ------------------------------------------------------------------

    def _resume_from_journal(self) -> None:
        """Rebuild the world from the journal: settled jobs become the
        historical dedup store, unsettled jobs re-enter admission (so a
        job whose representative settled in a prior life dedups
        instantly instead of recomputing)."""
        replayed = self.journal.replay(self.service_config)
        self._next_seq = next_ids(replayed)
        resumed: List[IntakeJob] = []
        for job in replayed:
            self._jobs[job.job_id] = job
            self._by_seq.append(job)
            self._seen_fingerprints.add(job.fingerprint)
            if job.settled:
                self._settled_list.append(job)
                if job.state is JobState.QUARANTINED:
                    self._quarantined_count += 1
            else:
                self._unsettled += 1
            if job.state is JobState.DONE:
                if job.force:
                    # Mirror _complete: a completed forced recompute is
                    # the representative, even across restarts (jobs
                    # replay in seq order, so the newest force wins).
                    self._done_by_key[job.dedup_key] = job.job_id
                else:
                    self._done_by_key.setdefault(job.dedup_key,
                                                 job.job_id)
            elif job.state is JobState.QUEUED:
                resumed.append(job)
        self.resumed_jobs = len(resumed)
        journal: List[tuple] = []
        with self._cv:
            for job in resumed:
                # A forced job re-admits as forced: the acknowledged
                # recompute must run, not settle as a duplicate of the
                # verdict it was sent to replace.
                self._admit_locked(job, journal_submit=False,
                                   dedup=not job.force,
                                   journal=journal)
        try:
            self._drain_journal(journal)
        except OSError as exc:
            # These are dedup bookkeeping rows (duplicates re-settled
            # against a prior life's representative); their submit rows
            # are already durable, so the next replay simply re-dedups
            # them.  A transient spool error must not abort the resume
            # — the daemon exists to get the journaled work done.
            warnings.warn(f"resume: journal append failed ({exc}); "
                          f"dedup rows will be rebuilt on next replay",
                          RuntimeWarning)

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------

    def submit(self, program: dict, coredump: object,
               report_id: Optional[str] = None,
               true_cause: Optional[str] = None,
               priority: Optional[int] = None,
               force: bool = False,
               trace_id: Optional[str] = None) -> Tuple[int, dict]:
        """Admit one submission; returns ``(http_status, payload)``.

        * 200 — known crash, verdict attached (``dedup_of``);
        * 202 — accepted and journaled (queued or attached pending);
        * 400 — malformed program/coredump;
        * 429 — queue full, ``retry_after_seconds`` attached.

        Raises ``OSError`` (HTTP 503) when the journal cannot make a
        202 acknowledgment durable — an un-acknowledged submission is
        safely retryable; a 202 that would not survive SIGKILL is a
        lie.  A 200 instant dedup under the same disk trouble still
        answers (the verdict is already computed and durable from its
        representative); only its bookkeeping row is lost, which replay
        self-heals by re-deduping the job.

        ``trace_id`` is the client's flight-recorder context (the
        ``X-Res-Trace`` header).  It only takes effect when this
        daemon samples (``RES_TRACE_SAMPLE``); with sampling off it is
        dropped here — one ``None`` check per submission — so nothing
        downstream ever sees it.
        """
        tracer = obs.active()
        if tracer is None:
            trace_id = None
        else:
            if trace_id is None:
                # No client context: the daemon mints one, so traces
                # exist for bare-curl submitters too.
                trace_id = obs.new_trace_id()
            if not tracer.sampled(trace_id):
                trace_id = None
        received = now() if trace_id is not None else 0.0
        try:
            spec, core_obj, dump = self._parse_submission(program, coredump)
        except ReproError as exc:
            self.metrics.bump("malformed_total")
            return 400, {"error": str(exc)}
        fingerprint = dump.fingerprint()

        journal: List[tuple] = []
        spans: List[dict] = []
        with self._cv:
            status, payload, job = self._submit_locked(
                spec, core_obj, dump, fingerprint, report_id,
                true_cause, priority, force, journal,
                trace_id=trace_id, received=received, spans=spans)
        if trace_id is not None:
            if status in (200, 202, 307):
                payload = dict(payload, trace_id=trace_id)
            self._span_ring.append(spans)
        # Journal-before-acknowledge, but *after* releasing the
        # admission lock: the fsync must not serialize other
        # submissions and the workers (the out-of-order-tolerant
        # two-pass replay makes this safe).
        try:
            self._drain_journal(journal)
        except OSError as exc:
            if status == 202 and job is not None:
                # The attached duplicate's own submit row never became
                # durable: unwind the half-admitted job and let the
                # HTTP layer answer 503 — acknowledging it would break
                # the no-acknowledged-job-is-ever-lost invariant.
                with self._cv:
                    self._unwind_locked(job)
                raise
            warnings.warn(
                f"intake journal unavailable ({exc}); instant-dedup "
                f"answer served read-only, bookkeeping row lost",
                RuntimeWarning)
        self._flush_pending()  # an instant dedup may have settled a job
        return status, payload

    def _submit_locked(self, spec: ProgramSpec, core_obj: dict,
                       dump: Coredump, fingerprint: str,
                       report_id: Optional[str],
                       true_cause: Optional[str], priority: Optional[int],
                       force: bool,
                       journal: List[tuple],
                       trace_id: Optional[str] = None,
                       received: float = 0.0,
                       spans: Optional[List[dict]] = None
                       ) -> Tuple[int, dict, object]:
        # Source-exact admission identity (see IntakeJob.dedup_key): an
        # edited program is a different key, so it recomputes.
        key = (spec.module_fp(), fingerprint)
        if not force:
            done_id = self._done_by_key.get(key)
            if done_id is not None:
                # The shared dedup tier answers *before* ownership is
                # consulted: a crash settled by any fleet node (adopted
                # here as a shadow) answers instantly everywhere.
                job = self._settle_as_duplicate(
                    spec, core_obj, fingerprint, report_id,
                    true_cause, self._jobs[done_id], journal,
                    trace_id=trace_id, received=received, spans=spans)
                return 200, job.status_payload(), job
        if self._ring is not None:
            owner = self._ring.owner(fingerprint)
            if owner != self.config.node_id:
                # Misrouted new work: redirect to the owning node so
                # each fingerprint has exactly one representative
                # journal.  Forced recomputes always route — the
                # owner's verdict is the one being replaced.
                self.metrics.redirects_total += 1
                if trace_id is not None and spans is not None:
                    # The non-owner's contribution to the trace: one
                    # redirect span, qualified by node name so each
                    # hop of a misrouted submission is distinct.
                    spans.append(obs.make_span(
                        trace_id, "redirect", received,
                        now() - received,
                        parent=obs.span_id(trace_id, "job"),
                        node=self._node_name(),
                        attrs={"owner": owner},
                        qualifier=self._node_name()))
                return 307, {
                    "error": "crash is owned by another fleet node",
                    "fingerprint": fingerprint,
                    "owner": owner,
                    "owner_url": self.config.peers.get(owner, ""),
                }, None
        if not force:
            pending_id = self._pending_by_key.get(key)
            if pending_id is not None:
                representative = self._jobs[pending_id]
                if representative.fingerprint == fingerprint:
                    core_obj = representative.core_obj
                job = self._new_job(spec, core_obj, fingerprint,
                                    report_id, true_cause, priority=1,
                                    dump=dump)
                journal.append(("submit", job, representative))
                self._dependents.setdefault(pending_id, []).append(
                    job.job_id)
                job.dedup_of = representative.report_id
                if trace_id is not None:
                    job.trace_id = trace_id
                    self._admit_span(job, received, spans,
                                     attached_to=pending_id)
                payload = job.status_payload()
                payload["attached_to"] = pending_id
                return 202, payload, job
        if len(self._heap) >= self.config.max_queue:
            self.metrics.rejected_total += 1
            return 429, {
                "error": "intake queue full",
                "queue_depth": len(self._heap),
                "retry_after_seconds": self._retry_after_locked(),
            }, None
        job_priority = priority if priority is not None else (
            0 if fingerprint not in self._seen_fingerprints else 1)
        job = self._new_job(spec, core_obj, fingerprint,
                            report_id, true_cause, job_priority,
                            dump=dump)
        job.force = force  # carries through to the worker's drive
        if trace_id is not None:
            job.trace_id = trace_id
            job._obs_enqueued = now()
            self._admit_span(job, received, spans)
        # Dedup already ran above (or was forced off), so admit
        # without re-checking.
        self._admit_locked(job, dedup=False, journal=journal)
        return 202, job.status_payload(), job

    def _unwind_locked(self, job: IntakeJob) -> None:
        """Remove a job whose acknowledgment failed to become durable
        (attached-duplicate path; the representative path unwinds inside
        :meth:`_admit_locked`).  The submitter saw 503, so the retryable
        submission must leave no phantom behind."""
        self._jobs.pop(job.job_id, None)
        if job in self._by_seq:
            self._by_seq.remove(job)
        self._unsettled -= 1
        self.metrics.submitted_total -= 1
        for deps in self._dependents.values():
            if job.job_id in deps:
                deps.remove(job.job_id)

    def _parse_submission(self, program: dict, coredump: object
                          ) -> Tuple[ProgramSpec, dict, Coredump]:
        if not isinstance(program, dict) or not program.get("key") \
                or not program.get("source"):
            raise ReproError(
                "program must be an object with 'key' and 'source'")
        spec = ProgramSpec(key=str(program["key"]),
                           source=str(program["source"]),
                           name=str(program.get("name", "")))
        # One conversion each way, not three: a dict submission is
        # adopted as the journal/wire form directly (HTTP hands us a
        # per-request parse we own), a string submission is parsed once.
        if isinstance(coredump, str):
            text = coredump
            try:
                core_obj = json.loads(text)
            except ValueError as exc:
                raise ReproError(f"malformed coredump: {exc}") from exc
        elif isinstance(coredump, dict):
            text = json.dumps(coredump)
            core_obj = coredump
        else:
            raise ReproError("coredump must be a JSON object or string")
        if len(text) > self.config.max_core_bytes:
            raise ReproError(
                f"oversized coredump: {len(text)} bytes "
                f"(limit {self.config.max_core_bytes})")
        try:
            dump = Coredump.from_json(text)
        except Exception as exc:  # noqa: BLE001 - untrusted-input boundary
            # Bit-flipped or truncated dumps surface arbitrary errors
            # from deep inside the parser (AttributeError on a list
            # where a dict belonged, IndexError, ...) — every one of
            # them is "malformed submission", none may reach a worker
            # or kill the handler thread.
            raise ReproError(
                f"malformed coredump: {type(exc).__name__}: {exc}"
            ) from exc
        return spec, core_obj, dump

    def _new_job(self, spec: ProgramSpec, core_obj: dict,
                 fingerprint: str, report_id: Optional[str],
                 true_cause: Optional[str], priority: int,
                 dump: Optional[Coredump] = None) -> IntakeJob:
        seq = self._next_seq
        self._next_seq += 1
        node = self.config.node_id
        # submitted_at is rounded to the journal's microsecond grain up
        # front, so in-memory fleet merge order matches replayed order.
        job = IntakeJob(job_id=make_job_id(seq, node), seq=seq,
                        report_id=report_id or default_report_id(seq,
                                                                 node),
                        program=spec, core_obj=core_obj,
                        fingerprint=fingerprint, priority=priority,
                        true_cause=true_cause,
                        submitted_at=round(now(), 6))
        if dump is not None:
            # The admission parse is the job's parse — don't re-parse
            # the same 100 KB JSON when the worker picks it up.
            job._dump = dump
        self._jobs[job.job_id] = job
        self._by_seq.append(job)
        self._unsettled += 1
        self.metrics.submitted_total += 1
        return job

    def _admit_locked(self, job: IntakeJob, journal_submit: bool = True,
                      dedup: bool = True,
                      journal: Optional[List[tuple]] = None) -> None:
        """Queue an unsettled job.  With ``dedup`` the historical and
        live stores are consulted first (the resume path re-runs full
        admission: a job whose representative settled in a prior life
        must not recompute).

        A *representative* submit row is journaled synchronously, under
        the lock: the moment this job lands in the pending map it can
        be referenced by duplicates' ``core_ref``/``program_ref`` rows
        from other threads, and a referent must never hit the disk
        after its referrer — a SIGKILL in that window would make replay
        drop an acknowledged duplicate.  Duplicates themselves (the
        dedup-dominated bulk of the traffic) and all settle rows are
        journaled via ``journal`` after the lock is released.
        """
        if journal_submit:
            try:
                self.journal.record_submit(job)
            except OSError:
                # No row, no job: a half-admitted phantom (registered
                # but never heap-pushed) would wedge wait_idle and pin
                # every future store flush at complete=false.  Unwind
                # the registration and let the submitter see the error
                # — an unacknowledged submission is safely retryable.
                self._jobs.pop(job.job_id, None)
                if job in self._by_seq:
                    self._by_seq.remove(job)
                self._unsettled -= 1
                self.metrics.submitted_total -= 1
                self._note_disk(False)
                raise
            self._note_disk(True)
        if dedup:
            done_id = self._done_by_key.get(job.dedup_key)
            if done_id is not None:
                self._settle_duplicate_locked(job, self._jobs[done_id],
                                              journal)
                return
            pending_id = self._pending_by_key.get(job.dedup_key)
            if pending_id is not None and pending_id != job.job_id:
                job.dedup_of = self._jobs[pending_id].report_id
                self._dependents.setdefault(pending_id, []).append(
                    job.job_id)
                return
        self._seen_fingerprints.add(job.fingerprint)
        # setdefault: a forced re-submission must not steal the pending
        # marker (and its dependents) from the live representative.
        self._pending_by_key.setdefault(job.dedup_key, job.job_id)
        heapq.heappush(self._heap, (job.priority, job.seq, job.job_id))
        self._cv.notify()

    def _settle_as_duplicate(self, spec: ProgramSpec, core_obj: dict,
                             fingerprint: str, report_id: Optional[str],
                             true_cause: Optional[str],
                             representative: IntakeJob,
                             journal: List[tuple],
                             trace_id: Optional[str] = None,
                             received: float = 0.0,
                             spans: Optional[List[dict]] = None
                             ) -> IntakeJob:
        """Historical dedup: settle the job instantly (the WER-style
        answer).  The duplicate shares the representative's parsed
        coredump in memory and journals by reference, so re-reports of
        a known crash cost bytes, not megabytes.  Shadow (peer-settled)
        representatives live in *another* node's journal: the duplicate
        journals its own core instead of a dangling cross-node ref —
        and a compacted shadow may carry no core at all."""
        if representative.fingerprint == fingerprint \
                and representative.core_obj is not None:
            core_obj = representative.core_obj
        job = self._new_job(spec, core_obj, fingerprint, report_id,
                            true_cause, priority=1)
        if trace_id is not None:
            job.trace_id = trace_id
            self._admit_span(job, received, spans)
        ref = None if representative.job_id in self._shadow_ids \
            else representative
        journal.append(("submit", job, ref))
        self._settle_duplicate_locked(job, representative, journal)
        return job

    def _settle_duplicate_locked(self, job: IntakeJob,
                                 representative: IntakeJob,
                                 journal: Optional[List[tuple]]) -> None:
        rep_result = representative.verdict.result
        job.dedup_of = representative.report_id
        job.verdict = TriagedReport(
            result=TriageResult(report_id=job.report_id,
                                bucket=rep_result.bucket,
                                cause=rep_result.cause,
                                used_fallback=rep_result.used_fallback,
                                exploitable=rep_result.exploitable),
            program_key=job.program.key,
            fingerprint=job.fingerprint,
            seconds=0.0,
            dedup_of=representative.report_id)
        job.state = JobState.DONE
        job.finished_at = now()
        job._dump = None  # settled: nothing reads the parsed dump again
        self._unsettled -= 1
        self._settled_list.append(job)
        if journal is not None:
            journal.append(("done", job, None))
        self.metrics.dedup_total += 1
        if not job.resumed:
            self.metrics.observe_latency(job.latency())
        self._settle_spans_locked(job, dedup=True)
        self._note_settled_locked()

    def _note_disk(self, ok: bool) -> None:
        """Track journal-append health (the degraded-healthz signal).
        A bare attribute write: reads race benignly and the GIL keeps
        it atomic."""
        if not ok:
            self.metrics.bump("journal_errors_total")
        self._disk_ok = ok

    def _drain_journal(self, entries: List[tuple]) -> None:
        """Write collected journal rows (outside the admission lock;
        the journal serializes itself and replay tolerates cross-thread
        row interleavings)."""
        try:
            for kind, job, ref in entries:
                if kind == "submit":
                    self.journal.record_submit(job, dedup_ref=ref)
                elif kind == "done":
                    self.journal.record_done(job)
                elif kind == "quarantined":
                    self.journal.record_quarantined(job)
                else:
                    self.journal.record_failed(job)
        except OSError:
            self._note_disk(False)
            raise
        if entries:
            self._note_disk(True)

    def _drain_or_backlog(self, entries: List[tuple]) -> bool:
        """Write settle rows now, or park them for the monitor to
        retry.  Settle rows differ from submit rows: the job is already
        settled in memory, so no client retry will ever re-write them —
        a dropped row stays invisible until a cold replay loses the
        verdict.  Parked rows keep arrival order (later settles queue
        behind an existing backlog instead of overtaking it)."""
        if not entries:
            return True
        with self._cv:
            if self._journal_backlog:
                self._journal_backlog.extend(entries)
                return False
        try:
            self._drain_journal(entries)
        except OSError as exc:
            warnings.warn(f"intake daemon: settle journal append failed "
                          f"({exc}); {len(entries)} row(s) parked for "
                          f"retry", RuntimeWarning)
            with self._cv:
                self._journal_backlog.extend(entries)
            return False
        return True

    def _retry_journal_backlog(self) -> None:
        """Monitor duty: re-append parked settle rows; once the backlog
        drains, publish the verdicts whose phase 2 was deferred (a
        partial first append may leave duplicate rows behind — replay
        keys rows by job id, so duplicates are free and lost rows are
        not)."""
        with self._cv:
            entries = list(self._journal_backlog)
        if entries:
            try:
                self._drain_journal(entries)
            except OSError:
                return  # spool still unhappy; next tick retries
            with self._cv:
                del self._journal_backlog[:len(entries)]
                if self._journal_backlog:
                    return  # new rows parked mid-retry
        with self._cv:
            publish, self._publish_backlog = self._publish_backlog, []
        for job in publish:
            self._publish_verdict(job)

    def _retry_after_locked(self) -> int:
        """Honest backpressure: the queue's expected drain time under
        the recent per-*drive* latency (instant dedups excluded — the
        queue holds drives), clamped to something a client can act on."""
        snapshot = self.metrics.snapshot()
        per_drive = snapshot["drive_latency_p50"] \
            or snapshot["latency_p50"] or 1.0
        workers = max(self.config.workers, 1)
        estimate = len(self._heap) * per_drive / workers
        return max(1, min(60, int(estimate + 0.999)))

    # ------------------------------------------------------------------
    # Flight recorder (PR 10): span emission
    # ------------------------------------------------------------------

    def _node_name(self) -> str:
        return self.config.node_id or "node"

    def _admit_span(self, job: IntakeJob, received: float,
                    spans: Optional[List[dict]],
                    attached_to: Optional[str] = None) -> None:
        """The ``admit`` span: HTTP receipt → journaled/registered.
        Appended to the caller's batch (written after the admission
        lock drops)."""
        if spans is None:
            return
        attrs: dict = {"job_id": job.job_id, "priority": job.priority}
        if attached_to is not None:
            attrs["attached_to"] = attached_to
        spans.append(obs.make_span(
            job.trace_id, "admit", received or job.submitted_at,
            now() - (received or job.submitted_at),
            parent=obs.span_id(job.trace_id, "job"),
            node=self._node_name(), attrs=attrs))

    def _root_spans(self, job: IntakeJob) -> List[dict]:
        """The root ``job`` span, minted at settle (its id is
        deterministic, so children emitted earlier already point at
        it — a trace killed mid-flight has a dangling parent only
        until the replayed job settles and re-emits this span)."""
        finished = job.finished_at or now()
        attrs: dict = {"state": job.state.value,
                       "priority": job.priority,
                       "attempts": job.attempts,
                       "report_id": job.report_id}
        if job.dedup_of is not None:
            attrs["dedup_of"] = job.dedup_of
        if job.error:
            attrs["error"] = str(job.error)[:200]
        if job.verdict is not None and job.verdict.cached:
            attrs["cached"] = True
        return [obs.make_span(
            job.trace_id, "job", job.submitted_at,
            finished - job.submitted_at, parent=None,
            node=self._node_name(), attrs=attrs)]

    def _settle_spans_locked(self, job: IntakeJob,
                             dedup: bool = False) -> None:
        """Emit the settle-side spans for one job (no-op when the job
        is unsampled).  Runs under the admission lock like the journal
        appends it mirrors; the ring's append is small, buffered, and
        swallows I/O errors."""
        if job.trace_id is None:
            return
        spans = self._root_spans(job)
        if dedup:
            spans.append(obs.make_span(
                job.trace_id, "dedup", job.finished_at or now(), 0.0,
                parent=obs.span_id(job.trace_id, "job"),
                node=self._node_name(),
                attrs={"dedup_of": job.dedup_of}))
        self._span_ring.append(spans)

    def _queue_span(self, job: IntakeJob, claimed_at: float) -> None:
        """The ``queue-N`` span: (re-)enqueue → claim N."""
        enqueued = job._obs_enqueued or job.submitted_at
        wait = max(0.0, claimed_at - enqueued)
        self._span_ring.append([obs.make_span(
            job.trace_id, f"queue-{job.attempts}", enqueued, wait,
            parent=obs.span_id(job.trace_id, "job"),
            node=self._node_name(),
            attrs={"priority": job.priority})])
        self.metrics.observe_phase("queue", job.priority, wait)

    def _record_attempt(self, job: IntakeJob, phases: list,
                        outcome: str, worker: str,
                        error: Optional[str] = None) -> None:
        """Mint the ``attempt-N`` span and its drive-phase children
        from the executor's timings, and feed the per-phase latency
        histograms.  Every claim records an attempt span — including
        crashes and retries, so a quarantined job's trace shows each
        worker it killed."""
        trace_id = job.trace_id
        if trace_id is None:
            return
        attempt = job.attempts
        started = job._obs_claimed or now()
        finished = now()
        attempt_name = f"attempt-{attempt}"
        attempt_sid = obs.span_id(trace_id, attempt_name)
        attrs: dict = {"outcome": outcome, "worker": worker}
        if error:
            attrs["error"] = error[:200]
        spans = [obs.make_span(
            trace_id, attempt_name, started, finished - started,
            parent=obs.span_id(trace_id, "job"),
            node=self._node_name(), attrs=attrs)]
        # Phase children are laid out sequentially from the claim
        # time by measured duration — the waterfall's x-positions are
        # an ordering aid; the durations are the measurement.
        cursor = started
        for entry in phases or ():
            try:
                phase, seconds, phase_attrs = entry
                seconds = max(0.0, float(seconds))
            except (TypeError, ValueError):
                continue
            spans.append(obs.make_span(
                trace_id, f"{phase}-{attempt}", cursor, seconds,
                parent=attempt_sid, node=self._node_name(),
                attrs=phase_attrs
                if isinstance(phase_attrs, dict) else None))
            cursor += seconds
            self.metrics.observe_phase(phase, job.priority, seconds)
        self.metrics.observe_phase("attempt", job.priority,
                                   finished - started)
        self._span_ring.append(spans)

    def trace_payload(self, job_or_trace_id: str,
                      local_only: bool = False) -> Optional[dict]:
        """The ``GET /trace/<id>`` document: every span of one trace,
        cross-node stitched.  The id may be a job id (resolved through
        this node's job table, shadows included) or a raw trace id —
        the form peers use when stitching, since a job id resolves
        only on nodes that know the job.  ``local_only`` stops the
        recursion: peers answer from their own ring without fanning
        out again."""
        with self._cv:
            job = self._jobs.get(job_or_trace_id)
            trace_id = job.trace_id if job is not None else None
            state = job.state.value if job is not None else None
        if job is not None and trace_id is None:
            # A known but unsampled job: answer the shape, not a 404 —
            # the CLI renders "not sampled" instead of "not found".
            return {"job_id": job_or_trace_id, "trace_id": None,
                    "state": state, "spans": []}
        if trace_id is None:
            trace_id = job_or_trace_id
        by_id: Dict[str, dict] = {
            span["span"]: span
            for span in self._span_ring.read(trace_id)
            if isinstance(span.get("span"), str)}
        if not local_only:
            for peer, base in sorted(self.config.peers.items()):
                if peer == self.config.node_id or not base:
                    continue
                for span in self._peer_spans(base, trace_id):
                    sid = span.get("span")
                    if isinstance(sid, str):
                        by_id.setdefault(sid, span)
        spans = sorted(by_id.values(),
                       key=lambda s: (s.get("start") or 0.0,
                                      s.get("name") or ""))
        if job is None and not spans and not local_only:
            return None  # unknown id anywhere: a real 404
        payload: dict = {"trace_id": trace_id, "spans": spans}
        if job is not None:
            payload["job_id"] = job_or_trace_id
            payload["state"] = state
        return payload

    @staticmethod
    def _peer_spans(base_url: str, trace_id: str) -> List[dict]:
        """One peer's local view of a trace; best-effort (a down peer
        costs its spans, never the request)."""
        url = f"{base_url.rstrip('/')}/trace/{trace_id}?local=1"
        try:
            with urllib.request.urlopen(url, timeout=2.0) as response:
                document = json.loads(response.read().decode("utf-8"))
        except (OSError, ValueError):
            return []
        spans = document.get("spans") if isinstance(document, dict) \
            else None
        return [span for span in spans or []
                if isinstance(span, dict)]

    # ------------------------------------------------------------------
    # Workers
    # ------------------------------------------------------------------

    def _worker_loop(self, name: Optional[str] = None) -> None:
        """One worker slot: a proxy thread driving its executor — by
        default a forked worker process holding the warm triage session
        (``worker_mode="process"``), optionally the in-thread drive.
        The claim/release protocol runs here, on the proxy, whatever
        the executor is, which is how the PR 6 self-healing contract
        survives the process boundary unchanged."""
        name = name or threading.current_thread().name
        executor = workerpool.create_executor(
            self.config.worker_mode, self.service_config,
            chain=self.chain)
        with self._cv:
            self._executors[name] = executor
        fi = faultinject.active()
        try:
            while True:
                with self._cv:
                    claimed = self._claim_locked(name)
                if claimed is None:
                    return
                job, claim = claimed
                if job.trace_id is not None:
                    claimed_at = now()
                    self._queue_span(job, claimed_at)
                    job._obs_claimed = claimed_at
                try:
                    if fi is not None:
                        # The worker-death site: decided daemon-side,
                        # *before* dispatch — the window where an
                        # acknowledged job is claimed but has produced
                        # nothing — so the seeded schedule and the
                        # metrics are executor-mode independent.
                        fi.check("worker.task")
                    triaged = executor.run(
                        job.program, job.bug_report(),
                        fingerprint=job.fingerprint,
                        bypass_cache=job.force,
                        trace=job.trace_id)
                except KeyboardInterrupt:
                    raise
                except WorkerCrashError as exc:
                    # Simulated worker death: kill the worker process
                    # to make it a real one (thread mode has nothing
                    # to kill), do the bookkeeping (requeue or
                    # quarantine), then the slot dies — the monitor
                    # respawns a replacement, exactly the
                    # crash-looping-fleet scenario quarantine bounds.
                    executor.kill()
                    self._record_attempt(job, [], outcome="worker-crash",
                                         worker=name, error=str(exc))
                    self._worker_died(name, job, claim, str(exc))
                    return
                except workerpool.WorkerProcessDied as exc:
                    # The worker process vanished mid-drive (SIGKILL,
                    # OOM, watchdog reap, injected in-drive death):
                    # same bookkeeping, same respawn path.
                    self._record_attempt(job, [], outcome="worker-crash",
                                         worker=name, error=str(exc))
                    self._worker_died(name, job, claim, str(exc))
                    return
                except workerpool.TriageTaskError as exc:
                    # A drive error, already rendered "Type: message"
                    # by the executor boundary — retried on the normal
                    # attempt budget, not counted as a worker loss.
                    self._record_attempt(job, [], outcome="error",
                                         worker=name, error=str(exc))
                    self._settle_safely(
                        self._retry_or_fail, job, name, claim, str(exc))
                    continue
                except Exception as exc:  # noqa: BLE001 - worker boundary
                    self._record_attempt(job, [], outcome="error",
                                         worker=name,
                                         error=f"{type(exc).__name__}: "
                                               f"{exc}")
                    self._settle_safely(
                        self._retry_or_fail, job, name, claim,
                        f"{type(exc).__name__}: {exc}")
                    continue
                self._record_attempt(job, executor.last_phases
                                     if job.trace_id is not None else [],
                                     outcome="ok", worker=name)
                self._settle_safely(self._complete, job, name, claim,
                                    triaged)
        finally:
            with self._cv:
                if self._executors.get(name) is executor:
                    self._executors.pop(name)
            executor.close()

    def _claim_locked(self, name: str) -> Optional[Tuple[IntakeJob, int]]:
        """Block until a job is claimable; None means "exit the loop".
        Under a draining stop workers stay alive until *everything*
        settles — a retry waiting out its backoff still needs a worker
        when the monitor promotes it."""
        while True:
            if name in self._abandoned:
                return None
            if self._stop:
                if not self._drain_on_stop:
                    return None
                if self._unsettled == 0:
                    return None
            if self._heap:
                __, __, job_id = heapq.heappop(self._heap)
                job = self._jobs.get(job_id)
                if job is None or job.state is not JobState.QUEUED:
                    continue  # settled/quarantined while queued
                job.state = JobState.RUNNING
                job.attempts += 1
                job.claim += 1
                self._running += 1
                self._running_jobs[name] = (job, job.claim,
                                            time.monotonic())
                return job, job.claim
            self._cv.wait(timeout=0.5)

    def _release_locked(self, name: str, job: IntakeJob,
                        claim: int) -> bool:
        """Validate-and-release an in-flight claim.  False means the
        claim is stale — the watchdog reaped this worker and the job
        was re-queued (or already settled by its retry); the caller
        must discard its outcome instead of double-settling."""
        entry = self._running_jobs.get(name)
        if entry is None or entry[0] is not job or entry[1] != claim \
                or job.claim != claim or job.state is not JobState.RUNNING:
            return False
        self._running_jobs.pop(name)
        self._running -= 1
        return True

    def _backoff_locked(self, attempt: int) -> float:
        """Jittered exponential backoff for the ``attempt``-th retry:
        ``base * 2^(attempt-1)`` clamped to the cap, scaled by a
        uniform factor in [0.5, 1.0] so synchronized failures do not
        re-queue in lockstep."""
        window = min(self.config.retry_backoff_cap,
                     self.config.retry_backoff_base
                     * (2 ** max(0, attempt - 1)))
        return window * (0.5 + 0.5 * self._backoff_rng.random())

    def _requeue_locked(self, job: IntakeJob) -> None:
        job.state = JobState.QUEUED
        self.metrics.retries_total += 1
        if job.trace_id is not None:
            job._obs_enqueued = now()  # queue-N+1 measures from here
        delay = self._backoff_locked(job.attempts)
        if delay <= 0:
            heapq.heappush(self._heap, (job.priority, job.seq,
                                        job.job_id))
            self._cv.notify()
        else:
            job.not_before = time.monotonic() + delay
            self._delayed.append(job)

    def _quarantine_locked(self, job: IntakeJob, error: str,
                           journal: List[tuple]) -> None:
        """Settle a poison job (and its attached duplicates) with
        diagnostics instead of a verdict.  The key's pending marker is
        freed, so a later re-submission of the same crash gets a fresh
        chance — quarantine is a fuse, not a verdict cache."""
        job.state = JobState.QUARANTINED
        job.error = error
        job.finished_at = now()
        job._dump = None
        self._unsettled -= 1
        self._settled_list.append(job)
        self._quarantined_count += 1
        journal.append(("quarantined", job, None))
        self.metrics.quarantined_total += 1
        if self._pending_by_key.get(job.dedup_key) == job.job_id:
            self._pending_by_key.pop(job.dedup_key)
        for dep_id in self._dependents.pop(job.job_id, ()):
            dependent = self._jobs[dep_id]
            dependent.state = JobState.QUARANTINED
            dependent.error = f"representative {job.job_id} quarantined"
            dependent.finished_at = now()
            dependent._dump = None
            self._unsettled -= 1
            self._settled_list.append(dependent)
            self._quarantined_count += 1
            journal.append(("quarantined", dependent, None))
            self.metrics.quarantined_total += 1
            self._settle_spans_locked(dependent)
        self._settle_spans_locked(job)
        self._note_settled_locked()

    def _worker_died(self, name: str, job: IntakeJob, claim: int,
                     reason: str) -> None:
        """A worker died mid-drive (injected crash today; the pattern
        holds for any abrupt worker loss).  Count it against the job —
        re-queue with backoff, or quarantine once it has killed
        ``quarantine_after`` workers."""
        journal: List[tuple] = []
        with self._cv:
            if self._release_locked(name, job, claim):
                job.worker_crashes += 1
                if job.worker_crashes >= self.config.quarantine_after:
                    self._quarantine_locked(
                        job,
                        f"quarantined: killed {job.worker_crashes} "
                        f"worker(s); last: {reason}", journal)
                else:
                    self._requeue_locked(job)
            self._cv.notify_all()
        self._drain_or_backlog(journal)
        self._flush_pending()

    def _retry_or_fail(self, job: IntakeJob, name: str, claim: int,
                       error: str) -> None:
        """A drive raised: re-queue with backoff while attempts remain,
        settle as failed (dependents included) when they run out."""
        journal: List[tuple] = []
        with self._cv:
            if not self._release_locked(name, job, claim):
                return
            if job.attempts < self.config.max_attempts:
                self._requeue_locked(job)
            else:
                self._fail_locked(
                    job, f"{error} (after {job.attempts} attempts)",
                    journal)
            self._cv.notify_all()
        self._drain_or_backlog(journal)
        self._flush_pending()

    def _settle_safely(self, settle, *args) -> None:
        """Settling touches the journal and the store; transient I/O
        trouble there (ENOSPC on the spool volume, say) must cost at
        most this one job's durability — never the worker thread, or
        the daemon would silently stop triaging while healthz still
        looked alive."""
        try:
            settle(*args)
        except Exception as exc:  # noqa: BLE001 - worker boundary
            warnings.warn(f"intake daemon: settling hit "
                          f"{type(exc).__name__}: {exc}; worker continues",
                          RuntimeWarning)

    # ------------------------------------------------------------------
    # Monitor: delayed-retry promotion, watchdog, worker respawn
    # ------------------------------------------------------------------

    def _monitor_loop(self) -> None:
        while True:
            journal: List[tuple] = []
            with self._cv:
                stopping = self._stop and (not self._drain_on_stop
                                           or self._unsettled == 0)
                if not stopping:
                    self._promote_due_locked()
                    self._watchdog_locked(journal)
                    self._respawn_locked()
            if journal:
                self._drain_or_backlog(journal)
                self._flush_pending()
            # Parked settle rows outlive everything else: flush them
            # even on the way out, or a drain shutdown could strand
            # settled-in-memory verdicts off-disk.
            self._retry_journal_backlog()
            if stopping:
                return
            self._maintenance_rebucket()
            self._journal_maintenance()
            self._fleet_sync()
            with self._cv:
                self._cv.wait(timeout=self.config.monitor_interval)

    def _promote_due_locked(self) -> None:
        """Move delayed retries whose backoff has elapsed into the
        claimable heap."""
        if not self._delayed:
            return
        now_m = time.monotonic()
        still: List[IntakeJob] = []
        promoted = False
        for job in self._delayed:
            if job.state is not JobState.QUEUED:
                continue  # settled (quarantined/unwound) while waiting
            if job.not_before <= now_m:
                heapq.heappush(self._heap, (job.priority, job.seq,
                                            job.job_id))
                promoted = True
            else:
                still.append(job)
        self._delayed = still
        if promoted:
            self._cv.notify_all()

    def _watchdog_locked(self, journal: List[tuple]) -> None:
        """Reap drives that exceeded the watchdog timeout: abandon the
        hung worker thread (it can be parked in a hung solver call —
        nothing can interrupt it, so it is written off and replaced),
        invalidate its claim, and count a worker loss against the job.
        A process-mode drive is *killable*: SIGKILL the worker process
        and the proxy unblocks on pipe EOF (its claim is already stale,
        so the death is discarded) instead of parking forever."""
        timeout = self.config.watchdog_timeout
        if timeout <= 0:
            return
        now_m = time.monotonic()
        for name, (job, claim, started) in list(
                self._running_jobs.items()):
            if now_m - started <= timeout:
                continue
            self._abandoned.add(name)
            self._running_jobs.pop(name, None)
            self._running -= 1
            executor = self._executors.get(name)
            if executor is not None:
                executor.kill()
            if job.claim == claim and job.state is JobState.RUNNING:
                job.claim += 1  # the hung drive's settle is stale now
                job.worker_crashes += 1
                if job.worker_crashes >= self.config.quarantine_after:
                    self._quarantine_locked(
                        job,
                        f"quarantined: hung past the {timeout:.1f}s "
                        f"watchdog {job.worker_crashes} time(s)", journal)
                else:
                    self._requeue_locked(job)
            self._cv.notify_all()

    def _respawn_locked(self) -> None:
        """Keep the pool at strength: prune dead threads, count the
        live non-abandoned workers, and spawn replacements.  Respawn
        continues under a *draining* stop — the queue cannot finish
        without workers — and halts under a hard stop."""
        pruned: List[threading.Thread] = []
        for thread in self._threads:
            if thread.is_alive():
                pruned.append(thread)
            else:
                self._abandoned.discard(thread.name)
        self._threads = pruned
        if self._stop and not (self._drain_on_stop and self._unsettled):
            return
        alive = sum(1 for t in self._threads
                    if t.name not in self._abandoned)
        while alive < self.config.workers:
            self._spawn_worker_locked(restart=True)
            alive += 1

    def _complete(self, job: IntakeJob, name: str, claim: int,
                  triaged: TriagedReport) -> None:
        # Phase 1: settle in memory and journal the done rows.  The
        # verdict is NOT yet registered for instant dedup — an instant
        # duplicate journals a done row of its own, and that row must
        # never hit the disk before the representative's (a SIGKILL
        # between them would make replay settle the duplicate and
        # re-queue the representative, which would then dedup against
        # its own duplicate — inverting `dedup_of` vs the batch run).
        # The pending-map entry stays in place meanwhile, so same-key
        # submissions attach as dependents and settle in phase 2.
        journal: List[tuple] = []
        with self._cv:
            if not self._release_locked(name, job, claim):
                return  # reaped mid-drive: the retry owns this job now
            job.verdict = triaged
            job.state = JobState.DONE
            job.finished_at = now()
            self._unsettled -= 1
            self._settled_list.append(job)
            journal.append(("done", job, None))
            self.metrics.verdicts_total += 1
            if triaged.cached:
                self.metrics.warm_hits_total += 1
            if not job.resumed:
                self.metrics.observe_latency(job.latency(), drive=True)
            for dep_id in self._dependents.pop(job.job_id, ()):
                self._settle_duplicate_locked(self._jobs[dep_id], job,
                                              journal)
            self._settle_spans_locked(job)
            self._note_settled_locked()
            self._cv.notify_all()
        if not self._drain_or_backlog(journal):
            # The done rows are parked, not durable: defer phase 2 (the
            # monitor publishes once the backlog drains).  Exposing the
            # verdict now would let a duplicate's done row reach disk
            # before its representative's.
            with self._cv:
                self._publish_backlog.append(job)
            return
        self._publish_verdict(job)

    def _publish_verdict(self, job: IntakeJob) -> None:
        # Phase 2: the done row is durable — expose the verdict to
        # instant dedup and settle any dependents that attached while
        # phase 1's rows were being written.
        journal: List[tuple] = []
        with self._cv:
            if job.force:
                # A forced recompute is the *new* truth for this key:
                # later dedups copy it, not the verdict it re-checked.
                self._done_by_key[job.dedup_key] = job.job_id
            else:
                self._done_by_key.setdefault(job.dedup_key, job.job_id)
            if self._pending_by_key.get(job.dedup_key) == job.job_id:
                self._pending_by_key.pop(job.dedup_key)
            for dep_id in self._dependents.pop(job.job_id, ()):
                self._settle_duplicate_locked(self._jobs[dep_id], job,
                                              journal)
            # The verdict row is durable and the job will never be
            # driven again: drop the parsed ~100 KB dump (the compact
            # core_obj stays — journal refs and replay rebuild from
            # it), so resident memory tracks in-flight work, not the
            # daemon's lifetime submission count.
            job._dump = None
            self._cv.notify_all()
        self._drain_or_backlog(journal)
        self._flush_pending()

    def _fail_locked(self, job: IntakeJob, error: str,
                     journal: List[tuple]) -> None:
        job.state = JobState.FAILED
        job.error = error
        job.finished_at = now()
        job._dump = None
        self._unsettled -= 1
        self._settled_list.append(job)
        journal.append(("failed", job, None))
        self.metrics.failed_total += 1
        if self._pending_by_key.get(job.dedup_key) == job.job_id:
            self._pending_by_key.pop(job.dedup_key)
        for dep_id in self._dependents.pop(job.job_id, ()):
            dependent = self._jobs[dep_id]
            dependent.state = JobState.FAILED
            dependent.error = f"representative {job.job_id} failed"
            dependent.finished_at = now()
            dependent._dump = None
            self._unsettled -= 1
            self._settled_list.append(dependent)
            journal.append(("failed", dependent, None))
            self.metrics.failed_total += 1
            self._settle_spans_locked(dependent)
        self._settle_spans_locked(job)
        self._note_settled_locked()

    def _note_settled_locked(self) -> None:
        """Count one settled job; every ``flush_every``-th, snapshot the
        store inputs (cheap, under the lock) into ``_pending_flush`` for
        the settle path to *write* after releasing the lock — the fsync
        must never stall admission or the other workers."""
        self._settled_since_flush += 1
        if self._store is None \
                or self._settled_since_flush < self.config.flush_every:
            return
        self._settled_since_flush = 0
        self._pending_flush = self._store_inputs_locked()

    def _flush_pending(self) -> None:
        """Write the pending store snapshot, if any, outside the lock."""
        with self._cv:
            inputs, self._pending_flush = self._pending_flush, None
        self._write_store(inputs)

    def _write_store(self, inputs: Optional[tuple]) -> None:
        if inputs is None or self._store is None:
            return
        seq, settled, count, complete, interrupted = inputs
        if seq <= self._flushed_seq:
            return  # a newer snapshot already landed
        # Store rows are in submission order — the batch-run
        # equivalence contract — while the settled list is in settle
        # order; sort the copy, outside the lock.  The submission order
        # of a *fleet* is the deterministic merge order
        # (submitted_at, node, seq), which reduces to plain seq order
        # for a single node — any member's store converges on the same
        # fleet-wide document.
        done = sorted((job for job in settled[:count]
                       if job.state is JobState.DONE
                       and job.verdict is not None),
                      key=lambda job: job.order_key)
        programs: Dict[str, ProgramSpec] = {}
        entries: List[CorpusEntry] = []
        for job in done:
            programs.setdefault(job.program.key, job.program)
            # store_payload reads ids/labels off the entries, never the
            # dumps — don't parse N historical coredumps per flush.
            entries.append(CorpusEntry(
                report=job.bug_report(require_coredump=False),
                program_key=job.program.key))
        corpus = TriageCorpus(programs=programs, entries=entries)
        result = TriageServiceResult(
            reports=[job.verdict for job in done],
            elapsed=max(now() - self.metrics.started_at, 1e-9),
            triaged=sum(1 for job in done
                        if job.verdict.dedup_of is None
                        and not job.verdict.cached),
            dedup_hits=sum(1 for job in done
                           if job.verdict.dedup_of is not None),
            cache_hits=sum(1 for job in done if job.verdict.cached),
            interrupted=interrupted,
        )
        # Serialized + versioned: a writer that lost the race to a
        # newer snapshot (including the final shutdown flush) skips
        # instead of clobbering the store with stale contents.
        with self._flush_lock:
            if seq <= self._flushed_seq:
                return
            try:
                self._store.flush(result, corpus, complete=complete)
            except OSError as exc:
                # The store is a derived artifact — every row in it is
                # rebuilt from the journal on replay — so a failed
                # flush costs visibility, not verdicts.  Raising here
                # would kill the monitor thread (or 503 a submission
                # that was already durably admitted).
                warnings.warn(f"report store flush failed ({exc}); "
                              f"retrying at the next flush point",
                              RuntimeWarning)
                return
            self._flushed_seq = seq

    # ------------------------------------------------------------------
    # The report store (same document as batch `res triage --store`)
    # ------------------------------------------------------------------

    def _store_inputs_locked(self) -> tuple:
        """Snapshot O(1) under the lock: the settled list is
        append-only (a (list, length) pair read outside the lock is
        stable) and pending-ness is a counter, so the expensive part —
        corpus assembly, sorting, the atomic fsynced rewrite — happens
        in :meth:`_write_store` without stalling admission or the
        workers, however long the daemon has been running."""
        complete = not self._unsettled and not self._interrupted
        self._flush_seq += 1
        return (self._flush_seq, self._settled_list,
                len(self._settled_list), complete, self._interrupted)

    def flush_store(self) -> None:
        if self._store is None:
            return
        with self._cv:
            inputs = self._store_inputs_locked()
        self._write_store(inputs)

    # ------------------------------------------------------------------
    # Queries (HTTP read side)
    # ------------------------------------------------------------------

    def job_payload(self, job_id: str) -> Optional[dict]:
        with self._cv:
            job = self._jobs.get(job_id)
            return job.status_payload() if job else None

    def buckets_payload(self) -> dict:
        # Settled jobs are immutable and the settled list append-only:
        # snapshot (list, length) in O(1) under the lock, assemble the
        # O(history) payload outside it so read polling never stalls
        # admission or the workers (same pattern as the store flush).
        with self._cv:
            settled, count = self._settled_list, len(self._settled_list)
        return self._buckets_for(settled, count)

    def _buckets_for(self, settled: List[IntakeJob], count: int) -> dict:
        """The refined bucket hierarchy over the settled history,
        computed *incrementally*: each newly settled verdict is folded
        into the persistent :class:`IncrementalRefiner` exactly once —
        whether it arrived over HTTP, from this node's journal replay,
        or from a peer's segments — so the background rebucket costs
        O(new verdicts), not O(full history), per pass.  The refiner's
        output is proven equal to the batch :func:`refine` pass by
        ``tests/test_fleet.py``.  Memoized on the settled count; a
        request older than the memo gets the (strictly fresher) memo."""
        cached = self._buckets_cache
        if cached is not None and cached[0] >= count:
            return cached[1]
        with self._rebucket_lock:
            cached = self._buckets_cache
            if cached is not None and cached[0] >= count:
                return cached[1]
            for job in settled[self._refined_upto:count]:
                if job.state is JobState.DONE \
                        and job.verdict is not None:
                    self._refiner.add(job.verdict)
            self._refined_upto = count
            refinement = self._refiner.refinement()
            done = sorted((job for job in settled[:count]
                           if job.state is JobState.DONE
                           and job.verdict is not None),
                          key=lambda job: job.order_key)
            buckets: Dict[str, List[str]] = {}
            raw_buckets: Dict[str, List[str]] = {}
            for job in done:
                result = job.verdict.result
                final = refinement.bucket_of(result.report_id,
                                             result.bucket)
                buckets.setdefault(repr(final), []).append(job.report_id)
                raw_buckets.setdefault(
                    repr(result.bucket), []).append(job.report_id)
            payload = {
                "buckets": buckets,
                "raw_buckets": raw_buckets,
                "hierarchy": refinement.hierarchy,
                "stats": refinement.stats,
            }
            self._buckets_cache = (count, payload)
        self.metrics.bump("rebucket_passes_total")
        return payload

    def _maintenance_rebucket(self) -> None:
        """Monitor-tick maintenance: fold verdicts settled since the
        cached hierarchy into the incremental refiner, so ``GET
        /buckets`` serves a precomputed view.  Best-effort, like every
        monitor duty."""
        with self._cv:
            settled, count = self._settled_list, len(self._settled_list)
        cached = self._buckets_cache
        if cached is not None and cached[0] >= count:
            return
        try:
            self._buckets_for(settled, count)
        except Exception as exc:  # noqa: BLE001 - monitor boundary
            warnings.warn(f"intake daemon: background rebucket hit "
                          f"{type(exc).__name__}: {exc}", RuntimeWarning)

    def _journal_maintenance(self) -> None:
        """Bound the spool: rotate the active journal segment once it
        crosses ``--journal-rotate-mb``, then compact the closed
        segments (each settled job's submit+settle rows merge into one
        row, and replay-redundant coredump bodies drop).  Best-effort;
        a failed rotation or compaction retries next tick."""
        if not self.journal.rotate_bytes:
            return
        try:
            if self.journal.maybe_rotate() is not None:
                self.journal.compact_segments()
        except Exception as exc:  # noqa: BLE001 - monitor boundary
            warnings.warn(f"intake daemon: journal maintenance hit "
                          f"{type(exc).__name__}: {exc}", RuntimeWarning)

    # ------------------------------------------------------------------
    # Fleet: peer-segment sync (the shared dedup tier)
    # ------------------------------------------------------------------

    def _fleet_sync(self, force: bool = False) -> None:
        """Tail the peers' journal segments in the shared spool and
        adopt their settled verdicts as *shadow* jobs: dedup-visible,
        store-visible, never driven and never re-journaled here.  This
        is the shared dedup tier — a crash settled by any node answers
        instantly on every node — and, at restart, the deterministic
        merge-on-replay: any member rebuilds the fleet-wide settled
        state from the union of segments.  Size-gated (one ``stat`` per
        peer file per interval) and idempotent: replays re-run until
        the segment sizes settle, and known job ids are skipped."""
        if self._ring is None:
            return
        now_m = time.monotonic()
        if not force and now_m - self._fleet_last_sync \
                < self.config.fleet_sync_interval:
            return
        self._fleet_last_sync = now_m
        spool = Path(self.config.spool_dir)
        adopted = False
        for peer in self._ring.nodes:
            if peer == self.config.node_id:
                continue
            peer_journal = JobJournal(spool / journal_file_for(peer))
            try:
                size = sum(path.stat().st_size
                           for path in peer_journal.all_paths()
                           if path.exists())
            except OSError:
                continue
            if size == self._peer_sizes.get(peer):
                continue
            try:
                replayed = peer_journal.replay(self.service_config)
            except (ReproError, OSError):
                continue  # mid-rotation read; the next tick retries
            self._peer_sizes[peer] = size
            adopted = self._adopt_shadows(replayed) or adopted
        if adopted:
            self._flush_pending()

    def _adopt_shadows(self, replayed: List[IntakeJob]) -> bool:
        """Register a peer's settled jobs under this node's dedup and
        store views.  Unsettled peer jobs are skipped (their owner is
        driving them); they adopt once a later sync sees the settle."""
        adopted = False
        with self._cv:
            for job in replayed:
                if not job.settled or job.job_id in self._jobs:
                    continue
                job.resumed = True
                job._dump = None
                self._jobs[job.job_id] = job
                self._by_seq.append(job)
                self._shadow_ids.add(job.job_id)
                self._seen_fingerprints.add(job.fingerprint)
                self._settled_list.append(job)
                if job.state is JobState.QUARANTINED:
                    self._quarantined_count += 1
                if job.state is JobState.DONE \
                        and job.verdict is not None:
                    if job.force:
                        # Jobs replay in seq order, so the peer's
                        # newest forced recompute wins — mirroring
                        # _complete phase 2 on the owner itself.
                        self._done_by_key[job.dedup_key] = job.job_id
                    else:
                        self._done_by_key.setdefault(job.dedup_key,
                                                     job.job_id)
                self._note_settled_locked()
                adopted = True
            if adopted:
                self._cv.notify_all()
        return adopted

    def report_payload(self, fingerprint: str) -> dict:
        with self._cv:
            settled, count = self._settled_list, len(self._settled_list)
        matching = sorted((job for job in settled[:count]
                           if job.fingerprint == fingerprint),
                          key=lambda job: job.order_key)
        return {"fingerprint": fingerprint,
                "reports": [job.status_payload() for job in matching]}

    def healthz(self) -> dict:
        """Liveness + degradation.  ``degraded`` means the daemon still
        answers — instant dedup against the historical store is pure
        in-memory reads — but its write side is impaired: workers are
        down (pool below strength, pending respawn or respawn-disabled)
        or the spool disk rejected the last journal append.  Read-only
        service from historical dedup is exactly what keeps working in
        that state, so clients can keep querying and submitting known
        crashes while new work is refused or delayed."""
        with self._cv:
            alive = sum(1 for thread in self._threads
                        if thread.is_alive()
                        and thread.name not in self._abandoned)
            disk_ok = self._disk_ok
            degraded = (not disk_ok) or (
                self._threads and alive < self.config.workers)
            if self._stop:
                status = "draining"
            elif degraded:
                status = "degraded"
            else:
                status = "ok"
            return {
                "status": status,
                "node_id": self.config.node_id,
                "queue_depth": len(self._heap),
                "delayed_retries": len(self._delayed),
                "in_flight": self._running,
                "workers": self.config.workers,
                "workers_alive": alive,
                "disk": "ok" if disk_ok else "unhealthy",
                "quarantined": self._quarantined_count,
                "jobs": len(self._jobs),
                "uptime_seconds": round(
                    now() - self.metrics.started_at, 3),
            }

    def quarantine_payload(self) -> dict:
        """Every quarantined job with its diagnostics (the operator's
        drain-and-inspect view behind ``res status --quarantine``)."""
        with self._cv:
            settled, count = self._settled_list, len(self._settled_list)
        rows = sorted((job.status_payload() for job in settled[:count]
                       if job.state is JobState.QUARANTINED),
                      key=lambda row: row["job_id"])
        return {"quarantined": rows}

    def metrics_text(self) -> str:
        """The ``GET /metrics`` exposition (Prometheus text format).

        Every family carries ``# HELP`` and ``# TYPE`` lines, and
        families are emitted in sorted-by-name order — two scrapes of
        an idle daemon are byte-identical, so operators can diff them
        and dashboards can rely on the layout.
        """
        health = self.healthz()
        snapshot = self.metrics.snapshot()
        # (family, kind, help, [sample lines]) — assembled unsorted,
        # emitted sorted by family name.
        families: List[tuple] = []

        def family(name: str, kind: str, help_text: str,
                   samples) -> None:
            families.append((f"res_intake_{name}", kind, help_text,
                             samples))

        def scalar(name: str, kind: str, help_text: str, value) -> None:
            family(name, kind, help_text,
                   [f"res_intake_{name} {value}"])

        scalar("submitted_total", "counter",
               "Submissions accepted for triage (202s).",
               snapshot["submitted_total"])
        scalar("verdicts_total", "counter",
               "Jobs settled with a triage verdict.",
               snapshot["verdicts_total"])
        scalar("dedup_total", "counter",
               "Submissions settled by duplicate suppression.",
               snapshot["dedup_total"])
        scalar("warm_hits_total", "counter",
               "Verdicts served from the warm result cache.",
               snapshot["warm_hits_total"])
        scalar("failed_total", "counter",
               "Jobs settled as failed after exhausting attempts.",
               snapshot["failed_total"])
        scalar("rejected_total", "counter",
               "Submissions rejected at admission (backpressure).",
               snapshot["rejected_total"])
        scalar("malformed_total", "counter",
               "Submissions rejected as malformed.",
               snapshot["malformed_total"])
        scalar("redirects_total", "counter",
               "Submissions redirected to their owning fleet node.",
               snapshot["redirects_total"])
        scalar("retries_total", "counter",
               "Drive attempts re-queued after an error or crash.",
               snapshot["retries_total"])
        scalar("quarantined_total", "counter",
               "Jobs quarantined as poison inputs.",
               snapshot["quarantined_total"])
        scalar("worker_restarts_total", "counter",
               "Worker slots respawned after a loss.",
               snapshot["worker_restarts_total"])
        scalar("journal_errors_total", "counter",
               "Journal writes that failed and were backlogged.",
               snapshot["journal_errors_total"])
        scalar("rebucket_passes_total", "counter",
               "Historical re-bucketing passes completed.",
               snapshot["rebucket_passes_total"])
        scalar("injected_faults_total", "counter",
               "Faults fired by the fault-injection harness.",
               faultinject.injected_total())
        scalar("degraded", "gauge",
               "1 when the daemon is degraded, 0 when healthy.",
               1 if health["status"] == "degraded" else 0)
        scalar("queue_depth", "gauge",
               "Jobs queued and waiting for a worker.",
               health["queue_depth"])
        scalar("in_flight", "gauge",
               "Jobs claimed by a worker right now.",
               health["in_flight"])
        scalar("verdicts_per_second", "gauge",
               "Verdict throughput over the daemon's uptime.",
               snapshot["verdicts_per_second"])
        scalar("warm_hit_rate", "gauge",
               "Fraction of verdicts served from the warm cache.",
               snapshot["warm_hit_rate"])
        scalar("uptime_seconds", "gauge",
               "Seconds since the daemon started.",
               snapshot["uptime_seconds"])
        family("latency_seconds", "summary",
               "Submit-to-settle latency of driven jobs.",
               ['res_intake_latency_seconds{quantile="0.5"} '
                f"{snapshot['latency_p50']}",
                'res_intake_latency_seconds{quantile="0.95"} '
                f"{snapshot['latency_p95']}"])
        phase_samples = []
        for (phase, priority), (p50, p95) in sorted(
                self.metrics.phase_quantiles().items()):
            for quantile, value in (("0.5", p50), ("0.95", p95)):
                phase_samples.append(
                    'res_intake_phase_latency_seconds{'
                    f'phase="{phase}",priority="{priority}",'
                    f'quantile="{quantile}"}} {round(value, 6)}')
        if phase_samples:
            family("phase_latency_seconds", "summary",
                   "Per-phase latency of traced jobs, by priority.",
                   phase_samples)
        lines = []
        for name, kind, help_text, samples in sorted(families):
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")
            lines.extend(samples)
        return "\n".join(lines) + "\n"
