"""Deterministic fault injection for the intake stack (see core.py)."""

from repro.faultinject.core import (
    FaultInjector,
    InjectedFaultError,
    LOG_ENV,
    SPEC_ENV,
    SiteRule,
    WorkerCrashError,
    activate,
    active,
    deactivate,
    injected,
    injected_total,
    share_state,
)

__all__ = [
    "FaultInjector",
    "InjectedFaultError",
    "LOG_ENV",
    "SPEC_ENV",
    "SiteRule",
    "WorkerCrashError",
    "activate",
    "active",
    "deactivate",
    "injected",
    "injected_total",
    "share_state",
]
