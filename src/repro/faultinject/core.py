"""Deterministic, seedable fault injection for the intake stack.

The paper's premise is that production failures are inevitable; this
module makes them *schedulable*, so the self-healing machinery in the
daemon (retry/backoff, quarantine, watchdog reaping, degraded mode)
can be exercised deterministically in tests and hammered with
randomized schedules in the chaos suite.

Design constraints, in order:

* **Zero cost when disabled.**  Every instrumented call site does one
  module-global check (``active()`` returning ``None``) and nothing
  else.  No environment reads, no RNG draws, no logging on the hot
  path of a production daemon.
* **Deterministic.**  A :class:`FaultPlan` carries one seed; each site
  gets its own ``random.Random`` derived from ``(seed, site)``, so
  adding instrumentation to one site never perturbs the schedule of
  another, and replaying the same plan over the same call sequence
  injects the same faults.
* **Reproducible.**  Every injected fault is appended to a JSONL
  fault log (``RES_FAULT_LOG``) — a failing chaos run dumps exactly
  which faults fired, at which call index, against which path.

Activation is either programmatic (:func:`activate` /
:func:`injected`, used by tests in-process) or via environment for
subprocess daemons: ``RES_FAULT_SPEC`` holds the plan as inline JSON
(or a path to a JSON file), ``RES_FAULT_LOG`` the fault-log path.
The environment is read once, lazily, on the first ``active()`` call.

A plan is ``{"seed": int, "sites": {site: rule, ...}}`` where a rule
is ``{"prob": float, "at": [call indices], "kinds": [...],
"max": int?, "path_contains": str?, "delay": s, "hang": s}``.
Instrumented sites and the kinds they honor:

========================  =============================================
site                      kinds
========================  =============================================
``ioutil.append_line``    ``enospc`` (fail before writing), ``torn``
                          (write a prefix, then fail — the crash-mid-
                          append case), ``fsync`` (data written, fsync
                          "fails")
``ioutil.atomic_write``   ``enospc``, ``interrupt`` (die between the
                          temp-file write and the rename)
``worker.task``           ``crash`` (:class:`WorkerCrashError` — the
                          worker thread dies mid-job)
``solver.call``           ``error``, ``delay``, ``hang`` (cooperative
                          sleep long enough to trip the watchdog)
``http.body``             ``truncate``, ``bitflip``, ``garbage``
                          (corrupt-on-the-wire submissions)
========================  =============================================
"""

from __future__ import annotations

import errno
import fcntl
import hashlib
import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple

import random

#: environment variable holding the fault plan (inline JSON or a path)
SPEC_ENV = "RES_FAULT_SPEC"
#: environment variable holding the fault-log path (JSONL, appended)
LOG_ENV = "RES_FAULT_LOG"


class InjectedFaultError(RuntimeError):
    """A generic injected failure (the ``error`` kind)."""


class WorkerCrashError(InjectedFaultError):
    """Injected worker death: the worker thread must not survive the
    job that raised this.  The daemon treats it exactly like a worker
    process dying mid-drive — bookkeeping first, then the thread is
    allowed to die and the monitor respawns a replacement."""


@dataclass
class SiteRule:
    """When and what to inject at one instrumented site."""

    #: independent per-call probability of injecting
    prob: float = 0.0
    #: explicit (0-based) call indices that always inject
    at: Tuple[int, ...] = ()
    #: fault kinds to draw from (uniformly) when a call fires
    kinds: Tuple[str, ...] = ("error",)
    #: cap on total injections at this site (None = unbounded)
    max: Optional[int] = None
    #: only calls whose path contains this substring are considered
    path_contains: Optional[str] = None
    #: sleep for the ``delay`` kind (seconds)
    delay: float = 0.05
    #: sleep for the ``hang`` kind (seconds; cooperative, chunked)
    hang: float = 5.0

    @classmethod
    def from_obj(cls, obj: dict) -> "SiteRule":
        return cls(
            prob=float(obj.get("prob", 0.0)),
            at=tuple(int(i) for i in obj.get("at", ())),
            kinds=tuple(str(k) for k in obj.get("kinds", ("error",))),
            max=None if obj.get("max") is None else int(obj["max"]),
            path_contains=obj.get("path_contains"),
            delay=float(obj.get("delay", 0.05)),
            hang=float(obj.get("hang", 5.0)),
        )


@dataclass
class _SiteState:
    rng: random.Random
    calls: int = 0
    injected: int = 0


class FaultInjector:
    """One activated fault plan; thread-safe (daemon workers and HTTP
    handler threads hit sites concurrently)."""

    def __init__(self, plan: dict, log_path: Optional[str] = None):
        self.seed = int(plan.get("seed", 0))
        self.rules: Dict[str, SiteRule] = {
            str(site): SiteRule.from_obj(rule or {})
            for site, rule in (plan.get("sites") or {}).items()
        }
        self.log_path = Path(log_path) if log_path else None
        # Optional cross-process counter file: when set (daemon worker
        # pools), per-site (calls, injected) live in a flock-guarded
        # JSON file shared by the daemon and its forked workers, so a
        # respawned worker continues the schedule instead of replaying
        # call index 0 — ``{"at": [0], "max": 1}`` fires once per plan,
        # not once per process.
        self.state_path: Optional[Path] = (
            Path(str(plan["state_path"])) if plan.get("state_path") else None)
        self._lock = threading.Lock()
        # Per-site RNG seeded from (seed, site): schedules at different
        # sites are independent, so instrumenting a new site never
        # shifts an existing plan's faults.
        self._states: Dict[str, _SiteState] = {
            site: _SiteState(rng=random.Random(f"{self.seed}:{site}"))
            for site in self.rules
        }
        self.injected_total = 0
        self.by_site: Dict[str, int] = {site: 0 for site in self.rules}
        if self.log_path is not None:
            self._log({"event": "plan", "seed": self.seed,
                       "sites": sorted(self.rules)})

    # -- decision ------------------------------------------------------------

    def decide(self, site: str, path: Optional[object] = None
               ) -> Optional[str]:
        """Should a fault fire at this call?  Returns the kind or None.

        Call counting happens after the path filter, so ``at`` indices
        address the matching calls only (e.g. "the 3rd append to the
        job journal", regardless of interleaved cache appends).
        """
        rule = self.rules.get(site)
        if rule is None:
            return None
        with self._lock:
            if rule.path_contains is not None and (
                    path is None or rule.path_contains not in str(path)):
                return None
            if self.state_path is not None:
                decided = self._shared_step(site, rule)
                if decided is None:
                    return None
                index, kind = decided
            else:
                state = self._states[site]
                index = state.calls
                state.calls += 1
                fire = index in rule.at or (
                    rule.prob > 0.0 and state.rng.random() < rule.prob)
                if not fire:
                    return None
                if rule.max is not None and state.injected >= rule.max:
                    return None
                state.injected += 1
                kind = rule.kinds[0] if len(rule.kinds) == 1 \
                    else state.rng.choice(rule.kinds)
            self.injected_total += 1
            self.by_site[site] = self.by_site.get(site, 0) + 1
        self._log({"event": "fault", "site": site, "kind": kind,
                   "call": index,
                   "path": str(path) if path is not None else None,
                   "t": round(time.time(), 3)})
        return kind

    # -- shared (cross-process) counters -------------------------------------

    def share_state(self, path) -> None:
        """Move this injector's per-site counters into a flock-guarded
        file so forked worker processes and the daemon advance one
        schedule together.  Draws become hash-derived from
        ``(seed, site, call-index)`` — same independence guarantees,
        but any process can compute call N's draw without replaying
        calls 0..N-1 through a sequential RNG."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with self._lock:
            self.state_path = path

    def _shared_step(self, site: str, rule: SiteRule
                     ) -> Optional[Tuple[int, str]]:
        """One call-counting + fire decision against the shared file.
        Returns ``(call index, kind)`` when a fault fires, else None.
        Falls back to the in-memory state on any filesystem error —
        the injector must never itself be a failure source."""
        try:
            with self._locked_state() as counters:
                calls, injected = counters.get(site, [0, 0])
                index = int(calls)
                counters[site] = [index + 1, int(injected)]
                digest = hashlib.sha256(
                    f"{self.seed}:{site}:{index}".encode()).digest()
                draw = int.from_bytes(digest[:8], "big") / 2.0 ** 64
                fire = index in rule.at or (
                    rule.prob > 0.0 and draw < rule.prob)
                if not fire:
                    return None
                if rule.max is not None and int(injected) >= rule.max:
                    return None
                counters[site] = [index + 1, int(injected) + 1]
                kind = rule.kinds[0] if len(rule.kinds) == 1 \
                    else rule.kinds[int.from_bytes(digest[8:12], "big")
                                    % len(rule.kinds)]
                return index, kind
        except OSError:
            state = self._states[site]
            index = state.calls
            state.calls += 1
            if index not in rule.at:
                return None
            if rule.max is not None and state.injected >= rule.max:
                return None
            state.injected += 1
            return index, rule.kinds[0]

    @contextmanager
    def _locked_state(self) -> Iterator[dict]:
        """Exclusive read-modify-write of the shared counter file.
        Raw ``os`` I/O on purpose: routing through ioutil would let the
        injector inject faults into its own bookkeeping."""
        fd = os.open(str(self.state_path),
                     os.O_RDWR | os.O_CREAT, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
            raw = b""
            while True:
                chunk = os.read(fd, 65536)
                if not chunk:
                    break
                raw += chunk
            try:
                counters = json.loads(raw.decode()) if raw.strip() else {}
            except (ValueError, UnicodeDecodeError):
                counters = {}
            yield counters
            payload = json.dumps(counters, sort_keys=True).encode()
            os.lseek(fd, 0, os.SEEK_SET)
            os.ftruncate(fd, 0)
            os.write(fd, payload)
        finally:
            os.close(fd)  # releases the flock

    def check(self, site: str) -> None:
        """Decide-and-act for execution sites (``worker.task``,
        ``solver.call``): raise or sleep according to the drawn kind."""
        kind = self.decide(site)
        if kind is None:
            return
        rule = self.rules[site]
        if kind == "crash":
            raise WorkerCrashError(f"injected worker death at {site}")
        if kind == "error":
            raise InjectedFaultError(f"injected fault at {site}")
        if kind == "enospc":
            raise OSError(errno.ENOSPC,
                          f"injected ENOSPC at {site}")
        if kind == "delay":
            time.sleep(rule.delay)
            return
        if kind == "hang":
            # Cooperative hang: sleeps in small chunks so an abandoned
            # worker thread parks cheaply instead of pinning a core,
            # and test teardown is never held hostage by one long sleep.
            deadline = time.monotonic() + rule.hang
            while time.monotonic() < deadline:
                time.sleep(min(0.05, deadline - time.monotonic()))
            return
        raise InjectedFaultError(f"injected fault ({kind}) at {site}")

    def corrupt(self, site: str, data: bytes) -> bytes:
        """Decide-and-act for wire sites: return ``data``, possibly
        mutated (truncated / bit-flipped / prefixed with garbage)."""
        kind = self.decide(site, path=f"<{len(data)} bytes>")
        if kind is None or not data:
            return data
        with self._lock:
            rng = self._states[site].rng
            if kind == "truncate":
                return data[:rng.randrange(len(data))]
            if kind == "bitflip":
                offset = rng.randrange(len(data))
                mutated = bytearray(data)
                mutated[offset] ^= 1 << rng.randrange(8)
                return bytes(mutated)
            if kind == "garbage":
                return bytes(rng.randrange(256)
                             for _ in range(16)) + data
        return data

    # -- reproduction --------------------------------------------------------

    def _log(self, row: dict) -> None:
        if self.log_path is None:
            return
        try:
            self.log_path.parent.mkdir(parents=True, exist_ok=True)
            with open(self.log_path, "a") as handle:
                handle.write(json.dumps(row, sort_keys=True) + "\n")
        except OSError:
            pass  # the log is a reproduction aid, never a failure source

    def counters(self) -> Dict[str, int]:
        with self._lock:
            return dict(self.by_site, total=self.injected_total)

    def shared_injected_total(self) -> Optional[int]:
        """Fleet-wide injected count from the shared state file, or
        None when not sharing (or the file is unreadable).  Lockless
        read on purpose — a torn read just falls back to local."""
        if self.state_path is None:
            return None
        try:
            raw = self.state_path.read_text()
            counters = json.loads(raw) if raw.strip() else {}
            return sum(int(pair[1]) for pair in counters.values())
        except (OSError, ValueError, IndexError, TypeError):
            return None


# ---------------------------------------------------------------------------
# Activation (module-global; one check per instrumented call)
# ---------------------------------------------------------------------------

_UNRESOLVED = object()
_injector: object = _UNRESOLVED
_injector_lock = threading.Lock()


def _from_env() -> Optional[FaultInjector]:
    spec = os.environ.get(SPEC_ENV)
    if not spec:
        return None
    text = spec if spec.lstrip().startswith("{") \
        else Path(spec).read_text()
    return FaultInjector(json.loads(text),
                         log_path=os.environ.get(LOG_ENV))


def active() -> Optional[FaultInjector]:
    """The process's injector, or None.  The environment is resolved
    once, on first call — after that this is a single global read, the
    entire disabled-mode cost at every instrumented site."""
    global _injector
    if _injector is _UNRESOLVED:
        with _injector_lock:
            if _injector is _UNRESOLVED:
                _injector = _from_env()
    return _injector  # type: ignore[return-value]


def activate(plan: dict, log_path: Optional[str] = None) -> FaultInjector:
    """Programmatic activation (tests).  Replaces any current plan."""
    global _injector
    injector = FaultInjector(plan, log_path=log_path)
    with _injector_lock:
        _injector = injector
    return injector


def deactivate() -> None:
    global _injector
    with _injector_lock:
        _injector = None


@contextmanager
def injected(plan: dict,
             log_path: Optional[str] = None) -> Iterator[FaultInjector]:
    """``with injected({...}) as fi:`` — activate for the block only."""
    injector = activate(plan, log_path=log_path)
    try:
        yield injector
    finally:
        deactivate()


def injected_total() -> int:
    """Total faults injected so far (0 when disabled).  With a shared
    counter file the total spans every participating process — faults
    fired inside forked workers count in the daemon's metrics."""
    injector = active()
    if injector is None:
        return 0
    shared = injector.shared_injected_total()
    return shared if shared is not None else injector.injected_total


def share_state(path) -> None:
    """Adopt a shared cross-process counter file for the active plan
    (no-op when injection is off or a state file is already set).
    Called by the daemon before it forks its worker pool; the children
    inherit ``state_path`` through the fork."""
    injector = active()
    if injector is not None and injector.state_path is None:
        injector.share_state(path)
