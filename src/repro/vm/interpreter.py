"""The concrete virtual machine: a multithreaded IR interpreter.

The VM executes IR modules under a pluggable scheduler with sequential
consistency (the memory model RES assumes, paper §4).  Guest failures
become :class:`~repro.vm.coredump.Coredump` objects — exactly the input
RES consumes — and never host exceptions.

The VM exposes two driving modes:

* :meth:`VM.run` — scheduler-driven execution (production runs).
* :meth:`VM.step_thread` — externally driven single stepping, used by
  the suffix replayer, which must control interleaving precisely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import VMError
from repro.ir.instructions import (
    AbortInst,
    AllocInst,
    AssertInst,
    BinInst,
    BrInst,
    CallInst,
    CBrInst,
    CmpInst,
    ConstInst,
    FrameAddrInst,
    FreeInst,
    GAddrInst,
    HaltInst,
    Imm,
    InputInst,
    Instr,
    JoinInst,
    LoadInst,
    LockInst,
    MovInst,
    Operand,
    OutputInst,
    Reg,
    RetInst,
    SHARED_EFFECT_INSTRS,
    SpawnInst,
    StoreInst,
    UnlockInst,
    to_signed,
    to_unsigned,
)
from repro.ir.module import Module
from repro.vm.coredump import Coredump, ThreadDump, Trap, TrapKind
from repro.vm.lbr import LastBranchRecord, LBRMode
from repro.vm.memory import AccessError, Memory
from repro.vm.scheduler import RandomPreemptScheduler, Scheduler
from repro.vm.state import Frame, PC, Thread, ThreadStatus
from repro.vm.trace import ExecutionTrace, MemAccess, TraceEvent

#: How many output-log entries a coredump retains (the "error log tail").
LOG_TAIL_WORDS = 64


class RunStatus(Enum):
    EXITED = "exited"
    TRAPPED = "trapped"
    BUDGET_EXHAUSTED = "budget-exhausted"


@dataclass
class RunResult:
    status: RunStatus
    steps: int
    exit_code: int = 0
    coredump: Optional[Coredump] = None
    trace: Optional[ExecutionTrace] = None
    outputs: List[int] = field(default_factory=list)

    @property
    def trapped(self) -> bool:
        return self.status is RunStatus.TRAPPED


class _TrapSignal(Exception):
    """Internal: unwinds the interpreter to the coredump builder."""

    def __init__(self, kind: TrapKind, message: str = "",
                 fault_addr: Optional[int] = None):
        self.kind = kind
        self.message = message
        self.fault_addr = fault_addr
        super().__init__(message)


class _ExitSignal(Exception):
    """Internal: orderly program exit (halt, or main returned)."""

    def __init__(self, code: int):
        self.code = code
        super().__init__(str(code))


def _shared_effect(instr: Instr) -> bool:
    return isinstance(instr, SHARED_EFFECT_INSTRS)


class VM:
    """A multithreaded interpreter for one IR module.

    Args:
        module: the program to run.
        inputs: values returned by successive ``input`` instructions;
            when exhausted, further inputs read 0.
        scheduler: interleaving policy; defaults to a seeded random
            preemptive scheduler.
        record_trace: capture a ground-truth :class:`ExecutionTrace`
            (tests only — RES never sees it).
        check_bounds: when False, stray loads/stores silently corrupt
            memory instead of trapping (Figure 1's overflow scenario).
        lbr_depth: size of the simulated Last Branch Record (0 disables).
        lbr_mode: plain or CFG-filtered LBR (paper's extension).
        alu_fault: optional hook ``(pc, op, correct) -> result`` used to
            model CPU computation errors (§3.2).
        start_main: create thread 0 at ``main``; pass False to build the
            thread set by hand (replay).
    """

    def __init__(
        self,
        module: Module,
        inputs: Iterable[int] = (),
        scheduler: Optional[Scheduler] = None,
        record_trace: bool = False,
        check_bounds: bool = True,
        lbr_depth: int = 16,
        lbr_mode: LBRMode = LBRMode.ALL,
        alu_fault: Optional[Callable[[PC, str, int], int]] = None,
        start_main: bool = True,
    ):
        self.module = module
        self.memory = Memory(module, check_bounds=check_bounds)
        self.inputs: List[int] = [to_unsigned(v) for v in inputs]
        self.input_cursor = 0
        self.scheduler = scheduler or RandomPreemptScheduler(seed=0)
        self.trace = ExecutionTrace() if record_trace else None
        self.lbr = LastBranchRecord(depth=lbr_depth, mode=lbr_mode)
        self.alu_fault = alu_fault
        self.threads: Dict[int, Thread] = {}
        self.lock_owners: Dict[int, int] = {}
        self.lock_waiters: Dict[int, List[int]] = {}
        self.outputs: List[int] = []
        self.log: List[Tuple[int, int, PC]] = []
        self.steps = 0
        self.next_tid = 0
        self.exit_code: Optional[int] = None
        self._trap: Optional[Trap] = None
        if start_main:
            if "main" not in module.functions:
                raise VMError("module has no main function")
            self.spawn_thread("main", [])

    # ------------------------------------------------------------------
    # Thread construction
    # ------------------------------------------------------------------

    def spawn_thread(self, func_name: str, args: Sequence[int]) -> int:
        """Create a new runnable thread entering ``func_name``."""
        func = self.module.function(func_name)
        if len(args) != len(func.params):
            raise VMError(f"{func_name} expects {len(func.params)} args")
        tid = self.next_tid
        self.next_tid += 1
        frame = self._make_frame(tid, func_name, ret_dst=None)
        for param, value in zip(func.params, args):
            frame.regs[param] = to_unsigned(value)
        self.threads[tid] = Thread(tid=tid, frames=[frame],
                                   start_function=func_name)
        return tid

    def adopt_thread(self, thread: Thread) -> None:
        """Install an externally built thread (replay from a snapshot)."""
        self.threads[thread.tid] = thread
        self.next_tid = max(self.next_tid, thread.tid + 1)

    def _make_frame(self, tid: int, func_name: str,
                    ret_dst: Optional[Reg]) -> Frame:
        func = self.module.function(func_name)
        base = 0
        if func.frame_words:
            base = self.memory.stack_push(tid, func.frame_words)
        return Frame(
            function=func_name,
            block=func.entry,
            index=0,
            frame_base=base,
            frame_words=func.frame_words,
            ret_dst=ret_dst,
        )

    # ------------------------------------------------------------------
    # Operand evaluation
    # ------------------------------------------------------------------

    def _value(self, frame: Frame, op: Operand) -> int:
        if isinstance(op, Imm):
            return op.value
        try:
            return frame.regs[op]
        except KeyError:
            raise VMError(
                f"read of undefined register {op!r} in {frame.function}:{frame.block}"
            ) from None

    # ------------------------------------------------------------------
    # Scheduling loop
    # ------------------------------------------------------------------

    def wake_threads(self) -> None:
        """Unblock threads whose wait condition is now satisfied."""
        for thread in self.threads.values():
            if thread.status is ThreadStatus.BLOCKED_LOCK:
                if self.lock_owners.get(thread.blocked_on) is None:
                    thread.status = ThreadStatus.RUNNABLE
                    thread.blocked_on = None
            elif thread.status is ThreadStatus.BLOCKED_JOIN:
                target = self.threads.get(thread.blocked_on)
                if target is None or target.status is ThreadStatus.FINISHED:
                    thread.status = ThreadStatus.RUNNABLE
                    thread.blocked_on = None

    def runnable_tids(self) -> List[int]:
        return sorted(
            t.tid for t in self.threads.values()
            if t.status is ThreadStatus.RUNNABLE
        )

    def run(self, max_steps: int = 1_000_000) -> RunResult:
        """Scheduler-driven execution until exit, trap, or budget."""
        current: Optional[int] = None
        while self.steps < max_steps:
            self.wake_threads()
            runnable = self.runnable_tids()
            if not runnable:
                if all(t.status is ThreadStatus.FINISHED for t in self.threads.values()):
                    return self._exited(0)
                return self._trapped_deadlock()
            shared = False
            if current in runnable:
                thread = self.threads[current]
                instr = self._current_instr(thread)
                shared = _shared_effect(instr)
            current = self.scheduler.at_preemption_point(runnable, current, shared)
            result = self.step_thread(current)
            if result is not None:
                return result
        return RunResult(
            status=RunStatus.BUDGET_EXHAUSTED, steps=self.steps,
            trace=self.trace, outputs=list(self.outputs),
        )

    def _current_instr(self, thread: Thread) -> Instr:
        frame = thread.top
        block = self.module.function(frame.function).block(frame.block)
        return block.instrs[frame.index]

    # ------------------------------------------------------------------
    # Single-step execution (also the replayer's entry point)
    # ------------------------------------------------------------------

    def step_thread(self, tid: int) -> Optional[RunResult]:
        """Execute one instruction of thread ``tid``.

        Returns a terminal :class:`RunResult` if the program exited or
        trapped, else None.  Blocked threads re-execute their blocking
        instruction when stepped; callers should consult
        :meth:`runnable_tids` first.
        """
        thread = self.threads[tid]
        if thread.status is not ThreadStatus.RUNNABLE:
            return None
        frame = thread.top
        instr = self._current_instr(thread)
        self._event_reads: List[MemAccess] = []
        self._event_writes: List[MemAccess] = []
        self._event_lock_acq: Optional[int] = None
        self._event_lock_rel: Optional[int] = None
        self._event_input: Optional[int] = None
        self._event_output: Optional[int] = None
        pc = frame.pc
        try:
            self._execute(thread, frame, instr)
        except _TrapSignal as trap:
            self._trap = Trap(kind=trap.kind, tid=tid, pc=pc,
                              message=trap.message, fault_addr=trap.fault_addr)
            self.steps += 1
            self._record_event(tid, pc, instr)
            return self._trapped(self._trap)
        except _ExitSignal as exit_signal:
            self.steps += 1
            self._record_event(tid, pc, instr)
            return self._exited(exit_signal.code)
        self.steps += 1
        self._record_event(tid, pc, instr)
        return None

    def _record_event(self, tid: int, pc: PC, instr: Instr) -> None:
        if self.trace is None:
            return
        thread = self.threads[tid]
        self.trace.append(TraceEvent(
            step=self.steps,
            tid=tid,
            pc=pc,
            line=instr.line,
            reads=tuple(self._event_reads),
            writes=tuple(self._event_writes),
            lock_acquired=self._event_lock_acq,
            lock_released=self._event_lock_rel,
            locks_held=tuple(thread.held_locks),
            input_value=self._event_input,
            output_value=self._event_output,
        ))

    # ------------------------------------------------------------------
    # Memory helpers (trap on access errors)
    # ------------------------------------------------------------------

    def _mem_read(self, addr: int) -> int:
        value, error = self.memory.read(addr)
        if error is AccessError.OUT_OF_BOUNDS:
            raise _TrapSignal(TrapKind.OUT_OF_BOUNDS, f"load from {addr:#x}", addr)
        if error is AccessError.USE_AFTER_FREE:
            raise _TrapSignal(TrapKind.USE_AFTER_FREE, f"load from freed {addr:#x}", addr)
        self._event_reads.append(MemAccess(addr, value))
        return value

    def _mem_write(self, addr: int, value: int) -> None:
        error = self.memory.write(addr, value)
        if error is AccessError.OUT_OF_BOUNDS:
            raise _TrapSignal(TrapKind.OUT_OF_BOUNDS, f"store to {addr:#x}", addr)
        if error is AccessError.USE_AFTER_FREE:
            raise _TrapSignal(TrapKind.USE_AFTER_FREE, f"store to freed {addr:#x}", addr)
        self._event_writes.append(MemAccess(addr, to_unsigned(value)))

    # ------------------------------------------------------------------
    # Instruction execution
    # ------------------------------------------------------------------

    def _execute(self, thread: Thread, frame: Frame, instr: Instr) -> None:
        if isinstance(instr, ConstInst):
            frame.regs[instr.dst] = instr.value
        elif isinstance(instr, GAddrInst):
            layout = self.module.layout()
            if instr.name not in layout:
                raise VMError(f"unknown global {instr.name!r}")
            frame.regs[instr.dst] = layout[instr.name]
        elif isinstance(instr, FrameAddrInst):
            frame.regs[instr.dst] = frame.frame_base + instr.offset
        elif isinstance(instr, MovInst):
            frame.regs[instr.dst] = self._value(frame, instr.src)
        elif isinstance(instr, BinInst):
            frame.regs[instr.dst] = self._binop(frame, instr)
        elif isinstance(instr, CmpInst):
            frame.regs[instr.dst] = self._cmpop(frame, instr)
        elif isinstance(instr, LoadInst):
            addr = self._value(frame, instr.addr)
            frame.regs[instr.dst] = self._mem_read(addr)
        elif isinstance(instr, StoreInst):
            addr = self._value(frame, instr.addr)
            self._mem_write(addr, self._value(frame, instr.value))
        elif isinstance(instr, AllocInst):
            size = self._value(frame, instr.size)
            frame.regs[instr.dst] = self.memory.heap_alloc(size)
        elif isinstance(instr, FreeInst):
            addr = self._value(frame, instr.addr)
            error = self.memory.heap_free(addr)
            if error == "double-free":
                raise _TrapSignal(TrapKind.DOUBLE_FREE, f"double free of {addr:#x}", addr)
            if error == "invalid-free":
                raise _TrapSignal(TrapKind.INVALID_FREE, f"free of {addr:#x}", addr)
        elif isinstance(instr, CallInst):
            self._do_call(thread, frame, instr)
            return  # frame/index bookkeeping handled inside
        elif isinstance(instr, InputInst):
            frame.regs[instr.dst] = self._next_input()
        elif isinstance(instr, OutputInst):
            value = self._value(frame, instr.value)
            self.outputs.append(value)
            self.log.append((thread.tid, value, frame.pc))
            if len(self.log) > LOG_TAIL_WORDS:
                self.log.pop(0)
            self._event_output = value
        elif isinstance(instr, SpawnInst):
            args = [self._value(frame, a) for a in instr.args]
            frame.regs[instr.dst] = self.spawn_thread(instr.callee, args)
        elif isinstance(instr, JoinInst):
            target_tid = self._value(frame, instr.tid)
            target = self.threads.get(target_tid)
            if target is None or target_tid == thread.tid:
                raise _TrapSignal(TrapKind.INVALID_JOIN, f"join {target_tid}")
            if target.status is not ThreadStatus.FINISHED:
                thread.status = ThreadStatus.BLOCKED_JOIN
                thread.blocked_on = target_tid
                return  # do not advance; re-execute when woken
        elif isinstance(instr, LockInst):
            if not self._do_lock(thread, frame, instr):
                return  # blocked; do not advance
        elif isinstance(instr, UnlockInst):
            self._do_unlock(thread, frame, instr)
        elif isinstance(instr, AssertInst):
            if self._value(frame, instr.cond) == 0:
                raise _TrapSignal(TrapKind.ASSERT_FAIL, instr.message)
        elif isinstance(instr, BrInst):
            self._jump(thread, frame, instr.target, inferable=True)
            return
        elif isinstance(instr, CBrInst):
            cond = self._value(frame, instr.cond)
            target = instr.then_target if cond != 0 else instr.else_target
            self._jump(thread, frame, target, inferable=False)
            return
        elif isinstance(instr, RetInst):
            self._do_ret(thread, frame, instr)
            return
        elif isinstance(instr, HaltInst):
            raise _ExitSignal(self._value(frame, instr.code))
        elif isinstance(instr, AbortInst):
            raise _TrapSignal(TrapKind.ABORT, instr.message)
        else:  # pragma: no cover
            raise VMError(f"unknown instruction {instr!r}")
        frame.index += 1

    def _binop(self, frame: Frame, instr: BinInst) -> int:
        a = self._value(frame, instr.a)
        b = self._value(frame, instr.b)
        op = instr.op
        if op == "add":
            result = a + b
        elif op == "sub":
            result = a - b
        elif op == "mul":
            result = a * b
        elif op in ("udiv", "urem"):
            if b == 0:
                raise _TrapSignal(TrapKind.DIV_BY_ZERO, "unsigned division by zero")
            result = a // b if op == "udiv" else a % b
        elif op in ("sdiv", "srem"):
            if b == 0:
                raise _TrapSignal(TrapKind.DIV_BY_ZERO, "signed division by zero")
            sa, sb = to_signed(a), to_signed(b)
            quotient = abs(sa) // abs(sb)
            if (sa < 0) != (sb < 0):
                quotient = -quotient
            result = quotient if op == "sdiv" else sa - quotient * sb
        elif op == "and":
            result = a & b
        elif op == "or":
            result = a | b
        elif op == "xor":
            result = a ^ b
        elif op == "shl":
            result = a << (b % 64)
        elif op == "lshr":
            result = a >> (b % 64)
        elif op == "ashr":
            result = to_signed(a) >> (b % 64)
        else:  # pragma: no cover
            raise VMError(f"unknown binary op {op!r}")
        result = to_unsigned(result)
        if self.alu_fault is not None:
            result = to_unsigned(self.alu_fault(frame.pc, op, result))
        return result

    def _cmpop(self, frame: Frame, instr: CmpInst) -> int:
        a = self._value(frame, instr.a)
        b = self._value(frame, instr.b)
        op = instr.op
        if op in ("slt", "sle", "sgt", "sge"):
            a, b = to_signed(a), to_signed(b)
        result = {
            "eq": a == b, "ne": a != b,
            "ult": a < b, "ule": a <= b, "ugt": a > b, "uge": a >= b,
            "slt": a < b, "sle": a <= b, "sgt": a > b, "sge": a >= b,
        }[op]
        return 1 if result else 0

    def _next_input(self) -> int:
        if self.input_cursor < len(self.inputs):
            value = self.inputs[self.input_cursor]
            self.input_cursor += 1
        else:
            value = 0
        self._event_input = value
        return value

    # -- control transfers ---------------------------------------------------

    def _jump(self, thread: Thread, frame: Frame, target: str, inferable: bool) -> None:
        src = frame.pc
        block = self.module.function(frame.function).block(frame.block)
        single_succ = len(block.successors()) == 1
        frame.block = target
        frame.index = 0
        self.lbr.record(src, frame.pc, inferable=inferable and single_succ)

    def _do_call(self, thread: Thread, frame: Frame, instr: CallInst) -> None:
        args = [self._value(frame, a) for a in instr.args]
        src = frame.pc
        frame.index += 1  # return continues after the call
        callee = self._make_frame(thread.tid, instr.callee, ret_dst=instr.dst)
        func = self.module.function(instr.callee)
        for param, value in zip(func.params, args):
            callee.regs[param] = value
        thread.frames.append(callee)
        self.lbr.record(src, callee.pc, inferable=True)

    def _do_ret(self, thread: Thread, frame: Frame, instr: RetInst) -> None:
        value = self._value(frame, instr.value) if instr.value is not None else 0
        src = frame.pc
        if frame.frame_words:
            self.memory.stack_pop(thread.tid, frame.frame_words)
        thread.frames.pop()
        if not thread.frames:
            thread.status = ThreadStatus.FINISHED
            thread.return_value = value
            # Like pthreads, locks held by an exiting thread stay held; a
            # resulting wedge surfaces naturally as a deadlock coredump.
            if thread.tid == 0:
                raise _ExitSignal(value)
            return
        caller = thread.top
        ret_dst = frame.ret_dst
        if ret_dst is not None:
            caller.regs[ret_dst] = value
        self.lbr.record(src, caller.pc, inferable=True)

    # -- synchronization ---------------------------------------------------------

    def _do_lock(self, thread: Thread, frame: Frame, instr: LockInst) -> bool:
        """Returns True if acquired (advance), False if blocked."""
        addr = self._value(frame, instr.addr)
        owner = self.lock_owners.get(addr)
        if owner is None:
            self.lock_owners[addr] = thread.tid
            thread.held_locks.append(addr)
            self._mem_write(addr, 1)
            self._event_lock_acq = addr
            return True
        if owner == thread.tid:
            raise _TrapSignal(TrapKind.DEADLOCK, f"relock of {addr:#x}", addr)
        thread.status = ThreadStatus.BLOCKED_LOCK
        thread.blocked_on = addr
        return False

    def _do_unlock(self, thread: Thread, frame: Frame, instr: UnlockInst) -> None:
        addr = self._value(frame, instr.addr)
        if self.lock_owners.get(addr) != thread.tid:
            raise _TrapSignal(TrapKind.UNLOCK_NOT_HELD, f"unlock of {addr:#x}", addr)
        del self.lock_owners[addr]
        thread.held_locks.remove(addr)
        self._mem_write(addr, 0)
        self._event_lock_rel = addr

    # ------------------------------------------------------------------
    # Terminal states
    # ------------------------------------------------------------------

    def _exited(self, code: int) -> RunResult:
        self.exit_code = code
        return RunResult(
            status=RunStatus.EXITED, steps=self.steps, exit_code=code,
            trace=self.trace, outputs=list(self.outputs),
        )

    def _trapped_deadlock(self) -> RunResult:
        blocked = [t for t in self.threads.values()
                   if t.status in (ThreadStatus.BLOCKED_LOCK, ThreadStatus.BLOCKED_JOIN)]
        victim = min(blocked, key=lambda t: t.tid)
        trap = Trap(kind=TrapKind.DEADLOCK, tid=victim.tid, pc=victim.top.pc,
                    message="all threads blocked",
                    fault_addr=victim.blocked_on)
        return self._trapped(trap)

    def _trapped(self, trap: Trap) -> RunResult:
        return RunResult(
            status=RunStatus.TRAPPED, steps=self.steps,
            coredump=self.capture_coredump(trap),
            trace=self.trace, outputs=list(self.outputs),
        )

    def capture_coredump(self, trap: Trap) -> Coredump:
        """Snapshot the whole guest state (what production ships to devs)."""
        return Coredump(
            module_name=self.module.name,
            trap=trap,
            memory=self.memory.snapshot(),
            threads={tid: ThreadDump.from_thread(t) for tid, t in self.threads.items()},
            lock_owners=dict(self.lock_owners),
            lbr=self.lbr.contents(),
            log_tail=list(self.log),
            heap={a.base: (a.size, a.freed) for a in self.memory.allocations.values()},
            stack_tops=dict(self.memory.stack_tops),
            bounds_checked=self.memory.check_bounds,
        )
