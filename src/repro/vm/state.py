"""Thread and frame state of the virtual machine."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Tuple

from repro.ir.instructions import Reg


@dataclass(frozen=True)
class PC:
    """A program counter: function, block label, instruction index."""

    function: str
    block: str
    index: int

    def __repr__(self) -> str:
        return f"{self.function}:{self.block}[{self.index}]"


@dataclass
class Frame:
    """One activation record.

    Attributes:
        function: function name.
        block: current basic-block label.
        index: index of the *next* instruction to execute in the block.
        regs: virtual register file of this activation.
        frame_base: base address of the frame's stack slots (0 if none).
        frame_words: number of stack words reserved.
        ret_dst: caller register that receives this call's return value.
    """

    function: str
    block: str
    index: int
    regs: Dict[Reg, int] = field(default_factory=dict)
    frame_base: int = 0
    frame_words: int = 0
    ret_dst: Optional[Reg] = None

    @property
    def pc(self) -> PC:
        return PC(self.function, self.block, self.index)

    def copy(self) -> "Frame":
        return Frame(
            function=self.function,
            block=self.block,
            index=self.index,
            regs=dict(self.regs),
            frame_base=self.frame_base,
            frame_words=self.frame_words,
            ret_dst=self.ret_dst,
        )


class ThreadStatus(Enum):
    RUNNABLE = "runnable"
    BLOCKED_LOCK = "blocked-lock"
    BLOCKED_JOIN = "blocked-join"
    FINISHED = "finished"


@dataclass
class Thread:
    """A guest thread: a stack of frames plus scheduling status."""

    tid: int
    frames: List[Frame] = field(default_factory=list)
    status: ThreadStatus = ThreadStatus.RUNNABLE
    blocked_on: Optional[int] = None  # lock address or joined tid
    held_locks: List[int] = field(default_factory=list)
    return_value: int = 0
    start_function: str = ""

    @property
    def top(self) -> Frame:
        return self.frames[-1]

    @property
    def pc(self) -> Optional[PC]:
        if not self.frames:
            return None
        return self.top.pc

    def call_stack(self) -> List[PC]:
        """Innermost-last list of PCs (the coredump backtrace)."""
        return [frame.pc for frame in self.frames]

    def copy(self) -> "Thread":
        return Thread(
            tid=self.tid,
            frames=[frame.copy() for frame in self.frames],
            status=self.status,
            blocked_on=self.blocked_on,
            held_locks=list(self.held_locks),
            return_value=self.return_value,
            start_function=self.start_function,
        )
