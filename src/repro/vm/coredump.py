"""Coredumps: the snapshot of a failed execution that RES consumes.

A coredump is "a free by-product of a failed execution" (paper §2.1):
full memory image, per-thread register files and call stacks, the lock
table, the trap that killed the program, and the cheap post-crash
breadcrumbs (LBR contents, tail of the output/error log).

It deliberately does NOT contain the inputs the program consumed or the
schedule it ran — reconstructing those is RES's whole job.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Tuple

from repro.ir.instructions import Reg
from repro.vm.state import Frame, PC, Thread, ThreadStatus


class TrapKind(Enum):
    ASSERT_FAIL = "assert-fail"
    OUT_OF_BOUNDS = "out-of-bounds"
    USE_AFTER_FREE = "use-after-free"
    DIV_BY_ZERO = "div-by-zero"
    DEADLOCK = "deadlock"
    ABORT = "abort"
    DOUBLE_FREE = "double-free"
    INVALID_FREE = "invalid-free"
    UNLOCK_NOT_HELD = "unlock-not-held"
    INVALID_JOIN = "invalid-join"


@dataclass(frozen=True)
class Trap:
    """What killed the program, and where."""

    kind: TrapKind
    tid: int
    pc: PC
    message: str = ""
    fault_addr: Optional[int] = None

    def __repr__(self) -> str:
        extra = f" addr={self.fault_addr:#x}" if self.fault_addr is not None else ""
        return f"<trap {self.kind.value} tid={self.tid} at {self.pc}{extra} {self.message!r}>"


@dataclass
class ThreadDump:
    """Frozen state of one thread at crash time."""

    tid: int
    frames: List[Frame]
    status: ThreadStatus
    blocked_on: Optional[int]
    held_locks: List[int]
    start_function: str = ""
    return_value: int = 0

    @property
    def pc(self) -> Optional[PC]:
        return self.frames[-1].pc if self.frames else None

    def call_stack(self) -> List[PC]:
        return [frame.pc for frame in self.frames]

    @classmethod
    def from_thread(cls, thread: Thread) -> "ThreadDump":
        return cls(
            tid=thread.tid,
            frames=[frame.copy() for frame in thread.frames],
            status=thread.status,
            blocked_on=thread.blocked_on,
            held_locks=list(thread.held_locks),
            start_function=thread.start_function,
            return_value=thread.return_value,
        )


@dataclass
class Coredump:
    """Everything a production system collects after a crash."""

    module_name: str
    trap: Trap
    memory: Dict[int, int]
    threads: Dict[int, ThreadDump]
    lock_owners: Dict[int, int] = field(default_factory=dict)
    lbr: List[Tuple[PC, PC]] = field(default_factory=list)
    log_tail: List[Tuple[int, int, PC]] = field(default_factory=list)
    #: heap allocator state (base → (size, freed)), part of process state
    heap: Dict[int, Tuple[int, bool]] = field(default_factory=dict)
    stack_tops: Dict[int, int] = field(default_factory=dict)
    #: whether the producing VM enforced memory-region checks (needed so
    #: a replay runs under identical semantics)
    bounds_checked: bool = True

    @property
    def failing_thread(self) -> ThreadDump:
        return self.threads[self.trap.tid]

    def read(self, addr: int) -> int:
        return self.memory.get(addr, 0)

    def call_stack_signature(self, depth: int = 8) -> Tuple[str, ...]:
        """WER-style bucketing key: top frames of the failing stack."""
        stack = self.failing_thread.call_stack()
        top_first = list(reversed(stack))[:depth]
        return tuple(f"{pc.function}:{pc.block}" for pc in top_first)

    def fingerprint(self) -> str:
        """Stable content hash of the whole dump (module, trap, memory,
        threads, breadcrumbs).  Two reports with equal fingerprints are
        byte-identical crashes, so a triage verdict for one is valid for
        the other — the dedup key of the batch triage service.  The hash
        is computed over the key-sorted JSON form, so it is invariant
        under dict insertion order and survives a to_json/from_json
        round trip."""
        canonical = json.dumps(json.loads(self.to_json()),
                               sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    # -- serialization ------------------------------------------------------

    def to_json(self) -> str:
        def pc_to_list(pc: PC) -> List:
            return [pc.function, pc.block, pc.index]

        payload = {
            "module": self.module_name,
            "trap": {
                "kind": self.trap.kind.value,
                "tid": self.trap.tid,
                "pc": pc_to_list(self.trap.pc),
                "message": self.trap.message,
                "fault_addr": self.trap.fault_addr,
            },
            "bounds_checked": self.bounds_checked,
            "memory": {str(addr): value for addr, value in self.memory.items()},
            "lock_owners": {str(a): t for a, t in self.lock_owners.items()},
            "heap": {str(b): [s, f] for b, (s, f) in self.heap.items()},
            "stack_tops": {str(t): v for t, v in self.stack_tops.items()},
            "lbr": [[pc_to_list(src), pc_to_list(dst)] for src, dst in self.lbr],
            "log_tail": [[tid, val, pc_to_list(pc)] for tid, val, pc in self.log_tail],
            "threads": {
                str(tid): {
                    "status": dump.status.value,
                    "blocked_on": dump.blocked_on,
                    "held_locks": dump.held_locks,
                    "start_function": dump.start_function,
                    "return_value": dump.return_value,
                    "frames": [
                        {
                            "function": fr.function,
                            "block": fr.block,
                            "index": fr.index,
                            "regs": {reg.name: val for reg, val in fr.regs.items()},
                            "frame_base": fr.frame_base,
                            "frame_words": fr.frame_words,
                            "ret_dst": fr.ret_dst.name if fr.ret_dst else None,
                        }
                        for fr in dump.frames
                    ],
                }
                for tid, dump in self.threads.items()
            },
        }
        return json.dumps(payload, indent=1)

    @classmethod
    def from_json(cls, text: str) -> "Coredump":
        payload = json.loads(text)

        def pc_from_list(raw: List) -> PC:
            return PC(raw[0], raw[1], raw[2])

        threads: Dict[int, ThreadDump] = {}
        for tid_str, tdata in payload["threads"].items():
            frames = [
                Frame(
                    function=fr["function"],
                    block=fr["block"],
                    index=fr["index"],
                    regs={Reg(name): val for name, val in fr["regs"].items()},
                    frame_base=fr["frame_base"],
                    frame_words=fr["frame_words"],
                    ret_dst=Reg(fr["ret_dst"]) if fr["ret_dst"] else None,
                )
                for fr in tdata["frames"]
            ]
            threads[int(tid_str)] = ThreadDump(
                tid=int(tid_str),
                frames=frames,
                status=ThreadStatus(tdata["status"]),
                blocked_on=tdata["blocked_on"],
                held_locks=list(tdata["held_locks"]),
                start_function=tdata.get("start_function", ""),
                return_value=tdata.get("return_value", 0),
            )
        trap_data = payload["trap"]
        return cls(
            module_name=payload["module"],
            trap=Trap(
                kind=TrapKind(trap_data["kind"]),
                tid=trap_data["tid"],
                pc=pc_from_list(trap_data["pc"]),
                message=trap_data["message"],
                fault_addr=trap_data["fault_addr"],
            ),
            memory={int(a): v for a, v in payload["memory"].items()},
            threads=threads,
            lock_owners={int(a): t for a, t in payload["lock_owners"].items()},
            heap={int(b): (s, f) for b, (s, f) in payload["heap"].items()},
            stack_tops={int(t): v for t, v in payload["stack_tops"].items()},
            lbr=[(pc_from_list(s), pc_from_list(d)) for s, d in payload["lbr"]],
            log_tail=[(t, v, pc_from_list(p)) for t, v, p in payload["log_tail"]],
            bounds_checked=payload.get("bounds_checked", True),
        )
