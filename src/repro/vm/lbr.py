"""Last Branch Record simulation (paper §2.4, "Execution breadcrumbs").

Intel's LBR stores the source and destination of the last N taken
branches in a hardware ring buffer, "with virtually no overhead"; at
crash time its contents come for free with the coredump.  The paper
also proposes *extending* the effective depth by filtering branches the
offline analysis can re-derive from the CFG: we implement that as
``FILTER_TRIVIAL`` mode, which skips branches whose source block has a
single successor (those edges are implied by the CFG, so recording them
wastes ring slots).
"""

from __future__ import annotations

from collections import deque
from enum import Enum
from typing import Deque, List, Optional, Tuple

from repro.vm.state import PC


class LBRMode(Enum):
    #: Record every control transfer (plain hardware behaviour).
    ALL = "all"
    #: Skip transfers inferable from the CFG (single-successor edges),
    #: stretching the recorded window further back in time.
    FILTER_TRIVIAL = "filter-trivial"


class LastBranchRecord:
    """Fixed-depth ring buffer of ``(source PC, destination PC)`` pairs."""

    def __init__(self, depth: int = 16, mode: LBRMode = LBRMode.ALL):
        if depth < 0:
            raise ValueError("LBR depth must be non-negative")
        self.depth = depth
        self.mode = mode
        self._ring: Deque[Tuple[PC, PC]] = deque(maxlen=depth if depth else 1)
        self.enabled = depth > 0

    def record(self, src: PC, dst: PC, inferable: bool = False) -> None:
        """Record one control transfer.

        Args:
            src: PC of the branch instruction.
            dst: PC of the first instruction at the target.
            inferable: True if the offline CFG analysis could derive this
                transfer without the record (single-successor edge).
        """
        if not self.enabled:
            return
        if self.mode is LBRMode.FILTER_TRIVIAL and inferable:
            return
        self._ring.append((src, dst))

    def contents(self) -> List[Tuple[PC, PC]]:
        """Oldest-first list of recorded transfers."""
        return list(self._ring) if self.enabled else []

    def newest(self) -> Optional[Tuple[PC, PC]]:
        if not self.enabled or not self._ring:
            return None
        return self._ring[-1]

    def clear(self) -> None:
        self._ring.clear()
