"""Dispatch-loop VM over compiled bytecode (the fast execution path).

`BytecodeVM` is a drop-in :class:`~repro.vm.interpreter.VM` whose hot
path is a single dispatch loop over integer opcodes and flat slot
frames (`ir/bytecode.py`), instead of isinstance chains over dataclass
IR and dict-keyed register files.  Semantics are bit-identical to the
tree interpreter — same trap kinds and messages, same event stream,
same coredumps — which the A/B suite enforces.

Three ingredients carry the speedup (Converge pypyvm idiom):

* **slot frames** (:class:`BFrame`): registers are list indices; the
  undefined-register check is an ``is None`` test;
* **batched legs** (:meth:`BytecodeVM.run_leg`): the replayer drives
  ``count`` consecutive steps of one thread without per-step method
  dispatch, re-entering the loop only on call/return/trap;
* **lazy tracing** (:class:`LazyTrace`): per-step events are recorded
  as plain tuples and only materialized into
  :class:`~repro.vm.trace.TraceEvent` objects when something actually
  reads the trace (root-cause analysis, the debugger).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import VMError
from repro.ir.bytecode import (
    BFunc,
    BytecodeProgram,
    OP_ABORT,
    OP_ALLOC,
    OP_ASSERT,
    OP_BIN_BASE,
    OP_BR,
    OP_CALL,
    OP_CBR,
    OP_CMP_BASE,
    OP_CONST,
    OP_FRAMEADDR,
    OP_FREE,
    OP_GADDR,
    OP_HALT,
    OP_INPUT,
    OP_JOIN,
    OP_LOAD,
    OP_LOCK,
    OP_MOV,
    OP_OUTPUT,
    OP_RET,
    OP_SPAWN,
    OP_STORE,
    OP_UNLOCK,
    compile_program,
)
from repro.ir.instructions import Instr, Reg, WORD_MASK, to_unsigned
from repro.ir.module import Module
from repro.vm.coredump import Trap, TrapKind
from repro.vm.memory import AccessError
from repro.vm.interpreter import (
    LOG_TAIL_WORDS,
    RunResult,
    VM,
    _ExitSignal,
    _TrapSignal,
)
from repro.vm.state import Frame, PC, Thread, ThreadStatus
from repro.vm.trace import ExecutionTrace, MemAccess, TraceEvent

(OP_ADD, OP_SUB, OP_MUL, OP_UDIV, OP_SDIV, OP_UREM, OP_SREM,
 OP_AND, OP_OR, OP_XOR, OP_SHL, OP_LSHR, OP_ASHR) = range(
    OP_BIN_BASE, OP_CMP_BASE)
(OP_EQ, OP_NE, OP_ULT, OP_ULE, OP_UGT, OP_UGE,
 OP_SLT, OP_SLE, OP_SGT, OP_SGE) = range(OP_CMP_BASE, OP_LOAD)

_SIGN_BIT = 1 << 63
_TWO_POW_64 = 1 << 64


class BFrame:
    """A slot-based activation record, API-compatible with
    :class:`~repro.vm.state.Frame` where the rest of the system reads
    it (``pc``, ``regs``, ``copy`` — the coredump/debugger surface).
    """

    __slots__ = ("bfunc", "ip", "slots", "frame_base", "ret_dst",
                 "ret_slot")

    def __init__(self, bfunc: BFunc, ip: int, slots: List[Optional[int]],
                 frame_base: int, ret_dst: Optional[Reg], ret_slot: int):
        self.bfunc = bfunc
        self.ip = ip
        self.slots = slots
        self.frame_base = frame_base
        self.ret_dst = ret_dst
        self.ret_slot = ret_slot

    @property
    def function(self) -> str:
        return self.bfunc.name

    @property
    def block(self) -> str:
        return self.bfunc.pcs[self.ip].block

    @property
    def index(self) -> int:
        return self.bfunc.pcs[self.ip].index

    @property
    def frame_words(self) -> int:
        return self.bfunc.frame_words

    @property
    def pc(self) -> PC:
        return self.bfunc.pcs[self.ip]

    @property
    def regs(self) -> Dict[Reg, int]:
        slot_regs = self.bfunc.slot_regs
        return {slot_regs[i]: value
                for i, value in enumerate(self.slots) if value is not None}

    def copy(self) -> Frame:
        """Materialize as a plain tree-interpreter frame (coredumps)."""
        pc = self.bfunc.pcs[self.ip]
        return Frame(
            function=pc.function,
            block=pc.block,
            index=pc.index,
            regs=self.regs,
            frame_base=self.frame_base,
            frame_words=self.bfunc.frame_words,
            ret_dst=self.ret_dst,
        )


class LazyTrace(ExecutionTrace):
    """An :class:`ExecutionTrace` that stores raw event rows (plain
    tuples) and materializes :class:`TraceEvent` objects on first read.

    Replay runs with tracing on because root-cause analysis consumes
    the trace — but most replays are compatibility probes whose trace
    nobody ever reads.  Deferring the dataclass construction makes the
    recording cost a tuple append.
    """

    def __init__(self):
        self._raw: List[tuple] = []
        self._materialized: List[TraceEvent] = []

    @property
    def events(self) -> List[TraceEvent]:  # type: ignore[override]
        ev = self._materialized
        raw = self._raw
        if len(ev) < len(raw):
            for row in raw[len(ev):]:
                if type(row) is TraceEvent:
                    ev.append(row)
                else:
                    (step, tid, pc, line, reads, writes, lock_acq,
                     lock_rel, locks_held, input_v, output_v) = row
                    ev.append(TraceEvent(
                        step=step, tid=tid, pc=pc, line=line,
                        reads=tuple(MemAccess(a, v) for a, v in reads),
                        writes=tuple(MemAccess(a, v) for a, v in writes),
                        lock_acquired=lock_acq, lock_released=lock_rel,
                        locks_held=locks_held, input_value=input_v,
                        output_value=output_v))
        return ev

    def append(self, event: TraceEvent) -> None:
        self._raw.append(event)


class BytecodeVM(VM):
    """The compiled-execution VM.  Construction compiles (or reuses a
    cached compile of) the module; all stepping goes through the
    dispatch loop in :meth:`_leg`.
    """

    def __init__(self, module: Module, *args,
                 program: Optional[BytecodeProgram] = None, **kwargs):
        self.program = program if program is not None \
            else compile_program(module)
        super().__init__(module, *args, **kwargs)
        if self.trace is not None:
            self.trace = LazyTrace()

    # ------------------------------------------------------------------
    # Thread construction (slot frames instead of dict frames)
    # ------------------------------------------------------------------

    def spawn_thread(self, func_name, args):
        func = self.module.function(func_name)
        if len(args) != len(func.params):
            raise VMError(f"{func_name} expects {len(func.params)} args")
        tid = self.next_tid
        self.next_tid += 1
        bfunc = self.program.funcs[func_name]
        frame = self._make_bframe(tid, bfunc, ret_dst=None, ret_slot=-1)
        for slot, value in zip(bfunc.param_slots, args):
            frame.slots[slot] = to_unsigned(value)
        self.threads[tid] = Thread(tid=tid, frames=[frame],
                                   start_function=func_name)
        return tid

    def _make_bframe(self, tid: int, bfunc: BFunc,
                     ret_dst: Optional[Reg], ret_slot: int) -> BFrame:
        base = 0
        if bfunc.frame_words:
            base = self.memory.stack_push(tid, bfunc.frame_words)
        return BFrame(bfunc, bfunc.entry_ip, [None] * bfunc.nslots,
                      base, ret_dst, ret_slot)

    def adopt_thread(self, thread: Thread) -> None:
        """Install an externally built thread, converting any plain
        :class:`Frame` in its stack (replay snapshots) into slot form.
        The 1:1 bytecode↔IR mapping makes mid-block adoption exact:
        ``ip = block_start[block] + index``.
        """
        converted: List[BFrame] = []
        prev_bfunc: Optional[BFunc] = None
        for frame in thread.frames:
            if isinstance(frame, BFrame):
                converted.append(frame)
                prev_bfunc = frame.bfunc
                continue
            bfunc = self.program.funcs[frame.function]
            ip = bfunc.block_start[frame.block] + frame.index
            slots: List[Optional[int]] = [None] * bfunc.nslots
            reg_slots = bfunc.reg_slots
            for reg, value in frame.regs.items():
                slots[reg_slots[reg]] = value
            ret_slot = -1
            if frame.ret_dst is not None and prev_bfunc is not None:
                ret_slot = prev_bfunc.reg_slots[frame.ret_dst]
            converted.append(BFrame(bfunc, ip, slots, frame.frame_base,
                                    frame.ret_dst, ret_slot))
            prev_bfunc = bfunc
        thread.frames = converted
        self.threads[thread.tid] = thread
        self.next_tid = max(self.next_tid, thread.tid + 1)

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------

    def _current_instr(self, thread: Thread) -> Instr:
        frame = thread.top
        return frame.bfunc.instrs[frame.ip]

    def step_thread(self, tid: int) -> Optional[RunResult]:
        thread = self.threads[tid]
        if thread.status is not ThreadStatus.RUNNABLE:
            return None
        return self._leg(thread, 1)[1]

    def run_leg(self, tid: int, count: int) -> Tuple[int, Optional[RunResult]]:
        """Drive up to ``count`` consecutive steps of one runnable
        thread (the replayer's batched entry point).  Returns the
        number of steps executed and a terminal result if the program
        exited or trapped.  Stops early when the thread blocks or
        finishes; the caller inspects ``thread.status``.
        """
        return self._leg(self.threads[tid], count)

    def _undef(self, bfunc: BFunc, ip: int, slot: int) -> None:
        pc = bfunc.pcs[ip]
        reg = bfunc.slot_regs[slot]
        raise VMError(
            f"read of undefined register {reg!r} in {pc.function}:{pc.block}"
        )

    def _leg(self, thread: Thread, count: int):
        tid = thread.tid
        memory = self.memory
        threads = self.threads
        lock_owners = self.lock_owners
        trace = self.trace
        raw = trace._raw if type(trace) is LazyTrace else None
        lbr = self.lbr
        lbr_on = lbr.enabled
        alu = self.alu_fault
        frame = thread.frames[-1]
        bfunc = frame.bfunc
        code = bfunc.code
        pcs = bfunc.pcs
        flines = bfunc.lines
        slots = frame.slots
        ip = frame.ip
        steps = self.steps
        executed = 0
        MASK = WORD_MASK
        pc = pcs[ip]
        line = 0
        ev_reads: tuple = ()
        ev_writes: tuple = ()
        ev_la = ev_lr = ev_in = ev_out = None
        try:
            while True:
                op = code[ip]
                opcode = op[0]
                pc = pcs[ip]
                line = flines[ip]
                ev_reads = ()
                ev_writes = ()
                ev_la = ev_lr = ev_in = ev_out = None
                stop = False
                if opcode == OP_CONST:
                    slots[op[1]] = op[2]
                    ip += 1
                elif opcode == OP_MOV:
                    if op[2]:
                        value = slots[op[3]]
                        if value is None:
                            self._undef(bfunc, ip, op[3])
                    else:
                        value = op[3]
                    slots[op[1]] = value
                    ip += 1
                elif OP_CMP_BASE <= opcode < OP_LOAD:
                    if op[2]:
                        a = slots[op[3]]
                        if a is None:
                            self._undef(bfunc, ip, op[3])
                    else:
                        a = op[3]
                    if op[4]:
                        b = slots[op[5]]
                        if b is None:
                            self._undef(bfunc, ip, op[5])
                    else:
                        b = op[5]
                    if opcode >= OP_SLT:
                        if a >= _SIGN_BIT:
                            a -= _TWO_POW_64
                        if b >= _SIGN_BIT:
                            b -= _TWO_POW_64
                        if opcode == OP_SLT:
                            r = a < b
                        elif opcode == OP_SLE:
                            r = a <= b
                        elif opcode == OP_SGT:
                            r = a > b
                        else:
                            r = a >= b
                    elif opcode == OP_EQ:
                        r = a == b
                    elif opcode == OP_NE:
                        r = a != b
                    elif opcode == OP_ULT:
                        r = a < b
                    elif opcode == OP_ULE:
                        r = a <= b
                    elif opcode == OP_UGT:
                        r = a > b
                    else:
                        r = a >= b
                    slots[op[1]] = 1 if r else 0
                    ip += 1
                elif opcode < OP_CMP_BASE and opcode >= OP_BIN_BASE:
                    if op[2]:
                        a = slots[op[3]]
                        if a is None:
                            self._undef(bfunc, ip, op[3])
                    else:
                        a = op[3]
                    if op[4]:
                        b = slots[op[5]]
                        if b is None:
                            self._undef(bfunc, ip, op[5])
                    else:
                        b = op[5]
                    if opcode == OP_ADD:
                        result = (a + b) & MASK
                    elif opcode == OP_SUB:
                        result = (a - b) & MASK
                    elif opcode == OP_MUL:
                        result = (a * b) & MASK
                    elif opcode == OP_AND:
                        result = a & b
                    elif opcode == OP_OR:
                        result = a | b
                    elif opcode == OP_XOR:
                        result = a ^ b
                    elif opcode == OP_SHL:
                        result = (a << (b % 64)) & MASK
                    elif opcode == OP_LSHR:
                        result = a >> (b % 64)
                    elif opcode == OP_ASHR:
                        sa = a - _TWO_POW_64 if a >= _SIGN_BIT else a
                        result = (sa >> (b % 64)) & MASK
                    elif opcode == OP_UDIV or opcode == OP_UREM:
                        if b == 0:
                            raise _TrapSignal(TrapKind.DIV_BY_ZERO,
                                              "unsigned division by zero")
                        result = a // b if opcode == OP_UDIV else a % b
                    else:  # sdiv / srem
                        if b == 0:
                            raise _TrapSignal(TrapKind.DIV_BY_ZERO,
                                              "signed division by zero")
                        sa = a - _TWO_POW_64 if a >= _SIGN_BIT else a
                        sb = b - _TWO_POW_64 if b >= _SIGN_BIT else b
                        quotient = abs(sa) // abs(sb)
                        if (sa < 0) != (sb < 0):
                            quotient = -quotient
                        result = (quotient if opcode == OP_SDIV
                                  else sa - quotient * sb) & MASK
                    if alu is not None:
                        result = alu(pc, op[6], result) & MASK
                    slots[op[1]] = result
                    ip += 1
                elif opcode == OP_CBR:
                    if op[1]:
                        cond = slots[op[2]]
                        if cond is None:
                            self._undef(bfunc, ip, op[2])
                    else:
                        cond = op[2]
                    target = op[3] if cond != 0 else op[4]
                    if lbr_on:
                        lbr.record(pc, pcs[target], inferable=False)
                    ip = target
                elif opcode == OP_BR:
                    if lbr_on:
                        lbr.record(pc, pcs[op[1]], inferable=op[2])
                    ip = op[1]
                elif opcode == OP_LOAD:
                    if op[2]:
                        addr = slots[op[3]]
                        if addr is None:
                            self._undef(bfunc, ip, op[3])
                    else:
                        addr = op[3]
                    value, error = memory.read(addr)
                    if error is not None:
                        if error is AccessError.OUT_OF_BOUNDS:
                            raise _TrapSignal(TrapKind.OUT_OF_BOUNDS,
                                              f"load from {addr:#x}", addr)
                        raise _TrapSignal(TrapKind.USE_AFTER_FREE,
                                          f"load from freed {addr:#x}", addr)
                    if raw is not None:
                        ev_reads = ((addr, value),)
                    slots[op[1]] = value
                    ip += 1
                elif opcode == OP_STORE:
                    if op[1]:
                        addr = slots[op[2]]
                        if addr is None:
                            self._undef(bfunc, ip, op[2])
                    else:
                        addr = op[2]
                    if op[3]:
                        value = slots[op[4]]
                        if value is None:
                            self._undef(bfunc, ip, op[4])
                    else:
                        value = op[4]
                    error = memory.write(addr, value)
                    if error is not None:
                        if error is AccessError.OUT_OF_BOUNDS:
                            raise _TrapSignal(TrapKind.OUT_OF_BOUNDS,
                                              f"store to {addr:#x}", addr)
                        raise _TrapSignal(TrapKind.USE_AFTER_FREE,
                                          f"store to freed {addr:#x}", addr)
                    if raw is not None:
                        ev_writes = ((addr, value & MASK),)
                    ip += 1
                elif opcode == OP_CALL:
                    callee = op[1]
                    if callee is None:
                        self.module.function(op[2])  # raises IRError
                        raise VMError(f"call to uncompiled function "
                                      f"{op[2]!r}")  # pragma: no cover
                    args = op[5]
                    values = []
                    for mode, operand in args:
                        if mode:
                            value = slots[operand]
                            if value is None:
                                self._undef(bfunc, ip, operand)
                            values.append(value)
                        else:
                            values.append(operand)
                    frame.ip = ip + 1  # return continues after the call
                    base = 0
                    if callee.frame_words:
                        base = memory.stack_push(tid, callee.frame_words)
                    new_slots: List[Optional[int]] = [None] * callee.nslots
                    for slot, value in zip(callee.param_slots, values):
                        new_slots[slot] = value
                    new_frame = BFrame(callee, callee.entry_ip, new_slots,
                                       base, op[4], op[3])
                    thread.frames.append(new_frame)
                    if lbr_on:
                        lbr.record(pc, callee.pcs[callee.entry_ip],
                                   inferable=True)
                    frame = new_frame
                    bfunc = callee
                    code = bfunc.code
                    pcs = bfunc.pcs
                    flines = bfunc.lines
                    slots = new_slots
                    ip = bfunc.entry_ip
                elif opcode == OP_RET:
                    if op[1]:
                        if op[2]:
                            value = slots[op[3]]
                            if value is None:
                                self._undef(bfunc, ip, op[3])
                        else:
                            value = op[3]
                    else:
                        value = 0
                    if bfunc.frame_words:
                        memory.stack_pop(tid, bfunc.frame_words)
                    frames = thread.frames
                    frames.pop()
                    if not frames:
                        thread.status = ThreadStatus.FINISHED
                        thread.return_value = value
                        # Like pthreads, locks held by an exiting
                        # thread stay held (wedges surface as deadlock
                        # coredumps).
                        if tid == 0:
                            raise _ExitSignal(value)
                        stop = True
                    else:
                        caller = frames[-1]
                        if frame.ret_slot >= 0:
                            caller.slots[frame.ret_slot] = value
                        if lbr_on:
                            lbr.record(pc, caller.bfunc.pcs[caller.ip],
                                       inferable=True)
                        frame = caller
                        bfunc = frame.bfunc
                        code = bfunc.code
                        pcs = bfunc.pcs
                        flines = bfunc.lines
                        slots = frame.slots
                        ip = frame.ip
                elif opcode == OP_ASSERT:
                    if op[1]:
                        cond = slots[op[2]]
                        if cond is None:
                            self._undef(bfunc, ip, op[2])
                    else:
                        cond = op[2]
                    if cond == 0:
                        raise _TrapSignal(TrapKind.ASSERT_FAIL, op[3])
                    ip += 1
                elif opcode == OP_FRAMEADDR:
                    slots[op[1]] = frame.frame_base + op[2]
                    ip += 1
                elif opcode == OP_GADDR:
                    if op[2] is None:
                        raise VMError(f"unknown global {op[3]!r}")
                    slots[op[1]] = op[2]
                    ip += 1
                elif opcode == OP_ALLOC:
                    if op[2]:
                        size = slots[op[3]]
                        if size is None:
                            self._undef(bfunc, ip, op[3])
                    else:
                        size = op[3]
                    slots[op[1]] = memory.heap_alloc(size)
                    ip += 1
                elif opcode == OP_FREE:
                    if op[1]:
                        addr = slots[op[2]]
                        if addr is None:
                            self._undef(bfunc, ip, op[2])
                    else:
                        addr = op[2]
                    error = memory.heap_free(addr)
                    if error == "double-free":
                        raise _TrapSignal(TrapKind.DOUBLE_FREE,
                                          f"double free of {addr:#x}", addr)
                    if error == "invalid-free":
                        raise _TrapSignal(TrapKind.INVALID_FREE,
                                          f"free of {addr:#x}", addr)
                    ip += 1
                elif opcode == OP_INPUT:
                    cursor = self.input_cursor
                    if cursor < len(self.inputs):
                        value = self.inputs[cursor]
                        self.input_cursor = cursor + 1
                    else:
                        value = 0
                    ev_in = value
                    slots[op[1]] = value
                    ip += 1
                elif opcode == OP_OUTPUT:
                    if op[1]:
                        value = slots[op[2]]
                        if value is None:
                            self._undef(bfunc, ip, op[2])
                    else:
                        value = op[2]
                    self.outputs.append(value)
                    log = self.log
                    log.append((tid, value, pc))
                    if len(log) > LOG_TAIL_WORDS:
                        log.pop(0)
                    ev_out = value
                    ip += 1
                elif opcode == OP_SPAWN:
                    values = []
                    for mode, operand in op[3]:
                        if mode:
                            value = slots[operand]
                            if value is None:
                                self._undef(bfunc, ip, operand)
                            values.append(value)
                        else:
                            values.append(operand)
                    slots[op[1]] = self.spawn_thread(op[2], values)
                    ip += 1
                elif opcode == OP_JOIN:
                    if op[1]:
                        target_tid = slots[op[2]]
                        if target_tid is None:
                            self._undef(bfunc, ip, op[2])
                    else:
                        target_tid = op[2]
                    target = threads.get(target_tid)
                    if target is None or target_tid == tid:
                        raise _TrapSignal(TrapKind.INVALID_JOIN,
                                          f"join {target_tid}")
                    if target.status is not ThreadStatus.FINISHED:
                        thread.status = ThreadStatus.BLOCKED_JOIN
                        thread.blocked_on = target_tid
                        stop = True  # do not advance; re-execute when woken
                    else:
                        ip += 1
                elif opcode == OP_LOCK:
                    if op[1]:
                        addr = slots[op[2]]
                        if addr is None:
                            self._undef(bfunc, ip, op[2])
                    else:
                        addr = op[2]
                    owner = lock_owners.get(addr)
                    if owner is None:
                        lock_owners[addr] = tid
                        thread.held_locks.append(addr)
                        error = memory.write(addr, 1)
                        if error is not None:
                            if error is AccessError.OUT_OF_BOUNDS:
                                raise _TrapSignal(TrapKind.OUT_OF_BOUNDS,
                                                  f"store to {addr:#x}", addr)
                            raise _TrapSignal(TrapKind.USE_AFTER_FREE,
                                              f"store to freed {addr:#x}",
                                              addr)
                        if raw is not None:
                            ev_writes = ((addr, 1),)
                        ev_la = addr
                        ip += 1
                    elif owner == tid:
                        raise _TrapSignal(TrapKind.DEADLOCK,
                                          f"relock of {addr:#x}", addr)
                    else:
                        thread.status = ThreadStatus.BLOCKED_LOCK
                        thread.blocked_on = addr
                        stop = True  # blocked; do not advance
                elif opcode == OP_UNLOCK:
                    if op[1]:
                        addr = slots[op[2]]
                        if addr is None:
                            self._undef(bfunc, ip, op[2])
                    else:
                        addr = op[2]
                    if lock_owners.get(addr) != tid:
                        raise _TrapSignal(TrapKind.UNLOCK_NOT_HELD,
                                          f"unlock of {addr:#x}", addr)
                    del lock_owners[addr]
                    thread.held_locks.remove(addr)
                    error = memory.write(addr, 0)
                    if error is not None:
                        if error is AccessError.OUT_OF_BOUNDS:
                            raise _TrapSignal(TrapKind.OUT_OF_BOUNDS,
                                              f"store to {addr:#x}", addr)
                        raise _TrapSignal(TrapKind.USE_AFTER_FREE,
                                          f"store to freed {addr:#x}", addr)
                    if raw is not None:
                        ev_writes = ((addr, 0),)
                    ev_lr = addr
                    ip += 1
                elif opcode == OP_HALT:
                    if op[1]:
                        value = slots[op[2]]
                        if value is None:
                            self._undef(bfunc, ip, op[2])
                    else:
                        value = op[2]
                    raise _ExitSignal(value)
                elif opcode == OP_ABORT:
                    raise _TrapSignal(TrapKind.ABORT, op[1])
                else:  # pragma: no cover
                    raise VMError(f"unknown opcode {opcode}")
                steps += 1
                executed += 1
                if raw is not None:
                    held = thread.held_locks
                    raw.append((steps, tid, pc, line, ev_reads, ev_writes,
                                ev_la, ev_lr,
                                tuple(held) if held else (),
                                ev_in, ev_out))
                if stop or executed >= count:
                    break
        except _TrapSignal as trap:
            frame.ip = ip
            self._trap = Trap(kind=trap.kind, tid=tid, pc=pc,
                              message=trap.message,
                              fault_addr=trap.fault_addr)
            steps += 1
            self.steps = steps
            if raw is not None:
                held = thread.held_locks
                raw.append((steps, tid, pc, line, ev_reads, ev_writes,
                            ev_la, ev_lr, tuple(held) if held else (),
                            ev_in, ev_out))
            return executed + 1, self._trapped(self._trap)
        except _ExitSignal as exit_signal:
            frame.ip = ip
            steps += 1
            self.steps = steps
            if raw is not None:
                held = thread.held_locks
                raw.append((steps, tid, pc, line, ev_reads, ev_writes,
                            ev_la, ev_lr, tuple(held) if held else (),
                            ev_in, ev_out))
            return executed + 1, self._exited(exit_signal.code)
        frame.ip = ip
        self.steps = steps
        return executed, None
