"""Thread schedulers for the VM.

The VM asks the scheduler which runnable thread executes the next
instruction.  Production runs use the seeded preemptive scheduler
(deterministic per seed, but adversarial enough to expose races);
replay drives the VM directly and bypasses scheduling entirely.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence


class Scheduler:
    """Interface: pick the next thread to run."""

    def pick(self, runnable: Sequence[int], current: Optional[int]) -> int:
        raise NotImplementedError

    def at_preemption_point(self, runnable: Sequence[int], current: Optional[int],
                            shared_effect: bool) -> int:
        """Called by the VM before each instruction.

        ``shared_effect`` is True when the *next* instruction of the
        current thread touches shared state (memory, locks, I/O) —
        the only points where interleaving is observable under
        sequential consistency.
        """
        raise NotImplementedError


class RoundRobinScheduler(Scheduler):
    """Run each thread for ``quantum`` shared-effect instructions."""

    def __init__(self, quantum: int = 10):
        if quantum < 1:
            raise ValueError("quantum must be >= 1")
        self.quantum = quantum
        self._used = 0

    def pick(self, runnable: Sequence[int], current: Optional[int]) -> int:
        if current in runnable:
            after = [t for t in runnable if t > current]
            chosen = after[0] if after else runnable[0]
        else:
            chosen = runnable[0]
        self._used = 0
        return chosen

    def at_preemption_point(self, runnable, current, shared_effect):
        if current not in runnable:
            return self.pick(runnable, current)
        if shared_effect:
            self._used += 1
            if self._used >= self.quantum:
                return self.pick(runnable, current)
        return current


class RandomPreemptScheduler(Scheduler):
    """Seeded random preemption at shared-effect instructions.

    With probability ``preempt_prob`` the VM switches to a uniformly
    random runnable thread before a shared-effect instruction.  The same
    seed always yields the same schedule, so buggy interleavings found
    by a seed sweep are reproducible in tests.
    """

    def __init__(self, seed: int = 0, preempt_prob: float = 0.3):
        if not 0.0 <= preempt_prob <= 1.0:
            raise ValueError("preempt_prob must be in [0, 1]")
        self.rng = random.Random(seed)
        self.preempt_prob = preempt_prob

    def pick(self, runnable: Sequence[int], current: Optional[int]) -> int:
        return self.rng.choice(list(runnable))

    def at_preemption_point(self, runnable, current, shared_effect):
        if current not in runnable:
            return self.pick(runnable, current)
        if shared_effect and len(runnable) > 1 and self.rng.random() < self.preempt_prob:
            return self.pick(runnable, current)
        return current


class FixedScheduler(Scheduler):
    """Replay a fixed schedule: a list of ``(tid, instruction_count)`` legs.

    When the script runs out the scheduler keeps the last thread running;
    the replayer uses this to drive a synthesized suffix schedule.
    """

    def __init__(self, legs: Sequence[tuple]):
        self.legs: List[tuple] = list(legs)
        self._leg = 0
        self._left = self.legs[0][1] if self.legs else 0

    def _current_tid(self) -> Optional[int]:
        if self._leg < len(self.legs):
            return self.legs[self._leg][0]
        return None

    def pick(self, runnable: Sequence[int], current: Optional[int]) -> int:
        tid = self._current_tid()
        if tid is not None and tid in runnable:
            return tid
        return runnable[0]

    def at_preemption_point(self, runnable, current, shared_effect):
        while self._leg < len(self.legs) and self._left <= 0:
            self._leg += 1
            self._left = self.legs[self._leg][1] if self._leg < len(self.legs) else 0
        tid = self._current_tid()
        if tid is None:
            return current if current in runnable else runnable[0]
        self._left -= 1
        if tid in runnable:
            return tid
        return current if current in runnable else runnable[0]
