"""Ground-truth execution tracing.

The tracer records what *actually* happened during a VM run — every
instruction, its memory reads/writes, and synchronization operations.
RES never sees this (requirement 1 of the paper: no runtime recording);
tests and benchmarks use it as the oracle that synthesized suffixes are
compared against, and the root-cause detectors reuse the same event
shapes when analyzing *replayed* suffixes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.vm.state import PC


@dataclass(frozen=True)
class MemAccess:
    addr: int
    value: int


@dataclass
class TraceEvent:
    """One executed instruction and its observable effects."""

    step: int
    tid: int
    pc: PC
    line: int = 0
    reads: Tuple[MemAccess, ...] = ()
    writes: Tuple[MemAccess, ...] = ()
    lock_acquired: Optional[int] = None
    lock_released: Optional[int] = None
    locks_held: Tuple[int, ...] = ()
    input_value: Optional[int] = None
    output_value: Optional[int] = None

    def touches(self, addr: int) -> bool:
        return any(a.addr == addr for a in self.reads + self.writes)


@dataclass
class ExecutionTrace:
    """Append-only log of trace events for one run."""

    events: List[TraceEvent] = field(default_factory=list)

    def append(self, event: TraceEvent) -> None:
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def last_writer_of(self, addr: int) -> Optional[TraceEvent]:
        for event in reversed(self.events):
            if any(w.addr == addr for w in event.writes):
                return event
        return None

    def accesses_of(self, addr: int) -> List[TraceEvent]:
        return [e for e in self.events if e.touches(addr)]

    def by_thread(self, tid: int) -> List[TraceEvent]:
        return [e for e in self.events if e.tid == tid]

    def suffix(self, length: int) -> List[TraceEvent]:
        return self.events[-length:] if length > 0 else []
