"""Hardware fault injection (paper §3.2).

The paper's hardware-error use case needs coredumps whose contents are
*inconsistent with every feasible execution suffix*: multi-bit DRAM
failures, DMA writes from faulty devices, and CPUs that miscompute.
We model them two ways:

* **Post-hoc corruption** of an otherwise-correct coredump — exactly
  what a DRAM flip between the last program write and the dump looks
  like (:func:`flip_bit`, :func:`stray_dma_write`).
* **Online ALU faults** via the VM's ``alu_fault`` hook — a CPU that
  returns a wrong result for one arithmetic operation
  (:class:`ALUFaultInjector`), which then usually *causes* the crash.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.ir.instructions import to_unsigned
from repro.vm.coredump import Coredump
from repro.vm.state import PC


@dataclass(frozen=True)
class InjectedFault:
    """Record of what was corrupted, for experiment ground truth."""

    kind: str  # "bit-flip" | "dma" | "alu"
    addr: Optional[int] = None
    bit: Optional[int] = None
    original: Optional[int] = None
    corrupted: Optional[int] = None


def flip_bit(coredump: Coredump, addr: int, bit: int) -> InjectedFault:
    """Flip one bit of one memory word in a coredump (DRAM error model)."""
    if not 0 <= bit < 64:
        raise ValueError("bit must be in [0, 64)")
    original = coredump.memory.get(addr, 0)
    corrupted = to_unsigned(original ^ (1 << bit))
    coredump.memory[addr] = corrupted
    return InjectedFault(kind="bit-flip", addr=addr, bit=bit,
                         original=original, corrupted=corrupted)


def stray_dma_write(coredump: Coredump, addr: int, value: int) -> InjectedFault:
    """Overwrite a memory word wholesale (faulty-device DMA model)."""
    original = coredump.memory.get(addr, 0)
    corrupted = to_unsigned(value)
    coredump.memory[addr] = corrupted
    return InjectedFault(kind="dma", addr=addr, original=original,
                         corrupted=corrupted)


def random_bit_flips(coredump: Coredump, count: int, seed: int = 0,
                     candidate_addrs: Optional[List[int]] = None) -> List[InjectedFault]:
    """Flip ``count`` random bits across the coredump's populated words."""
    rng = random.Random(seed)
    addrs = candidate_addrs if candidate_addrs is not None else sorted(coredump.memory)
    if not addrs:
        return []
    faults = []
    for _ in range(count):
        addr = rng.choice(addrs)
        bit = rng.randrange(64)
        faults.append(flip_bit(coredump, addr, bit))
    return faults


class ALUFaultInjector:
    """VM hook that corrupts the result of the Nth matching ALU operation.

    Example: make the 100th ``add`` executed anywhere return a value
    that is off by one — the classic "CPU miscomputed an addition"
    scenario from §3.2 of the paper.
    """

    def __init__(self, op: str = "add", fire_at: int = 1, xor_mask: int = 1):
        self.op = op
        self.fire_at = fire_at
        self.xor_mask = xor_mask
        self.seen = 0
        self.fired: Optional[InjectedFault] = None
        self.fired_pc: Optional[PC] = None

    def __call__(self, pc: PC, op: str, result: int) -> int:
        if op != self.op or self.fired is not None:
            return result
        self.seen += 1
        if self.seen < self.fire_at:
            return result
        corrupted = to_unsigned(result ^ self.xor_mask)
        self.fired = InjectedFault(kind="alu", original=result, corrupted=corrupted)
        self.fired_pc = pc
        return corrupted
