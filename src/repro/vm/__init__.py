"""The concrete execution substrate: VM, memory, scheduling, coredumps."""

from repro.vm.coredump import Coredump, ThreadDump, Trap, TrapKind
from repro.vm.faults import (
    ALUFaultInjector,
    InjectedFault,
    flip_bit,
    random_bit_flips,
    stray_dma_write,
)
from repro.vm.interpreter import RunResult, RunStatus, VM
from repro.vm.lbr import LastBranchRecord, LBRMode
from repro.vm.memory import AccessError, Allocation, Memory
from repro.vm.minidump import MiniDump, minidump_of
from repro.vm.scheduler import (
    FixedScheduler,
    RandomPreemptScheduler,
    RoundRobinScheduler,
    Scheduler,
)
from repro.vm.state import Frame, PC, Thread, ThreadStatus
from repro.vm.trace import ExecutionTrace, MemAccess, TraceEvent

__all__ = [
    "AccessError", "Allocation", "ALUFaultInjector", "Coredump",
    "ExecutionTrace", "FixedScheduler", "Frame", "InjectedFault",
    "LastBranchRecord", "LBRMode", "MemAccess", "Memory", "MiniDump",
    "PC", "minidump_of",
    "RandomPreemptScheduler", "RoundRobinScheduler", "RunResult",
    "RunStatus", "Scheduler", "Thread", "ThreadDump", "ThreadStatus",
    "Trap", "TrapKind", "TraceEvent", "VM", "flip_bit",
    "random_bit_flips", "stray_dma_write",
]
