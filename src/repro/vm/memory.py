"""Guest memory: flat word-addressed space with region tracking.

Layout (word addresses):

* ``[GLOBALS_BASE, globals end)`` — module globals.
* ``[HEAP_BASE, ...)`` — heap; a non-reusing bump allocator (like a
  debugging allocator) so freed addresses stay invalid forever, which
  makes use-after-free detectable with no shadow memory.
* ``[STACKS_BASE + tid * STACK_WINDOW, ...)`` — per-thread stacks for
  frame slots (address-taken locals, local arrays).

Accesses outside any live region trap: that is how the VM turns guest
bugs (overflows, UAF) into coredumps instead of silent corruption.
Region checks can be relaxed per-region (``checked=False``) so workloads
can *corrupt memory silently* — the paper's overflow scenario (Figure 1)
writes out of bounds without an immediate crash.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, Optional, Tuple

from repro.ir.instructions import to_unsigned
from repro.ir.module import HEAP_BASE, Module, STACK_WINDOW, STACKS_BASE


class AccessError(Enum):
    """Why a memory access is invalid."""

    OUT_OF_BOUNDS = "out-of-bounds"
    USE_AFTER_FREE = "use-after-free"


@dataclass
class Allocation:
    base: int
    size: int
    freed: bool = False


class Memory:
    """Sparse guest memory plus allocator and region metadata."""

    def __init__(self, module: Module, check_bounds: bool = True):
        self.module = module
        self.check_bounds = check_bounds
        self.words: Dict[int, int] = dict(module.initial_global_memory())
        self.globals_lo = min(self.words) if self.words else 0
        self.globals_hi = module.global_end()
        self.heap_cursor = HEAP_BASE
        self.allocations: Dict[int, Allocation] = {}
        #: tid → stack pointer (next free word in that thread's window).
        self.stack_tops: Dict[int, int] = {}

    # -- allocator -------------------------------------------------------

    def heap_alloc(self, size: int) -> int:
        """Allocate ``size`` words; one guard word separates allocations."""
        size = max(1, size)
        base = self.heap_cursor
        self.heap_cursor += size + 1
        self.allocations[base] = Allocation(base=base, size=size)
        for offset in range(size):
            self.words[base + offset] = 0
        return base

    def heap_free(self, addr: int) -> Optional[str]:
        """Free an allocation; returns an error string on misuse."""
        alloc = self.allocations.get(addr)
        if alloc is None:
            return "invalid-free"
        if alloc.freed:
            return "double-free"
        alloc.freed = True
        return None

    def allocation_at(self, addr: int) -> Optional[Allocation]:
        for alloc in self.allocations.values():
            if alloc.base <= addr < alloc.base + alloc.size:
                return alloc
        return None

    # -- stacks ------------------------------------------------------------

    def stack_base(self, tid: int) -> int:
        return STACKS_BASE + tid * STACK_WINDOW

    def stack_push(self, tid: int, words: int) -> int:
        """Reserve a frame of ``words`` words; returns the frame base."""
        top = self.stack_tops.get(tid, self.stack_base(tid))
        self.stack_tops[tid] = top + words
        for offset in range(words):
            self.words[top + offset] = 0
        return top

    def stack_pop(self, tid: int, words: int) -> None:
        self.stack_tops[tid] = self.stack_tops.get(tid, self.stack_base(tid)) - words

    # -- access checking -----------------------------------------------------

    def classify(self, addr: int) -> Optional[AccessError]:
        """Return why ``addr`` is invalid, or None if it is a legal access."""
        if self.globals_lo <= addr < self.globals_hi:
            return None
        if HEAP_BASE <= addr < self.heap_cursor:
            alloc = self.allocation_at(addr)
            if alloc is None:
                return AccessError.OUT_OF_BOUNDS  # guard word between allocations
            if alloc.freed:
                return AccessError.USE_AFTER_FREE
            return None
        if addr >= STACKS_BASE:
            tid = (addr - STACKS_BASE) // STACK_WINDOW
            top = self.stack_tops.get(tid)
            if top is not None and self.stack_base(tid) <= addr < top:
                return None
            return AccessError.OUT_OF_BOUNDS
        return AccessError.OUT_OF_BOUNDS

    # -- reads and writes ------------------------------------------------------

    def read(self, addr: int) -> Tuple[int, Optional[AccessError]]:
        error = self.classify(addr) if self.check_bounds else None
        return self.words.get(addr, 0), error

    def write(self, addr: int, value: int) -> Optional[AccessError]:
        error = self.classify(addr) if self.check_bounds else None
        if error is None or not self.check_bounds:
            self.words[addr] = to_unsigned(value)
        return error

    def peek(self, addr: int) -> int:
        """Read without access checking (host-side inspection)."""
        return self.words.get(addr, 0)

    def poke(self, addr: int, value: int) -> None:
        """Write without access checking (host-side setup / fault injection)."""
        self.words[addr] = to_unsigned(value)

    def snapshot(self) -> Dict[int, int]:
        """Copy of all words (the memory part of a coredump)."""
        return dict(self.words)

    def load_snapshot(self, words: Iterable[Tuple[int, int]]) -> None:
        for addr, value in words:
            self.words[addr] = to_unsigned(value)
