"""Minidumps: the truncated crash report RES is *strictly more powerful*
than (paper §1).

"Unlike execution synthesis, RES interprets the entire coredump, not
just a minidump, which makes RES strictly more powerful."

A minidump is the WER-style report: the exception record (our trap),
every thread's register file and call stack, and the memory words of
the thread stacks themselves — but *no* global or heap image.  This
module derives one from a full :class:`~repro.vm.coredump.Coredump` so
the E10 ablation can run the same synthesizer on both and measure what
the dropped memory was worth.

A :class:`MiniDump` is a drop-in ``Coredump`` whose :meth:`available`
predicate tells the snapshot layer which words are trustworthy;
everything else reads back as an unconstrained symbolic unknown, so
candidate predecessors can no longer be refuted by global/heap values —
precisely Figure 1's disambiguation failing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Set, Tuple

from repro.ir.module import STACKS_BASE, STACK_WINDOW
from repro.vm.coredump import Coredump


@dataclass
class MiniDump(Coredump):
    """A partial coredump: threads + stacks only.

    ``memory`` holds exactly the retained words; :meth:`available`
    distinguishes "absent because the word was zero" from "absent
    because the minidump never contained the region".
    """

    #: address ranges (lo, hi) that the minidump retains, half-open
    retained_ranges: Tuple[Tuple[int, int], ...] = ()

    @property
    def is_partial(self) -> bool:
        return True

    def available(self, addr: int) -> bool:
        return any(lo <= addr < hi for lo, hi in self.retained_ranges)

    def read(self, addr: int) -> int:
        if not self.available(addr):
            raise KeyError(
                f"address {addr:#x} is outside the minidump's retained "
                f"ranges")
        return self.memory.get(addr, 0)


def minidump_of(coredump: Coredump,
                keep_breadcrumbs: bool = True) -> MiniDump:
    """Truncate a full coredump to its WER-style minidump.

    Retains the trap, all thread dumps (registers + frames), the words
    of every thread's stack window, and the allocator/lock metadata a
    crash reporter serializes for free.  Drops the global and heap
    images — the information the paper says makes RES strictly more
    powerful than minidump-based execution synthesis.
    """
    ranges = tuple(
        (STACKS_BASE + tid * STACK_WINDOW,
         STACKS_BASE + (tid + 1) * STACK_WINDOW)
        for tid in sorted(coredump.threads)
    )
    retained: Dict[int, int] = {
        addr: value for addr, value in coredump.memory.items()
        if any(lo <= addr < hi for lo, hi in ranges)
    }
    return MiniDump(
        module_name=coredump.module_name,
        trap=coredump.trap,
        memory=retained,
        threads={tid: dump for tid, dump in coredump.threads.items()},
        lock_owners=dict(coredump.lock_owners),
        lbr=list(coredump.lbr) if keep_breadcrumbs else [],
        log_tail=list(coredump.log_tail) if keep_breadcrumbs else [],
        heap=dict(coredump.heap),
        stack_tops=dict(coredump.stack_tops),
        bounds_checked=coredump.bounds_checked,
        retained_ranges=ranges,
    )
